//! Kernel sampling (paper §6.2 / Figures 7–9): collect the Top-5 executed
//! instruction histogram of a benchmark, once with full instrumentation and
//! once with grid-dimension sampling, and compare cost and accuracy.
//!
//! ```text
//! cargo run --release --example sampling_histogram
//! ```

use cuda::Driver;
use gpu::DeviceSpec;
use nvbit::attach_tool;
use nvbit_tools::{OpcodeHistogram, SamplingMode};
use sass::Arch;
use workloads::specaccel::{benchmark, Size};

fn main() {
    let bench = benchmark("seismic").unwrap();

    let native_cycles = {
        let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
        bench.run(&drv, Size::Medium).unwrap();
        drv.total_stats().cycles
    };

    let run = |mode: SamplingMode| {
        let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
        let (tool, results) = OpcodeHistogram::new(mode);
        attach_tool(&drv, tool);
        bench.run(&drv, Size::Medium).unwrap();
        drv.shutdown();
        (results, drv.total_stats().cycles)
    };

    let (full, full_cycles) = run(SamplingMode::Full);
    let (sampled, sampled_cycles) = run(SamplingMode::GridDim);

    println!("seismic, Top-5 executed instructions (full instrumentation):");
    let total: u64 = full.histogram().values().sum();
    for (op, count) in full.top(5) {
        println!("  {op:<8} {:>10}  ({:.1}%)", count, 100.0 * count as f64 / total as f64);
    }
    println!(
        "\nfull instrumentation: {:.1}x slowdown ({} of {} launches instrumented)",
        full_cycles as f64 / native_cycles as f64,
        full.instrumented_launches(),
        full.total_launches()
    );
    println!(
        "grid-dim sampling:    {:.2}x slowdown ({} of {} launches instrumented)",
        sampled_cycles as f64 / native_cycles as f64,
        sampled.instrumented_launches(),
        sampled.total_launches()
    );
    println!(
        "sampling error vs exact: {:.4}%  (0% expected: control flow depends only on grid dims)",
        100.0 * sampled.error_vs(&full)
    );
}
