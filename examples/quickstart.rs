//! Quickstart: write an NVBit tool (the paper's Listing 1 instruction
//! counter), attach it to a driver, and run an application under it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cuda::{Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::attach_tool;
use nvbit_tools::InstrCount;
use sass::Arch;

/// An ordinary application: SAXPY over 1024 elements. It knows nothing
/// about instrumentation — the tool interposes underneath the driver API.
fn saxpy_app(drv: &Driver) {
    const SRC: &str = r#"
.entry saxpy(.param .u64 x, .param .u64 y, .param .u32 n, .param .f32 a)
{
    .reg .u32 %r<5>;
    .reg .u64 %rd<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [x];
    ld.param.u64 %rd2, [y];
    ld.param.u32 %r1, [n];
    ld.param.f32 %f1, [a];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r2, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd3, %r2, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    add.u64 %rd5, %rd2, %rd3;
    ld.global.f32 %f3, [%rd5];
    fma.rn.f32 %f3, %f2, %f1, %f3;
    st.global.f32 [%rd5], %f3;
DONE:
    exit;
}
"#;
    let n = 1024u32;
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("saxpy_app", SRC)).unwrap();
    let f = drv.module_get_function(&m, "saxpy").unwrap();
    let x = drv.mem_alloc(n as u64 * 4).unwrap();
    let y = drv.mem_alloc(n as u64 * 4).unwrap();
    let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_bits().to_le_bytes()).collect();
    drv.memcpy_htod(x, &data).unwrap();
    drv.memcpy_htod(y, &data).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(n / 128),
        Dim3::linear(128),
        &[KernelArg::Ptr(x), KernelArg::Ptr(y), KernelArg::U32(n), KernelArg::F32(2.0)],
    )
    .unwrap();

    // Check the math while we're here: y = 2x + x = 3x.
    let mut out = vec![0u8; n as usize * 4];
    drv.memcpy_dtoh(&mut out, y).unwrap();
    let y7 = f32::from_bits(u32::from_le_bytes(out[28..32].try_into().unwrap()));
    assert_eq!(y7, 21.0);
}

fn main() {
    // 1. Run natively for reference.
    let native = Driver::new(DeviceSpec::preset(Arch::Volta));
    saxpy_app(&native);
    let native_stats = native.total_stats();
    println!(
        "native:       {:>9} thread instructions, {:>9} cycles",
        native_stats.thread_instructions, native_stats.cycles
    );

    // 2. Run again under the instruction-count tool.
    let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
    let (tool, results) = InstrCount::new();
    attach_tool(&drv, tool);
    saxpy_app(&drv);
    drv.shutdown();
    let stats = drv.total_stats();
    println!(
        "instrumented: {:>9} thread instructions counted by the tool, {:>9} cycles",
        results.total(),
        stats.cycles
    );
    println!(
        "\nthe tool's dynamic count equals the native count: {} == {}",
        results.total(),
        native_stats.thread_instructions
    );
    assert_eq!(results.total(), native_stats.thread_instructions);
    println!(
        "instrumentation slowdown on this kernel: {:.1}x (simulated cycles)",
        stats.cycles as f64 / native_stats.cycles as f64
    );
}
