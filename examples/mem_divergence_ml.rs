//! Memory-access divergence of an ML workload (paper §6.1 / Figure 6):
//! instrument all global memory instructions of AlexNet — including the
//! pre-compiled mini-cuBLAS/mini-cuDNN kernels — and compare against the
//! "compiler-based" view that cannot see into the libraries.
//!
//! ```text
//! cargo run --release --example mem_divergence_ml
//! ```

use cuda::Driver;
use gpu::DeviceSpec;
use nvbit::attach_tool;
use nvbit_tools::{InstrCount, MemDivergence};
use sass::Arch;
use workloads::ml_model;

fn main() {
    let model = ml_model("alexnet").unwrap();

    // How much of the workload even lives in the libraries?
    let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
    let (tool, counts) = InstrCount::new();
    attach_tool(&drv, tool);
    model.run(&drv).unwrap();
    drv.shutdown();
    println!(
        "AlexNet executes {:.0}% of its {} thread instructions inside pre-compiled libraries\n",
        100.0 * counts.library_fraction(),
        counts.total()
    );

    for include_libs in [true, false] {
        let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
        let (tool, results) = MemDivergence::new(include_libs);
        attach_tool(&drv, tool);
        model.run(&drv).unwrap();
        drv.shutdown();
        let label = if include_libs {
            "libraries instrumented (NVBit)"
        } else {
            "libraries excluded (compiler-based view)"
        };
        println!(
            "{label:>42}: {:.2} unique cache lines per warp memory instruction \
             ({} instructions observed)",
            results.average(),
            results.mem_instructions()
        );
    }
    println!(
        "\nExcluding the well-coalesced libraries overestimates the application's\n\
         memory divergence — Figure 6's key observation."
    );
}
