//! Instruction emulation for ISA exploration (paper §6.3): run a kernel
//! containing the hypothetical warp-wide `WFFT32` instruction by emulating
//! it with an instrumentation function, and verify the spectrum against a
//! CPU reference DFT.
//!
//! ```text
//! cargo run --release --example isa_extension_fft
//! ```

use cuda::{Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::attach_tool;
use nvbit_tools::WfftEmu;
use sass::Arch;
use workloads::fft;

fn main() {
    // A pure sine at bin 4: the FFT should put all energy at bins 4 and 28.
    let input: [(f32, f32); 32] =
        std::array::from_fn(|i| ((2.0 * std::f32::consts::PI * 4.0 * i as f32 / 32.0).sin(), 0.0));
    let bytes: Vec<u8> = input
        .iter()
        .flat_map(|(r, i)| {
            let mut v = r.to_bits().to_le_bytes().to_vec();
            v.extend(i.to_bits().to_le_bytes());
            v
        })
        .collect();

    let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
    attach_tool(&drv, WfftEmu::new());
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("fft_app", fft::wfft_kernel_ptx())).unwrap();
    let f = drv.module_get_function(&m, "fft32").unwrap();
    let din = drv.mem_alloc(256).unwrap();
    let dout = drv.mem_alloc(256).unwrap();
    drv.memcpy_htod(din, &bytes).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(1),
        Dim3::linear(32),
        &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
    )
    .unwrap();
    let mut out = vec![0u8; 256];
    drv.memcpy_dtoh(&mut out, dout).unwrap();
    drv.shutdown();

    let reference = fft::reference_dft(&input);
    println!("bin   |emulated WFFT32|   |reference DFT|");
    for k in 0..32 {
        let re = f32::from_bits(u32::from_le_bytes(out[k * 8..k * 8 + 4].try_into().unwrap()));
        let im = f32::from_bits(u32::from_le_bytes(out[k * 8 + 4..k * 8 + 8].try_into().unwrap()));
        let mag = (re * re + im * im).sqrt();
        let rmag = (reference[k].0.powi(2) + reference[k].1.powi(2)).sqrt();
        if mag > 0.5 || rmag > 0.5 {
            println!("{k:>3}   {mag:>15.3}   {rmag:>15.3}");
        }
        assert!((mag - rmag).abs() < 0.1, "bin {k} diverged");
    }
    println!("\nthe emulated hypothetical instruction reproduces the reference spectrum");
}
