//! Profile the whole instrumentation pipeline with the observability
//! layer: run the software warp-FFT under the instruction-counting tool,
//! then print where the time went — interposition, SASS lifting,
//! injection, trampoline codegen, execution — and export the raw events
//! as a Chrome trace loadable in Perfetto or `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example profile_pipeline
//! ```
//!
//! Writes `results/profile_pipeline.trace.json` (Chrome `trace_event`
//! format) and `results/BENCH_profile_pipeline.json` (the aggregated
//! summary).

use common::bench::fmt_duration;
use common::obs;
use cuda::{Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::attach_tool;
use nvbit_tools::InstrCount;
use sass::Arch;
use std::time::Duration;
use workloads::fft::soft_fft_kernel_ptx;

fn main() {
    // Observability is off by default; a tool/app opts in per process
    // (or via NVBIT_OBS=1 without touching the code).
    obs::set_enabled(true);

    const BLOCKS: u32 = 8;
    let bytes = BLOCKS as u64 * 32 * 8;
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let (tool, results) = InstrCount::new();
    attach_tool(&drv, tool);

    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("fft", soft_fft_kernel_ptx())).unwrap();
    let f = drv.module_get_function(&m, "fft32_soft").unwrap();
    let din = drv.mem_alloc(bytes).unwrap();
    let dout = drv.mem_alloc(bytes).unwrap();
    // Unit-magnitude input: lane k holds the complex point (1, 0).
    let input: Vec<u8> = (0..BLOCKS * 32)
        .flat_map(|_| {
            let mut rec = [0u8; 8];
            rec[..4].copy_from_slice(&1.0f32.to_le_bytes());
            rec
        })
        .collect();
    drv.memcpy_htod(din, &input).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(BLOCKS),
        Dim3::linear(32),
        &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
    )
    .unwrap();
    drv.shutdown();

    let report = obs::Report::capture();

    // Per-phase breakdown. Exclusive (self) time gives an honest flat
    // profile: `interpose` contains `lift`/`instrument`/`user_code`, and
    // `instrument` contains `codegen`, so inclusive times double-count.
    println!("== profile_pipeline: instrumented fft32_soft ({BLOCKS} CTAs x 32 threads) ==\n");
    println!("{:12}  {:>6}  {:>12}  {:>12}", "phase", "count", "self", "inclusive");
    for name in [
        "interpose",
        "module_load",
        "launch",
        "lift",
        "instrument",
        "codegen",
        "swap",
        "user_code",
        "execute",
        "cta",
        "merge",
    ] {
        let Some(p) = report.phases.get(name) else { continue };
        println!(
            "{name:12}  {:>6}  {:>12}  {:>12}",
            p.count,
            fmt_duration(Duration::from_nanos(p.self_ns)),
            fmt_duration(Duration::from_nanos(p.total_ns)),
        );
    }
    println!("\ncounters:");
    for (name, c) in &report.counters {
        println!("  {name} = {} ({} events)", c.sum, c.count);
    }
    println!("\ntool result: {} dynamic instructions counted", results.total());
    if report.dropped > 0 {
        println!("warning: {} events dropped to ring wraparound", report.dropped);
    }

    std::fs::create_dir_all("results").unwrap();
    let trace_path = "results/profile_pipeline.trace.json";
    std::fs::write(trace_path, report.to_chrome_trace().to_compact()).unwrap();
    let summary_path = "results/BENCH_profile_pipeline.json";
    std::fs::write(summary_path, report.to_json().to_pretty()).unwrap();
    println!("\nwrote {trace_path} (open in Perfetto / chrome://tracing)");
    println!("wrote {summary_path}");
}
