//! Building a cache simulator on NVBit (paper §6.1: "entire cache
//! simulators can be built around these mechanisms"): trace the global
//! memory addresses of two access patterns and replay them through an LRU
//! cache model.
//!
//! ```text
//! cargo run --release --example cache_sim
//! ```

use cuda::{Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::attach_tool;
use nvbit_tools::{CacheConfig, CacheSim, MemTrace};
use sass::Arch;

fn kernel(stride_shift: u32) -> String {
    format!(
        r#"
.entry walk(.param .u64 buf, .param .u32 n)
{{
    .reg .u32 %r<6>;
    .reg .u64 %rd<5>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r2, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    shl.b32 %r5, %r2, {stride_shift};
    mul.wide.u32 %rd2, %r5, 1;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r5, [%rd3];
    st.global.u32 [%rd3], %r5;
DONE:
    exit;
}}
"#
    )
}

fn trace(stride_shift: u32) -> Vec<u64> {
    let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
    let (tool, results) = MemTrace::new(1 << 16);
    attach_tool(&drv, tool);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("walk", kernel(stride_shift))).unwrap();
    let f = drv.module_get_function(&m, "walk").unwrap();
    let n = 2048u32;
    let buf = drv.mem_alloc((n as u64) << stride_shift.max(2)).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(n / 128),
        Dim3::linear(128),
        &[KernelArg::Ptr(buf), KernelArg::U32(n)],
    )
    .unwrap();
    drv.shutdown();
    assert!(!results.truncated());
    results.addresses()
}

fn main() {
    for (label, shift) in [("sequential (4B stride)", 2u32), ("strided (256B stride)", 8)] {
        let addrs = trace(shift);
        let mut l1 = CacheSim::new(CacheConfig::l1());
        l1.replay(&addrs);
        let mut l2 = CacheSim::new(CacheConfig::l2());
        l2.replay(&addrs);
        println!(
            "{label:>24}: {} accesses, L1 hit rate {:.1}%, L2 hit rate {:.1}%",
            l1.results().accesses,
            100.0 * l1.results().hit_rate(),
            100.0 * l2.results().hit_rate(),
        );
    }
    println!("\nthe trace-driven model shows the coalescing difference directly");
}
