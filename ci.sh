#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 build+test — all fully offline —
# plus a guard that no crates.io dependency re-enters any manifest.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== dependency guard: manifests must stay path-only =="
# Inside any *dependencies section, a `key = "x.y.z"` or
# `{ version = ... }` entry would resolve against crates.io; every
# dependency in this workspace is a path dep declared once in the root
# [workspace.dependencies] table.
bad=$(awk '
    /^\[/ { dep = ($0 ~ /dependencies\]$/) }
    dep && /^[[:space:]]*[A-Za-z0-9_-]+[[:space:]]*=[[:space:]]*("[0-9]|\{.*version)/ {
        print FILENAME ":" FNR ": " $0
    }
' Cargo.toml crates/*/Cargo.toml)
if [ -n "$bad" ]; then
    echo "crates.io-style dependency found:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deny rustdoc warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== doc-tests (README quickstart + API examples) =="
cargo test --doc -q

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== verify_all: every tool x every workload, zero diagnostics =="
# Lifts and instruments every bundled tool against every workload kernel
# (fft pipeline, SPECAccel suite, ML models) and requires the pre-swap
# static verifier to accept every generated image.
cargo test --release -q -p nvbit-tools --test verify_all -- --include-ignored

echo "== differential: liveness-reduced saves vs full-tier =="
cargo test --release -q -p nvbit-tools --test differential_saves

echo "== pressure: splice cost-model unit tests =="
cargo test --release -q -p nvbit-sass --lib pressure

echo "== occupancy: SM-model unit tests (Volta golden points, curve monotonicity) =="
cargo test --release -q -p nvbit-sass --lib occupancy

echo "== differential: all six plan configs (naive/coalesced/+inline/+region+after/+pressure/+occupancy) =="
cargo test --release -q -p nvbit-tools --test differential_plan

echo "== savereduce: liveness save-slot reduction (>=30% gate, incl. declined-splice run) =="
cargo run --release -q -p nvbit-bench --bin savereduce

echo "== inject_overhead: multi-workload sweep (>=25% fft gate, region wins on >=2 of fft/stencil/spmv, occupancy curve re-accepts a tier-declined splice at every swept block shape) =="
cargo run --release -q -p nvbit-bench --bin inject_overhead

echo "== module-unload regression: recycled handles never see stale caches =="
cargo test --release -q -p nvbit-core --test module_unload

echo "== jitpar: concurrent JIT (>=2x on >=4 hw threads), bit-identical, zero-regen flips =="
cargo run --release -q -p nvbit-bench --bin jitpar

echo "== channel determinism: Block bit-identical across schedulers, DropCount exact accounting =="
cargo test --release -q -p nvbit-tools --test channel_determinism

echo "== per-launch occupancy: sentinel matches explicit shape, shape change replans =="
cargo test --release -q -p nvbit-tools --test per_launch_occupancy

echo "== channel_bw: zero drops under Block at every size, >=16x oversubscription and >=2x record throughput vs bounded at 4Ki =="
cargo run --release -q -p nvbit-bench --bin channel_bw

echo "CI OK"
