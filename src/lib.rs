//! Umbrella crate for the NVBit reproduction: re-exports every layer of the
//! stack under one roof for examples and integration tests, and carries the
//! README below as its documentation so every snippet in it is compiled and
//! run by `cargo test --doc`.
//!
//! See `DESIGN.md` for the paper-to-module mapping.
#![doc = include_str!("../README.md")]
#![warn(missing_docs)]

/// The paper-to-code map, carried from `docs/PAPER_MAP.md` so its snippet
/// is compiled and run by `cargo test --doc` and every entry point it
/// cites stays real.
#[doc = include_str!("../docs/PAPER_MAP.md")]
pub mod paper_map {}

pub use accel;
pub use cuda;
pub use gpu;
pub use nvbit;
pub use nvbit_tools as tools;
pub use ptx;
pub use sass;
pub use workloads;
