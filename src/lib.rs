//! Umbrella crate for the NVBit reproduction: re-exports every layer of the
//! stack under one roof for examples and integration tests.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module mapping.

pub use accel;
pub use cuda;
pub use gpu;
pub use nvbit;
pub use nvbit_tools as tools;
pub use ptx;
pub use sass;
pub use workloads;
