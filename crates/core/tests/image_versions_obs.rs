//! Observability-counter proof of the multi-version image cache: flipping
//! `enable_instrumented` and `set_save_policy` back and forth must never
//! re-run codegen (version swaps are O(memcpy) — paper §6.2), and a module
//! unload must show up as cache evictions.
//!
//! This test owns process-global state twice over: it flips the obs
//! switch, and `Report::capture` destructively drains every thread's ring.
//! It therefore lives alone in its own integration-test binary.

use common::obs;
use cuda::{CbId, CbParams, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, IPoint, NvbitApi, NvbitTool, SavePolicy};
use sass::Arch;

const COUNT_FN: &str = r#"
.func count_one(.reg .u32 %pred, .reg .u64 %ctr)
{
    .reg .u32 %r<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%ctr], %r1;
    ret;
}
"#;

const APP: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    exit;
}
"#;

/// Instruments at the first launch, then exercises the version cache:
/// enable flips on launches 1–5, a save-policy change on launch 6 (the
/// one legitimate second build), and policy flips back and forth after.
struct Flipper {
    launches: u32,
}

impl NvbitTool for Flipper {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(COUNT_FN).unwrap();
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if is_exit || cbid != CbId::LaunchKernel {
            return;
        }
        match self.launches {
            0 => {
                let ctr = api.driver().with_device(|d| d.alloc(8)).unwrap();
                for idx in 0..api.get_instrs(*func).unwrap().len() {
                    api.insert_call(*func, idx, "count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(*func, idx).unwrap();
                    api.add_call_arg_imm64(*func, idx, ctr).unwrap();
                }
            }
            1..=5 => {
                // §6.2 sampling: versions swap, nothing rebuilds.
                api.enable_instrumented(*func, self.launches.is_multiple_of(2)).unwrap();
            }
            6 => api.set_save_policy(SavePolicy::FullTier),
            7 => api.set_save_policy(SavePolicy::Liveness),
            8 => api.set_save_policy(SavePolicy::FullTier),
            _ => api.set_save_policy(SavePolicy::Liveness),
        }
        self.launches += 1;
    }
}

#[test]
fn version_flips_reuse_cached_images_and_unload_evicts() {
    obs::set_enabled(true);
    obs::reset();

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, Flipper { launches: 0 });
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    let out = drv.mem_alloc(128).unwrap();
    for _ in 0..10 {
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
    }
    drv.module_unload(m).unwrap();
    drv.shutdown();

    let report = obs::Report::capture();
    obs::set_enabled(false);

    // Exactly two codegen runs: the initial Liveness image and the first
    // FullTier image. Every other flip — five enable toggles and three
    // further policy flips — must be served from the version cache.
    assert_eq!(report.counter_sum("instr_image.build"), 2, "only the two distinct versions build");
    assert!(
        report.counter_sum("instr_image.reuse") >= 6,
        "flips must hit the cache (got {} reuses)",
        report.counter_sum("instr_image.reuse")
    );
    // The function is lifted exactly once for all versions.
    assert_eq!(report.counter_sum("lift_cache.miss"), 1);
    assert!(report.counter_sum("lift_cache.hit") >= 1);

    // The unload evicted one lifted function carrying two image versions.
    assert_eq!(report.counter_sum("module.unloads"), 1);
    assert_eq!(report.counter_sum("lift_cache.evict"), 1);
    assert_eq!(report.counter_sum("instr_image.evict"), 2);
    assert_eq!(report.counter_sum("tramp.free_fail"), 0, "all trampolines free cleanly");
}
