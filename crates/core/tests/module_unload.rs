//! Module-unload regression tests: unloading a module must evict every
//! per-function cache entry in the core (lifted SASS, instrumentation
//! specs, generated images) and free the trampoline allocations, so that
//! a later module load which recycles the same raw handles is lifted and
//! instrumented from its *own* code, never from a stale cache entry.

use cuda::{CbId, CbParams, CuFunction, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, IPoint, NvbitApi, NvbitTool};
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;

const COUNT_FN: &str = r#"
.func count_one(.reg .u32 %pred, .reg .u64 %ctr)
{
    .reg .u32 %r<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%ctr], %r1;
    ret;
}
"#;

/// Kernel with ONE global store: each thread writes its tid.
const ONE_STORE: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    exit;
}
"#;

/// Kernel with TWO global stores and the same entry name: tid, then
/// tid + 100 at a +128-byte offset.
const TWO_STORES: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    add.u32 %r2, %r1, 100;
    st.global.u32 [%rd3+128], %r2;
    exit;
}
"#;

/// A tool that instruments every *global store* of any function it has not
/// seen instrumented yet, bumping a device counter per executed store.
struct StoreCounter {
    counter_addr: Rc<RefCell<u64>>,
}

impl NvbitTool for StoreCounter {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(COUNT_FN).unwrap();
        *self.counter_addr.borrow_mut() = api.driver().with_device(|d| d.alloc(8)).unwrap();
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        // Keyed on the *core's* view, not a host-side seen-set of raw
        // handles: after an unload evicts the cache, a recycled handle
        // must show up as un-instrumented again.
        if is_exit || cbid != CbId::LaunchKernel || api.is_instrumented(*func) {
            return;
        }
        let addr = *self.counter_addr.borrow();
        for instr in api.get_instrs(*func).unwrap() {
            if instr.is_store() && instr.mem_space() == Some(sass::MemSpace::Global) {
                api.insert_call(*func, instr.idx, "count_one", IPoint::Before).unwrap();
                api.add_call_arg_guard_pred(*func, instr.idx).unwrap();
                api.add_call_arg_imm64(*func, instr.idx, addr).unwrap();
            }
        }
    }
}

fn read_counter(drv: &Driver, addr: u64) -> u64 {
    let mut b = [0u8; 8];
    drv.memcpy_dtoh(&mut b, addr).unwrap();
    u64::from_le_bytes(b)
}

/// The stale-cache regression the PR fixes: unload a module, load a new
/// one whose function recycles the *same raw handle and device address*,
/// and prove the new code — not the stale lift — is what gets
/// instrumented and executed.
#[test]
fn recycled_handle_after_unload_is_lifted_fresh() {
    let counter_addr = Rc::new(RefCell::new(0u64));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, StoreCounter { counter_addr: counter_addr.clone() });
    let ctx = drv.ctx_create().unwrap();
    let out = drv.mem_alloc(256).unwrap();

    // First module: one store per thread.
    let m1 = drv.module_load(&ctx, FatBinary::from_ptx("app_a", ONE_STORE)).unwrap();
    let f1 = drv.module_get_function(&m1, "k").unwrap();
    let (f1_raw, f1_addr) = (f1.raw(), drv.function_info(f1).unwrap().addr);
    drv.launch_kernel(&f1, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
    let addr = *counter_addr.borrow();
    assert_eq!(read_counter(&drv, addr), 32, "one store x 32 threads");

    drv.module_unload(m1).unwrap();
    assert!(drv.function_info(f1).is_err(), "unloaded handle must be dead");

    // Second module: same entry name, two stores. The driver recycles
    // handles lowest-first, so the new module and function reuse the raw
    // handles (and the code allocation slot) the unloaded ones vacated —
    // exactly the aliasing that used to serve a stale lifted image.
    let m2 = drv.module_load(&ctx, FatBinary::from_ptx("app_b", TWO_STORES)).unwrap();
    let f2 = drv.module_get_function(&m2, "k").unwrap();
    assert_eq!(f2.raw(), f1_raw, "raw function handle must be recycled");
    assert_eq!(
        drv.function_info(f2).unwrap().addr,
        f1_addr,
        "device code address must be recycled too"
    );

    drv.launch_kernel(&f2, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
    // A stale lift of the first kernel would find one store site (+32);
    // the fresh code has two (+64).
    assert_eq!(read_counter(&drv, addr), 32 + 64, "both stores of the NEW code instrumented");

    // And the new kernel's own semantics survived instrumentation.
    let mut buf = vec![0u8; 256];
    drv.memcpy_dtoh(&mut buf, out).unwrap();
    for t in 0..32u32 {
        let lo = u32::from_le_bytes(buf[t as usize * 4..][..4].try_into().unwrap());
        let hi = u32::from_le_bytes(buf[128 + t as usize * 4..][..4].try_into().unwrap());
        assert_eq!(lo, t);
        assert_eq!(hi, t + 100);
    }
    drv.shutdown();
}

/// Unloading an instrumented module must free the trampoline memory: the
/// device allocation count and bytes-in-use return to their post-first-
/// cycle baseline on every subsequent load/instrument/launch/unload cycle.
#[test]
fn unload_frees_trampolines_back_to_baseline() {
    let counter_addr = Rc::new(RefCell::new(0u64));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, StoreCounter { counter_addr: counter_addr.clone() });
    let ctx = drv.ctx_create().unwrap();
    let out = drv.mem_alloc(256).unwrap();

    let cycle = |src: &str| {
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", src)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
        drv.module_unload(m).unwrap();
    };

    // First cycle absorbs any one-time allocations (tool counter etc.).
    cycle(ONE_STORE);
    let baseline = drv.with_device(|d| (d.memory().live_allocs(), d.memory().in_use()));

    for round in 0..3 {
        cycle(if round % 2 == 0 { TWO_STORES } else { ONE_STORE });
        let now = drv.with_device(|d| (d.memory().live_allocs(), d.memory().in_use()));
        assert_eq!(
            now, baseline,
            "round {round}: allocation counters must return to baseline after unload"
        );
    }
    drv.shutdown();
}

/// Unloading a module that was never instrumented is clean too, and a
/// double unload reports an invalid handle instead of corrupting state.
#[test]
fn unload_without_instrumentation_and_double_unload() {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", ONE_STORE)).unwrap();
    let before = drv.with_device(|d| (d.memory().live_allocs(), d.memory().in_use()));
    drv.module_unload(m).unwrap();
    let after = drv.with_device(|d| (d.memory().live_allocs(), d.memory().in_use()));
    assert!(after.0 < before.0, "module code allocation must be freed");
    assert!(drv.module_unload(m).is_err(), "double unload must fail cleanly");
    assert!(drv.module_functions(&m).is_err());

    // The freed handles are reissued to the next module, lowest-first.
    let m2 = drv.module_load(&ctx, FatBinary::from_ptx("app2", ONE_STORE)).unwrap();
    assert_eq!(m2.raw(), m.raw(), "module handle recycled deterministically");
    drv.shutdown();
}

/// A function handle can be looked up through [`Driver::module_functions`]
/// during the `ModuleUnload` *entry* callback — this is the window the
/// core uses to evict — and the launch after a reload works when a
/// different tool decision is made (no phantom spec survives).
#[test]
fn unload_entry_callback_sees_module_functions() {
    struct Watcher {
        at_entry: Rc<RefCell<Vec<u32>>>,
    }
    impl NvbitTool for Watcher {
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            if cbid != CbId::ModuleUnload || is_exit {
                return;
            }
            let CbParams::Module { module, .. } = params else { return };
            let funcs = api.driver().module_functions(module).unwrap();
            *self.at_entry.borrow_mut() = funcs.iter().map(CuFunction::raw).collect();
        }
    }
    let seen = Rc::new(RefCell::new(Vec::new()));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, Watcher { at_entry: seen.clone() });
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", ONE_STORE)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    drv.module_unload(m).unwrap();
    assert_eq!(*seen.borrow(), vec![f.raw()], "entry callback must still see the functions");
    drv.shutdown();
}
