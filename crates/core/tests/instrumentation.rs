//! End-to-end instrumentation tests: tools inject real device functions
//! into real kernels, the rewritten binaries execute on the simulator, and
//! both the application semantics and the instrumentation results are
//! checked.

use cuda::{CbId, CbParams, CuFunction, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, IPoint, NvbitApi, NvbitTool};
use sass::Arch;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// A tool built from closures, for compact test definitions.
type LaunchEntryFn = Box<dyn FnMut(&NvbitApi<'_>, CuFunction, Dim3, Dim3)>;

struct ClosureTool {
    init: Box<dyn FnMut(&NvbitApi<'_>)>,
    launch_entry: LaunchEntryFn,
}

impl NvbitTool for ClosureTool {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        (self.init)(api);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        if is_exit || cbid != CbId::LaunchKernel {
            return;
        }
        if let CbParams::LaunchKernel { func, grid, block, .. } = params {
            (self.launch_entry)(api, *func, *grid, *block);
        }
    }
}

const COUNT_FN: &str = r#"
.func count_one(.reg .u32 %pred, .reg .u64 %ctr)
{
    .reg .u32 %r<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%ctr], %r1;
    ret;
}
"#;

const VECADD: &str = r#"
.entry vecadd(.param .u64 a, .param .u64 b, .param .u64 out, .param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [a];
    ld.param.u64 %rd2, [b];
    ld.param.u64 %rd3, [out];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mul.lo.u32 %r2, %r2, %r3;
    mov.u32 %r3, %tid.x;
    add.u32 %r2, %r2, %r3;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r2, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
    add.u64 %rd5, %rd2, %rd4;
    ld.global.f32 %f2, [%rd5];
    add.f32 %f1, %f1, %f2;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f1;
DONE:
    exit;
}
"#;

/// Runs the vecadd app; returns (driver, output bytes).
fn run_vecadd(drv: &Driver, n: u32) -> Vec<u8> {
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", VECADD)).unwrap();
    let f = drv.module_get_function(&m, "vecadd").unwrap();
    let bytes = 4 * 256u64;
    let a = drv.mem_alloc(bytes).unwrap();
    let b = drv.mem_alloc(bytes).unwrap();
    let out = drv.mem_alloc(bytes).unwrap();
    let data_a: Vec<u8> = (0..256).flat_map(|i| (i as f32 * 0.5).to_bits().to_le_bytes()).collect();
    let data_b: Vec<u8> =
        (0..256).flat_map(|i| (100.0 - i as f32).to_bits().to_le_bytes()).collect();
    drv.memcpy_htod(a, &data_a).unwrap();
    drv.memcpy_htod(b, &data_b).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(4),
        Dim3::linear(64),
        &[KernelArg::Ptr(a), KernelArg::Ptr(b), KernelArg::Ptr(out), KernelArg::U32(n)],
    )
    .unwrap();
    let mut result = vec![0u8; bytes as usize];
    drv.memcpy_dtoh(&mut result, out).unwrap();
    result
}

/// An instruction-count tool (paper Listing 1) instrumenting every
/// instruction of every kernel once.
fn instr_count_tool(counter: Rc<RefCell<u64>>) -> impl NvbitTool {
    struct Tool {
        counter_addr: Rc<RefCell<u64>>,
        counter_out: Rc<RefCell<u64>>,
        seen: Rc<RefCell<HashSet<u32>>>,
    }
    impl NvbitTool for Tool {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            api.load_tool_functions(COUNT_FN).unwrap();
            *self.counter_addr.borrow_mut() = api.driver().with_device(|d| d.alloc(8)).unwrap();
        }
        fn at_term(&mut self, api: &NvbitApi<'_>) {
            let mut buf = [0u8; 8];
            api.driver().memcpy_dtoh(&mut buf, *self.counter_addr.borrow()).unwrap();
            *self.counter_out.borrow_mut() = u64::from_le_bytes(buf);
        }
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            if is_exit || cbid != CbId::LaunchKernel || !self.seen.borrow_mut().insert(func.raw()) {
                return;
            }
            let n = api.get_instrs(*func).unwrap().len();
            let addr = *self.counter_addr.borrow();
            for idx in 0..n {
                api.insert_call(*func, idx, "count_one", IPoint::Before).unwrap();
                api.add_call_arg_guard_pred(*func, idx).unwrap();
                api.add_call_arg_imm64(*func, idx, addr).unwrap();
            }
        }
    }
    Tool {
        counter_addr: Rc::new(RefCell::new(0)),
        counter_out: counter,
        seen: Rc::new(RefCell::new(HashSet::new())),
    }
}

#[test]
fn instrumentation_preserves_semantics_and_counts_match_native() {
    for arch in Arch::ALL {
        // Native run: ground-truth output and instruction count.
        let native = Driver::new(DeviceSpec::test(arch));
        let expected = run_vecadd(&native, 200);
        let native_threads = native.total_stats().thread_instructions;

        // Instrumented run.
        let counter = Rc::new(RefCell::new(0u64));
        let drv = Driver::new(DeviceSpec::test(arch));
        attach_tool(&drv, instr_count_tool(counter.clone()));
        let got = run_vecadd(&drv, 200);
        let instrumented_cycles = drv.total_stats().cycles;
        drv.shutdown();

        assert_eq!(got, expected, "instrumented output differs on {arch}");
        assert_eq!(
            *counter.borrow(),
            native_threads,
            "tool count != native thread instructions on {arch}"
        );
        // Instrumentation genuinely executes extra code.
        assert!(
            instrumented_cycles > native.total_stats().cycles * 3,
            "expected substantial slowdown on {arch}"
        );
    }
}

#[test]
fn divergent_kernels_survive_full_instrumentation() {
    const DIVERGE: &str = r#"
.entry diverge(.param .u64 out)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra EVEN;
    mov.u32 %r3, 111;
    bra JOIN;
EVEN:
    mov.u32 %r3, 222;
JOIN:
    add.u32 %r3, %r3, %r1;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    exit;
}
"#;
    let run = |with_tool: bool| -> (Vec<u8>, u64) {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let counter = Rc::new(RefCell::new(0u64));
        if with_tool {
            attach_tool(&drv, instr_count_tool(counter.clone()));
        }
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", DIVERGE)).unwrap();
        let f = drv.module_get_function(&m, "diverge").unwrap();
        let out = drv.mem_alloc(128).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
        let mut buf = vec![0u8; 128];
        drv.memcpy_dtoh(&mut buf, out).unwrap();
        drv.shutdown();
        let count = *counter.borrow();
        (buf, count)
    };
    let (native, _) = run(false);
    let (instrumented, count) = run(true);
    assert_eq!(native, instrumented);
    assert!(count > 0);
    // Spot-check values: even threads 222+t, odd 111+t.
    for t in 0..32u32 {
        let v = u32::from_le_bytes(native[t as usize * 4..t as usize * 4 + 4].try_into().unwrap());
        assert_eq!(v, if t % 2 == 0 { 222 + t } else { 111 + t });
    }
}

#[test]
fn sampling_switches_between_versions_per_launch() {
    // Instrument on the first launch; disable for odd launches. Counters
    // only advance on instrumented launches and disabled launches run at
    // exactly native cost.
    struct Sampler {
        counter_addr: u64,
        launches: u32,
        instrumented: bool,
    }
    impl NvbitTool for Sampler {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            api.load_tool_functions(COUNT_FN).unwrap();
            self.counter_addr = api.driver().with_device(|d| d.alloc(8)).unwrap();
        }
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            if is_exit || cbid != CbId::LaunchKernel {
                return;
            }
            if !self.instrumented {
                self.instrumented = true;
                let n = api.get_instrs(*func).unwrap().len();
                for idx in 0..n {
                    api.insert_call(*func, idx, "count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(*func, idx).unwrap();
                    api.add_call_arg_imm64(*func, idx, self.counter_addr).unwrap();
                }
            }
            // Enable on even launches, disable on odd (the paper's
            // nvbit_enable_instrumented).
            api.enable_instrumented(*func, self.launches.is_multiple_of(2)).unwrap();
            self.launches += 1;
        }
    }

    let drv = Driver::new(DeviceSpec::test(Arch::Pascal));
    attach_tool(&drv, Sampler { counter_addr: 0, launches: 0, instrumented: false });
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", VECADD)).unwrap();
    let f = drv.module_get_function(&m, "vecadd").unwrap();
    let buf = drv.mem_alloc(1024).unwrap();
    let args = [KernelArg::Ptr(buf), KernelArg::Ptr(buf), KernelArg::Ptr(buf), KernelArg::U32(64)];
    let mut cycles = Vec::new();
    for _ in 0..4 {
        let stats = drv.launch_kernel(&f, Dim3::linear(2), Dim3::linear(64), &args).unwrap();
        cycles.push(stats.cycles);
    }
    // Launches 0 and 2 instrumented; 1 and 3 native.
    assert!(cycles[0] > cycles[1] * 3, "instrumented {} vs native {}", cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[3], "native launches are deterministic");
    assert_eq!(cycles[0], cycles[2], "instrumented launches are deterministic");
}

#[test]
fn proxy_instruction_emulation_with_permanent_register_writes() {
    // The paper's §6.3 flow: a kernel uses a hypothetical instruction
    // (PROXY "SQUARE"); running it natively faults; a tool removes the
    // original and injects an emulation function that reads the source
    // register and writes the destination register through the device API.
    const APP: &str = r#"
.entry sq(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    proxy.b32 %r2, %r1, "SQUARE";
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;
    const EMU: &str = r#"
.func emu_square(.reg .u32 %srcidx, .reg .u32 %dstidx)
{
    .reg .u32 %v<3>;
    nvbit.readreg.b32 %v1, %srcidx;
    mul.lo.u32 %v2, %v1, %v1;
    nvbit.writereg.b32 %dstidx, %v2;
    ret;
}
"#;

    // Native execution faults on the unimplemented instruction.
    {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "sq").unwrap();
        let out = drv.mem_alloc(128).unwrap();
        let e = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]);
        assert!(e.is_err(), "PROXY must fault without emulation");
    }

    // Instrumented execution emulates it.
    let square_id = ptx::lower::proxy_id("SQUARE");
    let tool = ClosureTool {
        init: Box::new(|api| api.load_tool_functions(EMU).unwrap()),
        launch_entry: Box::new(move |api, func, _, _| {
            if api.is_instrumented(func) {
                return;
            }
            for instr in api.get_instrs(func).unwrap() {
                if instr.proxy_id() == Some(square_id) {
                    let (dst, src) = instr.proxy_regs().unwrap();
                    api.insert_call(func, instr.idx, "emu_square", IPoint::Before).unwrap();
                    api.add_call_arg_imm32(func, instr.idx, src.0 as i32).unwrap();
                    api.add_call_arg_imm32(func, instr.idx, dst.0 as i32).unwrap();
                    api.remove_orig(func, instr.idx).unwrap();
                }
            }
        }),
    };
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, tool);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "sq").unwrap();
    let out = drv.mem_alloc(128).unwrap();
    drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
    let mut buf = vec![0u8; 128];
    drv.memcpy_dtoh(&mut buf, out).unwrap();
    for t in 0..32u32 {
        let v = u32::from_le_bytes(buf[t as usize * 4..t as usize * 4 + 4].try_into().unwrap());
        assert_eq!(v, t * t, "thread {t}");
    }
}

#[test]
fn register_value_arguments_deliver_addresses_to_the_tool() {
    // A memory-trace-style tool: for each global store, record the
    // effective address (base pair + immediate offset) into a trace buffer.
    const TRACE_FN: &str = r#"
.func trace_addr(.reg .u32 %pred, .reg .u64 %base, .reg .u32 %off, .reg .u64 %tracebuf)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<6>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    // addr = base + sign-extended offset (offsets are non-negative here)
    cvt.u64.u32 %rd1, %off;
    add.u64 %rd2, %base, %rd1;
    // slot = atomicAdd(tracebuf, 1); store addr at tracebuf[1 + slot]
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%tracebuf], %r1;
    cvt.u64.u32 %rd3, %r2;
    shl.b64 %rd3, %rd3, 3;
    add.u64 %rd4, %tracebuf, %rd3;
    st.global.u64 [%rd4+8], %rd2;
    ret;
}
"#;
    const APP: &str = r#"
.entry scatter(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 8;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3+4], %r1;
    exit;
}
"#;
    let trace_addr_cell = Rc::new(RefCell::new(0u64));
    let ta = trace_addr_cell.clone();
    let tool = ClosureTool {
        init: Box::new(move |api| {
            api.load_tool_functions(TRACE_FN).unwrap();
            *ta.borrow_mut() = api.driver().with_device(|d| d.alloc(8 + 8 * 64)).unwrap();
        }),
        launch_entry: {
            let ta = trace_addr_cell.clone();
            Box::new(move |api, func, _, _| {
                if api.is_instrumented(func) {
                    return;
                }
                for instr in api.get_instrs(func).unwrap() {
                    if instr.mem_space() == Some(sass::MemSpace::Global) && instr.is_store() {
                        let (base, offset) = instr.mref().unwrap();
                        api.insert_call(func, instr.idx, "trace_addr", IPoint::Before).unwrap();
                        api.add_call_arg_guard_pred(func, instr.idx).unwrap();
                        api.add_call_arg_reg_val64(func, instr.idx, base.0).unwrap();
                        api.add_call_arg_imm32(func, instr.idx, offset).unwrap();
                        api.add_call_arg_imm64(func, instr.idx, *ta.borrow()).unwrap();
                    }
                }
            })
        },
    };

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, tool);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "scatter").unwrap();
    let out = drv.mem_alloc(8 * 32).unwrap();
    drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();

    let trace = *trace_addr_cell.borrow();
    let mut hdr = [0u8; 4];
    drv.memcpy_dtoh(&mut hdr, trace).unwrap();
    assert_eq!(u32::from_le_bytes(hdr), 32, "one trace record per thread");
    let mut records = vec![0u8; 8 * 32];
    drv.memcpy_dtoh(&mut records, trace + 8).unwrap();
    let mut addrs: Vec<u64> =
        records.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    addrs.sort_unstable();
    let mut expected: Vec<u64> = (0..32u64).map(|t| out + 8 * t + 4).collect();
    expected.sort_unstable();
    assert_eq!(addrs, expected);
}

#[test]
fn after_injection_and_multiple_injections_order() {
    // Two counters: one bumped before each STG, one after; plus a second
    // before-injection at the same site to check multi-injection support.
    const FNS: &str = r#"
.func bump(.reg .u64 %ctr)
{
    .reg .u32 %r<3>;
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%ctr], %r1;
    ret;
}
"#;
    const APP: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<3>;
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, 7;
    st.global.u32 [%rd1], %r1;
    exit;
}
"#;
    let addrs = Rc::new(RefCell::new((0u64, 0u64)));
    let a2 = addrs.clone();
    let tool = ClosureTool {
        init: Box::new(move |api| {
            api.load_tool_functions(FNS).unwrap();
            let before = api.driver().with_device(|d| d.alloc(8)).unwrap();
            let after = api.driver().with_device(|d| d.alloc(8)).unwrap();
            *a2.borrow_mut() = (before, after);
        }),
        launch_entry: {
            let addrs = addrs.clone();
            Box::new(move |api, func, _, _| {
                if api.is_instrumented(func) {
                    return;
                }
                let (before, after) = *addrs.borrow();
                for instr in api.get_instrs(func).unwrap() {
                    if instr.is_store() {
                        // Two before-injections and one after-injection.
                        api.insert_call(func, instr.idx, "bump", IPoint::Before).unwrap();
                        api.add_call_arg_imm64(func, instr.idx, before).unwrap();
                        api.insert_call(func, instr.idx, "bump", IPoint::Before).unwrap();
                        api.add_call_arg_imm64(func, instr.idx, before).unwrap();
                        api.insert_call(func, instr.idx, "bump", IPoint::After).unwrap();
                        api.add_call_arg_imm64(func, instr.idx, after).unwrap();
                    }
                }
            })
        },
    };
    let drv = Driver::new(DeviceSpec::test(Arch::Kepler));
    attach_tool(&drv, tool);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    let out = drv.mem_alloc(64).unwrap();
    drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();

    let (before, after) = *addrs.borrow();
    let mut b = [0u8; 4];
    drv.memcpy_dtoh(&mut b, before).unwrap();
    assert_eq!(u32::from_le_bytes(b), 64, "two before-injections × 32 threads");
    drv.memcpy_dtoh(&mut b, after).unwrap();
    assert_eq!(u32::from_le_bytes(b), 32, "one after-injection × 32 threads");
    // The store itself still happened.
    drv.memcpy_dtoh(&mut b, out).unwrap();
    assert_eq!(u32::from_le_bytes(b), 7);
}

#[test]
fn reset_instrumented_restores_native_behaviour() {
    let counter = Rc::new(RefCell::new(0u64));
    struct ResetTool {
        counter: Rc<RefCell<u64>>,
        counter_addr: u64,
        launches: u32,
    }
    impl NvbitTool for ResetTool {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            api.load_tool_functions(COUNT_FN).unwrap();
            self.counter_addr = api.driver().with_device(|d| d.alloc(8)).unwrap();
        }
        fn at_term(&mut self, api: &NvbitApi<'_>) {
            let mut b = [0u8; 8];
            api.driver().memcpy_dtoh(&mut b, self.counter_addr).unwrap();
            *self.counter.borrow_mut() = u64::from_le_bytes(b);
        }
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            if is_exit || cbid != CbId::LaunchKernel {
                return;
            }
            match self.launches {
                0 => {
                    for idx in 0..api.get_instrs(*func).unwrap().len() {
                        api.insert_call(*func, idx, "count_one", IPoint::Before).unwrap();
                        api.add_call_arg_guard_pred(*func, idx).unwrap();
                        api.add_call_arg_imm64(*func, idx, self.counter_addr).unwrap();
                    }
                }
                1 => api.reset_instrumented(*func).unwrap(),
                _ => {}
            }
            self.launches += 1;
        }
    }

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, ResetTool { counter: counter.clone(), counter_addr: 0, launches: 0 });
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", VECADD)).unwrap();
    let f = drv.module_get_function(&m, "vecadd").unwrap();
    let buf = drv.mem_alloc(1024).unwrap();
    let args = [KernelArg::Ptr(buf), KernelArg::Ptr(buf), KernelArg::Ptr(buf), KernelArg::U32(32)];
    let s0 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
    let s1 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
    let s2 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
    drv.shutdown();

    assert!(s0.cycles > s1.cycles, "first launch instrumented");
    assert_eq!(s1.cycles, s2.cycles, "post-reset launches run natively");
    let first_launch_count = *counter.borrow();
    assert!(first_launch_count > 0);
}

#[test]
fn kernels_with_device_function_calls_can_be_instrumented_throughout() {
    // Instrument both the kernel and its related (callee) function; the
    // paper's nvbit_get_related_funcs flow.
    const APP: &str = r#"
.func (.reg .u32 %out) triple(.reg .u32 %x)
{
    .reg .u32 %t<2>;
    add.u32 %t1, %x, %x;
    add.u32 %out, %t1, %x;
    ret;
}
.entry k(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    call (%r2), triple, (%r1);
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;
    let counter = Rc::new(RefCell::new(0u64));
    struct DeepTool {
        counter: Rc<RefCell<u64>>,
        counter_addr: u64,
        done: bool,
    }
    impl NvbitTool for DeepTool {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            api.load_tool_functions(COUNT_FN).unwrap();
            self.counter_addr = api.driver().with_device(|d| d.alloc(8)).unwrap();
        }
        fn at_term(&mut self, api: &NvbitApi<'_>) {
            let mut b = [0u8; 8];
            api.driver().memcpy_dtoh(&mut b, self.counter_addr).unwrap();
            *self.counter.borrow_mut() = u64::from_le_bytes(b);
        }
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            if is_exit || cbid != CbId::LaunchKernel || self.done {
                return;
            }
            self.done = true;
            // Kernel plus all related functions (the paper's pattern for
            // instrumenting entire call trees).
            let mut targets = vec![*func];
            targets.extend(api.get_related_funcs(*func).unwrap());
            for target in targets {
                for idx in 0..api.get_instrs(target).unwrap().len() {
                    api.insert_call(target, idx, "count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(target, idx).unwrap();
                    api.add_call_arg_imm64(target, idx, self.counter_addr).unwrap();
                }
                // Callees are not launchable; force immediate generation by
                // enabling them explicitly.
                api.enable_instrumented(target, true).unwrap();
            }
        }
    }

    let native = Driver::new(DeviceSpec::test(Arch::Volta));
    let nctx = native.ctx_create().unwrap();
    let nm = native.module_load(&nctx, FatBinary::from_ptx("app", APP)).unwrap();
    let nf = native.module_get_function(&nm, "k").unwrap();
    let nout = native.mem_alloc(128).unwrap();
    native.launch_kernel(&nf, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(nout)]).unwrap();
    let native_count = native.total_stats().thread_instructions;
    let mut expected = vec![0u8; 128];
    native.memcpy_dtoh(&mut expected, nout).unwrap();

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, DeepTool { counter: counter.clone(), counter_addr: 0, done: false });
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    let out = drv.mem_alloc(128).unwrap();
    drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
    let mut got = vec![0u8; 128];
    drv.memcpy_dtoh(&mut got, out).unwrap();
    drv.shutdown();

    assert_eq!(got, expected);
    assert_eq!(*counter.borrow(), native_count);
}

#[test]
fn overhead_report_attributes_all_six_components() {
    let counter = Rc::new(RefCell::new(0u64));
    let report = Rc::new(RefCell::new(None));
    struct OverheadTool {
        inner: Box<dyn NvbitTool>,
        report: Rc<RefCell<Option<nvbit::OverheadReport>>>,
    }
    impl NvbitTool for OverheadTool {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            self.inner.at_init(api);
        }
        fn at_term(&mut self, api: &NvbitApi<'_>) {
            *self.report.borrow_mut() = Some(api.overhead());
            self.inner.at_term(api);
        }
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            self.inner.at_cuda_event(api, is_exit, cbid, params);
        }
    }

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(
        &drv,
        OverheadTool { inner: Box::new(instr_count_tool(counter)), report: report.clone() },
    );
    run_vecadd(&drv, 100);
    drv.shutdown();

    let report = report.borrow().clone().unwrap();
    use nvbit::JitComponent as C;
    for c in [C::Retrieve, C::Disassemble, C::Convert, C::UserCode, C::Codegen, C::Swap] {
        assert!(report.total.of(c) > std::time::Duration::ZERO, "component {c:?} not attributed");
    }
    assert_eq!(report.per_function.len(), 1);
    assert!(report.per_function.contains_key("vecadd"));
}

#[test]
fn cbank_predval_and_sp_arguments_materialize_correctly() {
    // A tool function that records its three arguments into a buffer:
    // arg0 = a constant-bank value (the kernel's own `n` parameter),
    // arg1 = a predicate value, arg2 = the reconstructed stack pointer.
    const RECORD_FN: &str = r#"
.func rec3(.reg .u32 %cb, .reg .u32 %pv, .reg .u32 %sp, .reg .u64 %buf)
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, %laneid;
    setp.ne.u32 %p1, %r1, 0;
    @%p1 ret;
    st.global.u32 [%buf], %cb;
    st.global.u32 [%buf+4], %pv;
    st.global.u32 [%buf+8], %sp;
    ret;
}
"#;
    const APP: &str = r#"
.entry k(.param .u64 out, .param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    ld.param.u32 %r1, [n];
    setp.gt.u32 %p1, %r1, 10;
    st.global.u32 [%rd1+128], %r1;
    exit;
}
"#;
    let record = Rc::new(RefCell::new(0u64));
    let tool = ClosureTool {
        init: {
            let record = record.clone();
            Box::new(move |api| {
                api.load_tool_functions(RECORD_FN).unwrap();
                *record.borrow_mut() = api.driver().with_device(|d| d.alloc(64)).unwrap();
            })
        },
        launch_entry: {
            let record = record.clone();
            Box::new(move |api, func, _, _| {
                if api.is_instrumented(func) {
                    return;
                }
                // Find the store instruction and instrument it.
                let instrs = api.get_instrs(func).unwrap();
                let st = instrs.iter().find(|i| i.is_store()).unwrap();
                let idx = st.idx;
                api.insert_call(func, idx, "rec3", nvbit::IPoint::Before).unwrap();
                // The kernel's `n` parameter lives in constant bank 0 at the
                // ABI parameter base + 8 (after the u64 pointer).
                api.add_call_arg(func, idx, nvbit::Arg::CBank { bank: 0, offset: 0x168 }).unwrap();
                // P0 holds `n > 10` at the store (allocation puts %p1 in P0).
                api.add_call_arg(func, idx, nvbit::Arg::PredVal(0)).unwrap();
                // R1 is the stack pointer; the framework reconstructs the
                // pre-save value.
                api.add_call_arg(func, idx, nvbit::Arg::RegVal(1)).unwrap();
                api.add_call_arg_imm64(func, idx, *record.borrow()).unwrap();
            })
        },
    };

    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, tool);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    let out = drv.mem_alloc(256).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(1),
        Dim3::linear(32),
        &[KernelArg::Ptr(out), KernelArg::U32(42)],
    )
    .unwrap();

    let buf = *record.borrow();
    let mut b = vec![0u8; 12];
    drv.memcpy_dtoh(&mut b, buf).unwrap();
    let cb = u32::from_le_bytes(b[0..4].try_into().unwrap());
    let pv = u32::from_le_bytes(b[4..8].try_into().unwrap());
    let sp = u32::from_le_bytes(b[8..12].try_into().unwrap());
    assert_eq!(cb, 42, "constant-bank argument must read the launch parameter");
    assert_eq!(pv, 1, "predicate value of `42 > 10` must be true");
    // The stack pointer equals the thread's local-memory size (stacks grow
    // down from the top and the kernel itself pushed no frame).
    assert!(sp > 0 && sp % 8 == 0, "reconstructed SP {sp} looks wrong");
    drv.shutdown();
}

#[test]
fn instrumenting_ssy_and_sync_sites_preserves_divergence() {
    // Directly instrument only the reconvergence instructions of a
    // divergent kernel: SSY must be relocatable with its offset adjusted
    // and SYNC must still pop correctly from inside a trampoline.
    const APP: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra EVEN;
    mov.u32 %r3, 5;
    bra JOIN;
EVEN:
    mov.u32 %r3, 9;
JOIN:
    add.u32 %r3, %r3, %r1;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    exit;
}
"#;
    let run = |instrument: bool| -> Vec<u8> {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        if instrument {
            let counter = Rc::new(RefCell::new(0u64));
            let c2 = counter.clone();
            let tool = ClosureTool {
                init: Box::new(move |api| {
                    api.load_tool_functions(COUNT_FN).unwrap();
                    *c2.borrow_mut() = api.driver().with_device(|d| d.alloc(8)).unwrap();
                }),
                launch_entry: {
                    let counter = counter.clone();
                    Box::new(move |api, func, _, _| {
                        if api.is_instrumented(func) {
                            return;
                        }
                        for instr in api.get_instrs(func).unwrap() {
                            // Only control-flow machinery sites.
                            if matches!(
                                instr.cf_class(),
                                sass::op::CfClass::Ssy
                                    | sass::op::CfClass::Sync
                                    | sass::op::CfClass::RelBranch
                            ) {
                                api.insert_call(func, instr.idx, "count_one", IPoint::Before)
                                    .unwrap();
                                api.add_call_arg_guard_pred(func, instr.idx).unwrap();
                                api.add_call_arg_imm64(func, instr.idx, *counter.borrow()).unwrap();
                            }
                        }
                    })
                },
            };
            attach_tool(&drv, tool);
        }
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let out = drv.mem_alloc(128).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();
        let mut b = vec![0u8; 128];
        drv.memcpy_dtoh(&mut b, out).unwrap();
        drv.shutdown();
        b
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn pred_filter_skips_guard_false_lanes_and_is_cheaper() {
    // A kernel whose store is guarded so that only the first 4 threads
    // execute it: of the 4 launched warps, 3 are entirely guard-false.
    // With a pred-filtered injection those warps skip the save/call/restore
    // sequence wholesale: same count, fewer cycles. (Within a partially
    // active warp the save/restore still runs once per warp — the win
    // comes from fully predicated-off warps, as the paper's §7 notes.)
    const APP: &str = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    setp.lt.u32 %p1, %r1, 4;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    @%p1 st.global.u32 [%rd3], %r1;
    exit;
}
"#;
    let run = |filtered: bool| -> (u64, u64, Vec<u8>) {
        let counter = Rc::new(RefCell::new(0u64));
        let c2 = counter.clone();
        let tool = ClosureTool {
            init: Box::new(move |api| {
                api.load_tool_functions(COUNT_FN).unwrap();
                *c2.borrow_mut() = api.driver().with_device(|d| d.alloc(8)).unwrap();
            }),
            launch_entry: {
                let counter = counter.clone();
                Box::new(move |api, func, _, _| {
                    if api.is_instrumented(func) {
                        return;
                    }
                    let instrs = api.get_instrs(func).unwrap();
                    let st = instrs.iter().find(|i| i.is_store()).unwrap();
                    api.insert_call(func, st.idx, "count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(func, st.idx).unwrap();
                    api.add_call_arg_imm64(func, st.idx, *counter.borrow()).unwrap();
                    if filtered {
                        api.set_pred_filter(func, st.idx).unwrap();
                    }
                })
            },
        };
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let out = drv.mem_alloc(256).unwrap();
        let stats = drv
            .launch_kernel(&f, Dim3::linear(1), Dim3::linear(128), &[KernelArg::Ptr(out)])
            .unwrap();
        let mut b = [0u8; 8];
        let addr = *counter.borrow();
        drv.memcpy_dtoh(&mut b, addr).unwrap();
        let mut output = vec![0u8; 256];
        drv.memcpy_dtoh(&mut output, out).unwrap();
        drv.shutdown();
        (u64::from_le_bytes(b), stats.cycles, output)
    };

    let (count_plain, cycles_plain, out_plain) = run(false);
    let (count_filtered, cycles_filtered, out_filtered) = run(true);
    // Both count exactly the 4 executing lanes (the unfiltered version via
    // the tool's own guard-predicate early return; the filtered one because
    // the other lanes never enter).
    assert_eq!(count_plain, 4);
    assert_eq!(count_filtered, 4);
    assert_eq!(out_plain, out_filtered, "semantics preserved");
    // Skipping 28 lanes' save/restore/early-return work must be visible.
    assert!(
        cycles_filtered < cycles_plain,
        "pred filter should reduce cost: {cycles_filtered} vs {cycles_plain}"
    );
}

#[test]
fn tool_functions_may_not_use_shared_memory() {
    // Paper §7: programs commonly use all of the shared memory capacity,
    // so instrumentation functions are forbidden from touching it.
    const BAD_FN: &str = r#"
.func uses_shared(.reg .u32 %x)
{
    .shared .align 4 .b8 stash[64];
    .reg .u32 %r<3>;
    mov.u32 %r1, stash;
    st.shared.u32 [%r1], %x;
    ret;
}
"#;
    struct BadTool;
    impl NvbitTool for BadTool {
        fn at_init(&mut self, api: &NvbitApi<'_>) {
            let e = api.load_tool_functions(BAD_FN);
            assert!(
                matches!(e, Err(nvbit::NvbitError::BadRequest(_))),
                "shared-memory tool functions must be rejected: {e:?}"
            );
        }
        fn at_cuda_event(
            &mut self,
            _api: &NvbitApi<'_>,
            _is_exit: bool,
            _cbid: CbId,
            _params: &CbParams<'_>,
        ) {
        }
    }
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, BadTool);
    drv.shutdown();
}
