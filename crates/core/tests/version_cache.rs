//! Versioned code-cache behaviour that needs no observability counters:
//! parallel batch instrumentation must produce bit-identical images to the
//! serial path, `enable_instrumented` must not conjure phantom cache
//! entries, and `reset_instrumented` must clear the local-memory override
//! regardless of which version was installed at the time.

use cuda::{CbId, CbParams, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, IPoint, NvbitApi, NvbitTool};
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;

const COUNT_FN: &str = r#"
.func count_one(.reg .u32 %pred, .reg .u64 %ctr)
{
    .reg .u32 %r<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%ctr], %r1;
    ret;
}
"#;

/// A module of `n` distinct straight-line kernels `k0..k{n-1}`.
fn multi_kernel_ptx(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!(
            r#"
.entry k{i}(.param .u64 out)
{{
    .reg .u32 %r<8>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    add.u32 %r2, %r1, {add};
    mul.lo.u32 %r3, %r2, 3;
    add.u32 %r4, %r3, 7;
    and.b32 %r5, %r4, 1023;
    add.u32 %r6, %r5, %r2;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r6;
    exit;
}}
"#,
            add = i + 1,
        ));
    }
    src
}

/// A tool that, at the first launch, instruments EVERY kernel of the
/// launched kernel's module (batch path) with per-instruction counting.
struct BatchTool {
    workers: usize,
    counter_addr: Rc<RefCell<u64>>,
    done: bool,
}

impl NvbitTool for BatchTool {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.set_jit_workers(self.workers);
        api.load_tool_functions(COUNT_FN).unwrap();
        *self.counter_addr.borrow_mut() = api.driver().with_device(|d| d.alloc(8)).unwrap();
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if is_exit || cbid != CbId::LaunchKernel || self.done {
            return;
        }
        self.done = true;
        let addr = *self.counter_addr.borrow();
        let module = api.driver().function_info(*func).unwrap().module;
        for k in api.driver().module_kernels(&module).unwrap() {
            for idx in 0..api.get_instrs(k).unwrap().len() {
                api.insert_call(k, idx, "count_one", IPoint::Before).unwrap();
                api.add_call_arg_guard_pred(k, idx).unwrap();
                api.add_call_arg_imm64(k, idx, addr).unwrap();
            }
        }
    }
}

/// Runs an 6-kernel module through batch instrumentation with the given
/// worker count; returns (per-kernel installed code bytes, app output,
/// counter value).
fn run_batch(workers: usize) -> (Vec<Vec<u8>>, Vec<u8>, u64) {
    const N: usize = 6;
    let counter_addr = Rc::new(RefCell::new(0u64));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, BatchTool { workers, counter_addr: counter_addr.clone(), done: false });
    let ctx = drv.ctx_create().unwrap();
    let src = multi_kernel_ptx(N);
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", &src)).unwrap();
    let out = drv.mem_alloc(128).unwrap();
    let f0 = drv.module_get_function(&m, "k0").unwrap();
    drv.launch_kernel(&f0, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)]).unwrap();

    // Every kernel of the module — launched or not — must now carry its
    // installed instrumented image.
    let images: Vec<Vec<u8>> =
        drv.module_kernels(&m).unwrap().iter().map(|k| drv.read_code(*k).unwrap()).collect();
    let mut output = vec![0u8; 128];
    drv.memcpy_dtoh(&mut output, out).unwrap();
    let mut b = [0u8; 8];
    drv.memcpy_dtoh(&mut b, *counter_addr.borrow()).unwrap();
    drv.shutdown();
    (images, output, u64::from_le_bytes(b))
}

/// Paper §6.2 determinism contract: fanning batch instrumentation out
/// across worker threads must yield byte-for-byte the same installed
/// images (trampoline addresses included) as the serial path.
#[test]
fn parallel_batch_is_bit_identical_to_serial() {
    let (serial_imgs, serial_out, serial_count) = run_batch(1);
    let (par_imgs, par_out, par_count) = run_batch(4);
    assert_eq!(serial_imgs.len(), 6);
    for (i, (s, p)) in serial_imgs.iter().zip(&par_imgs).enumerate() {
        assert_eq!(s, p, "kernel k{i}: parallel image differs from serial");
    }
    assert_eq!(serial_out, par_out, "application output must match");
    assert_eq!(serial_count, par_count, "tool counters must match");
    assert!(serial_count > 0, "instrumentation must actually have run");
}

/// `enable_instrumented` on a function with no spec and no image is a
/// no-op: it must succeed, create no phantom cache entry, and leave the
/// launch at native cost.
#[test]
fn enable_instrumented_without_spec_is_a_noop() {
    struct NoopTool {
        checked: Rc<RefCell<bool>>,
    }
    impl NvbitTool for NoopTool {
        fn at_cuda_event(
            &mut self,
            api: &NvbitApi<'_>,
            is_exit: bool,
            cbid: CbId,
            params: &CbParams<'_>,
        ) {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            if is_exit || cbid != CbId::LaunchKernel {
                return;
            }
            api.enable_instrumented(*func, true).unwrap();
            api.enable_instrumented(*func, false).unwrap();
            api.enable_instrumented(*func, true).unwrap();
            assert!(!api.is_instrumented(*func), "no phantom entry may be created");
            *self.checked.borrow_mut() = true;
        }
    }

    let run = |with_tool: bool| -> u64 {
        let checked = Rc::new(RefCell::new(false));
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        if with_tool {
            attach_tool(&drv, NoopTool { checked: checked.clone() });
        }
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", multi_kernel_ptx(1))).unwrap();
        let f = drv.module_get_function(&m, "k0").unwrap();
        let out = drv.mem_alloc(128).unwrap();
        let stats = drv
            .launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(out)])
            .unwrap();
        drv.shutdown();
        assert_eq!(*checked.borrow(), with_tool);
        stats.cycles
    };
    assert_eq!(run(false), run(true), "a no-op enable must not change launch cost");
}

/// `reset_instrumented` must restore native state — including the
/// local-memory override — whether the instrumented version was installed
/// (enabled) or parked (disabled) at the time of the reset.
#[test]
fn reset_clears_local_override_from_both_versions() {
    for disable_first in [false, true] {
        struct ResetTool {
            disable_first: bool,
            launches: u32,
        }
        impl NvbitTool for ResetTool {
            fn at_init(&mut self, api: &NvbitApi<'_>) {
                api.load_tool_functions(COUNT_FN).unwrap();
            }
            fn at_cuda_event(
                &mut self,
                api: &NvbitApi<'_>,
                is_exit: bool,
                cbid: CbId,
                params: &CbParams<'_>,
            ) {
                let CbParams::LaunchKernel { func, .. } = params else { return };
                if is_exit || cbid != CbId::LaunchKernel {
                    return;
                }
                match self.launches {
                    0 => {
                        let ctr = api.driver().with_device(|d| d.alloc(8)).unwrap();
                        for idx in 0..api.get_instrs(*func).unwrap().len() {
                            api.insert_call(*func, idx, "count_one", IPoint::Before).unwrap();
                            api.add_call_arg_guard_pred(*func, idx).unwrap();
                            api.add_call_arg_imm64(*func, idx, ctr).unwrap();
                        }
                    }
                    1 => {
                        if self.disable_first {
                            api.enable_instrumented(*func, false).unwrap();
                        }
                        api.reset_instrumented(*func).unwrap();
                        assert!(!api.is_instrumented(*func), "reset must wipe the entry");
                        let info = api.driver().function_info(*func).unwrap();
                        assert_eq!(
                            info.local_override, 0,
                            "reset must clear the local override (disable_first={})",
                            self.disable_first
                        );
                    }
                    _ => {}
                }
                self.launches += 1;
            }
        }

        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        attach_tool(&drv, ResetTool { disable_first, launches: 0 });
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", multi_kernel_ptx(1))).unwrap();
        let f = drv.module_get_function(&m, "k0").unwrap();
        let out = drv.mem_alloc(128).unwrap();
        let args = [KernelArg::Ptr(out)];
        let s0 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
        let s1 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
        let s2 = drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &args).unwrap();
        drv.shutdown();

        assert!(s0.cycles > s1.cycles, "first launch instrumented (disable_first={disable_first})");
        assert_eq!(s1.cycles, s2.cycles, "post-reset launches are native");
    }
}
