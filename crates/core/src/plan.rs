//! The instrumentation plan IR: the typed middle layer between the raw
//! injection list a tool records ([`FuncSpec`]) and the code generator.
//!
//! The spec is *what the tool asked for*; the plan is *what will be
//! emitted*. [`build`] validates the request, groups injection sites by
//! `sass::cfg` basic block, and runs two optimization passes over the
//! result — the callback-coalescing and inlining levers every mature DBI
//! framework applies (Pin, DynamoRIO; see the DBI survey), mapped onto the
//! paper's Fig. 9 overhead breakdown:
//!
//! 1. **After-point lowering** (paper Fig. 4 — the trampoline's
//!    post-original slot): an `IPoint::After` injection at a mid-block
//!    instruction *i* is observationally identical to an `IPoint::Before`
//!    injection at *i + 1* — nothing executes between "after *i*" and
//!    "before *i + 1*" on the fall-through edge, and a mid-block
//!    instruction always falls through (only block terminators transfer
//!    control; predication gates effects, not issue). The pass rewrites
//!    such coalesce-marked injections to the block-exit `Before` position
//!    so the coalescing passes can merge them; After-points on block
//!    terminators are never moved (that would cross a taken branch).
//! 2. **Block coalescing** (opt-in per injection via
//!    [`crate::spec::Injection::coalesce`]): injections of the same tool
//!    function with identical *block-invariant* arguments (immediates,
//!    constant-bank reads) and no predicate filter are merged into a single
//!    call per basic block carrying a multiplicity argument. This is exact,
//!    not approximate: the warp's active mask cannot change inside a basic
//!    block (control flow only occurs at block ends, and predication does
//!    not alter the mask), so one call with multiplicity *N* observes the
//!    same active lanes as *N* calls with multiplicity 1.
//! 3. **Region coalescing**: per-block merged calls are hoisted further,
//!    into one call per [`sass::Dom`] coalescing region — the dominator/
//!    post-dominator/cycle-equivalence classes whose blocks provably
//!    execute exactly as often, per lane, as the class head (see
//!    [`sass::dom`] for the exactness argument). Irreducible control flow
//!    makes every block its own region, so this pass degrades to a no-op
//!    rather than to an approximation.
//! 4. **Leaf inlining**: tool functions classified as inlinable leaves
//!    (small, call-free, no `nvbit.readreg`/`writereg` use — see
//!    [`crate::codegen::ToolFn::inlinable`]) have their bodies spliced
//!    directly into the trampoline, eliminating the CALL/RET pair.
//!
//! Every coalesce-marked injection follows the **multiplicity protocol**:
//! the plan appends one trailing `Imm32` argument — 1 when the call stands
//! alone, *N* when it represents *N* merged sites — so the tool function's
//! signature (and its output) is identical whether or not the passes run.

use crate::codegen::ToolFn;
use crate::spec::{Arg, FuncSpec, IPoint};
use crate::{NvbitError, Result};
use sass::cfg::{block_of, BasicBlock};
use sass::{Dataflow, Dom};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Which optimization passes [`build`] runs. Part of the image-cache key:
/// different options produce different trampolines for the same spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanOpts {
    /// Run the basic-block coalescing pass over coalesce-marked injections.
    pub coalesce: bool,
    /// Splice inlinable leaf tool functions into the trampoline instead of
    /// calling them.
    pub inline: bool,
    /// Hoist per-block merged calls into one call per dominator region
    /// (needs `coalesce` groups to be meaningful, but runs independently).
    pub region_coalesce: bool,
    /// Lower coalesce-marked `IPoint::After` injections at mid-block sites
    /// to the equivalent `Before` position on the fall-through edge.
    pub after_lower: bool,
    /// Gate each inline splice with the register-pressure cost model
    /// ([`sass::pressure::splice_verdict`]): splices whose body write
    /// window would raise the site's save tier are declined and stay
    /// out-of-line calls. Without the gate, spliced guarded-diamond bodies
    /// are charged the conservative whole-function tier.
    pub pressure: bool,
    /// Price save-tier growth on the SM occupancy curve instead of
    /// declining it outright: with a model and the launch's block shape
    /// supplied, a splice whose raised tier keeps the same blocks/SM
    /// (a flat step of the curve) is accepted, and only splices that
    /// would drop resident blocks are declined. `None` keeps the binary
    /// tier-only gate. Only consulted when `pressure` is on.
    pub occupancy: Option<sass::occupancy::OccupancyCfg>,
}

impl Default for PlanOpts {
    fn default() -> Self {
        PlanOpts {
            coalesce: true,
            inline: true,
            region_coalesce: true,
            after_lower: true,
            pressure: true,
            occupancy: None,
        }
    }
}

impl PlanOpts {
    /// Every pass disabled — the naive one-call-per-site pipeline.
    pub fn naive() -> Self {
        PlanOpts {
            coalesce: false,
            inline: false,
            region_coalesce: false,
            after_lower: false,
            pressure: false,
            occupancy: None,
        }
    }
}

/// One call the code generator will emit at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedCall {
    /// Tool device function to invoke.
    pub func: String,
    /// Before or after the original instruction.
    pub ipoint: IPoint,
    /// Finalized positional arguments. For coalesce-marked calls this
    /// already includes the trailing `Imm32` multiplicity argument.
    pub args: Vec<Arg>,
    /// Wrap the call in the guard-predicate diamond.
    pub pred_filter: bool,
    /// The call follows the multiplicity protocol.
    pub coalesce: bool,
    /// Number of original injection sites this call represents (≥ 1; > 1
    /// only after the coalescing pass merged a group).
    pub multiplicity: u32,
    /// The original instruction indices this call stands for, sorted. A
    /// lone call's group is just its own site.
    pub group: Vec<usize>,
    /// The subset of `group` whose injections were `IPoint::After` points
    /// lowered by the after-lowering pass: each such origin *o* is
    /// represented at the `Before` slot of site *o + 1*. Sorted; empty when
    /// no member was lowered.
    pub lowered: Vec<usize>,
    /// Splice the tool function's body instead of emitting a `JCAL`.
    pub inline: bool,
    /// `(tier_before, tier_after)` claimed by the pressure verdict for an
    /// accepted splice — the occupancy claim the verifier re-prices from
    /// original bytes. `None` when the splice was not pressure-vetted.
    pub occ: Option<(u16, u16)>,
}

/// Per-pass accounting reported through [`crate::codegen::InstrumentedImage`] and
/// the obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Injections the tool requested.
    pub requested_calls: u64,
    /// Calls the plan actually emits after coalescing.
    pub emitted_calls: u64,
    /// Requested calls eliminated by the coalescing pass
    /// (`requested_calls − emitted_calls`).
    pub coalesced_away: u64,
    /// Merged groups with more than one member.
    pub coalesced_groups: u64,
    /// Instrumentation sites left with no calls and dropped entirely (the
    /// original instruction runs in place, unpatched).
    pub sites_dropped: u64,
    /// Emitted calls marked for inline splicing.
    pub inlined_calls: u64,
    /// `IPoint::After` injections lowered to the fall-through `Before`
    /// slot by the after-lowering pass.
    pub after_lowered: u64,
    /// Groups merged by the region-coalescing pass (beyond what block
    /// coalescing already merged).
    pub region_groups: u64,
    /// Whether a basic-block partition was available (coalescing needs
    /// one; indirect control flow defeats it — the ICF exception).
    pub cfg_available: bool,
    /// Groups merged over the conservative *partial* partition recovered
    /// under the ICF exception ([`sass::cfg::partial_blocks`]) — merges
    /// the naive fallback would have lost.
    pub icf_recovered: u64,
    /// Inline candidates the pressure verdict accepted (only counted when
    /// [`PlanOpts::pressure`] is on).
    pub inline_accepted: u64,
    /// Inline candidates the pressure verdict declined: the body's write
    /// window would have raised the site's save tier, so the call stays
    /// out of line.
    pub inline_declined: u64,
    /// Tier-raising splices the occupancy gate accepted because the growth
    /// stays on a flat step of the occupancy curve (only counted when
    /// [`PlanOpts::occupancy`] is set — the tier-only gate would have
    /// declined every one of these).
    pub occ_accepted: u64,
    /// Tier-raising splices the occupancy gate declined because they would
    /// drop resident blocks/SM at the configured block shape.
    pub occ_declined: u64,
}

/// The validated, optimized instrumentation plan for one function.
#[derive(Debug, Clone, Default)]
pub struct InstrumentationPlan {
    /// Planned calls per instruction index. Sites merged away by
    /// coalescing are absent: their original instructions run in place.
    pub sites: BTreeMap<usize, Vec<PlannedCall>>,
    /// Instructions whose original operation is removed.
    pub removed: HashSet<usize>,
    /// What the passes did.
    pub stats: PlanStats,
    /// The options the plan was built with.
    pub opts: PlanOpts,
}

/// True if the argument has the same value at every site of a basic block
/// (it depends on nothing per-dynamic-instance: no guard predicate, no
/// register or predicate value).
fn block_invariant(arg: &Arg) -> bool {
    matches!(arg, Arg::Imm32(_) | Arg::Imm64(_) | Arg::CBank { .. })
}

/// True if the planned call is eligible for the coalescing passes. The
/// call already carries the trailing multiplicity argument (`coalesce`
/// implies it), so only the explicit arguments must be block-invariant.
fn mergeable(call: &PlannedCall) -> bool {
    call.coalesce
        && !call.pred_filter
        && call.ipoint == IPoint::Before
        && explicit_args(call).iter().all(block_invariant)
}

/// The call's arguments minus the trailing multiplicity argument.
fn explicit_args(call: &PlannedCall) -> &[Arg] {
    debug_assert!(call.coalesce);
    &call.args[..call.args.len() - 1]
}

/// The static analyses [`build`] consumes. All optional: each pass
/// degrades gracefully as analyses drop out (indirect control flow,
/// irreducible graphs, a disabled dataflow solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct Analyses<'a> {
    /// Full basic-block partition, when static CFG recovery succeeded.
    pub blocks: Option<&'a [BasicBlock]>,
    /// Conservative partial partition recovered under the ICF exception
    /// ([`sass::cfg::partial_blocks`]); consulted only when `blocks` is
    /// `None`. Enables block coalescing (never region coalescing).
    pub partial: Option<&'a [BasicBlock]>,
    /// Dominator analysis over `blocks`, for region coalescing.
    pub dom: Option<&'a Dom>,
    /// Liveness analysis over the body, for the pressure verdict.
    pub dataflow: Option<&'a Dataflow>,
}

impl<'a> Analyses<'a> {
    /// No analyses available — the naive per-site pipeline.
    pub fn none() -> Self {
        Analyses::default()
    }

    /// Basic-block partition only.
    pub fn with_blocks(blocks: &'a [BasicBlock]) -> Self {
        Analyses { blocks: Some(blocks), ..Analyses::default() }
    }

    /// Basic-block partition plus dominator analysis.
    pub fn with_dom(blocks: &'a [BasicBlock], dom: &'a Dom) -> Self {
        Analyses { blocks: Some(blocks), dom: Some(dom), ..Analyses::default() }
    }
}

/// One past the highest ABI register the call scaffold writes while
/// materializing `args` — mirrors the slot walk of the code generator's
/// `emit_call` (arguments from R4 up, 64-bit pairs even-aligned).
fn scaffold_window(args: &[Arg]) -> u8 {
    let mut slot: u8 = 4;
    for arg in args {
        if arg.slots() == 2 && slot % 2 == 1 {
            slot += 1;
        }
        slot = slot.saturating_add(arg.slots());
    }
    slot
}

/// The largest saved slot any argument reads back from the frame.
fn arg_read_back(args: &[Arg]) -> u16 {
    args.iter()
        .map(|a| u16::try_from(crate::codegen::arg_demand(a)).unwrap_or(u16::MAX))
        .max()
        .unwrap_or(0)
}

/// Builds the plan: validates the spec against the function body and the
/// loaded tool functions, then runs the passes enabled in `opts`.
///
/// `analyses` carries the optional static analyses: coalescing needs the
/// block partition (falling back to the partial partition under the ICF
/// exception, with [`PlanStats::cfg_available`] and
/// [`PlanStats::icf_recovered`] recording what happened), region
/// coalescing additionally needs the dominator analysis, and the pressure
/// verdict needs the dataflow solution (without it, every eligible splice
/// is accepted, as before).
///
/// # Errors
///
/// [`NvbitError::BadInstrIndex`] for sites or removals outside the body,
/// [`NvbitError::UnknownToolFunction`] for unregistered injections.
pub fn build(
    spec: &FuncSpec,
    body_len: usize,
    analyses: Analyses<'_>,
    tool_fns: &HashMap<String, ToolFn>,
    opts: PlanOpts,
) -> Result<InstrumentationPlan> {
    let Analyses { blocks, partial, dom, dataflow } = analyses;
    // Validation — lifted here from the code generator, which now consumes
    // an already-validated plan.
    for (&idx, injections) in &spec.sites {
        if idx >= body_len {
            return Err(NvbitError::BadInstrIndex { index: idx, len: body_len });
        }
        for inj in injections {
            if !tool_fns.contains_key(&inj.func) {
                return Err(NvbitError::UnknownToolFunction(inj.func.clone()));
            }
        }
    }
    for &idx in &spec.removed {
        if idx >= body_len {
            return Err(NvbitError::BadInstrIndex { index: idx, len: body_len });
        }
    }

    let mut stats = PlanStats { cfg_available: blocks.is_some(), ..PlanStats::default() };

    // Lower every injection to a planned call (multiplicity 1). The
    // multiplicity protocol appends the trailing argument *now*, so naive
    // and coalesced plans present identical tool signatures.
    let mut sites: BTreeMap<usize, Vec<PlannedCall>> = BTreeMap::new();
    for (&idx, injections) in &spec.sites {
        let calls = sites.entry(idx).or_default();
        for inj in injections {
            stats.requested_calls += 1;
            let mut args = inj.args.clone();
            if inj.coalesce {
                args.push(Arg::Imm32(1));
            }
            calls.push(PlannedCall {
                func: inj.func.clone(),
                ipoint: inj.ipoint,
                args,
                pred_filter: inj.pred_filter,
                coalesce: inj.coalesce,
                multiplicity: 1,
                group: vec![idx],
                lowered: Vec::new(),
                inline: false,
                occ: None,
            });
        }
    }

    // Pass 1: after-point lowering (must precede coalescing so the lowered
    // calls participate in it).
    if opts.after_lower {
        if let Some(blocks) = blocks {
            after_lower_pass(&mut sites, blocks, &mut stats);
        }
    }

    // Pass 2: block coalescing — merge within each basic block. Under the
    // ICF exception the partial partition still bounds runs of straight-
    // line code between statically known leaders, so per-block merging
    // applies there too; `icf_recovered` counts what the naive fallback
    // would have lost.
    if opts.coalesce {
        if let Some(blocks) = blocks {
            stats.coalesced_groups += merge_calls(&mut sites, &|site| block_of(blocks, site));
        } else if let Some(partial) = partial {
            let recovered = merge_calls(&mut sites, &|site| block_of(partial, site));
            stats.coalesced_groups += recovered;
            stats.icf_recovered += recovered;
        }
    }

    // Pass 3: region coalescing — merge across control-equivalent,
    // cycle-equivalent blocks. Identity regions under irreducible control
    // flow make this a no-op, so skip the walk entirely.
    if opts.region_coalesce {
        if let (Some(blocks), Some(dom)) = (blocks, dom) {
            if !dom.irreducible() {
                stats.region_groups += merge_calls(&mut sites, &|site| {
                    block_of(blocks, site).map(|b| dom.region_head(b))
                });
            }
        }
    }

    // Drop sites whose calls were all merged or lowered away. This is safe
    // even for sites also marked removed: the generator NOPs
    // removed-but-callless instructions in place, with no trampoline
    // needed.
    let empty: Vec<usize> =
        sites.iter().filter(|(_, calls)| calls.is_empty()).map(|(&idx, _)| idx).collect();
    stats.sites_dropped += empty.len() as u64;
    for idx in empty {
        sites.remove(&idx);
    }

    // Pass 4: inline splicing, gated per call by the pressure verdict when
    // the cost model is enabled and the dataflow solution is available.
    for (&idx, calls) in sites.iter_mut() {
        for call in calls.iter_mut() {
            stats.emitted_calls += 1;
            if !opts.inline || !tool_fns[&call.func].inlinable {
                continue;
            }
            if opts.pressure {
                let tf = &tool_fns[&call.func];
                if let (Some(df), Some(ceiling)) = (dataflow, tf.write_ceiling) {
                    let site = sass::pressure::SpliceSite {
                        index: idx,
                        scaffold_window: scaffold_window(&call.args),
                        body_window: ceiling,
                        arg_demand: arg_read_back(&call.args),
                    };
                    let verdict =
                        sass::pressure::splice_verdict(df, &site, opts.occupancy.as_ref());
                    match verdict.rule {
                        sass::pressure::VerdictRule::OccupancyFlat => stats.occ_accepted += 1,
                        sass::pressure::VerdictRule::OccupancyDrop => stats.occ_declined += 1,
                        _ => {}
                    }
                    if !verdict.accept {
                        stats.inline_declined += 1;
                        continue;
                    }
                    call.occ = Some((verdict.tier_before, verdict.tier_after));
                }
                stats.inline_accepted += 1;
            }
            call.inline = true;
            stats.inlined_calls += 1;
        }
    }
    stats.coalesced_away = stats.requested_calls - stats.emitted_calls;

    Ok(InstrumentationPlan { sites, removed: spec.removed.clone(), stats, opts })
}

/// Lowers eligible `IPoint::After` calls at mid-block sites to the
/// `Before` slot of the next instruction. Eligible means coalesce-marked,
/// no predicate filter, block-invariant explicit arguments, and the next
/// instruction lies in the same basic block (so the move never crosses a
/// taken branch — a mid-block instruction always falls through, and
/// nothing executes between "after *i*" and "before *i + 1*").
fn after_lower_pass(
    sites: &mut BTreeMap<usize, Vec<PlannedCall>>,
    blocks: &[BasicBlock],
    stats: &mut PlanStats,
) {
    // Collect (site → positions of calls to lower) against the pre-pass
    // lists, then apply in descending site order: processing site *s*
    // inserts into *s + 1*, whose own removals have already been applied.
    let mut moves: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (&site, calls) in sites.iter() {
        if block_of(blocks, site + 1) != block_of(blocks, site) {
            continue;
        }
        for (pos, call) in calls.iter().enumerate() {
            let eligible = call.coalesce
                && !call.pred_filter
                && call.ipoint == IPoint::After
                && explicit_args(call).iter().all(block_invariant);
            if eligible {
                moves.entry(site).or_default().push(pos);
            }
        }
    }

    for (&site, positions) in moves.iter().rev() {
        let calls = sites.get_mut(&site).expect("site with pending moves exists");
        let mut moved: Vec<PlannedCall> = Vec::with_capacity(positions.len());
        for &pos in positions.iter().rev() {
            moved.push(calls.remove(pos));
        }
        moved.reverse();
        let dst = sites.entry(site + 1).or_default();
        for (at, mut call) in moved.into_iter().enumerate() {
            call.ipoint = IPoint::Before;
            call.lowered = call.group.clone();
            stats.after_lowered += 1;
            // Front-inserted: the lowered call conceptually precedes the
            // target site's own Before calls on the timeline.
            dst.insert(at, call);
        }
    }
}

/// Merges mergeable calls whose sites share an equivalence class, as
/// defined by `class_of` (basic block for the block pass, dominator-region
/// head for the region pass). Returns the number of groups merged.
///
/// The representative is the member with the lowest anchor site
/// (`group.first()`); it keeps its placement, accumulates the members'
/// groups/lowered sets and their summed multiplicity, and the others are
/// dropped. Two calls covering a common origin site never merge (each
/// origin is represented at most once per group), which keeps `group`
/// strictly ascending.
fn merge_calls(
    sites: &mut BTreeMap<usize, Vec<PlannedCall>>,
    class_of: &dyn Fn(usize) -> Option<usize>,
) -> u64 {
    // (class, func, explicit args) → member (site, position) list plus the
    // origin sites already claimed. BTreeMap keeps grouping deterministic;
    // ordering between identical block-invariant calls has no semantics.
    type GroupKey = (usize, String, Vec<Arg>);
    type Members = (Vec<(usize, usize)>, BTreeSet<usize>);
    let mut groups: BTreeMap<GroupKey, Members> = BTreeMap::new();
    for (&site, calls) in sites.iter() {
        let Some(class) = class_of(site) else { continue };
        for (pos, call) in calls.iter().enumerate() {
            if !mergeable(call) {
                continue;
            }
            let key = (class, call.func.clone(), explicit_args(call).to_vec());
            let (members, origins) = groups.entry(key).or_default();
            if call.group.iter().any(|o| origins.contains(o)) {
                continue; // overlapping origin — leave this call standalone
            }
            origins.extend(call.group.iter().copied());
            members.push((site, pos));
        }
    }

    let mut merged_groups = 0u64;
    // Positions to drop per site, applied descending after all rewrites.
    let mut drops: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (_, (members, _)) in groups {
        if members.len() < 2 {
            continue;
        }
        // Representative: lowest anchor (minimum first origin). Origins are
        // disjoint across members, so the minimum is unique.
        let rep = members
            .iter()
            .copied()
            .min_by_key(|&(site, pos)| sites[&site][pos].group[0])
            .expect("non-empty group");
        let mut group: Vec<usize> = Vec::new();
        let mut lowered: Vec<usize> = Vec::new();
        let mut mult = 0u64;
        for &(site, pos) in &members {
            let call = &sites[&site][pos];
            group.extend(call.group.iter().copied());
            lowered.extend(call.lowered.iter().copied());
            mult += u64::from(call.multiplicity);
            if (site, pos) != rep {
                drops.entry(site).or_default().push(pos);
            }
        }
        group.sort_unstable();
        lowered.sort_unstable();
        let call = &mut sites.get_mut(&rep.0).expect("representative site exists")[rep.1];
        call.multiplicity = mult as u32;
        *call.args.last_mut().expect("multiplicity arg present") = Arg::Imm32(mult as i32);
        call.group = group;
        call.lowered = lowered;
        merged_groups += 1;
    }

    for (&site, positions) in drops.iter_mut() {
        positions.sort_unstable();
        let calls = sites.get_mut(&site).expect("dropped site exists");
        for &pos in positions.iter().rev() {
            calls.remove(pos);
        }
    }
    merged_groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::{asm::assemble_arch, Arch, Instruction};

    const BODY: &str = "\
    S2R R0, SR_TID.X ;
    ISETP.GE.S32 P0, R0, 0x10 ;
@P0 BRA skip ;
    IADD R1, R0, 0x1 ;
    STG [R2], R1 ;
skip:
    EXIT ;
";

    fn body_blocks() -> (usize, Vec<BasicBlock>) {
        let prog = assemble_arch(BODY, Arch::Volta).unwrap();
        let blocks = sass::cfg::basic_blocks(&prog, Arch::Volta).unwrap();
        (prog.len(), blocks)
    }

    fn body_dom(src: &str) -> (Vec<Instruction>, Vec<BasicBlock>, Dom) {
        let prog = assemble_arch(src, Arch::Volta).unwrap();
        let blocks = sass::cfg::basic_blocks(&prog, Arch::Volta).unwrap();
        let dom = Dom::analyze(&prog, &blocks, Arch::Volta);
        (prog, blocks, dom)
    }

    fn fns(inlinable: bool) -> HashMap<String, ToolFn> {
        let mut m = HashMap::new();
        let mut f = ToolFn::opaque(0x8000, 8, 0, false);
        f.inlinable = inlinable;
        m.insert("f".to_string(), f);
        m
    }

    fn count_spec(n: usize, ctr: u64) -> FuncSpec {
        let mut s = FuncSpec::default();
        for idx in 0..n {
            s.insert_call(idx, "f", IPoint::Before);
            s.add_arg(idx, Arg::Imm64(ctr));
            s.set_coalesce(idx);
        }
        s
    }

    #[test]
    fn coalescing_merges_per_block_and_appends_multiplicity() {
        let (n, blocks) = body_blocks();
        let spec = count_spec(n, 0xdead);
        let plan = build(
            &spec,
            n,
            Analyses::with_blocks(&blocks),
            &fns(false),
            PlanOpts { coalesce: true, ..PlanOpts::naive() },
        )
        .unwrap();
        // Blocks are 0..3, 3..5, 5..6 → one call each, at the block heads.
        let idxs: Vec<usize> = plan.sites.keys().copied().collect();
        assert_eq!(idxs, vec![0, 3, 5]);
        let c0 = &plan.sites[&0][0];
        assert_eq!(c0.multiplicity, 3);
        assert_eq!(c0.group, vec![0, 1, 2]);
        assert_eq!(c0.args, vec![Arg::Imm64(0xdead), Arg::Imm32(3)]);
        assert_eq!(plan.sites[&5][0].multiplicity, 1);
        assert_eq!(plan.stats.requested_calls, 6);
        assert_eq!(plan.stats.emitted_calls, 3);
        assert_eq!(plan.stats.coalesced_away, 3);
        assert_eq!(plan.stats.coalesced_groups, 2);
        assert_eq!(plan.stats.sites_dropped, 3);
        assert!(plan.stats.cfg_available);
    }

    #[test]
    fn naive_plan_still_appends_multiplicity_one() {
        let (n, _) = body_blocks();
        let spec = count_spec(n, 1);
        let plan = build(&spec, n, Analyses::none(), &fns(false), PlanOpts::naive()).unwrap();
        assert_eq!(plan.sites.len(), n);
        for calls in plan.sites.values() {
            assert_eq!(calls[0].args.last(), Some(&Arg::Imm32(1)));
            assert_eq!(calls[0].multiplicity, 1);
        }
        assert!(!plan.stats.cfg_available);
        assert_eq!(plan.stats.coalesced_away, 0);
    }

    #[test]
    fn per_instance_args_and_pred_filter_block_coalescing() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        // Guard-pred argument is per-dynamic-instance.
        spec.insert_call(0, "f", IPoint::Before);
        spec.add_arg(0, Arg::GuardPred);
        spec.set_coalesce(0);
        spec.insert_call(1, "f", IPoint::Before);
        spec.add_arg(1, Arg::GuardPred);
        spec.set_coalesce(1);
        // Pred-filtered call never merges.
        spec.insert_call(2, "f", IPoint::Before);
        spec.set_coalesce(2);
        spec.set_pred_filter(2);
        let plan = build(
            &spec,
            n,
            Analyses::with_blocks(&blocks),
            &fns(false),
            PlanOpts { coalesce: true, ..PlanOpts::naive() },
        )
        .unwrap();
        assert_eq!(plan.sites.len(), 3, "nothing merged");
        assert_eq!(plan.stats.coalesced_groups, 0);
    }

    #[test]
    fn different_args_split_groups() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        for (idx, ctr) in [(0usize, 0x10u64), (1, 0x10), (2, 0x20)] {
            spec.insert_call(idx, "f", IPoint::Before);
            spec.add_arg(idx, Arg::Imm64(ctr));
            spec.set_coalesce(idx);
        }
        let plan = build(
            &spec,
            n,
            Analyses::with_blocks(&blocks),
            &fns(false),
            PlanOpts { coalesce: true, ..PlanOpts::naive() },
        )
        .unwrap();
        // Sites 0 and 1 merge (same counter); site 2 stands alone.
        assert_eq!(plan.sites[&0][0].multiplicity, 2);
        assert_eq!(plan.sites[&2][0].multiplicity, 1);
        assert_eq!(plan.stats.coalesced_groups, 1);
    }

    #[test]
    fn non_coalesce_calls_never_gain_the_multiplicity_arg() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "f", IPoint::Before);
        spec.add_arg(0, Arg::Imm64(7));
        let plan =
            build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default())
                .unwrap();
        assert_eq!(plan.sites[&0][0].args, vec![Arg::Imm64(7)]);
    }

    #[test]
    fn inline_pass_marks_inlinable_leaves_only_when_enabled() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "f", IPoint::Before);
        let on = build(
            &spec,
            n,
            Analyses::with_blocks(&blocks),
            &fns(true),
            PlanOpts { inline: true, ..PlanOpts::naive() },
        )
        .unwrap();
        assert!(on.sites[&0][0].inline);
        assert_eq!(on.stats.inlined_calls, 1);
        let off =
            build(&spec, n, Analyses::with_blocks(&blocks), &fns(true), PlanOpts::naive()).unwrap();
        assert!(!off.sites[&0][0].inline);
        let opaque =
            build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default())
                .unwrap();
        assert!(!opaque.sites[&0][0].inline, "non-leaf tools are never inlined");
    }

    #[test]
    fn occupancy_gate_reprices_tier_raising_splices() {
        use sass::occupancy::{OccupancyCfg, SmModel};
        // R20 is live across site 1; the tool body writes up to R23, so
        // splicing raises the site's tier 16 → 32.
        let src = "\
    MOV R20, R4 ;
    IADD R0, R4, 0x1 ;
    STG [R20], R0 ;
    EXIT ;
";
        let prog = assemble_arch(src, Arch::Volta).unwrap();
        let blocks = sass::cfg::basic_blocks(&prog, Arch::Volta).unwrap();
        let df = Dataflow::analyze(&prog, Arch::Volta).unwrap();
        let analyses =
            || Analyses { blocks: Some(&blocks), dataflow: Some(&df), ..Analyses::default() };
        let tool = assemble_arch("IADD R23, R23, 0x1 ;\nRET ;", Arch::Volta).unwrap();
        let mut tool_fns = HashMap::new();
        tool_fns.insert("f".to_string(), ToolFn::with_body(0x8000, 8, 0, false, tool, Arch::Volta));
        let mut spec = FuncSpec::default();
        spec.insert_call(1, "f", IPoint::Before);

        // Tier-only gate: declined.
        let tier_opts = PlanOpts { inline: true, pressure: true, ..PlanOpts::naive() };
        let tier = build(&spec, prog.len(), analyses(), &tool_fns, tier_opts).unwrap();
        assert!(!tier.sites[&1][0].inline);
        assert_eq!((tier.stats.inline_declined, tier.stats.inlined_calls), (1, 0));
        assert_eq!((tier.stats.occ_accepted, tier.stats.occ_declined), (0, 0));
        assert_eq!(tier.sites[&1][0].occ, None);

        // Occupancy gate on Volta at block dim 128: 16 → 32 is a flat step
        // (16 blocks/SM both), so the same splice is now accepted, with the
        // priced claim recorded for the verifier.
        let occ_opts = PlanOpts { occupancy: Some(OccupancyCfg::volta(128)), ..tier_opts };
        let occ = build(&spec, prog.len(), analyses(), &tool_fns, occ_opts).unwrap();
        assert!(occ.sites[&1][0].inline);
        assert_eq!((occ.stats.occ_accepted, occ.stats.occ_declined), (1, 0));
        assert_eq!((occ.stats.inline_accepted, occ.stats.inline_declined), (1, 0));
        assert_eq!(occ.sites[&1][0].occ, Some((16, 32)));

        // A register file small enough that 16 → 32 crosses a cliff
        // (4 → 2 blocks): still declined, now attributed to the curve.
        let cliff = OccupancyCfg {
            model: SmModel { reg_file: 2048, alloc_gran: 256, max_warps: 64, max_blocks: 32 },
            block_threads: 32,
        };
        let cliff_opts = PlanOpts { occupancy: Some(cliff), ..tier_opts };
        let plan = build(&spec, prog.len(), analyses(), &tool_fns, cliff_opts).unwrap();
        assert!(!plan.sites[&1][0].inline);
        assert_eq!((plan.stats.occ_accepted, plan.stats.occ_declined), (0, 1));
        assert_eq!(plan.stats.inline_declined, 1);
    }

    #[test]
    fn validation_matches_the_old_codegen_errors() {
        let (n, blocks) = body_blocks();
        let mut s = FuncSpec::default();
        s.insert_call(99, "f", IPoint::Before);
        assert!(matches!(
            build(&s, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::BadInstrIndex { index: 99, .. })
        ));
        let mut s2 = FuncSpec::default();
        s2.insert_call(0, "missing", IPoint::Before);
        assert!(matches!(
            build(&s2, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::UnknownToolFunction(_))
        ));
        let mut s3 = FuncSpec::default();
        s3.remove_orig(99);
        assert!(matches!(
            build(&s3, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::BadInstrIndex { index: 99, .. })
        ));
    }

    #[test]
    fn removed_only_sites_survive_in_the_plan() {
        let (n, blocks) = body_blocks();
        let mut s = FuncSpec::default();
        s.remove_orig(3);
        let plan =
            build(&s, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default()).unwrap();
        assert!(plan.sites.is_empty());
        assert!(plan.removed.contains(&3));
    }

    // BODY's skip block (instr 5) is control- and cycle-equivalent to the
    // entry block: the region pass hoists its call into the entry group.
    #[test]
    fn region_pass_hoists_control_equivalent_blocks() {
        let (prog, blocks, dom) = body_dom(BODY);
        let spec = count_spec(prog.len(), 0xdead);
        let opts = PlanOpts { coalesce: true, region_coalesce: true, ..PlanOpts::naive() };
        let plan =
            build(&spec, prog.len(), Analyses::with_dom(&blocks, &dom), &fns(false), opts).unwrap();
        let idxs: Vec<usize> = plan.sites.keys().copied().collect();
        assert_eq!(idxs, vec![0, 3], "skip-block call hoisted into the entry call");
        let c0 = &plan.sites[&0][0];
        assert_eq!(c0.multiplicity, 4);
        assert_eq!(c0.group, vec![0, 1, 2, 5]);
        assert_eq!(c0.args, vec![Arg::Imm64(0xdead), Arg::Imm32(4)]);
        assert_eq!(plan.sites[&3][0].multiplicity, 2, "conditional arm stays separate");
        assert_eq!(plan.stats.region_groups, 1);
        assert_eq!(plan.stats.coalesced_groups, 2);
        assert_eq!(plan.stats.emitted_calls, 2);
        assert_eq!(plan.stats.coalesced_away, 4);
    }

    const LOOP: &str = "\
    MOV32I R0, 0x0 ;
body:
    IADD R0, R0, 0x1 ;
    ISETP.GE.S32 P0, R0, 0x10 ;
@!P0 BRA body ;
    STG [R2], R0 ;
    EXIT ;
";

    #[test]
    fn region_pass_skips_loop_bodies() {
        let (prog, blocks, dom) = body_dom(LOOP);
        let spec = count_spec(prog.len(), 1);
        let opts = PlanOpts { coalesce: true, region_coalesce: true, ..PlanOpts::naive() };
        let plan =
            build(&spec, prog.len(), Analyses::with_dom(&blocks, &dom), &fns(false), opts).unwrap();
        // Setup (instr 0) and tail (instrs 4,5) merge; the loop body
        // (instrs 1..4) executes more often and must stay out.
        let idxs: Vec<usize> = plan.sites.keys().copied().collect();
        assert_eq!(idxs, vec![0, 1]);
        assert_eq!(plan.sites[&0][0].group, vec![0, 4, 5]);
        assert_eq!(plan.sites[&0][0].multiplicity, 3);
        assert_eq!(plan.sites[&1][0].group, vec![1, 2, 3]);
        assert_eq!(plan.stats.region_groups, 1);
    }

    const IRREDUCIBLE: &str = "\
    ISETP.GE.S32 P0, R0, 0x10 ;
@P0 BRA b ;
a:
    IADD R1, R1, 0x1 ;
b:
    ISETP.GE.S32 P1, R1, 0x20 ;
@!P1 BRA a ;
    EXIT ;
";

    #[test]
    fn region_pass_is_a_noop_on_irreducible_control_flow() {
        let (prog, blocks, dom) = body_dom(IRREDUCIBLE);
        assert!(dom.irreducible());
        let spec = count_spec(prog.len(), 1);
        let with_region = PlanOpts { coalesce: true, region_coalesce: true, ..PlanOpts::naive() };
        let block_only = PlanOpts { coalesce: true, ..PlanOpts::naive() };
        let a =
            build(&spec, prog.len(), Analyses::with_dom(&blocks, &dom), &fns(false), with_region)
                .unwrap();
        let b = build(&spec, prog.len(), Analyses::with_blocks(&blocks), &fns(false), block_only)
            .unwrap();
        assert_eq!(a.sites, b.sites, "irreducible graphs degrade to per-block merging");
        assert_eq!(a.stats.region_groups, 0);
    }

    fn after_spec(idxs: &[usize], ctr: u64) -> FuncSpec {
        let mut s = FuncSpec::default();
        for &idx in idxs {
            s.insert_call(idx, "f", IPoint::After);
            s.add_arg(idx, Arg::Imm64(ctr));
            s.set_coalesce(idx);
        }
        s
    }

    #[test]
    fn after_points_lower_to_fall_through_slots() {
        let (n, blocks) = body_blocks();
        // Sites 0 and 1 are mid-block; site 2 is the block terminator.
        let spec = after_spec(&[0, 1, 2], 9);
        let opts = PlanOpts { after_lower: true, ..PlanOpts::naive() };
        let plan = build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), opts).unwrap();
        let c1 = &plan.sites[&1][0];
        assert_eq!(c1.ipoint, IPoint::Before);
        assert_eq!((c1.group.as_slice(), c1.lowered.as_slice()), (&[0usize][..], &[0usize][..]));
        let c2 = &plan.sites[&2][0];
        assert_eq!(c2.ipoint, IPoint::Before);
        assert_eq!(c2.lowered, vec![1]);
        // The terminator's After-point must not cross the taken branch.
        let c2b = &plan.sites[&2][1];
        assert_eq!(c2b.ipoint, IPoint::After);
        assert!(c2b.lowered.is_empty());
        assert_eq!(plan.stats.after_lowered, 2);
        assert!(!plan.sites.contains_key(&0), "emptied origin site dropped");
    }

    #[test]
    fn lowered_after_points_coalesce_under_the_multiplicity_protocol() {
        let (n, blocks) = body_blocks();
        let spec = after_spec(&[0, 1], 9);
        let opts = PlanOpts { after_lower: true, coalesce: true, ..PlanOpts::naive() };
        let plan = build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), opts).unwrap();
        let idxs: Vec<usize> = plan.sites.keys().copied().collect();
        assert_eq!(idxs, vec![1], "anchored at origin 0's fall-through slot");
        let c = &plan.sites[&1][0];
        assert_eq!(c.ipoint, IPoint::Before);
        assert_eq!(c.multiplicity, 2);
        assert_eq!(c.group, vec![0, 1]);
        assert_eq!(c.lowered, vec![0, 1]);
        assert_eq!(c.args, vec![Arg::Imm64(9), Arg::Imm32(2)]);
        assert_eq!(plan.stats.after_lowered, 2);
        assert_eq!(plan.stats.coalesced_groups, 1);
    }

    #[test]
    fn per_instance_after_points_stay_in_place() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "f", IPoint::After);
        spec.add_arg(0, Arg::GuardPred);
        spec.set_coalesce(0);
        let plan =
            build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), PlanOpts::default())
                .unwrap();
        assert_eq!(plan.sites[&0][0].ipoint, IPoint::After);
        assert_eq!(plan.stats.after_lowered, 0);
    }

    // A Before-point at site i and a lowered After-point from the same
    // site share origin i: they must never merge into one group (the
    // group would list origin i twice).
    #[test]
    fn overlapping_origins_never_merge() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        for ipoint in [IPoint::Before, IPoint::After] {
            spec.insert_call(0, "f", ipoint);
            spec.add_arg(0, Arg::Imm64(9));
            spec.set_coalesce(0);
        }
        let opts = PlanOpts { after_lower: true, coalesce: true, ..PlanOpts::naive() };
        let plan = build(&spec, n, Analyses::with_blocks(&blocks), &fns(false), opts).unwrap();
        assert_eq!(plan.stats.emitted_calls, 2);
        assert_eq!(plan.stats.coalesced_groups, 0);
        for calls in plan.sites.values() {
            for c in calls {
                assert_eq!((c.multiplicity, c.group.as_slice()), (1, &[0usize][..]));
            }
        }
    }
}
