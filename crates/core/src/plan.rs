//! The instrumentation plan IR: the typed middle layer between the raw
//! injection list a tool records ([`FuncSpec`]) and the code generator.
//!
//! The spec is *what the tool asked for*; the plan is *what will be
//! emitted*. [`build`] validates the request, groups injection sites by
//! `sass::cfg` basic block, and runs two optimization passes over the
//! result — the callback-coalescing and inlining levers every mature DBI
//! framework applies (Pin, DynamoRIO; see the DBI survey), mapped onto the
//! paper's Fig. 9 overhead breakdown:
//!
//! 1. **Block coalescing** (opt-in per injection via
//!    [`crate::spec::Injection::coalesce`]): injections of the same tool
//!    function with identical *block-invariant* arguments (immediates,
//!    constant-bank reads) and no predicate filter are merged into a single
//!    call per basic block carrying a multiplicity argument. This is exact,
//!    not approximate: the warp's active mask cannot change inside a basic
//!    block (control flow only occurs at block ends, and predication does
//!    not alter the mask), so one call with multiplicity *N* observes the
//!    same active lanes as *N* calls with multiplicity 1.
//! 2. **Leaf inlining**: tool functions classified as inlinable leaves
//!    (small, call-free, no `nvbit.readreg`/`writereg` use — see
//!    [`crate::codegen::ToolFn::inlinable`]) have their bodies spliced
//!    directly into the trampoline, eliminating the CALL/RET pair.
//!
//! Every coalesce-marked injection follows the **multiplicity protocol**:
//! the plan appends one trailing `Imm32` argument — 1 when the call stands
//! alone, *N* when it represents *N* merged sites — so the tool function's
//! signature (and its output) is identical whether or not the pass runs.

use crate::codegen::ToolFn;
use crate::spec::{Arg, FuncSpec, IPoint, Injection};
use crate::{NvbitError, Result};
use sass::cfg::{block_of, BasicBlock};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which optimization passes [`build`] runs. Part of the image-cache key:
/// different options produce different trampolines for the same spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanOpts {
    /// Run the basic-block coalescing pass over coalesce-marked injections.
    pub coalesce: bool,
    /// Splice inlinable leaf tool functions into the trampoline instead of
    /// calling them.
    pub inline: bool,
}

impl Default for PlanOpts {
    fn default() -> Self {
        PlanOpts { coalesce: true, inline: true }
    }
}

impl PlanOpts {
    /// Both passes disabled — the naive one-call-per-site pipeline.
    pub fn naive() -> Self {
        PlanOpts { coalesce: false, inline: false }
    }
}

/// One call the code generator will emit at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedCall {
    /// Tool device function to invoke.
    pub func: String,
    /// Before or after the original instruction.
    pub ipoint: IPoint,
    /// Finalized positional arguments. For coalesce-marked calls this
    /// already includes the trailing `Imm32` multiplicity argument.
    pub args: Vec<Arg>,
    /// Wrap the call in the guard-predicate diamond.
    pub pred_filter: bool,
    /// The call follows the multiplicity protocol.
    pub coalesce: bool,
    /// Number of original injection sites this call represents (≥ 1; > 1
    /// only after the coalescing pass merged a group).
    pub multiplicity: u32,
    /// The original instruction indices this call stands for, sorted. A
    /// lone call's group is just its own site.
    pub group: Vec<usize>,
    /// Splice the tool function's body instead of emitting a `JCAL`.
    pub inline: bool,
}

/// Per-pass accounting reported through [`crate::codegen::InstrumentedImage`] and
/// the obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Injections the tool requested.
    pub requested_calls: u64,
    /// Calls the plan actually emits after coalescing.
    pub emitted_calls: u64,
    /// Requested calls eliminated by the coalescing pass
    /// (`requested_calls − emitted_calls`).
    pub coalesced_away: u64,
    /// Merged groups with more than one member.
    pub coalesced_groups: u64,
    /// Instrumentation sites left with no calls and dropped entirely (the
    /// original instruction runs in place, unpatched).
    pub sites_dropped: u64,
    /// Emitted calls marked for inline splicing.
    pub inlined_calls: u64,
    /// Whether a basic-block partition was available (coalescing needs
    /// one; indirect control flow defeats it — the ICF exception).
    pub cfg_available: bool,
}

/// The validated, optimized instrumentation plan for one function.
#[derive(Debug, Clone, Default)]
pub struct InstrumentationPlan {
    /// Planned calls per instruction index. Sites merged away by
    /// coalescing are absent: their original instructions run in place.
    pub sites: BTreeMap<usize, Vec<PlannedCall>>,
    /// Instructions whose original operation is removed.
    pub removed: HashSet<usize>,
    /// What the passes did.
    pub stats: PlanStats,
    /// The options the plan was built with.
    pub opts: PlanOpts,
}

/// True if the argument has the same value at every site of a basic block
/// (it depends on nothing per-dynamic-instance: no guard predicate, no
/// register or predicate value).
fn block_invariant(arg: &Arg) -> bool {
    matches!(arg, Arg::Imm32(_) | Arg::Imm64(_) | Arg::CBank { .. })
}

/// True if the injection is eligible for the coalescing pass.
fn coalescible(inj: &Injection) -> bool {
    inj.coalesce
        && !inj.pred_filter
        && inj.ipoint == IPoint::Before
        && inj.args.iter().all(block_invariant)
}

/// Builds the plan: validates the spec against the function body and the
/// loaded tool functions, then runs the passes enabled in `opts`.
///
/// `blocks` is the function's basic-block partition when static CFG
/// recovery succeeded (`None` under the ICF exception — coalescing is then
/// skipped and [`PlanStats::cfg_available`] records it).
///
/// # Errors
///
/// [`NvbitError::BadInstrIndex`] for sites or removals outside the body,
/// [`NvbitError::UnknownToolFunction`] for unregistered injections.
pub fn build(
    spec: &FuncSpec,
    body_len: usize,
    blocks: Option<&[BasicBlock]>,
    tool_fns: &HashMap<String, ToolFn>,
    opts: PlanOpts,
) -> Result<InstrumentationPlan> {
    // Validation — lifted here from the code generator, which now consumes
    // an already-validated plan.
    for (&idx, injections) in &spec.sites {
        if idx >= body_len {
            return Err(NvbitError::BadInstrIndex { index: idx, len: body_len });
        }
        for inj in injections {
            if !tool_fns.contains_key(&inj.func) {
                return Err(NvbitError::UnknownToolFunction(inj.func.clone()));
            }
        }
    }
    for &idx in &spec.removed {
        if idx >= body_len {
            return Err(NvbitError::BadInstrIndex { index: idx, len: body_len });
        }
    }

    let mut stats = PlanStats { cfg_available: blocks.is_some(), ..PlanStats::default() };

    // Lower every injection to a planned call (multiplicity 1). The
    // multiplicity protocol appends the trailing argument *now*, so naive
    // and coalesced plans present identical tool signatures.
    let mut sites: BTreeMap<usize, Vec<PlannedCall>> = BTreeMap::new();
    for (&idx, injections) in &spec.sites {
        let calls = sites.entry(idx).or_default();
        for inj in injections {
            stats.requested_calls += 1;
            let mut args = inj.args.clone();
            if inj.coalesce {
                args.push(Arg::Imm32(1));
            }
            calls.push(PlannedCall {
                func: inj.func.clone(),
                ipoint: inj.ipoint,
                args,
                pred_filter: inj.pred_filter,
                coalesce: inj.coalesce,
                multiplicity: 1,
                group: vec![idx],
                inline: false,
            });
        }
    }

    // Pass 1: block coalescing.
    if opts.coalesce {
        if let Some(blocks) = blocks {
            coalesce_pass(&mut sites, blocks, spec, &mut stats);
        }
    }

    // Pass 2: leaf inlining.
    for calls in sites.values_mut() {
        for call in calls.iter_mut() {
            stats.emitted_calls += 1;
            if opts.inline && tool_fns[&call.func].inlinable {
                call.inline = true;
                stats.inlined_calls += 1;
            }
        }
    }
    stats.coalesced_away = stats.requested_calls - stats.emitted_calls;

    Ok(InstrumentationPlan { sites, removed: spec.removed.clone(), stats, opts })
}

/// Merges coalescible calls within each basic block. The representative
/// call lives at the group's lowest site (position within the block is
/// irrelevant: the active mask is block-constant); sites left with no
/// calls are dropped from the plan.
fn coalesce_pass(
    sites: &mut BTreeMap<usize, Vec<PlannedCall>>,
    blocks: &[BasicBlock],
    spec: &FuncSpec,
    stats: &mut PlanStats,
) {
    // (block, func, explicit args) → sorted member sites. BTreeMap keeps
    // the grouping deterministic, and the spec's injection order within a
    // site is irrelevant for coalescible calls (no side ordering between
    // identical block-invariant calls).
    type GroupKey = (usize, String, Vec<Arg>);
    let mut groups: BTreeMap<GroupKey, Vec<usize>> = BTreeMap::new();
    for (&idx, injections) in &spec.sites {
        let Some(block) = block_of(blocks, idx) else { continue };
        for inj in injections {
            if coalescible(inj) {
                groups.entry((block, inj.func.clone(), inj.args.clone())).or_default().push(idx);
            }
        }
    }

    for ((_, func, explicit_args), members) in groups {
        if members.len() < 2 {
            continue;
        }
        let mult = members.len() as u32;
        // Rewrite the representative (lowest-site) call in place; drop the
        // others.
        for (pos, &site) in members.iter().enumerate() {
            let calls = sites.get_mut(&site).expect("grouped site exists");
            let at = calls
                .iter()
                .position(|c| {
                    c.coalesce
                        && c.multiplicity == 1
                        && c.func == func
                        && c.args[..c.args.len() - 1] == explicit_args[..]
                        && !c.pred_filter
                })
                .expect("grouped call exists");
            if pos == 0 {
                let call = &mut calls[at];
                call.multiplicity = mult;
                *call.args.last_mut().expect("multiplicity arg present") = Arg::Imm32(mult as i32);
                call.group = members.clone();
            } else {
                calls.remove(at);
            }
        }
        stats.coalesced_groups += 1;
    }

    // Drop sites whose calls were all merged away. This is safe even for
    // sites also marked removed: the generator NOPs removed-but-callless
    // instructions in place, with no trampoline needed.
    let empty: Vec<usize> =
        sites.iter().filter(|(_, calls)| calls.is_empty()).map(|(&idx, _)| idx).collect();
    stats.sites_dropped += empty.len() as u64;
    for idx in empty {
        sites.remove(&idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::{asm::assemble_arch, Arch};

    const BODY: &str = "\
    S2R R0, SR_TID.X ;
    ISETP.GE.S32 P0, R0, 0x10 ;
@P0 BRA skip ;
    IADD R1, R0, 0x1 ;
    STG [R2], R1 ;
skip:
    EXIT ;
";

    fn body_blocks() -> (usize, Vec<BasicBlock>) {
        let prog = assemble_arch(BODY, Arch::Volta).unwrap();
        let blocks = sass::cfg::basic_blocks(&prog, Arch::Volta).unwrap();
        (prog.len(), blocks)
    }

    fn fns(inlinable: bool) -> HashMap<String, ToolFn> {
        let mut m = HashMap::new();
        let mut f = ToolFn::opaque(0x8000, 8, 0, false);
        f.inlinable = inlinable;
        m.insert("f".to_string(), f);
        m
    }

    fn count_spec(n: usize, ctr: u64) -> FuncSpec {
        let mut s = FuncSpec::default();
        for idx in 0..n {
            s.insert_call(idx, "f", IPoint::Before);
            s.add_arg(idx, Arg::Imm64(ctr));
            s.set_coalesce(idx);
        }
        s
    }

    #[test]
    fn coalescing_merges_per_block_and_appends_multiplicity() {
        let (n, blocks) = body_blocks();
        let spec = count_spec(n, 0xdead);
        let plan =
            build(&spec, n, Some(&blocks), &fns(false), PlanOpts { coalesce: true, inline: false })
                .unwrap();
        // Blocks are 0..3, 3..5, 5..6 → one call each, at the block heads.
        let idxs: Vec<usize> = plan.sites.keys().copied().collect();
        assert_eq!(idxs, vec![0, 3, 5]);
        let c0 = &plan.sites[&0][0];
        assert_eq!(c0.multiplicity, 3);
        assert_eq!(c0.group, vec![0, 1, 2]);
        assert_eq!(c0.args, vec![Arg::Imm64(0xdead), Arg::Imm32(3)]);
        assert_eq!(plan.sites[&5][0].multiplicity, 1);
        assert_eq!(plan.stats.requested_calls, 6);
        assert_eq!(plan.stats.emitted_calls, 3);
        assert_eq!(plan.stats.coalesced_away, 3);
        assert_eq!(plan.stats.coalesced_groups, 2);
        assert_eq!(plan.stats.sites_dropped, 3);
        assert!(plan.stats.cfg_available);
    }

    #[test]
    fn naive_plan_still_appends_multiplicity_one() {
        let (n, _) = body_blocks();
        let spec = count_spec(n, 1);
        let plan = build(&spec, n, None, &fns(false), PlanOpts::naive()).unwrap();
        assert_eq!(plan.sites.len(), n);
        for calls in plan.sites.values() {
            assert_eq!(calls[0].args.last(), Some(&Arg::Imm32(1)));
            assert_eq!(calls[0].multiplicity, 1);
        }
        assert!(!plan.stats.cfg_available);
        assert_eq!(plan.stats.coalesced_away, 0);
    }

    #[test]
    fn per_instance_args_and_pred_filter_block_coalescing() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        // Guard-pred argument is per-dynamic-instance.
        spec.insert_call(0, "f", IPoint::Before);
        spec.add_arg(0, Arg::GuardPred);
        spec.set_coalesce(0);
        spec.insert_call(1, "f", IPoint::Before);
        spec.add_arg(1, Arg::GuardPred);
        spec.set_coalesce(1);
        // Pred-filtered call never merges.
        spec.insert_call(2, "f", IPoint::Before);
        spec.set_coalesce(2);
        spec.set_pred_filter(2);
        let plan =
            build(&spec, n, Some(&blocks), &fns(false), PlanOpts { coalesce: true, inline: false })
                .unwrap();
        assert_eq!(plan.sites.len(), 3, "nothing merged");
        assert_eq!(plan.stats.coalesced_groups, 0);
    }

    #[test]
    fn different_args_split_groups() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        for (idx, ctr) in [(0usize, 0x10u64), (1, 0x10), (2, 0x20)] {
            spec.insert_call(idx, "f", IPoint::Before);
            spec.add_arg(idx, Arg::Imm64(ctr));
            spec.set_coalesce(idx);
        }
        let plan =
            build(&spec, n, Some(&blocks), &fns(false), PlanOpts { coalesce: true, inline: false })
                .unwrap();
        // Sites 0 and 1 merge (same counter); site 2 stands alone.
        assert_eq!(plan.sites[&0][0].multiplicity, 2);
        assert_eq!(plan.sites[&2][0].multiplicity, 1);
        assert_eq!(plan.stats.coalesced_groups, 1);
    }

    #[test]
    fn non_coalesce_calls_never_gain_the_multiplicity_arg() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "f", IPoint::Before);
        spec.add_arg(0, Arg::Imm64(7));
        let plan = build(&spec, n, Some(&blocks), &fns(false), PlanOpts::default()).unwrap();
        assert_eq!(plan.sites[&0][0].args, vec![Arg::Imm64(7)]);
    }

    #[test]
    fn inline_pass_marks_inlinable_leaves_only_when_enabled() {
        let (n, blocks) = body_blocks();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "f", IPoint::Before);
        let on =
            build(&spec, n, Some(&blocks), &fns(true), PlanOpts { coalesce: false, inline: true })
                .unwrap();
        assert!(on.sites[&0][0].inline);
        assert_eq!(on.stats.inlined_calls, 1);
        let off = build(&spec, n, Some(&blocks), &fns(true), PlanOpts::naive()).unwrap();
        assert!(!off.sites[&0][0].inline);
        let opaque = build(&spec, n, Some(&blocks), &fns(false), PlanOpts::default()).unwrap();
        assert!(!opaque.sites[&0][0].inline, "non-leaf tools are never inlined");
    }

    #[test]
    fn validation_matches_the_old_codegen_errors() {
        let (n, blocks) = body_blocks();
        let mut s = FuncSpec::default();
        s.insert_call(99, "f", IPoint::Before);
        assert!(matches!(
            build(&s, n, Some(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::BadInstrIndex { index: 99, .. })
        ));
        let mut s2 = FuncSpec::default();
        s2.insert_call(0, "missing", IPoint::Before);
        assert!(matches!(
            build(&s2, n, Some(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::UnknownToolFunction(_))
        ));
        let mut s3 = FuncSpec::default();
        s3.remove_orig(99);
        assert!(matches!(
            build(&s3, n, Some(&blocks), &fns(false), PlanOpts::default()),
            Err(NvbitError::BadInstrIndex { index: 99, .. })
        ));
    }

    #[test]
    fn removed_only_sites_survive_in_the_plan() {
        let (n, blocks) = body_blocks();
        let mut s = FuncSpec::default();
        s.remove_orig(3);
        let plan = build(&s, n, Some(&blocks), &fns(false), PlanOpts::default()).unwrap();
        assert!(plan.sites.is_empty());
        assert!(plan.removed.contains(&3));
    }
}
