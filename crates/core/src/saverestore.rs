//! Generation of the fixed set of register save/restore routines.
//!
//! NVBit embeds, per architecture, a family of save and restore device
//! routines, each targeting a specific number of general-purpose registers
//! (paper §5.1, Tool Functions Loader). The code generator picks the
//! smallest tier covering the register demand of the instrumented function
//! and the injected tool functions.
//!
//! Frame layout (offsets from the post-decrement stack pointer `R1`):
//!
//! ```text
//! [R1 + 4*i]       saved Ri            for i in 0..N, i != 1
//! [R1 + 4*N]       packed predicates   (P2R)
//! [R1 + 4*N + 4]   barrier state       (ABI v2 only)
//! ```
//!
//! `R1` itself is not stored: the restore routine recomputes it by undoing
//! the frame decrement. The save-area base doubles as the device-API frame
//! pointer (`R0`), which is how `nvbit.readreg`/`nvbit.writereg` reach the
//! saved registers — and why writes through the device API are *permanent*:
//! the restore routine loads the (possibly modified) slots back into the
//! register file.

use crate::hal::Hal;

/// The register-count tiers for which routines exist. The ladder is owned
/// by [`sass::pressure::TIERS`] so the splice-pricing verdict and the
/// save-routine generator can never disagree; this is a re-export.
pub use sass::pressure::TIERS;

/// One save/restore routine pair, loaded into device memory.
#[derive(Debug, Clone, Copy)]
pub struct Routines {
    /// Registers covered.
    pub tier: u16,
    /// Device address of the save routine.
    pub save_addr: u64,
    /// Device address of the restore routine.
    pub restore_addr: u64,
    /// Stack bytes the save routine claims.
    pub frame_bytes: u32,
}

/// 32-bit save-area slots a given tier addresses: one per saved register,
/// the packed-predicate slot, and the barrier-state slot on ABIs that save
/// it. Trampoline code must keep every `[R1+4·slot]` access strictly below
/// this bound — the plan verifier's tier check
/// ([`crate::verify::DiagKind::TierExceeded`]) enforces it.
pub fn frame_slots(tier: u16, hal: &Hal) -> u32 {
    tier as u32 + 1 + u32::from(hal.saves_barrier_state())
}

/// Bytes of stack frame a given tier claims on a given ABI.
pub fn frame_bytes(tier: u16, hal: &Hal) -> u32 {
    (frame_slots(tier, hal) * 4).div_ceil(8) * 8
}

/// The smallest tier covering `regs` registers.
///
/// # Errors
///
/// [`crate::NvbitError::BadRequest`] when `regs` exceeds the 255-register
/// file. No tier can cover such a demand, and silently clamping it would
/// under-save and corrupt the instrumented application.
pub fn tier_for(regs: u16) -> crate::Result<u16> {
    sass::pressure::tier_of(regs).ok_or_else(|| {
        crate::NvbitError::BadRequest(format!(
            "register demand {regs} exceeds the 255-register file"
        ))
    })
}

/// Generates the save routine's assembly text for a tier.
pub fn save_text(tier: u16, hal: &Hal) -> String {
    let frame = frame_bytes(tier, hal);
    let mut s = String::new();
    s.push_str(&format!("IADD R1, R1, -0x{frame:x} ;\n"));
    for i in 0..tier {
        if i == 1 {
            continue; // R1 is recomputed, not stored
        }
        s.push_str(&format!("STL [R1+0x{:x}], R{i} ;\n", 4 * i));
    }
    // Predicates, packed through R0 (already saved above).
    s.push_str("P2R R0 ;\n");
    s.push_str(&format!("STL [R1+0x{:x}], R0 ;\n", 4 * tier as u32));
    if hal.saves_barrier_state() {
        s.push_str("S2R R0, SR_BARRIERSTATE ;\n");
        s.push_str(&format!("STL [R1+0x{:x}], R0 ;\n", 4 * tier as u32 + 4));
    }
    s.push_str("RET ;\n");
    s
}

/// Generates the restore routine's assembly text for a tier.
pub fn restore_text(tier: u16, hal: &Hal) -> String {
    let frame = frame_bytes(tier, hal);
    let mut s = String::new();
    if hal.saves_barrier_state() {
        // Barrier state is verified present (cosmetic on this simulator:
        // reconvergence state lives in the hardware SIMT stack, which the
        // injected function leaves balanced by construction).
        s.push_str(&format!("LDL R0, [R1+0x{:x}] ;\n", 4 * tier as u32 + 4));
    }
    s.push_str(&format!("LDL R0, [R1+0x{:x}] ;\n", 4 * tier as u32));
    s.push_str("R2P R0 ;\n");
    // Restore every register except R1; R0 last (it is the scratch above).
    for i in (0..tier).rev() {
        if i == 1 {
            continue;
        }
        s.push_str(&format!("LDL R{i}, [R1+0x{:x}] ;\n", 4 * i));
    }
    s.push_str(&format!("IADD R1, R1, 0x{frame:x} ;\n"));
    s.push_str("RET ;\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::{Arch, Op};

    #[test]
    fn tiers_cover_the_register_file() {
        assert_eq!(tier_for(1).unwrap(), 16);
        assert_eq!(tier_for(16).unwrap(), 16);
        assert_eq!(tier_for(17).unwrap(), 32);
        assert_eq!(tier_for(200).unwrap(), 255);
        assert_eq!(tier_for(255).unwrap(), 255);
    }

    #[test]
    fn demands_beyond_the_register_file_are_rejected() {
        for regs in [256, 300, u16::MAX] {
            assert!(
                matches!(tier_for(regs), Err(crate::NvbitError::BadRequest(_))),
                "tier_for({regs}) must not clamp"
            );
        }
    }

    #[test]
    fn frames_are_8_byte_aligned_and_grow_on_abi_v2() {
        let k = Hal::new(Arch::Kepler);
        let v = Hal::new(Arch::Volta);
        for tier in TIERS {
            let fk = frame_bytes(tier, &k);
            let fv = frame_bytes(tier, &v);
            assert_eq!(fk % 8, 0);
            assert_eq!(fv % 8, 0);
            assert!(fv >= fk, "ABI v2 frames carry barrier state");
            assert!(fk >= tier as u32 * 4 + 4);
        }
    }

    #[test]
    fn routines_assemble_on_every_arch() {
        for arch in Arch::ALL {
            let hal = Hal::new(arch);
            for tier in TIERS {
                let save = hal.assemble_text(&save_text(tier, &hal)).unwrap();
                let restore = hal.assemble_text(&restore_text(tier, &hal)).unwrap();
                assert!(!save.is_empty());
                assert!(!restore.is_empty());
                // Both end in RET.
                let si = hal.disassemble(&save).unwrap();
                let ri = hal.disassemble(&restore).unwrap();
                assert_eq!(si.last().unwrap().op, Op::Ret);
                assert_eq!(ri.last().unwrap().op, Op::Ret);
            }
        }
    }

    #[test]
    fn volta_routines_touch_barrier_state() {
        let hal = Hal::new(Arch::Volta);
        assert!(save_text(16, &hal).contains("SR_BARRIERSTATE"));
        assert!(!save_text(16, &Hal::new(Arch::Pascal)).contains("SR_BARRIERSTATE"));
    }

    #[test]
    fn save_and_restore_skip_the_stack_pointer() {
        let hal = Hal::new(Arch::Maxwell);
        let s = save_text(32, &hal);
        let r = restore_text(32, &hal);
        assert!(!s.contains("STL [R1+0x4], R1"));
        assert!(!r.contains("LDL R1,"));
    }
}
