//! Pre-swap static verification of instrumented images.
//!
//! Before the core swaps a function to its instrumented version, the image
//! and its trampolines are checked statically: a malformed trampoline would
//! corrupt the *application*, not the tool, so failures must be caught
//! before the first instrumented launch (paper §5.1 — the swap is the
//! point of no return; §5.2 budgets it as part of JIT overhead).
//!
//! The verifier checks, per [`crate::codegen::InstrumentedImage`]:
//!
//! * every control-flow target lands on an instruction boundary inside the
//!   image, the trampoline region, or known external code (save/restore
//!   routines, tool functions, related functions);
//! * the image cannot fall off its last instruction, and every trampoline
//!   site ends with an unconditional jump back into the image;
//! * register and predicate operands stay within the architectural bounds
//!   (including multi-register spans of wide loads/stores);
//! * operand lists match their opcode formats;
//! * trampoline frame discipline: the save routine is called before any
//!   save-area access or tool call, every save is matched by a restore,
//!   and no site ends with an open frame.

use crate::codegen::SiteMeta;
use crate::hal::Hal;
use crate::plan::PlanOpts;
use crate::saverestore::frame_slots;
use sass::cfg::block_of;
use sass::op::{CfClass, OKind};
use sass::{Instruction, MemSpace, Op, Operand, Reg};
use std::sync::Arc;

/// Which code region a diagnostic points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// The instrumented copy of the function body.
    Image,
    /// The trampoline region.
    Trampoline,
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Image => write!(f, "image"),
            Region::Trampoline => write!(f, "trampoline"),
        }
    }
}

/// The class of defect a diagnostic reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagKind {
    /// A control-flow target is outside every known code region, or not on
    /// an instruction boundary.
    BranchTarget,
    /// Execution can run off the end of the image, or a trampoline site
    /// does not end with an unconditional jump back into the image.
    FallThrough,
    /// A register operand (or its multi-register span) exceeds the
    /// register file.
    BadRegister,
    /// A predicate operand or guard exceeds the predicate file.
    BadPredicate,
    /// An operand list does not match its opcode's format.
    BadOperands,
    /// The save area is read (or a tool called) before the save routine
    /// has run.
    ReadBeforeSave,
    /// A restore call without a matching save.
    RestoreWithoutSave,
    /// A trampoline site ends with an open save frame.
    UnbalancedFrame,
    /// A coalesced call's bookkeeping is inconsistent: its multiplicity does
    /// not match its group size, its group is not anchored at the site, or
    /// a merge exists without a recoverable CFG to justify it.
    CoalesceMismatch,
    /// A coalesced group spans basic blocks of the original body that are
    /// not in the same dominator coalescing region (see [`sass::Dom`]): the
    /// member sites are not proven to execute exactly as often as the
    /// placement site.
    RegionMismatch,
    /// A lowered `IPoint::After` call's bookkeeping is inconsistent: a
    /// lowered origin is missing from the group, has no fall-through
    /// successor inside its own basic block, or there is no CFG to justify
    /// the move.
    AfterMismatch,
    /// An inline-spliced call does not reproduce the loaded tool function's
    /// body (with the trailing `RET` turned into a `NOP`).
    InlineMismatch,
    /// A save-area access addresses a slot beyond what the site's save tier
    /// writes.
    TierExceeded,
    /// An inline splice clobbers a register that is live across the site
    /// (per a dataflow analysis recomputed from the original bytes) but
    /// not covered by the site's save tier: executing the splice would
    /// corrupt the application's state. This is the safety property the
    /// pressure cost model exists to uphold, re-proven here without
    /// trusting the planner's verdicts.
    PressureExceeded,
    /// The spliced instructions do not form a shape the body classifier
    /// accepts (a straight line or a single guarded diamond whose control
    /// flow stays inside the splice). Recomputed from the emitted
    /// trampoline bytes: an escaping or looping splice inside a
    /// trampoline would run code outside the save/restore bracket.
    DiamondMismatch,
    /// An occupancy-gated inline splice's tier claim does not survive
    /// re-pricing: the claim is missing, names tiers off the save ladder,
    /// would drop resident blocks/SM on the configured occupancy model,
    /// or understates the register demand recomputed from the original
    /// bytes. A forged claim could smuggle a block-evicting (or
    /// under-saved) splice past the occupancy gate.
    OccupancyMismatch,
}

/// One verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Defect class.
    pub kind: DiagKind,
    /// Region the offending instruction lives in.
    pub region: Region,
    /// Instruction index within the region.
    pub index: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} at {} instruction {}: {}", self.kind, self.region, self.index, self.message)
    }
}

/// Code outside the image/trampoline that control flow may legitimately
/// reach: the embedded save/restore routines, the loaded tool functions and
/// the code regions of related functions.
#[derive(Debug, Clone, Default)]
pub struct ExternalCode {
    /// Save-routine entry addresses (one per tier).
    pub save_addrs: Vec<u64>,
    /// Restore-routine entry addresses (one per tier).
    pub restore_addrs: Vec<u64>,
    /// Tool-function entry addresses.
    pub tool_addrs: Vec<u64>,
    /// `[start, end)` byte ranges of other known device code (related
    /// functions the original body may call).
    pub code_regions: Vec<(u64, u64)>,
    /// Decoded bodies of loaded tool functions, for checking inline
    /// splices against the code they claim to reproduce.
    pub tool_bodies: Vec<(String, Arc<Vec<Instruction>>)>,
}

impl ExternalCode {
    fn is_entry(&self, addr: u64) -> bool {
        self.save_addrs.contains(&addr)
            || self.restore_addrs.contains(&addr)
            || self.tool_addrs.contains(&addr)
            || self.code_regions.iter().any(|&(s, e)| addr >= s && addr < e)
    }
}

/// The multi-register span of each register operand, mirroring the width
/// rules of [`Instruction::reg_reads`]/[`Instruction::reg_writes`] but
/// *without* the clamping those apply — the verifier wants the raw span.
fn reg_spans(ins: &Instruction) -> Vec<(Reg, usize)> {
    let mut out = Vec::new();
    for (kind, opnd) in ins.op.format().iter().zip(&ins.operands) {
        match (kind, opnd) {
            (OKind::RegW, Operand::Reg(r)) => {
                let n = if ins.op.is_double() && ins.op != Op::D2f && ins.op != Op::Dsetp {
                    2
                } else if ins.op.is_load() && ins.op != Op::Atom {
                    ins.mods.width.regs()
                } else if ins.op == Op::F2d {
                    2
                } else {
                    1
                };
                out.push((*r, n));
            }
            (OKind::RegR | OKind::RegRI, Operand::Reg(r)) => {
                let n = if ins.op.is_double() {
                    2
                } else if matches!(kind, OKind::RegR)
                    && matches!(ins.op, Op::Stg | Op::Sts | Op::Stl)
                {
                    ins.mods.width.regs()
                } else {
                    1
                };
                out.push((*r, n));
            }
            (OKind::MRef | OKind::MRefAtom, Operand::MRef { base, .. }) => {
                let n = match ins.op.mem_space() {
                    Some(MemSpace::Shared) => 1,
                    _ => 2,
                };
                out.push((*base, n));
            }
            (OKind::CBankRef, Operand::CBank { base, .. }) => out.push((*base, 1)),
            _ => {}
        }
    }
    if ins.op == Op::Brx {
        if let Some(Operand::Reg(r)) = ins.operands.first() {
            out.push((*r, 2));
        }
    }
    out
}

/// True when the instruction touches the save area through the stack
/// pointer (a `[R1 + off]` local access).
fn touches_save_area(ins: &Instruction) -> bool {
    matches!(ins.op, Op::Ldl | Op::Stl)
        && ins.operands.iter().any(|o| matches!(o, Operand::MRef { base, .. } if *base == Reg::SP))
}

/// Verifies an instrumented image plus trampoline, both already
/// disassembled. `sites` is the per-site layout recorded by the code
/// generator. Returns every defect found (empty = image is safe to swap).
pub fn verify_instrs(
    hal: &Hal,
    image_addr: u64,
    image: &[Instruction],
    tramp_addr: u64,
    tramp: &[Instruction],
    sites: &[SiteMeta],
    ext: &ExternalCode,
) -> Vec<Diagnostic> {
    let isize = hal.instruction_size();
    let image_end = image_addr + image.len() as u64 * isize;
    let tramp_end = tramp_addr + tramp.len() as u64 * isize;
    let mut diags = Vec::new();

    let in_image = |t: u64| t >= image_addr && t < image_end;
    let in_tramp = |t: u64| t >= tramp_addr && t < tramp_end;
    let target_ok = |t: u64| -> bool {
        if in_image(t) {
            (t - image_addr).is_multiple_of(isize)
        } else if in_tramp(t) {
            (t - tramp_addr).is_multiple_of(isize)
        } else {
            ext.is_entry(t)
        }
    };

    // Per-instruction structural checks over both regions.
    for (region, base, instrs) in
        [(Region::Image, image_addr, image), (Region::Trampoline, tramp_addr, tramp)]
    {
        for (index, ins) in instrs.iter().enumerate() {
            if let Err(e) = ins.validate() {
                diags.push(Diagnostic {
                    kind: DiagKind::BadOperands,
                    region,
                    index,
                    message: e.to_string(),
                });
            }
            if ins.guard.pred.0 > 7 {
                diags.push(Diagnostic {
                    kind: DiagKind::BadPredicate,
                    region,
                    index,
                    message: format!(
                        "guard predicate P{} exceeds the predicate file",
                        ins.guard.pred.0
                    ),
                });
            }
            for opnd in &ins.operands {
                if let Operand::Pred { pred, .. } = opnd {
                    if pred.0 > 7 {
                        diags.push(Diagnostic {
                            kind: DiagKind::BadPredicate,
                            region,
                            index,
                            message: format!("predicate P{} exceeds the predicate file", pred.0),
                        });
                    }
                }
            }
            for (reg, span) in reg_spans(ins) {
                // RZ is a single pseudo-register; any other operand must fit
                // its whole span below R255.
                if !reg.is_zero() && reg.0 as usize + span - 1 > 254 {
                    diags.push(Diagnostic {
                        kind: DiagKind::BadRegister,
                        region,
                        index,
                        message: format!(
                            "{}-register span at R{} runs past the register file",
                            span, reg.0
                        ),
                    });
                }
            }
            match ins.cf_class() {
                CfClass::RelBranch | CfClass::RelCall | CfClass::Ssy => {
                    if let Some(off) = ins.rel_target() {
                        let t = (base + (index as u64 + 1) * isize).wrapping_add(off as u64);
                        if !target_ok(t) {
                            diags.push(Diagnostic {
                                kind: DiagKind::BranchTarget,
                                region,
                                index,
                                message: format!(
                                    "relative target {t:#x} is outside known code or misaligned"
                                ),
                            });
                        }
                    }
                }
                CfClass::AbsJump | CfClass::AbsCall => {
                    if let Some(Operand::Abs(t)) =
                        ins.operands.iter().find(|o| matches!(o, Operand::Abs(_)))
                    {
                        if !target_ok(*t) {
                            diags.push(Diagnostic {
                                kind: DiagKind::BranchTarget,
                                region,
                                index,
                                message: format!(
                                    "absolute target {t:#x} is outside known code or misaligned"
                                ),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // The image must not fall off its end.
    match image.last() {
        Some(last) if last.cf_class().ends_block() && last.guard.is_always() => {}
        Some(_) => diags.push(Diagnostic {
            kind: DiagKind::FallThrough,
            region: Region::Image,
            index: image.len() - 1,
            message: "execution can fall off the end of the image".into(),
        }),
        None => {}
    }

    // Per-site trampoline discipline.
    for site in sites {
        let end = site.start + site.len;
        if end > tramp.len() || site.len == 0 {
            diags.push(Diagnostic {
                kind: DiagKind::FallThrough,
                region: Region::Trampoline,
                index: site.start.min(tramp.len().saturating_sub(1)),
                message: format!(
                    "site for instruction {} extends past the trampoline region",
                    site.instr_idx
                ),
            });
            continue;
        }
        let body = &tramp[site.start..end];

        // The site must end with an unconditional jump back into the image,
        // or with a relocated original that itself unconditionally leaves
        // the trampoline (EXIT/RET/branch — target validity is checked by
        // the per-instruction pass above).
        let last = &body[site.len - 1];
        let exits_to_image = last.op == Op::Jmp
            && last.guard.is_always()
            && matches!(last.operands.first(),
                Some(Operand::Abs(t)) if in_image(*t) && (*t - image_addr).is_multiple_of(isize));
        let terminal_original = site.orig_pos == site.len - 1
            && last.guard.is_always()
            && matches!(
                last.cf_class(),
                CfClass::Exit
                    | CfClass::Ret
                    | CfClass::Trap
                    | CfClass::Sync
                    | CfClass::RelBranch
                    | CfClass::AbsJump
            );
        if !exits_to_image && !terminal_original {
            diags.push(Diagnostic {
                kind: DiagKind::FallThrough,
                region: Region::Trampoline,
                index: end - 1,
                message: format!(
                    "site for instruction {} does not end with a jump back into the image",
                    site.instr_idx
                ),
            });
        }

        // Save/restore ordering and frame balance.
        let mut depth: u32 = 0;
        for (pos, ins) in body.iter().enumerate() {
            let index = site.start + pos;
            if ins.op == Op::Jcal {
                if let Some(Operand::Abs(t)) = ins.operands.first() {
                    if ext.save_addrs.contains(t) {
                        depth += 1;
                        continue;
                    }
                    if ext.restore_addrs.contains(t) {
                        if depth == 0 {
                            diags.push(Diagnostic {
                                kind: DiagKind::RestoreWithoutSave,
                                region: Region::Trampoline,
                                index,
                                message: "restore call without a matching save".into(),
                            });
                        } else {
                            depth -= 1;
                        }
                        continue;
                    }
                    if ext.tool_addrs.contains(t) && depth == 0 {
                        diags.push(Diagnostic {
                            kind: DiagKind::ReadBeforeSave,
                            region: Region::Trampoline,
                            index,
                            message: "tool called before the thread state is saved".into(),
                        });
                        continue;
                    }
                }
            }
            // The relocated original instruction runs at depth 0 and may
            // legitimately use the application's own stack frame.
            if pos != site.orig_pos && depth == 0 && touches_save_area(ins) {
                diags.push(Diagnostic {
                    kind: DiagKind::ReadBeforeSave,
                    region: Region::Trampoline,
                    index,
                    message: "save-area access before the save routine has run".into(),
                });
            }
        }
        if depth != 0 {
            diags.push(Diagnostic {
                kind: DiagKind::UnbalancedFrame,
                region: Region::Trampoline,
                index: end - 1,
                message: format!(
                    "site for instruction {} ends with {depth} open save frame(s)",
                    site.instr_idx
                ),
            });
        }
    }

    diags
}

/// Plan-consistency checks: the coalescing and inlining bookkeeping the
/// code generator recorded per site must agree with the trampoline it
/// actually emitted and with the original body's basic-block structure.
/// Complements [`verify_instrs`] (which checks structural safety); run
/// both before a swap.
///
/// `original` is the *original* function body — coalesced groups must lie
/// within one of its basic blocks, since the merged call's exactness
/// argument (a block-constant active mask) holds only there. When static
/// CFG recovery fails on the body, any coalesced group is itself a defect:
/// the planner may not merge under the ICF exception.
pub fn verify_plan_instrs(
    hal: &Hal,
    original: &[Instruction],
    tramp: &[Instruction],
    sites: &[SiteMeta],
    opts: &PlanOpts,
    ext: &ExternalCode,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let blocks = sass::cfg::basic_blocks(original, hal.arch()).ok();
    // Recomputed (not trusted from the image) dominator analysis: region
    // checks must hold against the original body as the verifier sees it.
    let dom = blocks.as_ref().map(|b| sass::Dom::analyze(original, b, hal.arch()));
    // Recomputed liveness, for proving each inline splice's clobber is
    // covered by the site's save tier (`None` when the body cannot be
    // statically partitioned — splices are then vacuously unprovable and
    // the planner never emits them without a CFG anyway).
    let dataflow = sass::Dataflow::analyze(original, hal.arch()).ok();

    for site in sites {
        let end = site.start + site.len;
        if end > tramp.len() || site.len == 0 {
            continue; // verify_instrs reports the structural defect
        }
        let body = &tramp[site.start..end];
        let slots = frame_slots(site.tier, hal);

        // Save-area accesses must stay inside the tier's frame. The
        // relocated original may use the application's own stack.
        for (pos, ins) in body.iter().enumerate() {
            if pos == site.orig_pos || !touches_save_area(ins) {
                continue;
            }
            for o in &ins.operands {
                let Operand::MRef { base, offset } = o else { continue };
                if *base != Reg::SP {
                    continue;
                }
                if *offset < 0 || *offset as u32 / 4 >= slots {
                    diags.push(Diagnostic {
                        kind: DiagKind::TierExceeded,
                        region: Region::Trampoline,
                        index: site.start + pos,
                        message: format!(
                            "save-area access at [R1+{offset:#x}] exceeds the {} slots tier {} saves",
                            slots, site.tier
                        ),
                    });
                }
            }
        }

        for call in &site.calls {
            // Coalescing bookkeeping: multiplicity matches the group, the
            // group is strictly ascending, and the call is anchored at its
            // first origin — directly, or at that origin's fall-through
            // slot when the origin was After-lowered.
            let anchored = match call.group.first() {
                Some(&first) => {
                    first == site.instr_idx
                        || (call.lowered.contains(&first) && first + 1 == site.instr_idx)
                }
                None => false,
            };
            let mut bad_group = call.multiplicity as usize != call.group.len()
                || !anchored
                || call.group.windows(2).any(|w| w[0] >= w[1]);
            if !bad_group && call.multiplicity > 1 && blocks.is_none() {
                // Merging without a CFG is never legitimate.
                bad_group = true;
            }
            if bad_group {
                diags.push(Diagnostic {
                    kind: DiagKind::CoalesceMismatch,
                    region: Region::Trampoline,
                    index: site.start,
                    message: format!(
                        "call to `{}` at instruction {} has multiplicity {} but group {:?}",
                        call.func, site.instr_idx, call.multiplicity, call.group
                    ),
                });
            }

            // After-lowering bookkeeping: every lowered origin must be a
            // group member whose fall-through slot stays inside its own
            // basic block (the move must never cross a taken branch).
            if !call.lowered.is_empty() {
                let mut bad_after = call.lowered.windows(2).any(|w| w[0] >= w[1])
                    || call.lowered.iter().any(|l| !call.group.contains(l));
                if !bad_after {
                    bad_after = match &blocks {
                        Some(blocks) => call.lowered.iter().any(|&l| {
                            block_of(blocks, l).is_none()
                                || block_of(blocks, l + 1) != block_of(blocks, l)
                        }),
                        // Lowering without a CFG is never legitimate.
                        None => true,
                    };
                }
                if bad_after {
                    diags.push(Diagnostic {
                        kind: DiagKind::AfterMismatch,
                        region: Region::Trampoline,
                        index: site.start,
                        message: format!(
                            "call to `{}` at instruction {} claims lowered origins {:?} \
                             inconsistent with group {:?} or the CFG",
                            call.func, site.instr_idx, call.lowered, call.group
                        ),
                    });
                }
            }

            // Region consistency: every merged origin's block must share
            // the placement site's coalescing region, which is exactly the
            // per-lane execution-count equivalence the merge relies on.
            if call.multiplicity > 1 {
                if let (Some(blocks), Some(dom)) = (&blocks, &dom) {
                    let bad_region = match block_of(blocks, site.instr_idx) {
                        Some(home) => call.group.iter().any(|&i| {
                            !block_of(blocks, i).is_some_and(|b| dom.same_region(home, b))
                        }),
                        None => true,
                    };
                    if bad_region {
                        diags.push(Diagnostic {
                            kind: DiagKind::RegionMismatch,
                            region: Region::Trampoline,
                            index: site.start,
                            message: format!(
                                "call to `{}` at instruction {} merges group {:?} across \
                                 blocks outside the site's coalescing region",
                                call.func, site.instr_idx, call.group
                            ),
                        });
                    }
                }
            }

            // Inline splices must reproduce the loaded tool body.
            let Some((off, len)) = call.inline else { continue };
            let splice_ok = off + len <= site.len
                && len > 0
                && ext.tool_bodies.iter().any(|(name, fn_body)| {
                    name == &call.func
                        && fn_body.len() == len
                        && fn_body.last().is_some_and(|i| i.op == Op::Ret)
                        && body[off + len - 1].op == Op::Nop
                        && fn_body[..len - 1] == body[off..off + len - 1]
                });
            if !splice_ok {
                diags.push(Diagnostic {
                    kind: DiagKind::InlineMismatch,
                    region: Region::Trampoline,
                    index: site.start + off.min(site.len - 1),
                    message: format!(
                        "inline splice of `{}` at instruction {} does not match the loaded body",
                        call.func, site.instr_idx
                    ),
                });
            }
            if off + len > site.len || len == 0 {
                continue; // out-of-range splice: already reported above
            }

            // Shape check, recomputed from the *emitted* instructions:
            // with the splice's trailing NOP restored to the RET it stands
            // for, the body classifier must still accept the shape. A
            // splice whose guarded branch escapes the splice (or loops)
            // would execute foreign code inside the save/restore bracket,
            // whatever body it byte-matches.
            let mut spliced: Vec<Instruction> = body[off..off + len - 1].to_vec();
            spliced.push(Instruction::new(Op::Ret, vec![]));
            if sass::pressure::body_shape(&spliced, hal.arch()).is_none() {
                diags.push(Diagnostic {
                    kind: DiagKind::DiamondMismatch,
                    region: Region::Trampoline,
                    index: site.start + off,
                    message: format!(
                        "inline splice of `{}` at instruction {} is not a straight line or a \
                         single guarded diamond contained in the splice",
                        call.func, site.instr_idx
                    ),
                });
            }

            // Pressure check, recomputed from the original bytes: every
            // register the splice writes that is live across the site must
            // be covered by the site's save tier, or the splice corrupts
            // the application. (`site.tier` saves registers R0..R<tier>.)
            if let Some(df) = &dataflow {
                if site.instr_idx < df.len() {
                    let ceiling = spliced
                        .iter()
                        .flat_map(Instruction::reg_writes)
                        .filter(|r| !r.is_zero() && *r != Reg::SP)
                        .map(|r| r.0)
                        .max()
                        .map_or(0, |r| r.saturating_add(1));
                    let live = df.max_live_below(site.instr_idx, ceiling);
                    if let Some(live) = live {
                        if u16::from(live) >= site.tier {
                            diags.push(Diagnostic {
                                kind: DiagKind::PressureExceeded,
                                region: Region::Trampoline,
                                index: site.start + off,
                                message: format!(
                                    "inline splice of `{}` at instruction {} clobbers live \
                                     register R{live}, which tier {} does not save",
                                    call.func, site.instr_idx, site.tier
                                ),
                            });
                        }
                    }

                    // Occupancy-claim check: when the plan priced tier
                    // growth on the occupancy curve, every accepted splice
                    // must carry a claim that (a) names tiers on the save
                    // ladder in order, (b) keeps the before-tier's
                    // blocks/SM (and stays launchable) on the configured
                    // model, and (c) covers the demand recomputed from the
                    // original bytes under the emitted splice's write
                    // ceiling — none of it trusted from the planner.
                    if opts.pressure {
                        if let Some(cfg) = opts.occupancy.as_ref() {
                            let claim_ok = call.occ.is_some_and(|(tb, ta)| {
                                let on_ladder = sass::pressure::tier_of(tb) == Some(tb)
                                    && sass::pressure::tier_of(ta) == Some(ta)
                                    && tb <= ta;
                                let before = cfg.model.occupancy(tb, cfg.block_threads);
                                let after = cfg.model.occupancy(ta, cfg.block_threads);
                                let no_drop = after.blocks_per_sm >= before.blocks_per_sm
                                    && after.blocks_per_sm > 0;
                                let covered =
                                    df.max_live_below(site.instr_idx, ceiling).is_none_or(|r| {
                                        sass::pressure::tier_of(u16::from(r) + 1)
                                            .is_some_and(|t| t <= ta)
                                    });
                                on_ladder && no_drop && covered
                            });
                            if !claim_ok {
                                diags.push(Diagnostic {
                                    kind: DiagKind::OccupancyMismatch,
                                    region: Region::Trampoline,
                                    index: site.start + off,
                                    message: format!(
                                        "inline splice of `{}` at instruction {} carries \
                                         occupancy claim {:?} that fails re-pricing",
                                        call.func, site.instr_idx, call.occ
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    diags
}

/// Disassembles and verifies a generated image: structural checks
/// ([`verify_instrs`]) plus plan-consistency checks
/// ([`verify_plan_instrs`]).
///
/// # Errors
///
/// Decode failures on the image, trampoline or original bytes (anything
/// else is reported as diagnostics, not errors).
pub fn verify(
    hal: &Hal,
    image_addr: u64,
    img: &crate::codegen::InstrumentedImage,
    ext: &ExternalCode,
) -> crate::Result<Vec<Diagnostic>> {
    let image = hal.disassemble(&img.instrumented)?;
    let tramp = hal.disassemble(&img.tramp_code)?;
    let original = hal.disassemble(&img.original)?;
    let mut diags = verify_instrs(hal, image_addr, &image, img.tramp_addr, &tramp, &img.sites, ext);
    diags.extend(verify_plan_instrs(hal, &original, &tramp, &img.sites, &img.opts, ext));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::{Arch, Mods, Width};

    const IMAGE_ADDR: u64 = 0x4000;
    const TRAMP_ADDR: u64 = 0x9000;
    const SAVE: u64 = 0x10_0000;
    const RESTORE: u64 = 0x20_0000;
    const TOOL: u64 = 0x8000;

    fn ext() -> ExternalCode {
        ExternalCode {
            save_addrs: vec![SAVE],
            restore_addrs: vec![RESTORE],
            tool_addrs: vec![TOOL],
            code_regions: vec![],
            tool_bodies: vec![],
        }
    }

    fn hal() -> Hal {
        Hal::new(Arch::Volta)
    }

    fn jmp(addr: u64) -> Instruction {
        Instruction::new(Op::Jmp, vec![Operand::Abs(addr)])
    }

    fn jcal(addr: u64) -> Instruction {
        Instruction::new(Op::Jcal, vec![Operand::Abs(addr)])
    }

    /// A well-formed one-site image: `IADD; JMP tramp; EXIT` plus a
    /// Figure-4 trampoline.
    fn good() -> (Vec<Instruction>, Vec<Instruction>, Vec<SiteMeta>) {
        let image = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(4)), Operand::Reg(Reg(4)), Operand::Imm(1)],
            ),
            jmp(TRAMP_ADDR),
            Instruction::new(Op::Exit, vec![]),
        ];
        let isize = hal().instruction_size();
        let tramp = vec![
            jcal(SAVE),
            Instruction::new(Op::Mov, vec![Operand::Reg(Reg(0)), Operand::Reg(Reg::SP)]),
            jcal(TOOL),
            jcal(RESTORE),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(2)],
            ),
            jmp(IMAGE_ADDR + 2 * isize),
        ];
        let sites = vec![SiteMeta {
            instr_idx: 1,
            start: 0,
            len: tramp.len(),
            orig_pos: 4,
            tier: 16,
            injections: 1,
            calls: vec![],
        }];
        (image, tramp, sites)
    }

    fn run(image: &[Instruction], tramp: &[Instruction], sites: &[SiteMeta]) -> Vec<Diagnostic> {
        verify_instrs(&hal(), IMAGE_ADDR, image, TRAMP_ADDR, tramp, sites, &ext())
    }

    #[test]
    fn a_well_formed_image_passes() {
        let (image, tramp, sites) = good();
        assert_eq!(run(&image, &tramp, &sites), vec![]);
    }

    #[test]
    fn out_of_range_branch_is_rejected() {
        let (mut image, tramp, sites) = good();
        // Branch way past the end of every known region.
        image[0] = Instruction::new(Op::Bra, vec![Operand::Rel(0x4_0000)]);
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::BranchTarget && d.region == Region::Image));
    }

    #[test]
    fn misaligned_branch_target_is_rejected() {
        let (mut image, tramp, sites) = good();
        image[0] = Instruction::new(Op::Bra, vec![Operand::Rel(4)]); // mid-instruction
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::BranchTarget));
    }

    #[test]
    fn fall_through_off_the_image_end_is_rejected() {
        let (mut image, _tramp, _sites) = good();
        image.truncate(1); // image now ends in a plain IADD
        let d = run(&image, &[], &[]);
        assert!(d.iter().any(|d| d.kind == DiagKind::FallThrough && d.region == Region::Image));
    }

    #[test]
    fn guarded_terminator_still_falls_through() {
        let (mut image, tramp, sites) = good();
        let n = image.len();
        image[n - 1] = Instruction::new(Op::Exit, vec![])
            .with_guard(sass::Guard { pred: sass::Pred(0), negated: false });
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::FallThrough && d.region == Region::Image));
    }

    #[test]
    fn register_span_overflow_is_rejected() {
        let (mut image, tramp, sites) = good();
        // LDG.128 R253 spans R253..R256 — past the register file.
        image[0] = Instruction::new(
            Op::Ldg,
            vec![Operand::Reg(Reg(253)), Operand::MRef { base: Reg(8), offset: 0 }],
        )
        .with_mods(Mods { width: Width::B128, ..Mods::default() });
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::BadRegister));
    }

    #[test]
    fn bad_predicate_is_rejected() {
        let (mut image, tramp, sites) = good();
        image[0] = image[0].clone().with_guard(sass::Guard { pred: sass::Pred(9), negated: false });
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::BadPredicate));
    }

    #[test]
    fn malformed_operand_lists_are_rejected() {
        let (mut image, tramp, sites) = good();
        image[0] = Instruction::new(Op::Iadd, vec![Operand::Reg(Reg(4))]); // arity 1, needs 3
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::BadOperands));
    }

    #[test]
    fn unbalanced_frame_is_rejected() {
        let (image, mut tramp, sites) = good();
        tramp[3] = Instruction::nop(); // drop the restore call
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::UnbalancedFrame));
    }

    #[test]
    fn restore_without_save_is_rejected() {
        let (image, mut tramp, sites) = good();
        tramp[0] = Instruction::nop(); // drop the save call
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::RestoreWithoutSave));
    }

    #[test]
    fn tool_call_before_save_is_rejected() {
        let (image, mut tramp, sites) = good();
        tramp.swap(0, 2); // tool call now precedes the save
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::ReadBeforeSave));
    }

    #[test]
    fn save_area_read_before_save_is_rejected() {
        let (image, mut tramp, sites) = good();
        tramp[0] = Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(Reg(4)), Operand::MRef { base: Reg::SP, offset: 16 }],
        );
        let d = run(&image, &tramp, &sites);
        assert!(d.iter().any(|d| d.kind == DiagKind::ReadBeforeSave));
        assert!(
            d.iter()
                .any(|d| d.kind == DiagKind::UnbalancedFrame
                    || d.kind == DiagKind::RestoreWithoutSave)
        );
    }

    #[test]
    fn site_missing_terminal_jump_is_rejected() {
        let (image, mut tramp, sites) = good();
        let n = tramp.len();
        tramp[n - 1] = jmp(TRAMP_ADDR); // jumps inside the trampoline, not the image
        let d = run(&image, &tramp, &sites);
        assert!(d
            .iter()
            .any(|d| d.kind == DiagKind::FallThrough && d.region == Region::Trampoline));
    }

    // ----- Plan-consistency checks ------------------------------------

    use crate::codegen::CallMeta;

    /// A two-block original body (`IADD; BRA +0; IADD; EXIT` → blocks
    /// 0..2 and 2..4) for exercising the group-per-block rule.
    fn original() -> Vec<Instruction> {
        vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(4)), Operand::Reg(Reg(4)), Operand::Imm(1)],
            ),
            Instruction::new(Op::Bra, vec![Operand::Rel(0)]),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(1)],
            ),
            Instruction::new(Op::Exit, vec![]),
        ]
    }

    fn call_meta(multiplicity: u32, group: Vec<usize>) -> CallMeta {
        CallMeta {
            func: "f".into(),
            multiplicity,
            group,
            lowered: vec![],
            coalesce: true,
            inline: None,
            occ: None,
        }
    }

    fn run_plan(
        original: &[Instruction],
        tramp: &[Instruction],
        sites: &[SiteMeta],
        ext: &ExternalCode,
    ) -> Vec<Diagnostic> {
        // Default opts carry no occupancy model, so the claim check stays
        // inactive — exactly the plans the other tests model.
        verify_plan_instrs(&hal(), original, tramp, sites, &PlanOpts::default(), ext)
    }

    #[test]
    fn consistent_plan_metadata_passes() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![call_meta(2, vec![0, 1])]; // both in block 0..2
        assert_eq!(run_plan(&original(), &tramp, &sites, &ext()), vec![]);
    }

    #[test]
    fn multiplicity_must_match_the_group_size() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![call_meta(3, vec![0, 1])];
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::CoalesceMismatch));
    }

    #[test]
    fn group_must_be_anchored_at_the_site_and_sorted() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![call_meta(2, vec![1, 0])]; // not sorted / not anchored
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::CoalesceMismatch));
    }

    /// A conditional-skip body: `IADD; @P0 BRA +16; IADD; EXIT` → blocks
    /// 0..2, 2..3 (the guarded arm) and 3..4. The arm does not
    /// post-dominate the entry, so entry ↔ arm merges are illegal.
    fn conditional() -> Vec<Instruction> {
        let mut body = original();
        body[1] = Instruction::new(Op::Bra, vec![Operand::Rel(16)])
            .with_guard(sass::Guard { pred: sass::Pred(0), negated: false });
        body
    }

    #[test]
    fn coalesced_group_may_span_region_equivalent_blocks_only() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        // original()'s two blocks are control- and cycle-equivalent (the
        // branch is unconditional): a cross-block group is legal.
        sites[0].calls = vec![call_meta(2, vec![0, 2])];
        assert_eq!(run_plan(&original(), &tramp, &sites, &ext()), vec![]);
        // In the conditional body, site 2 executes only when P0 is false:
        // merging it into the entry block is rejected.
        let d = run_plan(&conditional(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::RegionMismatch));
        // The exit block (instr 3) post-dominates the entry again, so an
        // entry ↔ exit merge stays legal even in the conditional body.
        sites[0].calls = vec![call_meta(2, vec![0, 3])];
        assert_eq!(run_plan(&conditional(), &tramp, &sites, &ext()), vec![]);
        // A merge within one block remains fine.
        sites[0].instr_idx = 2;
        sites[0].calls = vec![call_meta(2, vec![2, 3])];
        assert_eq!(run_plan(&original(), &tramp, &sites, &ext()), vec![]);
    }

    /// A self-loop body: `IADD; @P0 BRA -32; EXIT` — block 0..2 cycles
    /// back to itself, block 2..3 runs once. Control-equivalent to the
    /// loop (entry dominates, exit post-dominates) but not
    /// cycle-equivalent, so merging across the loop boundary is illegal.
    fn looped() -> Vec<Instruction> {
        vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(4)), Operand::Reg(Reg(4)), Operand::Imm(1)],
            ),
            Instruction::new(Op::Bra, vec![Operand::Rel(-32)])
                .with_guard(sass::Guard { pred: sass::Pred(0), negated: false }),
            Instruction::new(Op::Exit, vec![]),
        ]
    }

    #[test]
    fn coalesced_group_may_not_cross_a_loop_boundary() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![call_meta(2, vec![0, 2])];
        let d = run_plan(&looped(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::RegionMismatch));
        // Within the loop block itself the merge is fine.
        sites[0].calls = vec![call_meta(2, vec![0, 1])];
        assert_eq!(run_plan(&looped(), &tramp, &sites, &ext()), vec![]);
    }

    #[test]
    fn lowered_calls_anchor_at_the_fall_through_slot() {
        let (_, tramp, mut sites) = good();
        // A lowered After-point from origin 0 is emitted at site 1.
        sites[0].instr_idx = 1;
        sites[0].calls = vec![CallMeta { lowered: vec![0], ..call_meta(1, vec![0]) }];
        assert_eq!(run_plan(&original(), &tramp, &sites, &ext()), vec![]);
        // Without the lowered marker the same metadata is mis-anchored.
        sites[0].calls = vec![call_meta(1, vec![0])];
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::CoalesceMismatch));
    }

    #[test]
    fn lowered_origin_must_fall_through_within_its_block() {
        let (_, tramp, mut sites) = good();
        // Origin 1 is the block terminator: its fall-through slot (2) is
        // in the next block, so the claimed lowering crossed a branch.
        sites[0].instr_idx = 2;
        sites[0].calls = vec![CallMeta { lowered: vec![1], ..call_meta(1, vec![1]) }];
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::AfterMismatch));
    }

    #[test]
    fn lowered_origins_must_be_group_members() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![CallMeta { lowered: vec![3], ..call_meta(2, vec![0, 1]) }];
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::AfterMismatch));
    }

    #[test]
    fn lowering_without_a_cfg_is_rejected() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 1;
        sites[0].calls = vec![CallMeta { lowered: vec![0], ..call_meta(1, vec![0]) }];
        let icf = vec![
            Instruction::new(Op::Brx, vec![Operand::Reg(Reg(4))]),
            Instruction::new(Op::Exit, vec![]),
        ];
        let d = run_plan(&icf, &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::AfterMismatch));
    }

    #[test]
    fn merging_without_a_cfg_is_rejected() {
        let (_, tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        sites[0].calls = vec![call_meta(2, vec![0, 1])];
        // BRX defeats static partitioning — merged groups are then illegal.
        let icf = vec![
            Instruction::new(Op::Brx, vec![Operand::Reg(Reg(4))]),
            Instruction::new(Op::Exit, vec![]),
        ];
        let d = run_plan(&icf, &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::CoalesceMismatch));
    }

    #[test]
    fn inline_splice_must_match_the_loaded_body() {
        let (_, mut tramp, mut sites) = good();
        let fn_body = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(2)],
            ),
            Instruction::new(Op::Ret, vec![]),
        ];
        let mut e = ext();
        e.tool_bodies.push(("f".into(), Arc::new(fn_body)));
        // Splice the body over the tool call: IADD at 2, NOP at 3 (the
        // restore moves to where good() had it — reuse slot 4's IADD as the
        // body head and the old tool-call slot for the NOP).
        tramp[2] = Instruction::new(
            Op::Iadd,
            vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(2)],
        );
        tramp[3] = Instruction::nop();
        tramp[4] = jcal(RESTORE);
        sites[0].orig_pos = 4; // the restore call is not the original; irrelevant here
        sites[0].calls =
            vec![CallMeta { inline: Some((2, 2)), ..call_meta(1, vec![sites[0].instr_idx]) }];
        assert_eq!(run_plan(&original(), &tramp, &sites, &e), vec![]);

        // A drifted splice (wrong immediate) is flagged.
        tramp[2] = Instruction::new(
            Op::Iadd,
            vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(3)],
        );
        let d = run_plan(&original(), &tramp, &sites, &e);
        assert!(d.iter().any(|d| d.kind == DiagKind::InlineMismatch));

        // So is a splice whose tool body was never retained.
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::InlineMismatch));
    }

    #[test]
    fn pressure_exceeding_splice_is_rejected() {
        // Original body where R20 is live across instruction 1 (defined at
        // 0, read at 2).
        let original = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(1)],
            ),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(4)), Operand::Reg(Reg(4)), Operand::Imm(1)],
            ),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(20)), Operand::Imm(1)],
            ),
            Instruction::new(Op::Exit, vec![]),
        ];
        // A loaded body that writes R20 — byte-matched by the splice, so
        // `InlineMismatch` stays silent; only the recomputed liveness
        // catches that tier 16 does not cover the clobber.
        let fn_body = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(2)],
            ),
            Instruction::new(Op::Ret, vec![]),
        ];
        let mut e = ext();
        e.tool_bodies.push(("f".into(), Arc::new(fn_body)));
        let (_, mut tramp, mut sites) = good();
        tramp[2] = Instruction::new(
            Op::Iadd,
            vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(2)],
        );
        tramp[3] = Instruction::nop();
        tramp[4] = jcal(RESTORE);
        sites[0].instr_idx = 1;
        sites[0].orig_pos = 4;
        sites[0].calls = vec![CallMeta { inline: Some((2, 2)), ..call_meta(1, vec![1]) }];
        let d = run_plan(&original, &tramp, &sites, &e);
        assert!(d.iter().any(|d| d.kind == DiagKind::PressureExceeded), "{d:?}");
        assert!(!d.iter().any(|d| d.kind == DiagKind::InlineMismatch), "{d:?}");

        // The same splice where R20 is dead (its last read is instruction
        // 2, so nothing is live across the exit) is fine.
        sites[0].instr_idx = 3;
        sites[0].calls = vec![CallMeta { inline: Some((2, 2)), ..call_meta(1, vec![3]) }];
        let d = run_plan(&original, &tramp, &sites, &e);
        assert!(!d.iter().any(|d| d.kind == DiagKind::PressureExceeded), "{d:?}");
    }

    #[test]
    fn tampered_occupancy_claims_are_rejected() {
        // Same tampered-image construction as
        // `pressure_exceeding_splice_is_rejected`: R20 live across
        // instruction 1, a spliced body writing R20. With the site tier
        // raised to 32 the splice is *sound* — what is under test here is
        // the occupancy claim riding on the call metadata.
        let original = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(1)],
            ),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(4)), Operand::Reg(Reg(4)), Operand::Imm(1)],
            ),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(20)), Operand::Imm(1)],
            ),
            Instruction::new(Op::Exit, vec![]),
        ];
        let fn_body = vec![
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(2)],
            ),
            Instruction::new(Op::Ret, vec![]),
        ];
        let mut e = ext();
        e.tool_bodies.push(("f".into(), Arc::new(fn_body)));
        let (_, mut tramp, mut sites) = good();
        tramp[2] = Instruction::new(
            Op::Iadd,
            vec![Operand::Reg(Reg(20)), Operand::Reg(Reg(20)), Operand::Imm(2)],
        );
        tramp[3] = Instruction::nop();
        tramp[4] = jcal(RESTORE);
        sites[0].instr_idx = 1;
        sites[0].orig_pos = 4;
        sites[0].tier = 32;
        let occ_opts = PlanOpts {
            occupancy: Some(sass::occupancy::OccupancyCfg::volta(128)),
            ..PlanOpts::default()
        };
        let check = |occ: Option<(u16, u16)>, sites: &mut [SiteMeta], opts: &PlanOpts| {
            sites[0].calls = vec![CallMeta { inline: Some((2, 2)), occ, ..call_meta(1, vec![1]) }];
            verify_plan_instrs(&hal(), &original, &tramp, sites, opts, &e)
        };

        // The honest claim — tier 16 → 32, flat on Volta at block dim 128,
        // covering the recomputed R20 demand — passes cleanly.
        let d = check(Some((16, 32)), &mut sites, &occ_opts);
        assert!(!d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");
        assert_eq!(d, vec![], "sound occupancy-gated splice must verify: {d:?}");

        // A missing claim on an occupancy-gated plan is a forgery.
        let d = check(None, &mut sites, &occ_opts);
        assert!(d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");

        // Understating the after-tier (16 covers nothing the recomputed
        // liveness demands) is a forgery.
        let d = check(Some((16, 16)), &mut sites, &occ_opts);
        assert!(d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");

        // Tiers off the save ladder are a forgery.
        let d = check(Some((16, 48)), &mut sites, &occ_opts);
        assert!(d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");

        // Inflating the after-tier past the flat region (16 → 64 halves
        // blocks/SM at block dim 128) claims a splice the gate would have
        // declined.
        let d = check(Some((16, 64)), &mut sites, &occ_opts);
        assert!(d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");

        // Without an occupancy model the claim check is inactive: the
        // same claim-less metadata verifies under tier-only opts.
        let d = check(None, &mut sites, &PlanOpts::default());
        assert!(!d.iter().any(|d| d.kind == DiagKind::OccupancyMismatch), "{d:?}");
    }

    #[test]
    fn escaping_diamond_splice_is_rejected() {
        // A "loaded" body whose guarded branch escapes past its RET: the
        // shape classifier rejects it, so even a byte-exact splice of it
        // must be refused — it would run foreign code inside the
        // save/restore bracket.
        let isize = hal().instruction_size() as i64;
        let fn_body = vec![
            Instruction::new(Op::Bra, vec![Operand::Rel(4 * isize)])
                .with_guard(sass::Guard { pred: sass::Pred(0), negated: false }),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(5)), Operand::Reg(Reg(5)), Operand::Imm(2)],
            ),
            Instruction::new(Op::Ret, vec![]),
        ];
        let mut e = ext();
        e.tool_bodies.push(("f".into(), Arc::new(fn_body.clone())));
        let (_, mut tramp, mut sites) = good();
        tramp[2] = fn_body[0].clone();
        tramp[3] = fn_body[1].clone();
        tramp[4] = Instruction::nop();
        tramp.insert(5, jcal(RESTORE));
        sites[0].len = tramp.len();
        sites[0].orig_pos = 5;
        sites[0].calls =
            vec![CallMeta { inline: Some((2, 3)), ..call_meta(1, vec![sites[0].instr_idx]) }];
        let d = run_plan(&original(), &tramp, &sites, &e);
        assert!(d.iter().any(|d| d.kind == DiagKind::DiamondMismatch), "{d:?}");
        assert!(!d.iter().any(|d| d.kind == DiagKind::InlineMismatch), "{d:?}");

        // The contained diamond — the branch landing exactly on the
        // splice's RET slot — is the accepted shape.
        let contained = vec![
            Instruction::new(Op::Bra, vec![Operand::Rel(isize)])
                .with_guard(sass::Guard { pred: sass::Pred(0), negated: false }),
            fn_body[1].clone(),
            Instruction::new(Op::Ret, vec![]),
        ];
        let mut e = ext();
        e.tool_bodies.push(("f".into(), Arc::new(contained.clone())));
        tramp[2] = contained[0].clone();
        let d = run_plan(&original(), &tramp, &sites, &e);
        assert!(!d.iter().any(|d| d.kind == DiagKind::DiamondMismatch), "{d:?}");
    }

    #[test]
    fn save_area_access_beyond_the_tier_is_rejected() {
        let (_, mut tramp, mut sites) = good();
        sites[0].instr_idx = 0;
        // Tier 16 on Volta addresses slots 0..=17 (16 regs + preds +
        // barrier state); slot 18 is out of frame.
        let slots = frame_slots(16, &hal());
        assert_eq!(slots, 18);
        tramp[4] = Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(Reg(4)), Operand::MRef { base: Reg::SP, offset: 4 * slots as i32 }],
        );
        sites[0].orig_pos = 1; // the offending LDL is not the relocated original
        let d = run_plan(&original(), &tramp, &sites, &ext());
        assert!(d.iter().any(|d| d.kind == DiagKind::TierExceeded));
        // The slot just below the bound is fine.
        tramp[4] = Instruction::new(
            Op::Ldl,
            vec![
                Operand::Reg(Reg(4)),
                Operand::MRef { base: Reg::SP, offset: 4 * (slots as i32 - 1) },
            ],
        );
        assert_eq!(run_plan(&original(), &tramp, &sites, &ext()), vec![]);
    }

    #[test]
    fn relocated_original_may_use_the_stack() {
        let (image, mut tramp, mut sites) = good();
        // The relocated original is a local store at depth 0 — legitimate.
        tramp[4] = Instruction::new(
            Op::Stl,
            vec![Operand::MRef { base: Reg::SP, offset: 8 }, Operand::Reg(Reg(5))],
        );
        sites[0].orig_pos = 4;
        assert_eq!(run(&image, &tramp, &sites), vec![]);
    }
}
