//! JIT-compilation overhead accounting (paper §5.2, Figure 5).
//!
//! NVBit's dynamic-recompilation cost decomposes into six components:
//! (1) retrieving the original GPU code, (2) disassembling it, (3)
//! converting it into the `Instr` views handed to the tool, (4) running the
//! tool's host code, (5) generating the instrumented code and trampolines,
//! and (6) swapping code versions. The core timestamps each component so
//! the Figure 5 benchmark can regenerate the breakdown.

use std::collections::BTreeMap;
use std::time::Duration;

/// One of the six JIT-compilation overhead components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum JitComponent {
    /// (1) Reading the original code bytes from device memory.
    Retrieve,
    /// (2) Decoding the binary into machine instructions.
    Disassemble,
    /// (3) Building the `Instr` views and basic blocks for the tool.
    Convert,
    /// (4) Executing the tool's host-side instrumentation code.
    UserCode,
    /// (5) Running the code generator (trampolines + instrumented copy).
    Codegen,
    /// (6) Swapping original/instrumented code in device memory.
    Swap,
}

impl JitComponent {
    /// All components in the paper's order.
    pub const ALL: [JitComponent; 6] = [
        JitComponent::Retrieve,
        JitComponent::Disassemble,
        JitComponent::Convert,
        JitComponent::UserCode,
        JitComponent::Codegen,
        JitComponent::Swap,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            JitComponent::Retrieve => "retrieve",
            JitComponent::Disassemble => "disassemble",
            JitComponent::Convert => "convert",
            JitComponent::UserCode => "user-code",
            JitComponent::Codegen => "codegen",
            JitComponent::Swap => "swap",
        }
    }
}

/// Accumulated durations per component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JitOverhead {
    durations: [Duration; 6],
}

impl JitOverhead {
    /// Adds time to a component.
    pub fn add(&mut self, c: JitComponent, d: Duration) {
        let i = JitComponent::ALL.iter().position(|x| *x == c).unwrap();
        self.durations[i] += d;
    }

    /// Accumulated time of a component.
    pub fn of(&self, c: JitComponent) -> Duration {
        let i = JitComponent::ALL.iter().position(|x| *x == c).unwrap();
        self.durations[i]
    }

    /// Total across all components.
    pub fn total(&self) -> Duration {
        self.durations.iter().sum()
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: &JitOverhead) {
        for (a, b) in self.durations.iter_mut().zip(&other.durations) {
            *a += *b;
        }
    }

    /// Percentage breakdown (sums to ~100 when non-empty).
    pub fn breakdown(&self) -> Vec<(JitComponent, f64)> {
        let total = self.total().as_secs_f64();
        JitComponent::ALL
            .iter()
            .map(|c| {
                let share =
                    if total > 0.0 { 100.0 * self.of(*c).as_secs_f64() / total } else { 0.0 };
                (*c, share)
            })
            .collect()
    }
}

/// Per-function and aggregate overhead report.
#[derive(Debug, Clone, Default)]
pub struct OverheadReport {
    /// Per-function overhead, keyed by function name.
    pub per_function: BTreeMap<String, JitOverhead>,
    /// Aggregate across functions.
    pub total: JitOverhead,
}

impl OverheadReport {
    /// Records time against a function and the aggregate.
    pub fn add(&mut self, func: &str, c: JitComponent, d: Duration) {
        self.per_function.entry(func.to_string()).or_default().add(c, d);
        self.total.add(c, d);
    }
}

impl std::fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "JIT-compilation overhead ({} functions):", self.per_function.len())?;
        for (c, pct) in self.total.breakdown() {
            writeln!(f, "  {:12} {:>10.1?} ({pct:5.1}%)", c.label(), self.total.of(c))?;
        }
        writeln!(f, "  {:12} {:>10.1?}", "total", self.total.total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_accumulate_and_break_down() {
        let mut o = JitOverhead::default();
        o.add(JitComponent::Disassemble, Duration::from_millis(30));
        o.add(JitComponent::Codegen, Duration::from_millis(10));
        o.add(JitComponent::Disassemble, Duration::from_millis(30));
        assert_eq!(o.of(JitComponent::Disassemble), Duration::from_millis(60));
        assert_eq!(o.total(), Duration::from_millis(70));
        let bd = o.breakdown();
        let dis = bd.iter().find(|(c, _)| *c == JitComponent::Disassemble).unwrap().1;
        assert!((dis - 85.7).abs() < 0.5, "{dis}");
    }

    #[test]
    fn report_tracks_per_function_and_total() {
        let mut r = OverheadReport::default();
        r.add("a", JitComponent::Swap, Duration::from_micros(5));
        r.add("b", JitComponent::Swap, Duration::from_micros(7));
        assert_eq!(r.per_function.len(), 2);
        assert_eq!(r.total.of(JitComponent::Swap), Duration::from_micros(12));
        let text = r.to_string();
        assert!(text.contains("swap"));
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let o = JitOverhead::default();
        assert!(o.breakdown().iter().all(|(_, p)| *p == 0.0));
    }
}
