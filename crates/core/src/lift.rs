//! The Instruction Lifter: raw SASS bytes → [`Instr`] views (paper §5.1).

use crate::hal::Hal;
use crate::instr::Instr;
use crate::Result;
use cuda::FunctionInfo;

/// A lifted function body, cached by the core.
#[derive(Debug, Clone)]
pub struct Lifted {
    /// The function's device address at lift time.
    pub addr: u64,
    /// One view per SASS instruction, in program order.
    pub instrs: Vec<Instr>,
    /// Basic blocks as instruction-index ranges, or the reason indirect
    /// control flow defeats static partitioning (the paper's ICF fallback).
    pub basic_blocks: std::result::Result<Vec<sass::cfg::BasicBlock>, sass::CfgFailure>,
    /// Liveness / reaching-definitions analysis over the body; `None`
    /// exactly when `basic_blocks` failed (the analysis needs the CFG).
    pub dataflow: Option<sass::Dataflow>,
    /// Dominator/post-dominator analysis and coalescing-region partition
    /// over the body; `None` exactly when `basic_blocks` failed.
    pub dom: Option<sass::Dom>,
}

/// Lifts the function's current code bytes.
///
/// # Errors
///
/// Propagates decode failures (corrupt code).
pub fn lift(hal: &Hal, info: &FunctionInfo, code: &[u8]) -> Result<Lifted> {
    let raw = hal.disassemble(code)?;
    let isize = hal.instruction_size();
    let blocks = sass::cfg::basic_blocks(&raw, hal.arch());
    let dataflow = sass::Dataflow::analyze(&raw, hal.arch()).ok();
    let dom = blocks.as_ref().ok().map(|b| sass::Dom::analyze(&raw, b, hal.arch()));
    let mut instrs = Vec::with_capacity(raw.len());
    for (idx, inner) in raw.into_iter().enumerate() {
        let line_info = info
            .line_table
            .iter()
            .rev()
            .find(|l| l.instr_index <= idx)
            .map(|l| (l.file.clone(), l.line));
        instrs.push(Instr::new(idx, idx as u64 * isize, inner, line_info));
    }
    Ok(Lifted { addr: info.addr, instrs, basic_blocks: blocks, dataflow, dom })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{CuFunction, CuModule};
    use ptx::LineInfo;
    use sass::Arch;

    fn fake_info(line_table: Vec<LineInfo>) -> FunctionInfo {
        FunctionInfo {
            handle: CuFunction::from_raw(1),
            name: "k".into(),
            module: CuModule::from_raw(1),
            library: false,
            kind: ptx::FunctionKind::Entry,
            addr: 0x1000,
            code_len: 0,
            arch: Arch::Volta,
            reg_count: 8,
            stack_size: 0,
            shared_size: 0,
            params: vec![],
            related: vec![],
            line_table,
            local_override: 0,
        }
    }

    #[test]
    fn lift_produces_one_view_per_instruction_with_offsets() {
        let hal = Hal::new(Arch::Volta);
        let code = hal
            .assemble_text(
                "S2R R4, SR_TID.X ;\n\
                 ISETP.GE.S32 P0, R4, 0x10 ;\n\
                 @P0 BRA .+0x10 ;\n\
                 IADD R4, R4, 0x1 ;\n\
                 EXIT ;",
            )
            .unwrap();
        let lifted = lift(&hal, &fake_info(vec![]), &code).unwrap();
        assert_eq!(lifted.instrs.len(), 5);
        assert_eq!(lifted.instrs[2].offset, 32);
        assert!(lifted.instrs[2].has_guard());
        // Blocks: [0..3], [3..4] (branch target of .+0x10 = idx 4), [4..5].
        let blocks = lifted.basic_blocks.as_ref().unwrap();
        assert_eq!(blocks.len(), 3);
        assert!(lifted.dataflow.is_some());
        assert!(lifted.dom.is_some());
    }

    #[test]
    fn icf_falls_back_to_flat_view() {
        let hal = Hal::new(Arch::Kepler);
        let code = hal.assemble_text("BRX R4 ;\nEXIT ;").unwrap();
        let lifted = lift(&hal, &fake_info(vec![]), &code).unwrap();
        assert_eq!(
            lifted.basic_blocks,
            Err(sass::CfgFailure::IndirectBranch { index: 0 }),
            "ICF must surface the structured failure"
        );
        assert!(lifted.dataflow.is_none());
        assert!(lifted.dom.is_none());
        assert_eq!(lifted.instrs.len(), 2);
    }

    #[test]
    fn line_info_attaches_from_the_nearest_preceding_entry() {
        let hal = Hal::new(Arch::Pascal);
        let code = hal.assemble_text("NOP ;\nNOP ;\nNOP ;\nEXIT ;").unwrap();
        let lt = vec![
            LineInfo { instr_index: 0, file: "a.cu".into(), line: 5 },
            LineInfo { instr_index: 2, file: "a.cu".into(), line: 9 },
        ];
        let lifted = lift(&hal, &fake_info(lt), &code).unwrap();
        assert_eq!(lifted.instrs[0].line_info, Some(("a.cu".into(), 5)));
        assert_eq!(lifted.instrs[1].line_info, Some(("a.cu".into(), 5)));
        assert_eq!(lifted.instrs[2].line_info, Some(("a.cu".into(), 9)));
        assert_eq!(lifted.instrs[3].line_info, Some(("a.cu".into(), 9)));
    }
}
