//! The Hardware Abstraction Layer.
//!
//! Initialized when a context starts on a device, the HAL records the
//! device-specific facts every other NVBit component consults — instruction
//! size and alignment, register budget, ABI version (which decides whether
//! convergence-barrier state participates in save/restore) — and hands out
//! the family's assembler/disassembler (paper §5.1).

use sass::codec::{codec_for, Codec};
use sass::{Arch, Instruction};

/// Per-architecture facts and codec access.
#[derive(Clone, Copy)]
pub struct Hal {
    arch: Arch,
}

impl Hal {
    /// Creates the HAL for a device architecture.
    pub fn new(arch: Arch) -> Hal {
        Hal { arch }
    }

    /// The architecture.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// Encoded instruction size in bytes (8 on `Enc64` families, 16 on
    /// Volta-class).
    pub fn instruction_size(&self) -> u64 {
        self.arch.instruction_size() as u64
    }

    /// Code placement alignment in bytes.
    pub fn code_alignment(&self) -> u64 {
        self.arch.code_alignment() as u64
    }

    /// General-purpose registers available per thread.
    pub fn gpr_count(&self) -> u16 {
        self.arch.gpr_count()
    }

    /// ABI version: 2 on Volta-class devices, whose convergence-barrier
    /// state must be saved around injected functions.
    pub fn abi_version(&self) -> u8 {
        self.arch.abi_version()
    }

    /// True when the save/restore routines must include barrier state.
    pub fn saves_barrier_state(&self) -> bool {
        self.abi_version() >= 2
    }

    /// The family codec (assembler/disassembler at the binary level).
    pub fn codec(&self) -> &'static dyn Codec {
        codec_for(self.arch)
    }

    /// Disassembles a raw code buffer.
    ///
    /// # Errors
    ///
    /// Propagates decode failures.
    pub fn disassemble(&self, code: &[u8]) -> sass::Result<Vec<Instruction>> {
        self.codec().decode_stream(code)
    }

    /// Assembles instructions into raw code.
    ///
    /// # Errors
    ///
    /// Propagates encode failures (e.g. out-of-range fields).
    pub fn assemble(&self, instrs: &[Instruction]) -> sass::Result<Vec<u8>> {
        self.codec().encode_stream(instrs)
    }

    /// Assembles textual assembly for this architecture (labels resolve with
    /// this family's instruction size).
    ///
    /// # Errors
    ///
    /// Propagates parse/encode failures.
    pub fn assemble_text(&self, text: &str) -> sass::Result<Vec<u8>> {
        let instrs = sass::asm::assemble_arch(text, self.arch)?;
        self.assemble(&instrs)
    }
}

impl std::fmt::Debug for Hal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hal")
            .field("arch", &self.arch)
            .field("instruction_size", &self.instruction_size())
            .field("abi_version", &self.abi_version())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hal_reports_family_differences() {
        let k = Hal::new(Arch::Kepler);
        let v = Hal::new(Arch::Volta);
        assert_eq!(k.instruction_size(), 8);
        assert_eq!(v.instruction_size(), 16);
        assert!(!k.saves_barrier_state());
        assert!(v.saves_barrier_state());
        assert_eq!(k.gpr_count(), 255);
    }

    #[test]
    fn assemble_disassemble_roundtrip_through_hal() {
        for arch in Arch::ALL {
            let hal = Hal::new(arch);
            let code = hal.assemble_text("MOV32I R4, 0x2a ;\nEXIT ;").unwrap();
            assert_eq!(code.len() as u64, 2 * hal.instruction_size());
            let instrs = hal.disassemble(&code).unwrap();
            assert_eq!(instrs.len(), 2);
            assert_eq!(instrs[1].op, sass::Op::Exit);
        }
    }
}
