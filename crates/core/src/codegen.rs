//! The Code Generator: builds the instrumented copy of a function and its
//! trampolines (paper §5.1, Figure 4).
//!
//! For every instrumented instruction the generator:
//!
//! 1. substitutes the instruction with an unconditional `JMP` to a
//!    trampoline (preserving the instruction layout — both code versions
//!    have the same size and addresses, so absolute jumps keep working and
//!    switching versions is a plain memcpy);
//! 2. emits the trampoline: for each injection a call to the save routine,
//!    the device-API frame pointer setup, the argument materialization
//!    (reading the *saved* register values, never live ones — no WAR
//!    hazards with ABI argument registers), the call to the tool function
//!    and the restore call;
//! 3. re-emits the relocated original instruction with its PC-relative
//!    offset adjusted (or a `NOP` when `remove_orig` was requested);
//! 4. jumps back to the next original instruction.

use crate::hal::Hal;
use crate::saverestore::{frame_bytes, tier_for, Routines};
use crate::spec::{Arg, FuncSpec, IPoint, Injection};
use crate::{NvbitError, Result};
use cuda::FunctionInfo;
use sass::{Instruction, Mods, Op, Operand, Reg};
use std::collections::HashMap;

/// A tool device function loaded by the Tool Functions Loader.
#[derive(Debug, Clone, Copy)]
pub struct ToolFn {
    /// Device address of the first instruction.
    pub addr: u64,
    /// General-purpose registers the function uses.
    pub reg_count: u32,
    /// Stack bytes the function needs.
    pub stack_size: u32,
}

/// The output of code generation for one function.
#[derive(Debug, Clone)]
pub struct InstrumentedImage {
    /// Pristine original code (for swapping back).
    pub original: Vec<u8>,
    /// Instrumented copy — byte-for-byte the same size as the original.
    pub instrumented: Vec<u8>,
    /// Device address of the trampoline region.
    pub tramp_addr: u64,
    /// The trampoline bytes (the caller uploads them to `tramp_addr`).
    pub tramp_code: Vec<u8>,
    /// Extra per-thread local memory every launch of the instrumented
    /// version needs (save frame + tool stack frames).
    pub extra_local: u32,
    /// The save tier selected.
    pub tier: u16,
}

/// Runs code generation. `alloc` provides device memory for the trampoline
/// region (the bulk allocation the paper mentions); `routines` must cover
/// every tier.
///
/// # Errors
///
/// [`NvbitError::UnknownToolFunction`] for unregistered injections,
/// [`NvbitError::BadRequest`] for argument-ABI violations and
/// [`NvbitError::Encode`] when the target family cannot encode the result.
#[allow(clippy::too_many_arguments)] // the paper's six codegen inputs + allocator
pub fn generate(
    hal: &Hal,
    info: &FunctionInfo,
    original: &[Instruction],
    original_code: &[u8],
    spec: &FuncSpec,
    tool_fns: &HashMap<String, ToolFn>,
    routines: &HashMap<u16, Routines>,
    mut alloc: impl FnMut(u64) -> Result<u64>,
) -> Result<InstrumentedImage> {
    let isize = hal.instruction_size();

    // Validate sites and resolve tool functions.
    for (&idx, injections) in &spec.sites {
        if idx >= original.len() {
            return Err(NvbitError::BadInstrIndex { index: idx, len: original.len() });
        }
        for inj in injections {
            if !tool_fns.contains_key(&inj.func) {
                return Err(NvbitError::UnknownToolFunction(inj.func.clone()));
            }
        }
    }
    for &idx in &spec.removed {
        if idx >= original.len() {
            return Err(NvbitError::BadInstrIndex { index: idx, len: original.len() });
        }
    }

    // Select the save tier: cover the original function's registers, every
    // injected function's registers, the ABI argument registers, and any
    // register the tool asks to read.
    let mut needed: u32 = info.reg_count.max(16);
    let mut tool_stack_max: u32 = 0;
    for injections in spec.sites.values() {
        for inj in injections {
            let tf = &tool_fns[&inj.func];
            needed = needed.max(tf.reg_count);
            tool_stack_max = tool_stack_max.max(tf.stack_size);
            for arg in &inj.args {
                match arg {
                    Arg::RegVal(r) => needed = needed.max(*r as u32 + 1),
                    Arg::RegVal64(r) => needed = needed.max(*r as u32 + 2),
                    _ => {}
                }
            }
        }
    }
    let tier = tier_for(needed.min(255) as u16);
    let routine = *routines
        .get(&tier)
        .ok_or_else(|| NvbitError::BadRequest(format!("no save routine for tier {tier}")))?;
    let frame = frame_bytes(tier, hal);

    // Phase 1: measure each trampoline with a placeholder base address.
    let mut lengths: Vec<(usize, u64)> = Vec::new(); // (site, instr count)
    let mut cursor = 0u64;
    for &idx in spec.sites.keys() {
        let instrs = emit_site(hal, info, original, spec, tool_fns, &routine, tier, idx, 0)?;
        lengths.push((idx, instrs.len() as u64));
        cursor += instrs.len() as u64;
    }
    let tramp_len = cursor * isize;
    let tramp_addr = alloc(tramp_len.max(isize))?;

    // Phase 2: emit with real addresses.
    let mut tramp_instrs: Vec<Instruction> = Vec::with_capacity(cursor as usize);
    let mut site_addr: HashMap<usize, u64> = HashMap::new();
    let mut pc = tramp_addr;
    for &(idx, len) in &lengths {
        site_addr.insert(idx, pc);
        let instrs = emit_site(hal, info, original, spec, tool_fns, &routine, tier, idx, pc)?;
        debug_assert_eq!(instrs.len() as u64, len);
        tramp_instrs.extend(instrs);
        pc += len * isize;
    }
    let tramp_code = hal.assemble(&tramp_instrs)?;

    // Instrumented copy: original with instrumented sites replaced by
    // unconditional jumps into the trampolines; removed-but-uninstrumented
    // sites become NOPs in place.
    let mut patched = original.to_vec();
    for &idx in spec.sites.keys() {
        patched[idx] = Instruction::new(Op::Jmp, vec![Operand::Abs(site_addr[&idx])]);
    }
    for &idx in &spec.removed {
        if !spec.sites.contains_key(&idx) {
            patched[idx] = Instruction::nop();
        }
    }
    let instrumented = hal.assemble(&patched)?;
    debug_assert_eq!(instrumented.len(), original_code.len());

    Ok(InstrumentedImage {
        original: original_code.to_vec(),
        instrumented,
        tramp_addr,
        tramp_code,
        extra_local: frame + tool_stack_max + 128,
        tier,
    })
}

/// The assembled trampoline bytes (phase-2 output) are written by the
/// caller; this emits one site's trampoline instruction sequence.
#[allow(clippy::too_many_arguments)]
fn emit_site(
    hal: &Hal,
    info: &FunctionInfo,
    original: &[Instruction],
    spec: &FuncSpec,
    tool_fns: &HashMap<String, ToolFn>,
    routine: &Routines,
    tier: u16,
    idx: usize,
    tramp_pc: u64,
) -> Result<Vec<Instruction>> {
    let isize = hal.instruction_size();
    let next_pc = info.addr + (idx as u64 + 1) * isize;
    let injections = &spec.sites[&idx];
    let mut out: Vec<Instruction> = Vec::new();

    for inj in injections.iter().filter(|i| i.ipoint == IPoint::Before) {
        emit_injection(hal, original, routine, tier, idx, inj, &tool_fns[&inj.func], &mut out)?;
    }

    // The relocated original instruction (Figure 4, step 5) — a NOP when
    // removed (the PROXY-emulation path of §6.3).
    if spec.removed.contains(&idx) {
        out.push(Instruction::nop());
    } else {
        let mut orig = original[idx].clone();
        if let Some(rel) = orig.rel_target() {
            // Critically, relative control flow must be re-relativized to
            // its new home (Figure 4's "offset must be adjusted").
            let abs_target = (info.addr + (idx as u64 + 1) * isize).wrapping_add(rel as u64);
            let reloc_pc = tramp_pc + out.len() as u64 * isize;
            orig.set_rel_target(abs_target.wrapping_sub(reloc_pc + isize) as i64);
        }
        out.push(orig);
    }

    for inj in injections.iter().filter(|i| i.ipoint == IPoint::After) {
        emit_injection(hal, original, routine, tier, idx, inj, &tool_fns[&inj.func], &mut out)?;
    }

    // Back to the instruction after the instrumented one (Figure 4, step 6).
    out.push(Instruction::new(Op::Jmp, vec![Operand::Abs(next_pc)]));
    Ok(out)
}

/// Emits one injection: save, frame pointer, arguments, call, restore.
///
/// With `pred_filter` set on a guarded site, the whole sequence is wrapped
/// in an `SSY`-bracketed diamond so that guard-false lanes never enter the
/// injected function (the paper's §7 "predicate matching" extension):
///
/// ```text
///       SSY  L_skip
/// @!Pg  BRA  L_other        ; guard-false lanes take their own path
///       <save / args / call / restore>
///       SYNC                ; guard-true path done
/// L_other: SYNC             ; guard-false path done
/// L_skip:  ...
/// ```
#[allow(clippy::too_many_arguments)]
fn emit_injection(
    hal: &Hal,
    original: &[Instruction],
    routine: &Routines,
    tier: u16,
    idx: usize,
    inj: &Injection,
    tool: &ToolFn,
    out: &mut Vec<Instruction>,
) -> Result<()> {
    let guard = original[idx].guard;
    if inj.pred_filter && !guard.is_always() {
        let isize = hal.instruction_size() as i64;
        let barrier = if hal.saves_barrier_state() { 1 } else { 0 };
        let mods = Mods { barrier, ..Mods::default() };
        // Emit the body first to learn its length, then splice the wrapper.
        let mut body = Vec::new();
        let plain = Injection { pred_filter: false, ..inj.clone() };
        emit_injection(hal, original, routine, tier, idx, &plain, tool, &mut body)?;
        let n = body.len() as i64;
        out.push(Instruction::new(Op::Ssy, vec![Operand::Rel((n + 3) * isize)]).with_mods(mods));
        out.push(
            Instruction::new(Op::Bra, vec![Operand::Rel((n + 1) * isize)])
                .with_guard(sass::Guard { pred: guard.pred, negated: !guard.negated }),
        );
        out.extend(body);
        out.push(Instruction::new(Op::Sync, vec![]).with_mods(mods));
        out.push(Instruction::new(Op::Sync, vec![]).with_mods(mods));
        return Ok(());
    }

    let frame = frame_bytes(tier, hal);
    let pred_mask_off = 4 * tier as i32;
    let scratch = Reg(3);

    // 1. Save the thread state.
    out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(routine.save_addr)]));
    // 2. Device-API frame pointer: R0 = save-area base.
    out.push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(0)), Operand::Reg(Reg::SP)]));

    // 3. Materialize arguments into the ABI registers from the *saved*
    //    state.
    let mut slot: u8 = 4;
    let emit_pred_value = |p: u8, negated: bool, slot: u8, out: &mut Vec<Instruction>| {
        if p >= 7 {
            // PT: constant true (negated PT is constant false).
            out.push(Instruction::new(
                Op::Mov32i,
                vec![Operand::Reg(Reg(slot)), Operand::Imm(i64::from(!negated))],
            ));
            return;
        }
        out.push(Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(scratch), Operand::MRef { base: Reg::SP, offset: pred_mask_off }],
        ));
        out.push(
            Instruction::new(
                Op::Shr,
                vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(p as i64)],
            )
            .with_mods(Mods { itype: sass::op::IType::U32, ..Mods::default() }),
        );
        out.push(
            Instruction::new(
                Op::Lop,
                vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(1)],
            )
            .with_mods(Mods { sub: sass::SubOp::And, ..Mods::default() }),
        );
        if negated {
            out.push(
                Instruction::new(
                    Op::Lop,
                    vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(1)],
                )
                .with_mods(Mods { sub: sass::SubOp::Xor, ..Mods::default() }),
            );
        }
        out.push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(slot)), Operand::Reg(scratch)]));
    };

    for arg in &inj.args {
        if arg.slots() == 2 && slot % 2 == 1 {
            slot += 1;
        }
        if slot as u32 + arg.slots() as u32 > 16 {
            return Err(NvbitError::BadRequest(format!(
                "arguments of `{}` exceed the ABI register window (R4..R15)",
                inj.func
            )));
        }
        match arg {
            Arg::GuardPred => {
                let guard = original[idx].guard;
                emit_pred_value(guard.pred.0, guard.negated, slot, out);
            }
            Arg::PredVal(p) => emit_pred_value(*p, false, slot, out),
            Arg::RegVal(r) => emit_regval(*r, slot, frame, out),
            Arg::RegVal64(r) => {
                emit_regval(*r, slot, frame, out);
                emit_regval(r.saturating_add(1), slot + 1, frame, out);
            }
            Arg::Imm32(v) => {
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![Operand::Reg(Reg(slot)), Operand::Imm(*v as i64)],
                ));
            }
            Arg::Imm64(v) => {
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![Operand::Reg(Reg(slot)), Operand::Imm((*v as u32 as i32) as i64)],
                ));
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![
                        Operand::Reg(Reg(slot + 1)),
                        Operand::Imm(((*v >> 32) as u32 as i32) as i64),
                    ],
                ));
            }
            Arg::CBank { bank, offset } => {
                out.push(Instruction::new(
                    Op::Ldc,
                    vec![
                        Operand::Reg(Reg(slot)),
                        Operand::CBank { bank: *bank, base: Reg::RZ, offset: *offset },
                    ],
                ));
            }
        }
        slot += arg.slots();
    }

    // 4. Call the tool function; 5. restore the thread state.
    out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(tool.addr)]));
    out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(routine.restore_addr)]));
    Ok(())
}

/// Loads saved register `r` into ABI slot register `slot`.
fn emit_regval(r: u8, slot: u8, frame: u32, out: &mut Vec<Instruction>) {
    match r {
        255 => out
            .push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(slot)), Operand::Reg(Reg::RZ)])),
        1 => {
            // The stack pointer is not stored; reconstruct the pre-save
            // value.
            out.push(Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(slot)), Operand::Reg(Reg::SP), Operand::Imm(frame as i64)],
            ));
        }
        _ => out.push(Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(Reg(slot)), Operand::MRef { base: Reg::SP, offset: 4 * r as i32 }],
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saverestore::TIERS;
    use cuda::{CuFunction, CuModule};
    use sass::Arch;

    fn fake_info(addr: u64, reg_count: u32, arch: Arch) -> FunctionInfo {
        FunctionInfo {
            handle: CuFunction::from_raw(1),
            name: "k".into(),
            module: CuModule::from_raw(1),
            library: false,
            kind: ptx::FunctionKind::Entry,
            addr,
            code_len: 0,
            arch,
            reg_count,
            stack_size: 0,
            shared_size: 0,
            params: vec![],
            related: vec![],
            line_table: vec![],
            local_override: 0,
        }
    }

    fn fake_routines() -> HashMap<u16, Routines> {
        TIERS
            .iter()
            .map(|&t| {
                (
                    t,
                    Routines {
                        tier: t,
                        save_addr: 0x10_0000 + t as u64 * 0x1000,
                        restore_addr: 0x20_0000 + t as u64 * 0x1000,
                        frame_bytes: 0,
                    },
                )
            })
            .collect()
    }

    fn setup(arch: Arch, text: &str) -> (Hal, FunctionInfo, Vec<Instruction>, Vec<u8>) {
        let hal = Hal::new(arch);
        let code = hal.assemble_text(text).unwrap();
        let instrs = hal.disassemble(&code).unwrap();
        let info = fake_info(0x4000, 12, arch);
        (hal, info, instrs, code)
    }

    fn tool_fns() -> HashMap<String, ToolFn> {
        let mut m = HashMap::new();
        m.insert("ifunc".to_string(), ToolFn { addr: 0x8000, reg_count: 8, stack_size: 16 });
        m
    }

    #[test]
    fn trampoline_structure_matches_figure_4() {
        for arch in [Arch::Kepler, Arch::Volta] {
            let (hal, info, instrs, code) = setup(
                arch,
                "S2R R4, SR_TID.X ;\n\
                 IADD R5, R4, 0x1 ;\n\
                 STG [R6], R5 ;\n\
                 EXIT ;",
            );
            let mut spec = FuncSpec::default();
            spec.insert_call(2, "ifunc", IPoint::Before);
            spec.add_arg(2, Arg::GuardPred);
            spec.add_arg(2, Arg::Imm64(0xdead_beef_1234));

            let img = generate(
                &hal,
                &info,
                &instrs,
                &code,
                &spec,
                &tool_fns(),
                &fake_routines(),
                |_len| Ok(0x9000),
            )
            .unwrap();

            // Same size, site 2 replaced by an absolute JMP to the
            // trampoline.
            assert_eq!(img.instrumented.len(), code.len());
            let patched = hal.disassemble(&img.instrumented).unwrap();
            assert_eq!(patched[2].op, Op::Jmp);
            assert_eq!(patched[2].operands[0], Operand::Abs(0x9000));
            // Other instructions untouched.
            assert_eq!(patched[0], instrs[0]);
            assert_eq!(patched[3], instrs[3]);

            // Trampoline: save, frame ptr, args, tool call, restore,
            // relocated STG, jump back.
            let tramp = hal.disassemble(&img.tramp_code).unwrap();
            let ops: Vec<Op> = tramp.iter().map(|i| i.op).collect();
            assert_eq!(
                ops,
                vec![
                    Op::Jcal,   // save
                    Op::Mov,    // R0 = frame
                    Op::Mov32i, // guard (unguarded => constant 1)
                    Op::Mov32i, // imm64 lo (slot aligned to R6)
                    Op::Mov32i, // imm64 hi
                    Op::Jcal,   // tool
                    Op::Jcal,   // restore
                    Op::Stg,    // relocated original
                    Op::Jmp,    // back
                ],
                "{}",
                sass::asm::disassemble(&tramp)
            );
            // Return target is the instruction after the site.
            assert_eq!(
                tramp.last().unwrap().operands[0],
                Operand::Abs(info.addr + 3 * hal.instruction_size())
            );
        }
    }

    #[test]
    fn relative_branches_are_relativized_when_relocated() {
        let (hal, info, instrs, code) = setup(
            Arch::Pascal,
            "ISETP.EQ.S32 P0, R4, RZ ;\n\
             @P0 BRA .+0x10 ;\n\
             IADD R5, R5, 0x1 ;\n\
             IADD R5, R5, 0x2 ;\n\
             EXIT ;",
        );
        let mut spec = FuncSpec::default();
        spec.insert_call(1, "ifunc", IPoint::Before);

        let tramp_base = 0x20_0000u64;
        // Re-run emit_site directly to inspect the relocated branch.
        let routines = fake_routines();
        let routine = routines[&16];
        let out = emit_site(&hal, &info, &instrs, &spec, &tool_fns(), &routine, 16, 1, tramp_base)
            .unwrap();
        let _ = code;
        let isize = hal.instruction_size();
        // Locate the relocated BRA.
        let (pos, bra) = out
            .iter()
            .enumerate()
            .find(|(_, i)| i.op == Op::Bra)
            .expect("relocated branch present");
        // Original target: pc 0x4000 + 2*isize + 0x10.
        let orig_target = info.addr + 2 * isize + 0x10;
        let reloc_pc = tramp_base + pos as u64 * isize;
        let expect = orig_target as i64 - (reloc_pc + isize) as i64;
        assert_eq!(bra.rel_target(), Some(expect));
        // Guard preserved on the relocated instruction.
        assert!(!bra.guard.is_always());
    }

    #[test]
    fn remove_orig_replaces_the_instruction_with_nop() {
        let (hal, info, instrs, code) = setup(
            Arch::Volta,
            "PROXY R4, R5, 0x1234 ;\n\
             EXIT ;",
        );
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.remove_orig(0);
        let routines = fake_routines();
        let out =
            emit_site(&hal, &info, &instrs, &spec, &tool_fns(), &routines[&16], 16, 0, 0x9000)
                .unwrap();
        assert!(out.iter().all(|i| i.op != Op::Proxy));
        assert!(out.iter().any(|i| i.op == Op::Nop));
        let _ = code;
    }

    #[test]
    fn removed_without_injection_becomes_inplace_nop() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "BPT ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.remove_orig(0);
        let img =
            generate(&hal, &info, &instrs, &code, &spec, &tool_fns(), &fake_routines(), |_| {
                Ok(0x9000)
            })
            .unwrap();
        let patched = hal.disassemble(&img.instrumented).unwrap();
        assert_eq!(patched[0].op, Op::Nop);
        assert_eq!(patched[1].op, Op::Exit);
    }

    #[test]
    fn before_and_after_injections_bracket_the_original() {
        let (hal, info, instrs, _code) = setup(Arch::Maxwell, "IADD R4, R4, 0x1 ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::After);
        spec.insert_call(0, "ifunc", IPoint::Before);
        let routines = fake_routines();
        let out =
            emit_site(&hal, &info, &instrs, &spec, &tool_fns(), &routines[&16], 16, 0, 0x9000)
                .unwrap();
        let iadd_pos = out.iter().position(|i| i.op == Op::Iadd).unwrap();
        let jcal_positions: Vec<usize> =
            out.iter().enumerate().filter(|(_, i)| i.op == Op::Jcal).map(|(p, _)| p).collect();
        // 3 JCALs before the original (save/tool/restore) and 3 after.
        assert_eq!(jcal_positions.iter().filter(|&&p| p < iadd_pos).count(), 3);
        assert_eq!(jcal_positions.iter().filter(|&&p| p > iadd_pos).count(), 3);
    }

    #[test]
    fn unknown_tool_function_is_rejected() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "missing", IPoint::Before);
        let e = generate(&hal, &info, &instrs, &code, &spec, &tool_fns(), &fake_routines(), |_| {
            Ok(0x9000)
        });
        assert!(matches!(e, Err(NvbitError::UnknownToolFunction(_))));
    }

    #[test]
    fn out_of_range_site_is_rejected() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "EXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(5, "ifunc", IPoint::Before);
        let e = generate(&hal, &info, &instrs, &code, &spec, &tool_fns(), &fake_routines(), |_| {
            Ok(0x9000)
        });
        assert!(matches!(e, Err(NvbitError::BadInstrIndex { .. })));
    }

    #[test]
    fn tier_selection_covers_function_tool_and_args() {
        let (hal, mut info, instrs, code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        info.reg_count = 40; // forces tier 64
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.add_arg(0, Arg::RegVal(70)); // forces tier 128
        let img =
            generate(&hal, &info, &instrs, &code, &spec, &tool_fns(), &fake_routines(), |_| {
                Ok(0x9000)
            })
            .unwrap();
        assert_eq!(img.tier, 128);
        assert!(img.extra_local >= frame_bytes(128, &hal));
    }

    #[test]
    fn too_many_arguments_error() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        for _ in 0..7 {
            spec.add_arg(0, Arg::Imm64(1)); // 14 slots > 12 available
        }
        let e = generate(&hal, &info, &instrs, &code, &spec, &tool_fns(), &fake_routines(), |_| {
            Ok(0x9000)
        });
        assert!(matches!(e, Err(NvbitError::BadRequest(_))));
    }
}
