//! The Code Generator: builds the instrumented copy of a function and its
//! trampolines (paper §5.1, Figure 4).
//!
//! For every instrumented instruction the generator:
//!
//! 1. substitutes the instruction with an unconditional `JMP` to a
//!    trampoline (preserving the instruction layout — both code versions
//!    have the same size and addresses, so absolute jumps keep working and
//!    switching versions is a plain memcpy);
//! 2. emits the trampoline: for each injection a call to the save routine,
//!    the device-API frame pointer setup, the argument materialization
//!    (reading the *saved* register values, never live ones — no WAR
//!    hazards with ABI argument registers), the call to the tool function
//!    and the restore call;
//! 3. re-emits the relocated original instruction with its PC-relative
//!    offset adjusted (or a `NOP` when `remove_orig` was requested);
//! 4. jumps back to the next original instruction.

use crate::hal::Hal;
use crate::plan::{InstrumentationPlan, PlanOpts, PlanStats, PlannedCall};
use crate::saverestore::{frame_bytes, tier_for, Routines};
use crate::spec::{Arg, IPoint};
use crate::{NvbitError, Result};
use cuda::FunctionInfo;
use sass::op::CfClass;
use sass::pressure::BodyShape;
use sass::{Instruction, Mods, Op, Operand, Reg};
use std::collections::HashMap;
use std::sync::Arc;

/// Size ceiling (in instructions) under which a tool body qualifies for
/// inline splicing.
pub const INLINE_MAX_INSTRS: usize = 24;
/// Register ceiling under which a tool body qualifies for inlining. Wider
/// than the classic 16-register leaf threshold: the per-site pressure
/// verdict ([`sass::pressure::splice_verdict`]) now declines splices whose
/// write window would raise the save tier, so the blunt cap only has to
/// bound pathological bodies.
pub const INLINE_MAX_REGS: u32 = 24;

/// A tool device function loaded by the Tool Functions Loader.
#[derive(Debug, Clone)]
pub struct ToolFn {
    /// Device address of the first instruction.
    pub addr: u64,
    /// General-purpose registers the function uses.
    pub reg_count: u32,
    /// Stack bytes the function needs.
    pub stack_size: u32,
    /// Whether the function uses the `nvbit.readreg`/`nvbit.writereg`
    /// device API. Such functions address arbitrary save-area slots at run
    /// time, so sites injecting them always get the conservative
    /// whole-function tier regardless of liveness.
    pub uses_reg_api: bool,
    /// The function's instruction body as loaded, retained for the inline
    /// pass and the pre-swap verifier (`None` for opaque registrations).
    pub body: Option<Arc<Vec<Instruction>>>,
    /// Set when the body is spliceable: small, call-free, stack-free, no
    /// register device API, a single unguarded trailing `RET`, and a
    /// control-flow shape the classifier accepts (straight-line or a
    /// single guarded diamond — see [`shape`](ToolFn::shape)). The planner
    /// splices such bodies into the trampoline in place of the
    /// `JCAL`/`RET` pair, subject to the per-site pressure verdict.
    pub inlinable: bool,
    /// Control-flow shape of the body as classified by
    /// [`sass::pressure::body_shape`] (`None` for opaque registrations and
    /// shapes that are never spliceable — loops, multiple conditionals,
    /// escaping control flow).
    pub shape: Option<BodyShape>,
    /// One past the highest general-purpose register the body *writes*
    /// (`None` when unknown — e.g. the body makes calls). Registers at or
    /// above this ceiling survive the call untouched, letting liveness
    /// tier selection shrink further than the used-register count allows.
    pub write_ceiling: Option<u8>,
    /// One past the highest general-purpose register an *out-of-line call*
    /// to [`addr`](ToolFn::addr) can leave clobbered. The callable copy is
    /// compiled under the standard ABI, whose epilogue restores every
    /// callee-saved register, so this never exceeds the first
    /// callee-saved register (R16) even when the body itself writes higher —
    /// which is exactly what makes declining a pressure-raising splice
    /// profitable. `None` when unknown (opaque registration or a body
    /// with calls); the clobber then falls back to `reg_count`.
    pub call_ceiling: Option<u8>,
}

/// First callee-saved general-purpose register of the standard PTX call
/// ABI (mirrored by the `ptx` crate's register allocator). A standard-ABI
/// callee restores everything from here up before returning.
pub(crate) const CALLEE_SAVE_BASE: u8 = 16;

/// The caller-visible clobber ceiling of calling `body` out of line under
/// the standard ABI: one past the highest written GPR, capped at
/// [`CALLEE_SAVE_BASE`] (higher registers are restored by the epilogue).
/// `None` when the body makes calls of its own (callee clobbers unknown).
fn call_ceiling_of(body: &[Instruction]) -> Option<u8> {
    let call_free = !body.iter().any(|i| {
        matches!(i.cf_class(), CfClass::AbsCall | CfClass::RelCall | CfClass::IndirectBranch)
    });
    if !call_free {
        return None;
    }
    let max_written = body.iter().flat_map(Instruction::reg_writes).map(|r| r.0).max();
    Some(max_written.map_or(0, |r| r.saturating_add(1)).min(CALLEE_SAVE_BASE))
}

impl ToolFn {
    /// A registration with no retained body: never inlined, clobber sized
    /// by `reg_count` alone.
    pub fn opaque(addr: u64, reg_count: u32, stack_size: u32, uses_reg_api: bool) -> ToolFn {
        ToolFn {
            addr,
            reg_count,
            stack_size,
            uses_reg_api,
            body: None,
            inlinable: false,
            shape: None,
            write_ceiling: None,
            call_ceiling: None,
        }
    }

    /// Builds the entry from the loaded body, running the body
    /// classification. `arch` selects the instruction size and the CFG
    /// rules for validating that control flow stays inside the body.
    pub fn with_body(
        addr: u64,
        reg_count: u32,
        stack_size: u32,
        uses_reg_api: bool,
        body: Vec<Instruction>,
        arch: sass::Arch,
    ) -> ToolFn {
        let (inlinable, write_ceiling, shape) =
            classify_body(&body, reg_count, stack_size, uses_reg_api, arch);
        let call_ceiling = call_ceiling_of(&body);
        ToolFn {
            addr,
            reg_count,
            stack_size,
            uses_reg_api,
            body: Some(Arc::new(body)),
            inlinable,
            shape,
            write_ceiling,
            call_ceiling,
        }
    }

    /// Builds the entry from a dual-ABI load: `callable_body` is the
    /// standard-ABI compile installed at `addr` (what out-of-line calls
    /// execute — its epilogue restores every callee-saved register), while
    /// `scratch_body` is the scratch-ABI compile of the same source (no
    /// prologue, every register fair game), which is what classification,
    /// inline splicing and the pressure cost model reason about.
    pub fn dual_abi(
        addr: u64,
        callable: (u32, u32, &[Instruction]),
        scratch: (u32, u32, Vec<Instruction>),
        uses_reg_api: bool,
        arch: sass::Arch,
    ) -> ToolFn {
        let (callable_regs, callable_stack, callable_body) = callable;
        let (scratch_regs, scratch_stack, scratch_body) = scratch;
        let (inlinable, write_ceiling, shape) =
            classify_body(&scratch_body, scratch_regs, scratch_stack, uses_reg_api, arch);
        let call_ceiling = call_ceiling_of(callable_body);
        ToolFn {
            addr,
            reg_count: callable_regs.max(scratch_regs),
            stack_size: callable_stack,
            uses_reg_api,
            body: Some(Arc::new(scratch_body)),
            inlinable,
            shape,
            write_ceiling,
            call_ceiling,
        }
    }
}

/// Classifies a loaded tool body: its control-flow shape (straight leaf or
/// guarded diamond, via [`sass::pressure::body_shape`]), whether it
/// qualifies for inline splicing, and its register write ceiling.
fn classify_body(
    body: &[Instruction],
    reg_count: u32,
    stack_size: u32,
    uses_reg_api: bool,
    arch: sass::Arch,
) -> (bool, Option<u8>, Option<BodyShape>) {
    // The write ceiling is only knowable for call-free bodies that leave
    // the frame pointer alone; the register device API reaches the save
    // area behind the analysis's back.
    let call_free = !body.iter().any(|i| {
        matches!(i.cf_class(), CfClass::AbsCall | CfClass::RelCall | CfClass::IndirectBranch)
    });
    let writes_sp = body.iter().any(|i| i.reg_writes().contains(&Reg::SP));
    let write_ceiling = if call_free && !writes_sp && !uses_reg_api {
        let max_written = body.iter().flat_map(Instruction::reg_writes).map(|r| r.0).max();
        Some(max_written.map_or(0, |r| r.saturating_add(1)))
    } else {
        None
    };

    // The shape classification subsumes the old per-instruction scan: it
    // requires the single unguarded trailing RET, rejects control flow
    // that leaves the body, and — unlike the scan — rejects loops and
    // multi-branch shapes that happened to stay in-body.
    let shape = sass::pressure::body_shape(body, arch);
    let inlinable = write_ceiling.is_some()
        && shape.is_some()
        && stack_size == 0
        && reg_count <= INLINE_MAX_REGS
        && body.len() <= INLINE_MAX_INSTRS;
    (inlinable, write_ceiling, if write_ceiling.is_some() { shape } else { None })
}

/// How the code generator sizes each injection site's register save.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SavePolicy {
    /// Size each site from the dataflow analysis: only registers live
    /// across the site (plus the tool's own demand) need saving. Falls
    /// back to [`SavePolicy::FullTier`] per function when the analysis is
    /// unavailable, and per site when an injected tool uses the register
    /// device API.
    #[default]
    Liveness,
    /// One conservative tier covering the whole function's register
    /// demand at every site (the paper's baseline §5.1 behaviour).
    FullTier,
}

/// Liveness input to [`generate`]: the dataflow analysis of the function
/// being instrumented, or the reason it is unavailable.
#[derive(Debug, Clone, Copy)]
pub enum LivenessInput<'a> {
    /// Analysis available — per-site tiers may shrink below the
    /// whole-function demand under [`SavePolicy::Liveness`].
    Analysis(&'a sass::Dataflow),
    /// Analysis unavailable (irreducible control flow, indirect
    /// branches, …); every site uses the conservative whole-function tier
    /// and the reason is recorded in [`InstrumentedImage::fallback`].
    Unavailable(&'a str),
}

/// Layout record for one emitted call within a site's trampoline, used by
/// the plan-consistency checks of the pre-swap verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallMeta {
    /// The tool function the call invokes (or splices).
    pub func: String,
    /// Sites the call represents (1 unless coalesced).
    pub multiplicity: u32,
    /// The original instruction indices it stands for, sorted.
    pub group: Vec<usize>,
    /// The subset of `group` lowered from `IPoint::After` sites: origin *o*
    /// is represented at the `Before` slot of site *o + 1*.
    pub lowered: Vec<usize>,
    /// The call follows the multiplicity protocol.
    pub coalesce: bool,
    /// When inlined: `(offset, len)` of the spliced body within the site's
    /// trampoline instructions (the final `RET` replaced by `NOP`).
    pub inline: Option<(usize, usize)>,
    /// `(tier_before, tier_after)` the pressure verdict claimed for an
    /// accepted splice; the verifier re-prices the claim on the occupancy
    /// curve from original bytes. `None` for unvetted calls.
    pub occ: Option<(u16, u16)>,
}

/// Layout record for one injection site's trampoline, used by the
/// pre-swap verifier and the save-reduction accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteMeta {
    /// Index of the instrumented instruction in the original body.
    pub instr_idx: usize,
    /// Index of the site's first instruction within the trampoline stream.
    pub start: usize,
    /// Number of trampoline instructions the site spans.
    pub len: usize,
    /// Offset within the site of the relocated original instruction (or
    /// its `NOP` replacement when `remove_orig` was requested).
    pub orig_pos: usize,
    /// Save tier selected for this site.
    pub tier: u16,
    /// Number of injections at this site.
    pub injections: usize,
    /// Per-call layout, in emission order.
    pub calls: Vec<CallMeta>,
}

/// The output of code generation for one function.
#[derive(Debug, Clone)]
pub struct InstrumentedImage {
    /// Pristine original code (for swapping back).
    pub original: Vec<u8>,
    /// Instrumented copy — byte-for-byte the same size as the original.
    pub instrumented: Vec<u8>,
    /// Device address of the trampoline region.
    pub tramp_addr: u64,
    /// The trampoline bytes (the caller uploads them to `tramp_addr`).
    pub tramp_code: Vec<u8>,
    /// Extra per-thread local memory every launch of the instrumented
    /// version needs (save frame + tool stack frames).
    pub extra_local: u32,
    /// The largest save tier used by any site.
    pub tier: u16,
    /// Per-site trampoline layout, in trampoline order.
    pub sites: Vec<SiteMeta>,
    /// Register slots actually saved across all injections
    /// (Σ site tier × site injections).
    pub saved_slots: u64,
    /// Register slots the conservative whole-function tier would have
    /// saved for the same injections.
    pub full_tier_slots: u64,
    /// Why liveness-driven sizing was not applied, when it was not
    /// (`None` when every site was sized from the analysis).
    pub fallback: Option<String>,
    /// What the plan passes did for this image (coalescing/inlining
    /// accounting).
    pub plan: PlanStats,
    /// The options the plan was built with — the verifier reads the
    /// pressure/occupancy configuration from here to re-price splice
    /// claims against the same model.
    pub opts: PlanOpts,
}

/// The register demand of reading one saved register: slot `r` must have
/// been stored. `RZ` and the reconstructed `SP` need no slot.
pub(crate) fn reg_demand(r: u8) -> u32 {
    match r {
        255 | 1 => 0,
        _ => r as u32 + 1,
    }
}

/// The register demand an argument places on the save tier.
pub(crate) fn arg_demand(arg: &Arg) -> u32 {
    match arg {
        Arg::RegVal(r) => reg_demand(*r),
        Arg::RegVal64(r) => reg_demand(*r).max(reg_demand(r.saturating_add(1))),
        _ => 0,
    }
}

/// Runs code generation over a validated [`InstrumentationPlan`] (built by
/// [`crate::plan::build`], which also runs the coalescing and inlining
/// passes). `alloc` provides device memory for the trampoline region (the
/// bulk allocation the paper mentions); `routines` must cover every tier.
/// `liveness` and `policy` control per-site save sizing: under
/// [`SavePolicy::Liveness`] with [`LivenessInput::Analysis`], each site
/// saves only the registers that are both live across it and inside the
/// trampoline's clobber window (frame pointer, ABI argument slots and the
/// injected functions' registers — shrunk to the body's write ceiling when
/// known), plus any saved value an argument reads back; otherwise every
/// site uses the conservative whole-function tier.
///
/// # Errors
///
/// [`NvbitError::BadRequest`] for argument-ABI violations, register
/// demands beyond the register file, or an inline-marked call without a
/// retained body, and [`NvbitError::Encode`] when the target family cannot
/// encode the result.
#[allow(clippy::too_many_arguments)] // the paper's six codegen inputs + policy + allocator
pub fn generate(
    hal: &Hal,
    info: &FunctionInfo,
    original: &[Instruction],
    original_code: &[u8],
    plan: &InstrumentationPlan,
    tool_fns: &HashMap<String, ToolFn>,
    routines: &HashMap<u16, Routines>,
    liveness: &LivenessInput<'_>,
    policy: SavePolicy,
    mut alloc: impl FnMut(u64) -> Result<u64>,
) -> Result<InstrumentedImage> {
    let isize = hal.instruction_size();

    // The conservative whole-function demand (§5.1 baseline): the
    // instrumented function's registers, every injected function's
    // registers, the ABI argument registers, and any register a tool asks
    // to read.
    let mut whole: u32 = info.reg_count.max(16);
    let mut tool_stack_max: u32 = 0;
    for calls in plan.sites.values() {
        for call in calls {
            let tf = &tool_fns[&call.func];
            whole = whole.max(tf.reg_count);
            tool_stack_max = tool_stack_max.max(tf.stack_size);
            for arg in &call.args {
                whole = whole.max(arg_demand(arg));
            }
        }
    }
    let whole_tier = tier_for(u16::try_from(whole).unwrap_or(u16::MAX))?;

    // Resolve the liveness analysis, falling back to the whole-function
    // tier when it cannot be applied.
    let (dataflow, fallback): (Option<&sass::Dataflow>, Option<String>) = match (policy, liveness) {
        (SavePolicy::FullTier, _) => (None, Some("full-tier save policy requested".into())),
        (SavePolicy::Liveness, LivenessInput::Unavailable(reason)) => {
            (None, Some((*reason).to_string()))
        }
        (SavePolicy::Liveness, LivenessInput::Analysis(df)) => {
            if df.len() == original.len() {
                (Some(*df), None)
            } else {
                (None, Some("dataflow analysis does not match the function body".into()))
            }
        }
    };

    // Per-site tier selection.
    let mut site_tier: HashMap<usize, u16> = HashMap::new();
    let mut saved_slots = 0u64;
    let mut full_tier_slots = 0u64;
    let mut max_tier = 0u16;
    let mut max_frame = 0u32;
    for (&idx, calls) in &plan.sites {
        let uses_reg_api = calls.iter().any(|c| tool_fns[&c.func].uses_reg_api);
        // A guarded-diamond splice is only sized from liveness when the
        // pressure pass vetted it (DESIGN §4h): without the cost model,
        // guarded-flow bodies spliced into the trampoline are charged the
        // conservative whole-function tier, like register-API tools.
        let unvetted_diamond = !plan.opts.pressure
            && calls
                .iter()
                .any(|c| c.inline && matches!(tool_fns[&c.func].shape, Some(BodyShape::Diamond)));
        let tier = match dataflow {
            // Register-device-API tools index save-area slots computed at
            // run time; only the whole-function tier is safe for them.
            Some(df) if !uses_reg_api && !unvetted_diamond => {
                // The trampoline only clobbers R0 (the frame pointer), the
                // ABI argument window from R4 up, and the injected
                // functions' own registers — shrunk to the registers the
                // body actually *writes* when its write ceiling is known.
                // Registers at or above that ceiling survive the call
                // untouched, so a save slot is needed only for (a) live
                // registers *below* the ceiling and (b) saved values an
                // argument reads back.
                let mut clobber: u32 = 1;
                let mut demand: u32 = 0;
                for call in calls {
                    let tf = &tool_fns[&call.func];
                    // A spliced body clobbers up to its raw write ceiling;
                    // an out-of-line call executes the standard-ABI copy,
                    // which restores callee-saved registers on return.
                    let body_clobber = if call.inline {
                        tf.write_ceiling.map_or(tf.reg_count, u32::from)
                    } else {
                        tf.call_ceiling.map_or(tf.reg_count, u32::from)
                    };
                    clobber = clobber.max(body_clobber);
                    let mut slot: u32 = 4;
                    for arg in &call.args {
                        slot += u32::from(arg.slots());
                        demand = demand.max(arg_demand(arg));
                    }
                    clobber = clobber.max(slot);
                }
                let ceiling = u8::try_from(clobber).unwrap_or(u8::MAX);
                if let Some(live) = df.max_live_below(idx, ceiling) {
                    demand = demand.max(u32::from(live) + 1);
                }
                tier_for(u16::try_from(demand).unwrap_or(u16::MAX))?
            }
            _ => whole_tier,
        };
        site_tier.insert(idx, tier);
        saved_slots += u64::from(tier) * calls.len() as u64;
        full_tier_slots += u64::from(whole_tier) * calls.len() as u64;
        max_tier = max_tier.max(tier);
        max_frame = max_frame.max(frame_bytes(tier, hal));
    }
    if plan.sites.is_empty() {
        max_tier = whole_tier;
        max_frame = frame_bytes(whole_tier, hal);
    }
    let routine_for = |tier: u16| -> Result<Routines> {
        routines
            .get(&tier)
            .copied()
            .ok_or_else(|| NvbitError::BadRequest(format!("no save routine for tier {tier}")))
    };

    // Phase 1: measure each trampoline with a placeholder base address.
    let mut lengths: Vec<(usize, u64)> = Vec::new(); // (site, instr count)
    let mut cursor = 0u64;
    for &idx in plan.sites.keys() {
        let tier = site_tier[&idx];
        let routine = routine_for(tier)?;
        let (instrs, _, _) =
            emit_site(hal, info, original, plan, tool_fns, &routine, tier, idx, 0)?;
        lengths.push((idx, instrs.len() as u64));
        cursor += instrs.len() as u64;
    }
    let tramp_len = cursor * isize;
    let tramp_addr = alloc(tramp_len.max(isize))?;

    // Phase 2: emit with real addresses.
    let mut tramp_instrs: Vec<Instruction> = Vec::with_capacity(cursor as usize);
    let mut site_addr: HashMap<usize, u64> = HashMap::new();
    let mut sites: Vec<SiteMeta> = Vec::with_capacity(lengths.len());
    let mut pc = tramp_addr;
    for &(idx, len) in &lengths {
        site_addr.insert(idx, pc);
        let tier = site_tier[&idx];
        let routine = routine_for(tier)?;
        let (instrs, orig_pos, calls) =
            emit_site(hal, info, original, plan, tool_fns, &routine, tier, idx, pc)?;
        debug_assert_eq!(instrs.len() as u64, len);
        sites.push(SiteMeta {
            instr_idx: idx,
            start: tramp_instrs.len(),
            len: instrs.len(),
            orig_pos,
            tier,
            injections: plan.sites[&idx].len(),
            calls,
        });
        tramp_instrs.extend(instrs);
        pc += len * isize;
    }
    let tramp_code = hal.assemble(&tramp_instrs)?;

    // Instrumented copy: original with instrumented sites replaced by
    // unconditional jumps into the trampolines; removed-but-uninstrumented
    // sites become NOPs in place.
    let mut patched = original.to_vec();
    for &idx in plan.sites.keys() {
        patched[idx] = Instruction::new(Op::Jmp, vec![Operand::Abs(site_addr[&idx])]);
    }
    for &idx in &plan.removed {
        if !plan.sites.contains_key(&idx) {
            patched[idx] = Instruction::nop();
        }
    }
    let instrumented = hal.assemble(&patched)?;
    debug_assert_eq!(instrumented.len(), original_code.len());

    Ok(InstrumentedImage {
        original: original_code.to_vec(),
        instrumented,
        tramp_addr,
        tramp_code,
        extra_local: max_frame + tool_stack_max + 128,
        tier: max_tier,
        sites,
        saved_slots,
        full_tier_slots,
        fallback,
        plan: plan.stats,
        opts: plan.opts,
    })
}

/// The assembled trampoline bytes (phase-2 output) are written by the
/// caller; this emits one site's trampoline instruction sequence and
/// reports the position of the relocated original instruction within it
/// plus the per-call layout records.
#[allow(clippy::too_many_arguments)]
fn emit_site(
    hal: &Hal,
    info: &FunctionInfo,
    original: &[Instruction],
    plan: &InstrumentationPlan,
    tool_fns: &HashMap<String, ToolFn>,
    routine: &Routines,
    tier: u16,
    idx: usize,
    tramp_pc: u64,
) -> Result<(Vec<Instruction>, usize, Vec<CallMeta>)> {
    let isize = hal.instruction_size();
    let next_pc = info.addr + (idx as u64 + 1) * isize;
    let calls = &plan.sites[&idx];
    let mut out: Vec<Instruction> = Vec::new();
    let mut metas: Vec<CallMeta> = Vec::new();

    for call in calls.iter().filter(|c| c.ipoint == IPoint::Before) {
        metas.push(emit_call(hal, original, routine, tier, idx, call, tool_fns, &mut out)?);
    }

    // The relocated original instruction (Figure 4, step 5) — a NOP when
    // removed (the PROXY-emulation path of §6.3).
    let orig_pos = out.len();
    if plan.removed.contains(&idx) {
        out.push(Instruction::nop());
    } else {
        let mut orig = original[idx].clone();
        if let Some(rel) = orig.rel_target() {
            // Critically, relative control flow must be re-relativized to
            // its new home (Figure 4's "offset must be adjusted").
            let abs_target = (info.addr + (idx as u64 + 1) * isize).wrapping_add(rel as u64);
            let reloc_pc = tramp_pc + out.len() as u64 * isize;
            orig.set_rel_target(abs_target.wrapping_sub(reloc_pc + isize) as i64);
        }
        out.push(orig);
    }

    // When the relocated original unconditionally leaves the trampoline
    // (EXIT, RET, an unguarded jump/branch, SYNC, a trap), nothing after it
    // can execute: After-injections would be dead code and the Figure-4
    // back-jump would target past the end of the image for a site on the
    // last instruction. Emit neither.
    let no_fall_through = out[orig_pos].guard.is_always()
        && matches!(
            out[orig_pos].cf_class(),
            CfClass::Exit
                | CfClass::Ret
                | CfClass::Trap
                | CfClass::Sync
                | CfClass::RelBranch
                | CfClass::AbsJump
        );
    if no_fall_through {
        return Ok((out, orig_pos, metas));
    }

    for call in calls.iter().filter(|c| c.ipoint == IPoint::After) {
        metas.push(emit_call(hal, original, routine, tier, idx, call, tool_fns, &mut out)?);
    }

    // Back to the instruction after the instrumented one (Figure 4, step 6).
    out.push(Instruction::new(Op::Jmp, vec![Operand::Abs(next_pc)]));
    Ok((out, orig_pos, metas))
}

/// Emits one planned call: save, frame pointer, arguments, tool call (or
/// the inline-spliced body), restore. Returns the call's layout record,
/// with inline spans relative to the start of `out`'s site.
///
/// With `pred_filter` set on a guarded site, the whole sequence is wrapped
/// in an `SSY`-bracketed diamond so that guard-false lanes never enter the
/// injected function (the paper's §7 "predicate matching" extension):
///
/// ```text
///       SSY  L_skip
/// @!Pg  BRA  L_other        ; guard-false lanes take their own path
///       <save / args / call / restore>
///       SYNC                ; guard-true path done
/// L_other: SYNC             ; guard-false path done
/// L_skip:  ...
/// ```
#[allow(clippy::too_many_arguments)]
fn emit_call(
    hal: &Hal,
    original: &[Instruction],
    routine: &Routines,
    tier: u16,
    idx: usize,
    call: &PlannedCall,
    tool_fns: &HashMap<String, ToolFn>,
    out: &mut Vec<Instruction>,
) -> Result<CallMeta> {
    let tool = &tool_fns[&call.func];
    let guard = original[idx].guard;
    if call.pred_filter && !guard.is_always() {
        let isize = hal.instruction_size() as i64;
        let barrier = if hal.saves_barrier_state() { 1 } else { 0 };
        let mods = Mods { barrier, ..Mods::default() };
        // Emit the body first to learn its length, then splice the wrapper.
        let wrapper_base = out.len();
        let mut body = Vec::new();
        let plain = PlannedCall { pred_filter: false, ..call.clone() };
        let mut meta = emit_call(hal, original, routine, tier, idx, &plain, tool_fns, &mut body)?;
        let n = body.len() as i64;
        out.push(Instruction::new(Op::Ssy, vec![Operand::Rel((n + 3) * isize)]).with_mods(mods));
        out.push(
            Instruction::new(Op::Bra, vec![Operand::Rel((n + 1) * isize)])
                .with_guard(sass::Guard { pred: guard.pred, negated: !guard.negated }),
        );
        out.extend(body);
        out.push(Instruction::new(Op::Sync, vec![]).with_mods(mods));
        out.push(Instruction::new(Op::Sync, vec![]).with_mods(mods));
        // The recursion recorded offsets relative to its own body; shift
        // them past the SSY/BRA prefix into site coordinates.
        if let Some((off, len)) = meta.inline {
            meta.inline = Some((wrapper_base + 2 + off, len));
        }
        return Ok(meta);
    }

    let frame = frame_bytes(tier, hal);
    let pred_mask_off = 4 * tier as i32;
    let scratch = Reg(3);

    // 1. Save the thread state.
    out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(routine.save_addr)]));
    // 2. Device-API frame pointer: R0 = save-area base.
    out.push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(0)), Operand::Reg(Reg::SP)]));

    // 3. Materialize arguments into the ABI registers from the *saved*
    //    state.
    let mut slot: u8 = 4;
    let emit_pred_value = |p: u8, negated: bool, slot: u8, out: &mut Vec<Instruction>| {
        if p >= 7 {
            // PT: constant true (negated PT is constant false).
            out.push(Instruction::new(
                Op::Mov32i,
                vec![Operand::Reg(Reg(slot)), Operand::Imm(i64::from(!negated))],
            ));
            return;
        }
        out.push(Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(scratch), Operand::MRef { base: Reg::SP, offset: pred_mask_off }],
        ));
        out.push(
            Instruction::new(
                Op::Shr,
                vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(p as i64)],
            )
            .with_mods(Mods { itype: sass::op::IType::U32, ..Mods::default() }),
        );
        out.push(
            Instruction::new(
                Op::Lop,
                vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(1)],
            )
            .with_mods(Mods { sub: sass::SubOp::And, ..Mods::default() }),
        );
        if negated {
            out.push(
                Instruction::new(
                    Op::Lop,
                    vec![Operand::Reg(scratch), Operand::Reg(scratch), Operand::Imm(1)],
                )
                .with_mods(Mods { sub: sass::SubOp::Xor, ..Mods::default() }),
            );
        }
        out.push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(slot)), Operand::Reg(scratch)]));
    };

    for arg in &call.args {
        if arg.slots() == 2 && slot % 2 == 1 {
            slot += 1;
        }
        if slot as u32 + arg.slots() as u32 > 16 {
            return Err(NvbitError::BadRequest(format!(
                "arguments of `{}` exceed the ABI register window (R4..R15)",
                call.func
            )));
        }
        match arg {
            Arg::GuardPred => {
                let guard = original[idx].guard;
                emit_pred_value(guard.pred.0, guard.negated, slot, out);
            }
            Arg::PredVal(p) => emit_pred_value(*p, false, slot, out),
            Arg::RegVal(r) => emit_regval(*r, slot, frame, out),
            Arg::RegVal64(r) => {
                emit_regval(*r, slot, frame, out);
                emit_regval(r.saturating_add(1), slot + 1, frame, out);
            }
            Arg::Imm32(v) => {
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![Operand::Reg(Reg(slot)), Operand::Imm(*v as i64)],
                ));
            }
            Arg::Imm64(v) => {
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![Operand::Reg(Reg(slot)), Operand::Imm((*v as u32 as i32) as i64)],
                ));
                out.push(Instruction::new(
                    Op::Mov32i,
                    vec![
                        Operand::Reg(Reg(slot + 1)),
                        Operand::Imm(((*v >> 32) as u32 as i32) as i64),
                    ],
                ));
            }
            Arg::CBank { bank, offset } => {
                out.push(Instruction::new(
                    Op::Ldc,
                    vec![
                        Operand::Reg(Reg(slot)),
                        Operand::CBank { bank: *bank, base: Reg::RZ, offset: *offset },
                    ],
                ));
            }
        }
        slot += arg.slots();
    }

    // 4. Call the tool function — or splice its body in place of the
    //    CALL/RET pair when the plan inlined it; 5. restore the thread
    //    state.
    let inline_span = if call.inline {
        let body = tool.body.as_ref().ok_or_else(|| {
            NvbitError::BadRequest(format!(
                "call to `{}` marked inline but no body was retained",
                call.func
            ))
        })?;
        let at = out.len();
        // The compiler pipeline guarantees a single trailing RET
        // (`ptx::lower::merge_returns`); replace it with a NOP so early
        // returns branch onto it and fall through to the restore call.
        // Relative distances inside the body are preserved verbatim.
        out.extend(body.iter().cloned());
        let last = out.last_mut().expect("inlinable body is non-empty");
        debug_assert_eq!(last.op, Op::Ret);
        *last = Instruction::nop();
        Some((at, body.len()))
    } else {
        out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(tool.addr)]));
        None
    };
    out.push(Instruction::new(Op::Jcal, vec![Operand::Abs(routine.restore_addr)]));
    Ok(CallMeta {
        func: call.func.clone(),
        multiplicity: call.multiplicity,
        group: call.group.clone(),
        lowered: call.lowered.clone(),
        coalesce: call.coalesce,
        inline: inline_span,
        occ: call.occ,
    })
}

/// Loads saved register `r` into ABI slot register `slot`.
fn emit_regval(r: u8, slot: u8, frame: u32, out: &mut Vec<Instruction>) {
    match r {
        255 => out
            .push(Instruction::new(Op::Mov, vec![Operand::Reg(Reg(slot)), Operand::Reg(Reg::RZ)])),
        1 => {
            // The stack pointer is not stored; reconstruct the pre-save
            // value.
            out.push(Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(slot)), Operand::Reg(Reg::SP), Operand::Imm(frame as i64)],
            ));
        }
        _ => out.push(Instruction::new(
            Op::Ldl,
            vec![Operand::Reg(Reg(slot)), Operand::MRef { base: Reg::SP, offset: 4 * r as i32 }],
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{self, Analyses, PlanOpts};
    use crate::saverestore::TIERS;
    use crate::spec::FuncSpec;
    use cuda::{CuFunction, CuModule};
    use sass::Arch;

    /// Naive (pass-free) plan over the spec — the pre-plan pipeline shape.
    fn plan_of(
        spec: &FuncSpec,
        body_len: usize,
        fns: &HashMap<String, ToolFn>,
    ) -> InstrumentationPlan {
        plan::build(spec, body_len, Analyses::none(), fns, PlanOpts::naive()).unwrap()
    }

    fn fake_info(addr: u64, reg_count: u32, arch: Arch) -> FunctionInfo {
        FunctionInfo {
            handle: CuFunction::from_raw(1),
            name: "k".into(),
            module: CuModule::from_raw(1),
            library: false,
            kind: ptx::FunctionKind::Entry,
            addr,
            code_len: 0,
            arch,
            reg_count,
            stack_size: 0,
            shared_size: 0,
            params: vec![],
            related: vec![],
            line_table: vec![],
            local_override: 0,
        }
    }

    fn fake_routines() -> HashMap<u16, Routines> {
        TIERS
            .iter()
            .map(|&t| {
                (
                    t,
                    Routines {
                        tier: t,
                        save_addr: 0x10_0000 + t as u64 * 0x1000,
                        restore_addr: 0x20_0000 + t as u64 * 0x1000,
                        frame_bytes: 0,
                    },
                )
            })
            .collect()
    }

    fn setup(arch: Arch, text: &str) -> (Hal, FunctionInfo, Vec<Instruction>, Vec<u8>) {
        let hal = Hal::new(arch);
        let code = hal.assemble_text(text).unwrap();
        let instrs = hal.disassemble(&code).unwrap();
        let info = fake_info(0x4000, 12, arch);
        (hal, info, instrs, code)
    }

    fn tool_fns() -> HashMap<String, ToolFn> {
        let mut m = HashMap::new();
        m.insert("ifunc".to_string(), ToolFn::opaque(0x8000, 8, 16, false));
        m
    }

    const NO_LIVENESS: LivenessInput<'_> = LivenessInput::Unavailable("test: no analysis");

    #[test]
    fn trampoline_structure_matches_figure_4() {
        for arch in [Arch::Kepler, Arch::Volta] {
            let (hal, info, instrs, code) = setup(
                arch,
                "S2R R4, SR_TID.X ;\n\
                 IADD R5, R4, 0x1 ;\n\
                 STG [R6], R5 ;\n\
                 EXIT ;",
            );
            let mut spec = FuncSpec::default();
            spec.insert_call(2, "ifunc", IPoint::Before);
            spec.add_arg(2, Arg::GuardPred);
            spec.add_arg(2, Arg::Imm64(0xdead_beef_1234));

            let img = generate(
                &hal,
                &info,
                &instrs,
                &code,
                &plan_of(&spec, instrs.len(), &tool_fns()),
                &tool_fns(),
                &fake_routines(),
                &NO_LIVENESS,
                SavePolicy::Liveness,
                |_len| Ok(0x9000),
            )
            .unwrap();

            // Same size, site 2 replaced by an absolute JMP to the
            // trampoline.
            assert_eq!(img.instrumented.len(), code.len());
            let patched = hal.disassemble(&img.instrumented).unwrap();
            assert_eq!(patched[2].op, Op::Jmp);
            assert_eq!(patched[2].operands[0], Operand::Abs(0x9000));
            // Other instructions untouched.
            assert_eq!(patched[0], instrs[0]);
            assert_eq!(patched[3], instrs[3]);

            // Trampoline: save, frame ptr, args, tool call, restore,
            // relocated STG, jump back.
            let tramp = hal.disassemble(&img.tramp_code).unwrap();
            let ops: Vec<Op> = tramp.iter().map(|i| i.op).collect();
            assert_eq!(
                ops,
                vec![
                    Op::Jcal,   // save
                    Op::Mov,    // R0 = frame
                    Op::Mov32i, // guard (unguarded => constant 1)
                    Op::Mov32i, // imm64 lo (slot aligned to R6)
                    Op::Mov32i, // imm64 hi
                    Op::Jcal,   // tool
                    Op::Jcal,   // restore
                    Op::Stg,    // relocated original
                    Op::Jmp,    // back
                ],
                "{}",
                sass::asm::disassemble(&tramp)
            );
            // Return target is the instruction after the site.
            assert_eq!(
                tramp.last().unwrap().operands[0],
                Operand::Abs(info.addr + 3 * hal.instruction_size())
            );
        }
    }

    #[test]
    fn relative_branches_are_relativized_when_relocated() {
        let (hal, info, instrs, code) = setup(
            Arch::Pascal,
            "ISETP.EQ.S32 P0, R4, RZ ;\n\
             @P0 BRA .+0x10 ;\n\
             IADD R5, R5, 0x1 ;\n\
             IADD R5, R5, 0x2 ;\n\
             EXIT ;",
        );
        let mut spec = FuncSpec::default();
        spec.insert_call(1, "ifunc", IPoint::Before);

        let tramp_base = 0x20_0000u64;
        // Re-run emit_site directly to inspect the relocated branch.
        let routines = fake_routines();
        let routine = routines[&16];
        let plan = plan_of(&spec, instrs.len(), &tool_fns());
        let (out, _, _) =
            emit_site(&hal, &info, &instrs, &plan, &tool_fns(), &routine, 16, 1, tramp_base)
                .unwrap();
        let _ = code;
        let isize = hal.instruction_size();
        // Locate the relocated BRA.
        let (pos, bra) = out
            .iter()
            .enumerate()
            .find(|(_, i)| i.op == Op::Bra)
            .expect("relocated branch present");
        // Original target: pc 0x4000 + 2*isize + 0x10.
        let orig_target = info.addr + 2 * isize + 0x10;
        let reloc_pc = tramp_base + pos as u64 * isize;
        let expect = orig_target as i64 - (reloc_pc + isize) as i64;
        assert_eq!(bra.rel_target(), Some(expect));
        // Guard preserved on the relocated instruction.
        assert!(!bra.guard.is_always());
    }

    #[test]
    fn remove_orig_replaces_the_instruction_with_nop() {
        let (hal, info, instrs, code) = setup(
            Arch::Volta,
            "PROXY R4, R5, 0x1234 ;\n\
             EXIT ;",
        );
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.remove_orig(0);
        let routines = fake_routines();
        let plan = plan_of(&spec, instrs.len(), &tool_fns());
        let (out, orig_pos, _) =
            emit_site(&hal, &info, &instrs, &plan, &tool_fns(), &routines[&16], 16, 0, 0x9000)
                .unwrap();
        assert!(out.iter().all(|i| i.op != Op::Proxy));
        assert_eq!(out[orig_pos].op, Op::Nop);
        let _ = code;
    }

    #[test]
    fn removed_without_injection_becomes_inplace_nop() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "BPT ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.remove_orig(0);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &NO_LIVENESS,
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        let patched = hal.disassemble(&img.instrumented).unwrap();
        assert_eq!(patched[0].op, Op::Nop);
        assert_eq!(patched[1].op, Op::Exit);
    }

    #[test]
    fn before_and_after_injections_bracket_the_original() {
        let (hal, info, instrs, _code) = setup(Arch::Maxwell, "IADD R4, R4, 0x1 ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::After);
        spec.insert_call(0, "ifunc", IPoint::Before);
        let routines = fake_routines();
        let plan = plan_of(&spec, instrs.len(), &tool_fns());
        let (out, orig_pos, metas) =
            emit_site(&hal, &info, &instrs, &plan, &tool_fns(), &routines[&16], 16, 0, 0x9000)
                .unwrap();
        assert_eq!(metas.len(), 2);
        let iadd_pos = out.iter().position(|i| i.op == Op::Iadd).unwrap();
        assert_eq!(iadd_pos, orig_pos);
        let jcal_positions: Vec<usize> =
            out.iter().enumerate().filter(|(_, i)| i.op == Op::Jcal).map(|(p, _)| p).collect();
        // 3 JCALs before the original (save/tool/restore) and 3 after.
        assert_eq!(jcal_positions.iter().filter(|&&p| p < iadd_pos).count(), 3);
        assert_eq!(jcal_positions.iter().filter(|&&p| p > iadd_pos).count(), 3);
    }

    #[test]
    fn unknown_tool_function_is_rejected() {
        // Validation moved into the planner, which codegen consumes.
        let (_hal, _info, instrs, _code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "missing", IPoint::Before);
        let e = plan::build(&spec, instrs.len(), Analyses::none(), &tool_fns(), PlanOpts::naive());
        assert!(matches!(e, Err(NvbitError::UnknownToolFunction(_))));
    }

    #[test]
    fn out_of_range_site_is_rejected() {
        let (_hal, _info, instrs, _code) = setup(Arch::Volta, "EXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(5, "ifunc", IPoint::Before);
        let e = plan::build(&spec, instrs.len(), Analyses::none(), &tool_fns(), PlanOpts::naive());
        assert!(matches!(e, Err(NvbitError::BadInstrIndex { .. })));
    }

    #[test]
    fn tier_selection_covers_function_tool_and_args() {
        let (hal, mut info, instrs, code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        info.reg_count = 40; // forces tier 64
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.add_arg(0, Arg::RegVal(70)); // forces tier 128
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &NO_LIVENESS,
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        assert_eq!(img.tier, 128);
        assert!(img.extra_local >= frame_bytes(128, &hal));
        // No analysis was supplied, so the fallback is recorded and the
        // conservative accounting shows no savings.
        assert!(img.fallback.is_some());
        assert_eq!(img.saved_slots, img.full_tier_slots);
    }

    #[test]
    fn liveness_shrinks_the_site_tier() {
        let (hal, mut info, instrs, code) = setup(
            Arch::Volta,
            "S2R R4, SR_TID.X ;\n\
             IADD R5, R4, 0x1 ;\n\
             STG [R6], R5 ;\n\
             EXIT ;",
        );
        info.reg_count = 40; // whole-function demand => tier 64
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(1, "ifunc", IPoint::Before);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        // Only R4/R5/R6 are live around the site: the minimum tier covers
        // them, while the baseline policy would have saved 64 slots.
        assert_eq!(img.sites.len(), 1);
        assert_eq!(img.sites[0].tier, 16);
        assert_eq!(img.tier, 16);
        assert_eq!(img.saved_slots, 16);
        assert_eq!(img.full_tier_slots, 64);
        assert!(img.fallback.is_none());
        // The trampoline calls the tier-16 routines.
        let routines = fake_routines();
        let tramp = hal.disassemble(&img.tramp_code).unwrap();
        assert_eq!(tramp[0].op, Op::Jcal);
        assert_eq!(tramp[0].operands[0], Operand::Abs(routines[&16].save_addr));
    }

    #[test]
    fn live_registers_above_the_clobber_window_need_no_save() {
        // R200 is live across the site, but the trampoline clobbers only
        // R0, the ABI argument window and the 8-register tool function —
        // R200 survives untouched, so the site keeps the minimum tier.
        let (hal, mut info, instrs, code) = setup(
            Arch::Volta,
            "IADD R5, R4, 0x1 ;\n\
             STG [R6], R5 ;\n\
             STG [R6], R200 ;\n\
             EXIT ;",
        );
        info.reg_count = 201; // whole-function demand => tier 255
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.add_arg(0, Arg::GuardPred);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        assert_eq!(img.sites[0].tier, 16);
        assert_eq!(img.full_tier_slots, 255);
        assert!(img.fallback.is_none());

        // Reading the saved R200 back as an argument *does* demand its
        // save slot, clobber window or not.
        let mut spec2 = FuncSpec::default();
        spec2.insert_call(0, "ifunc", IPoint::Before);
        spec2.add_arg(0, Arg::RegVal(200));
        let img2 = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec2, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        assert_eq!(img2.sites[0].tier, 255);
    }

    #[test]
    fn full_tier_policy_ignores_the_analysis() {
        let (hal, mut info, instrs, code) = setup(Arch::Volta, "IADD R5, R4, 0x1 ;\nEXIT ;");
        info.reg_count = 40;
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::FullTier,
            |_| Ok(0x9000),
        )
        .unwrap();
        assert_eq!(img.sites[0].tier, 64);
        assert_eq!(img.saved_slots, img.full_tier_slots);
        assert!(img.fallback.is_some());
    }

    #[test]
    fn reg_api_tools_force_the_conservative_tier() {
        let (hal, mut info, instrs, code) = setup(Arch::Volta, "IADD R5, R4, 0x1 ;\nEXIT ;");
        info.reg_count = 40;
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut fns = tool_fns();
        fns.insert("regapi".to_string(), ToolFn::opaque(0x8800, 8, 0, true));
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "regapi", IPoint::Before);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &fns),
            &fns,
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        // The tool addresses save-area slots at run time; only the
        // whole-function tier is safe, even though liveness is tiny.
        assert_eq!(img.sites[0].tier, 64);
        // But the fallback field stays clear: the analysis itself applied.
        assert!(img.fallback.is_none());
    }

    #[test]
    fn argument_demand_extends_the_liveness_tier() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "IADD R5, R4, 0x1 ;\nEXIT ;");
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.add_arg(0, Arg::RegVal(70)); // reading saved R70 needs its slot
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        assert_eq!(img.sites[0].tier, 128);
    }

    #[test]
    fn site_meta_locates_the_relocated_original() {
        let (hal, info, instrs, code) = setup(
            Arch::Volta,
            "IADD R5, R4, 0x1 ;\n\
             STG [R6], R5 ;\n\
             EXIT ;",
        );
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        spec.insert_call(1, "ifunc", IPoint::After);
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &LivenessInput::Analysis(&df),
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        let tramp = hal.disassemble(&img.tramp_code).unwrap();
        assert_eq!(img.sites.len(), 2);
        for site in &img.sites {
            let reloc = &tramp[site.start + site.orig_pos];
            assert_eq!(reloc.op, instrs[site.instr_idx].op);
            // Each site ends with the jump back into the image.
            assert_eq!(tramp[site.start + site.len - 1].op, Op::Jmp);
        }
    }

    #[test]
    fn too_many_arguments_error() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "NOP ;\nEXIT ;");
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "ifunc", IPoint::Before);
        for _ in 0..7 {
            spec.add_arg(0, Arg::Imm64(1)); // 14 slots > 12 available
        }
        let e = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan_of(&spec, instrs.len(), &tool_fns()),
            &tool_fns(),
            &fake_routines(),
            &NO_LIVENESS,
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        );
        assert!(matches!(e, Err(NvbitError::BadRequest(_))));
    }

    /// A leaf tool body: bump the first argument register and return.
    fn leaf_fns(hal: &Hal, reg_count: u32) -> HashMap<String, ToolFn> {
        let code = hal.assemble_text("IADD R4, R4, 0x1 ;\nRET ;").unwrap();
        let body = hal.disassemble(&code).unwrap();
        let mut m = HashMap::new();
        m.insert(
            "leaf".to_string(),
            ToolFn::with_body(0x8000, reg_count, 0, false, body, hal.arch()),
        );
        m
    }

    #[test]
    fn leaf_classification() {
        let hal = Hal::new(Arch::Volta);
        let arch = hal.arch();
        let dis = |t: &str| hal.disassemble(&hal.assemble_text(t).unwrap()).unwrap();

        let leaf = dis("IADD R4, R4, 0x1 ;\nRET ;");
        assert_eq!(
            classify_body(&leaf, 8, 0, false, arch),
            (true, Some(5), Some(BodyShape::Straight))
        );

        // Calls, guarded trailing RET, the register device API, stack use
        // and oversized bodies all disqualify.
        let calls = dis("JCAL `0x100 ;\nRET ;");
        assert_eq!(classify_body(&calls, 8, 0, false, arch), (false, None, None));
        let guarded = dis("ISETP.EQ.S32 P1, R4, RZ ;\n@P1 RET ;");
        assert!(!classify_body(&guarded, 8, 0, false, arch).0);
        assert!(!classify_body(&leaf, 8, 0, true, arch).0, "reg-api");
        assert!(!classify_body(&leaf, 8, 64, false, arch).0, "stack");
        assert!(!classify_body(&leaf, INLINE_MAX_REGS + 1, 0, false, arch).0, "regs");
        let long: Vec<Instruction> = std::iter::repeat_with(Instruction::nop)
            .take(INLINE_MAX_INSTRS)
            .chain(dis("RET ;"))
            .collect();
        assert!(!classify_body(&long, 8, 0, false, arch).0, "size");

        // An early guarded branch to a merge label (single trailing RET —
        // what the PTX pipeline produces) classifies as a guarded diamond
        // and stays inlinable.
        let merged = dis("ISETP.EQ.S32 P1, R4, RZ ;\n\
             @P1 BRA done ;\n\
             IADD R5, R4, 0x1 ;\n\
             done:\n\
             RET ;");
        let (ok, ceiling, shape) = classify_body(&merged, 8, 0, false, arch);
        assert!(ok);
        assert_eq!(ceiling, Some(6));
        assert_eq!(shape, Some(BodyShape::Diamond));

        // A backward (loop) branch was loosely accepted by the old scan;
        // the shape classifier rejects it.
        let looped = dis("top:\nIADD R4, R4, 0x1 ;\n@P1 BRA top ;\nRET ;");
        assert!(!classify_body(&looped, 8, 0, false, arch).0, "loop");
    }

    #[test]
    fn inline_call_splices_the_body_and_drops_the_call_ret_pair() {
        let (hal, info, instrs, code) = setup(Arch::Volta, "IADD R7, R7, 0x1 ;\nEXIT ;");
        let fns = leaf_fns(&hal, 8);
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "leaf", IPoint::Before);
        let plan = plan::build(
            &spec,
            instrs.len(),
            Analyses::none(),
            &fns,
            PlanOpts { inline: true, ..PlanOpts::naive() },
        )
        .unwrap();
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan,
            &fns,
            &fake_routines(),
            &NO_LIVENESS,
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        let tramp = hal.disassemble(&img.tramp_code).unwrap();
        let ops: Vec<Op> = tramp.iter().map(|i| i.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::Jcal, // save
                Op::Mov,  // R0 = frame
                Op::Iadd, // spliced body
                Op::Nop,  //   (its RET)
                Op::Jcal, // restore
                Op::Iadd, // relocated original
                Op::Jmp,  // back
            ],
            "{}",
            sass::asm::disassemble(&tramp)
        );
        // No call to the tool's address anywhere.
        assert!(tramp.iter().all(|i| i.operands.first() != Some(&Operand::Abs(0x8000))));
        // The site meta records the splice span.
        assert_eq!(img.sites[0].calls.len(), 1);
        assert_eq!(img.sites[0].calls[0].inline, Some((2, 2)));
        assert_eq!(img.plan.inlined_calls, 1);
    }

    #[test]
    fn inline_span_shifts_inside_the_pred_filter_diamond() {
        let (hal, info, instrs, _code) = setup(
            Arch::Volta,
            "ISETP.EQ.S32 P0, R4, RZ ;\n\
             @P0 IADD R7, R7, 0x1 ;\n\
             EXIT ;",
        );
        let fns = leaf_fns(&hal, 8);
        let mut spec = FuncSpec::default();
        spec.insert_call(1, "leaf", IPoint::Before);
        spec.set_pred_filter(1);
        let plan = plan::build(
            &spec,
            instrs.len(),
            Analyses::none(),
            &fns,
            PlanOpts { inline: true, ..PlanOpts::naive() },
        )
        .unwrap();
        let routines = fake_routines();
        let (out, _, metas) =
            emit_site(&hal, &info, &instrs, &plan, &fns, &routines[&16], 16, 1, 0x9000).unwrap();
        let (off, len) = metas[0].inline.expect("inlined");
        assert_eq!(len, 2);
        assert_eq!(out[off].op, Op::Iadd, "{}", sass::asm::disassemble(&out));
        assert_eq!(out[off + 1].op, Op::Nop);
        assert_eq!(out[0].op, Op::Ssy);
        assert_eq!(out[1].op, Op::Bra);
    }

    #[test]
    fn coalesced_site_materializes_the_multiplicity_argument() {
        let (hal, info, instrs, code) = setup(
            Arch::Volta,
            "IADD R4, R4, 0x1 ;\n\
             IADD R5, R5, 0x1 ;\n\
             IADD R6, R6, 0x1 ;\n\
             EXIT ;",
        );
        let blocks = sass::cfg::basic_blocks(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        for idx in 0..instrs.len() {
            spec.insert_call(idx, "ifunc", IPoint::Before);
            spec.add_arg(idx, Arg::Imm64(0xbeef));
            spec.set_coalesce(idx);
        }
        let plan = plan::build(
            &spec,
            instrs.len(),
            Analyses::with_blocks(&blocks),
            &tool_fns(),
            PlanOpts { coalesce: true, ..PlanOpts::naive() },
        )
        .unwrap();
        let img = generate(
            &hal,
            &info,
            &instrs,
            &code,
            &plan,
            &tool_fns(),
            &fake_routines(),
            &NO_LIVENESS,
            SavePolicy::Liveness,
            |_| Ok(0x9000),
        )
        .unwrap();
        // One block → one trampoline site, at the block head.
        assert_eq!(img.sites.len(), 1);
        assert_eq!(img.sites[0].instr_idx, 0);
        assert_eq!(img.sites[0].calls[0].multiplicity, 4);
        assert_eq!(img.sites[0].calls[0].group, vec![0, 1, 2, 3]);
        // Only site 0 is patched; the merged-away sites run in place.
        let patched = hal.disassemble(&img.instrumented).unwrap();
        assert_eq!(patched[0].op, Op::Jmp);
        assert_eq!(patched[1], instrs[1]);
        assert_eq!(patched[2], instrs[2]);
        // The trailing Imm32 argument lands in the slot after the Imm64
        // pair (R6) with the multiplicity value.
        let tramp = hal.disassemble(&img.tramp_code).unwrap();
        let mult = tramp
            .iter()
            .find(|i| i.op == Op::Mov32i && i.operands.first() == Some(&Operand::Reg(Reg(6))))
            .expect("multiplicity materialization");
        assert_eq!(mult.operands[1], Operand::Imm(4));
        assert_eq!(img.plan.coalesced_away, 3);
    }

    #[test]
    fn write_ceiling_shrinks_the_clobber_window() {
        // The leaf body only writes R4; a high-register value live across
        // the site needs no save slot even though the tool *uses* 100
        // registers by its own accounting.
        let (hal, mut info, instrs, code) = setup(
            Arch::Volta,
            "IADD R5, R4, 0x1 ;\n\
             STG [R6], R90 ;\n\
             EXIT ;",
        );
        info.reg_count = 91;
        let df = sass::Dataflow::analyze(&instrs, Arch::Volta).unwrap();
        let mut spec = FuncSpec::default();
        spec.insert_call(0, "leaf", IPoint::Before);
        let run = |fns: &HashMap<String, ToolFn>| {
            let plan =
                plan::build(&spec, instrs.len(), Analyses::none(), fns, PlanOpts::naive()).unwrap();
            generate(
                &hal,
                &info,
                &instrs,
                &code,
                &plan,
                fns,
                &fake_routines(),
                &LivenessInput::Analysis(&df),
                SavePolicy::Liveness,
                |_| Ok(0x9000),
            )
            .unwrap()
        };
        let with_body = run(&leaf_fns(&hal, 100));
        assert_eq!(with_body.sites[0].tier, 16);
        let mut opaque = HashMap::new();
        opaque.insert("leaf".to_string(), ToolFn::opaque(0x8000, 100, 0, false));
        let without = run(&opaque);
        assert_eq!(without.sites[0].tier, 128, "R90 inside the 100-register clobber window");
    }
}
