//! **NVBit** — a dynamic binary instrumentation framework for the simulated
//! GPU stack, reproducing the system of *NVBit: A Dynamic Binary
//! Instrumentation Framework for NVIDIA GPUs* (MICRO 2019).
//!
//! The framework interposes on the CUDA driver ([`cuda::Interposer`]),
//! lifts SASS machine code into a machine-independent [`Instr`] view,
//! lets tools inject device functions before/after any instruction, and
//! dynamically recompiles the kernel with **trampolines** so that the
//! instrumented copy occupies exactly the same addresses as the original
//! (enabling O(memcpy) switching between the two — the basis of the paper's
//! sampling methodology, §6.2).
//!
//! **Paper mapping:** §4 — SASS lifting (§4.1), instrumentation-function
//! compilation (§4.2), trampoline code generation and register save/restore
//! (§4.3–4.4), and the original/instrumented code-swap machinery.
//!
//! # Writing a tool
//!
//! A tool implements [`NvbitTool`] (the analog of an NVBit `.so`):
//!
//! * instrumentation *device functions* are written in the PTX dialect and
//!   registered with [`NvbitApi::load_tool_functions`] (the Tool Functions
//!   Loader);
//! * in `at_cuda_event`, on the entry of a kernel launch, the tool inspects
//!   the kernel ([`NvbitApi::get_instrs`], [`NvbitApi::get_basic_blocks`],
//!   [`NvbitApi::get_related_funcs`]) and injects calls
//!   ([`NvbitApi::insert_call`], [`NvbitApi::add_call_arg`],
//!   [`NvbitApi::remove_orig`]);
//! * [`NvbitApi::enable_instrumented`] switches between the original and
//!   instrumented versions per launch (sampling);
//! * device-API reads/writes of the instrumented thread's registers are
//!   expressed with the `nvbit.readreg`/`nvbit.writereg` PTX intrinsics,
//!   which the framework backs with the register save area (writes are
//!   *permanent*: the restore routine loads them back into the register
//!   file — the mechanism behind instruction emulation, §6.3).
//!
//! # Example: the paper's Listing 1 (thread-level instruction counter)
//!
//! ```
//! use cuda::{CbId, CbParams, Driver, FatBinary, KernelArg};
//! use gpu::{DeviceSpec, Dim3};
//! use nvbit::{attach_tool, IPoint, NvbitApi, NvbitTool};
//! use sass::Arch;
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! /// Counts every executed thread-level instruction of every kernel.
//! struct InstrCount {
//!     counter: Rc<Cell<u64>>, // device address of the managed counter
//!     instrumented: std::collections::HashSet<cuda::CuFunction>,
//! }
//!
//! const IFUNC: &str = r#"
//! .func count_instrs(.reg .u32 %pred, .reg .u64 %ctr)
//! {
//!     .reg .u32 %r<4>;
//!     .reg .pred %p<2>;
//!     // A false guard predicate means the instrumented instruction does
//!     // not actually execute (paper Listing 8, line 9).
//!     setp.eq.u32 %p1, %pred, 0;
//!     @%p1 ret;
//!     mov.u32 %r1, 1;
//!     atom.global.add.u32 %r2, [%ctr], %r1;
//!     ret;
//! }
//! "#;
//!
//! impl NvbitTool for InstrCount {
//!     fn at_init(&mut self, api: &NvbitApi<'_>) {
//!         api.load_tool_functions(IFUNC).unwrap();
//!         let addr = api.driver().with_device(|d| d.alloc(8)).unwrap();
//!         self.counter.set(addr);
//!     }
//!
//!     fn at_cuda_event(
//!         &mut self,
//!         api: &NvbitApi<'_>,
//!         is_exit: bool,
//!         cbid: CbId,
//!         params: &CbParams<'_>,
//!     ) {
//!         let CbParams::LaunchKernel { func, .. } = params else { return };
//!         if is_exit || cbid != CbId::LaunchKernel || !self.instrumented.insert(*func) {
//!             return;
//!         }
//!         let n = api.get_instrs(*func).unwrap().len();
//!         for idx in 0..n {
//!             api.insert_call(*func, idx, "count_instrs", IPoint::Before).unwrap();
//!             api.add_call_arg_guard_pred(*func, idx).unwrap();
//!             api.add_call_arg_imm64(*func, idx, self.counter.get()).unwrap();
//!         }
//!     }
//! }
//!
//! // Run an application under the tool.
//! let counter = Rc::new(Cell::new(0u64));
//! let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
//! attach_tool(&drv, InstrCount { counter: counter.clone(), instrumented: Default::default() });
//! let ctx = drv.ctx_create().unwrap();
//! let m = drv
//!     .module_load(&ctx, FatBinary::from_ptx("app", "
//! .entry store(.param .u64 p)
//! {
//!     .reg .u64 %rd<2>;
//!     ld.param.u64 %rd1, [p];
//!     st.global.u64 [%rd1], %rd1;
//!     exit;
//! }
//! "))
//!     .unwrap();
//! let f = drv.module_get_function(&m, "store").unwrap();
//! let buf = drv.mem_alloc(64).unwrap();
//! drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
//!
//! // The kernel executes 3 instructions on each of 32 threads.
//! let mut out = [0u8; 8];
//! drv.memcpy_dtoh(&mut out, counter.get()).unwrap();
//! assert_eq!(u64::from_le_bytes(out), 96);
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod core;
pub mod hal;
pub mod instr;
pub mod lift;
pub mod overhead;
pub mod plan;
pub mod saverestore;
pub mod spec;
pub mod verify;

pub use crate::core::{attach_tool, NvbitApi, NvbitCore, NvbitTool, SaveStats};
pub use codegen::SavePolicy;
pub use hal::Hal;
pub use instr::Instr;
pub use overhead::{JitComponent, JitOverhead, OverheadReport};
pub use plan::{PlanOpts, PlanStats};
pub use spec::{Arg, IPoint};
pub use verify::{DiagKind, Diagnostic};

/// Errors raised by the instrumentation framework.
#[derive(Debug)]
pub enum NvbitError {
    /// A driver-level failure.
    Driver(cuda::DriverError),
    /// Compilation of tool device functions failed.
    ToolCompile(ptx::PtxError),
    /// Reference to an unknown tool device function.
    UnknownToolFunction(String),
    /// An instruction index outside the function body.
    BadInstrIndex {
        /// Offending index.
        index: usize,
        /// Function size in instructions.
        len: usize,
    },
    /// The instrumentation request is invalid (e.g. too many arguments).
    BadRequest(String),
    /// Code generation failed to encode an instruction.
    Encode(sass::SassError),
    /// The generated instrumented image failed pre-swap verification; the
    /// swap was refused to protect the application.
    VerifyFailed(Vec<verify::Diagnostic>),
}

impl std::fmt::Display for NvbitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvbitError::Driver(e) => write!(f, "driver error: {e}"),
            NvbitError::ToolCompile(e) => write!(f, "tool function compilation failed: {e}"),
            NvbitError::UnknownToolFunction(n) => {
                write!(f, "unknown tool function `{n}` (load_tool_functions first?)")
            }
            NvbitError::BadInstrIndex { index, len } => {
                write!(f, "instruction index {index} out of range (function has {len})")
            }
            NvbitError::BadRequest(s) => write!(f, "bad instrumentation request: {s}"),
            NvbitError::Encode(e) => write!(f, "code generation encode failure: {e}"),
            NvbitError::VerifyFailed(diags) => {
                write!(f, "instrumented image failed verification ({} finding(s)", diags.len())?;
                match diags.first() {
                    Some(first) => write!(f, "; first: {first})"),
                    None => write!(f, ")"),
                }
            }
        }
    }
}

impl std::error::Error for NvbitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NvbitError::Driver(e) => Some(e),
            NvbitError::ToolCompile(e) => Some(e),
            NvbitError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cuda::DriverError> for NvbitError {
    fn from(e: cuda::DriverError) -> Self {
        NvbitError::Driver(e)
    }
}

impl From<ptx::PtxError> for NvbitError {
    fn from(e: ptx::PtxError) -> Self {
        NvbitError::ToolCompile(e)
    }
}

impl From<sass::SassError> for NvbitError {
    fn from(e: sass::SassError) -> Self {
        NvbitError::Encode(e)
    }
}

impl From<gpu::GpuError> for NvbitError {
    fn from(e: gpu::GpuError) -> Self {
        NvbitError::Driver(cuda::DriverError::Gpu(e))
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NvbitError>;
