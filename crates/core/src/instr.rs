//! The machine-independent instruction view exposed to tools — the paper's
//! `Instr` class (Listing 4).

use sass::{Instruction, MemSpace, Op, Operand};

/// A lifted instruction: one-to-one with a SASS instruction of the
/// inspected function, in program order.
#[derive(Debug, Clone)]
pub struct Instr {
    /// Index within the function body (what `insert_call` addresses).
    pub idx: usize,
    /// Byte offset of the instruction from the function start
    /// (`Instr::getOffset` in the paper).
    pub offset: u64,
    /// Source-correlation info, when the binary carries it
    /// (`Instr::getLineInfo`).
    pub line_info: Option<(String, u32)>,
    pub(crate) inner: Instruction,
    /// Rendered once at lift time: `opcode()` is on the hot path of every
    /// opcode-keyed tool (histograms walk it per instruction), so it must
    /// not re-render the string per call.
    opcode: String,
}

impl Instr {
    pub(crate) fn new(
        idx: usize,
        offset: u64,
        inner: Instruction,
        line_info: Option<(String, u32)>,
    ) -> Instr {
        let opcode = inner.opcode_string();
        Instr { idx, offset, line_info, inner, opcode }
    }

    /// The full opcode string including modifiers, e.g. `"LDG.64"` or
    /// `"ISETP.LT.S32"` (`Instr::getOpcode`). Rendered once when the
    /// instruction was lifted; calling this is allocation-free.
    pub fn opcode(&self) -> &str {
        &self.opcode
    }

    /// The base machine opcode.
    pub fn op(&self) -> Op {
        self.inner.op
    }

    /// Number of operands (`Instr::getNumOperands`).
    pub fn num_operands(&self) -> usize {
        self.inner.operands.len()
    }

    /// The `n`-th operand (`Instr::getOperand`).
    pub fn operand(&self, n: usize) -> Option<&Operand> {
        self.inner.operands.get(n)
    }

    /// All operands.
    pub fn operands(&self) -> &[Operand] {
        &self.inner.operands
    }

    /// Memory space accessed, if this is a memory operation
    /// (`Instr::getMemOpType`: GLOBAL/SHARED/LOCAL/CONST).
    pub fn mem_space(&self) -> Option<MemSpace> {
        self.inner.op.mem_space()
    }

    /// Access size in bytes for memory operations (`Instr::getSize`).
    pub fn access_bytes(&self) -> Option<usize> {
        self.mem_space().map(|_| self.inner.mods.width.bytes())
    }

    /// True for loads (`Instr::isLoad`).
    pub fn is_load(&self) -> bool {
        self.inner.op.is_load()
    }

    /// True for stores (`Instr::isStore`).
    pub fn is_store(&self) -> bool {
        self.inner.op.is_store()
    }

    /// True if the instruction carries a non-trivial guard predicate
    /// (`Instr::hasPred`).
    pub fn has_guard(&self) -> bool {
        !self.inner.guard.is_always()
    }

    /// The guard predicate register index and negation, if guarded
    /// (`Instr::getPredNum` / `isPredNeg`).
    pub fn guard(&self) -> Option<(u8, bool)> {
        if self.has_guard() {
            Some((self.inner.guard.pred.0, self.inner.guard.negated))
        } else {
            None
        }
    }

    /// The memory-reference operand `[base + offset]`, if any.
    pub fn mref(&self) -> Option<(sass::Reg, i32)> {
        self.inner.operands.iter().find_map(|o| match o {
            Operand::MRef { base, offset } => Some((*base, *offset)),
            _ => None,
        })
    }

    /// The immediate id of a `PROXY` instruction (paper §6.3's
    /// hypothetical-instruction carrier), if this is one.
    pub fn proxy_id(&self) -> Option<i64> {
        if self.inner.op == Op::Proxy {
            self.inner.operands.get(2).and_then(Operand::as_imm)
        } else {
            None
        }
    }

    /// Destination and first source registers of a `PROXY` instruction.
    pub fn proxy_regs(&self) -> Option<(sass::Reg, sass::Reg)> {
        if self.inner.op != Op::Proxy {
            return None;
        }
        match (self.inner.operands.first(), self.inner.operands.get(1)) {
            (Some(Operand::Reg(d)), Some(Operand::Reg(s))) => Some((*d, *s)),
            _ => None,
        }
    }

    /// The raw machine instruction (escape hatch; stable across families
    /// thanks to the lifter).
    pub fn raw(&self) -> &Instruction {
        &self.inner
    }

    /// The control-flow class, used by tools that reason about basic blocks.
    pub fn cf_class(&self) -> sass::op::CfClass {
        self.inner.op.cf_class()
    }
}

impl std::fmt::Display for Instr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "/*{:04x}*/ {}", self.offset, self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::{asm, Mods, Width};

    fn lift_one(text: &str) -> Instr {
        let i = asm::assemble(text).unwrap().remove(0);
        Instr::new(0, 0x40, i, Some(("k.cu".into(), 12)))
    }

    #[test]
    fn exposes_opcode_and_operand_views() {
        let i = lift_one("LDG.64 R2, [R6+0x100] ;");
        assert_eq!(i.opcode(), "LDG.64");
        assert_eq!(i.op(), Op::Ldg);
        assert_eq!(i.num_operands(), 2);
        assert_eq!(i.mem_space(), Some(MemSpace::Global));
        assert_eq!(i.access_bytes(), Some(8));
        assert!(i.is_load() && !i.is_store());
        assert_eq!(i.mref(), Some((sass::Reg(6), 0x100)));
        assert_eq!(i.line_info.as_ref().unwrap().1, 12);
    }

    #[test]
    fn guards_are_reported() {
        let i = lift_one("@!P2 IADD R4, R5, R6 ;");
        assert!(i.has_guard());
        assert_eq!(i.guard(), Some((2, true)));
        let j = lift_one("IADD R4, R5, R6 ;");
        assert!(!j.has_guard());
        assert_eq!(j.guard(), None);
    }

    #[test]
    fn proxy_accessors() {
        let i = lift_one("PROXY R4, R5, 0x1234 ;");
        assert_eq!(i.proxy_id(), Some(0x1234));
        assert_eq!(i.proxy_regs(), Some((sass::Reg(4), sass::Reg(5))));
        assert_eq!(lift_one("NOP ;").proxy_id(), None);
    }

    #[test]
    fn non_memory_instructions_have_no_access_size() {
        let i = lift_one("FADD R1, R2, R3 ;");
        assert_eq!(i.mem_space(), None);
        assert_eq!(i.access_bytes(), None);
        // Width modifier without memory semantics stays invisible.
        let mut raw = asm::assemble("IADD R1, R2, R3 ;").unwrap().remove(0);
        raw.mods = Mods { width: Width::B64, ..raw.mods };
        let j = Instr::new(0, 0, raw, None);
        assert_eq!(j.access_bytes(), None);
    }
}
