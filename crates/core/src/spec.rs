//! Instrumentation request types: injection points, arguments, and the
//! per-function instrumentation specification built up by tool calls.

use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};

/// Where to inject relative to the instrumented instruction (the paper's
/// `IPOINT_BEFORE` / `IPOINT_AFTER`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IPoint {
    /// Run the injected function before the original instruction.
    Before,
    /// Run it after (only reached when the original falls through).
    After,
}

/// An argument passed to an injected device function (the paper's
/// `nvbit_add_call_arg_*` family). Argument passing is positional and must
/// match the injected function's signature. The ordering is arbitrary but
/// total — the planner's coalescing pass keys groups on argument lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arg {
    /// The evaluated guard predicate of the instrumented instruction
    /// (1 = the instruction actually executes on this thread).
    GuardPred,
    /// The value of a general-purpose register at the instrumentation point.
    RegVal(u8),
    /// The value of a register pair (64-bit, e.g. an address base).
    RegVal64(u8),
    /// The value of a predicate register (0/1).
    PredVal(u8),
    /// A 32-bit immediate fixed at instrumentation time.
    Imm32(i32),
    /// A 64-bit immediate (e.g. the device address of a tool counter).
    Imm64(u64),
    /// A value from a constant bank at launch time.
    CBank {
        /// Bank index.
        bank: u8,
        /// Byte offset.
        offset: u16,
    },
}

impl Arg {
    /// Number of 32-bit ABI argument slots the argument occupies.
    pub fn slots(&self) -> u8 {
        match self {
            Arg::Imm64(_) | Arg::RegVal64(_) => 2,
            _ => 1,
        }
    }
}

/// One injected call at an instrumentation site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Injection {
    /// Name of the tool device function to call.
    pub func: String,
    /// Before or after the original instruction.
    pub ipoint: IPoint,
    /// Positional arguments.
    pub args: Vec<Arg>,
    /// When set, lanes whose guard predicate is false skip the injected
    /// function entirely (the predicate-matching optimization the paper's
    /// §7 sketches as future work). Warp-level intrinsics inside the tool
    /// function then see only the guard-true lanes.
    pub pred_filter: bool,
    /// Opt-in to basic-block call coalescing: the injection follows the
    /// *multiplicity protocol* — the code generator always appends one
    /// trailing `Imm32` multiplicity argument, and the planner may merge
    /// identical coalescible injections within a basic block into a single
    /// call whose multiplicity is the number of sites it represents. Only
    /// injections whose explicit arguments are all block-invariant
    /// (immediates, constant-bank reads) and that carry no predicate
    /// filter are merged; the tool function must accept the extra final
    /// `u32` argument.
    pub coalesce: bool,
}

/// The accumulated instrumentation specification of one function.
#[derive(Debug, Clone, Default)]
pub struct FuncSpec {
    /// Injections per instruction index; a site may carry several (paper:
    /// "multiple function injections to the same location").
    pub sites: BTreeMap<usize, Vec<Injection>>,
    /// Instructions whose original operation is removed (paper:
    /// `nvbit_remove_orig`).
    pub removed: HashSet<usize>,
    /// Set when the spec changed since its content hash was last taken
    /// (the core keys its image cache on [`FuncSpec::content_hash`]).
    pub dirty: bool,
}

impl FuncSpec {
    /// True if nothing was requested.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty() && self.removed.is_empty()
    }

    /// Adds an injection, marking the spec dirty.
    pub fn insert_call(&mut self, idx: usize, func: &str, ipoint: IPoint) {
        self.sites.entry(idx).or_default().push(Injection {
            func: func.to_string(),
            ipoint,
            args: Vec::new(),
            pred_filter: false,
            coalesce: false,
        });
        self.dirty = true;
    }

    /// Appends an argument to the most recently inserted call at `idx`.
    ///
    /// Returns `false` if no call was inserted there yet.
    pub fn add_arg(&mut self, idx: usize, arg: Arg) -> bool {
        match self.sites.get_mut(&idx).and_then(|v| v.last_mut()) {
            Some(inj) => {
                inj.args.push(arg);
                self.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Enables predicate filtering on the most recent injection at `idx`.
    ///
    /// Returns `false` if no call was inserted there yet.
    pub fn set_pred_filter(&mut self, idx: usize) -> bool {
        match self.sites.get_mut(&idx).and_then(|v| v.last_mut()) {
            Some(inj) => {
                inj.pred_filter = true;
                self.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Marks the most recent injection at `idx` as coalescible (opt-in to
    /// the planner's basic-block coalescing pass and its multiplicity
    /// protocol — see [`Injection::coalesce`]).
    ///
    /// Returns `false` if no call was inserted there yet.
    pub fn set_coalesce(&mut self, idx: usize) -> bool {
        match self.sites.get_mut(&idx).and_then(|v| v.last_mut()) {
            Some(inj) => {
                inj.coalesce = true;
                self.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Marks the original instruction at `idx` for removal.
    pub fn remove_orig(&mut self, idx: usize) {
        self.removed.insert(idx);
        self.dirty = true;
    }

    /// A process-deterministic content hash of the spec (sites in index
    /// order, removals sorted; the `dirty` flag is excluded). Together with
    /// the [`crate::SavePolicy`] this keys the multi-version image cache:
    /// two specs with the same hash generate the same trampoline code.
    pub fn content_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for (idx, injections) in &self.sites {
            idx.hash(&mut h);
            injections.hash(&mut h);
        }
        let mut removed: Vec<usize> = self.removed.iter().copied().collect();
        removed.sort_unstable();
        removed.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_injections_per_site_accumulate_in_order() {
        let mut s = FuncSpec::default();
        s.insert_call(3, "a", IPoint::Before);
        s.insert_call(3, "b", IPoint::After);
        assert_eq!(s.sites[&3].len(), 2);
        assert_eq!(s.sites[&3][0].func, "a");
        assert_eq!(s.sites[&3][1].ipoint, IPoint::After);
        assert!(s.dirty);
    }

    #[test]
    fn args_attach_to_the_latest_injection() {
        let mut s = FuncSpec::default();
        assert!(!s.add_arg(0, Arg::GuardPred), "no call inserted yet");
        s.insert_call(0, "f", IPoint::Before);
        assert!(s.add_arg(0, Arg::GuardPred));
        assert!(s.add_arg(0, Arg::Imm64(0xdead)));
        s.insert_call(0, "g", IPoint::Before);
        assert!(s.add_arg(0, Arg::RegVal(7)));
        assert_eq!(s.sites[&0][0].args.len(), 2);
        assert_eq!(s.sites[&0][1].args, vec![Arg::RegVal(7)]);
    }

    #[test]
    fn coalesce_attaches_to_the_latest_injection_and_hashes() {
        let mut s = FuncSpec::default();
        assert!(!s.set_coalesce(0), "no call inserted yet");
        s.insert_call(0, "f", IPoint::Before);
        let before = s.content_hash();
        assert!(s.set_coalesce(0));
        assert!(s.sites[&0][0].coalesce);
        assert!(s.dirty);
        assert_ne!(s.content_hash(), before, "coalesce participates in the image-cache key");
    }

    #[test]
    fn slots_account_for_wide_arguments() {
        assert_eq!(Arg::GuardPred.slots(), 1);
        assert_eq!(Arg::Imm64(0).slots(), 2);
        assert_eq!(Arg::RegVal64(4).slots(), 2);
    }
}
