//! The NVBit core: driver interposition, tool dispatch, state management
//! and the user-level API handed to tools.

use crate::codegen::{generate, InstrumentedImage, LivenessInput, SavePolicy, ToolFn};
use crate::hal::Hal;
use crate::instr::Instr;
use crate::lift::{lift, Lifted};
use crate::overhead::{JitComponent, OverheadReport};
use crate::saverestore::{restore_text, save_text, Routines, TIERS};
use crate::spec::{Arg, FuncSpec, IPoint};
use crate::verify::{self, Diagnostic, ExternalCode};
use crate::{NvbitError, Result};
use cuda::{CbId, CbParams, CuContext, CuFunction, Driver, Interposer};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// A user instrumentation tool — the analog of an NVBit tool shared
/// library. Implement the callbacks you need; defaults are no-ops.
pub trait NvbitTool {
    /// Application start (before any driver call).
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        let _ = api;
    }

    /// Application termination.
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        let _ = api;
    }

    /// A context started.
    fn at_ctx_init(&mut self, api: &NvbitApi<'_>, ctx: CuContext) {
        let _ = (api, ctx);
    }

    /// A context is being destroyed.
    fn at_ctx_term(&mut self, api: &NvbitApi<'_>, ctx: CuContext) {
        let _ = (api, ctx);
    }

    /// Entry/exit of every CUDA driver API call (paper Listing 2).
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    );
}

/// Whether a function currently runs its original or instrumented version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Original,
    Instrumented,
}

struct FuncState {
    spec: FuncSpec,
    image: Option<InstrumentedImage>,
    /// What the tool asked for (`enable_instrumented`). Defaults to
    /// instrumented once instrumentation exists, like NVBit.
    desired: Version,
    current: Version,
}

impl Default for FuncState {
    fn default() -> Self {
        FuncState {
            spec: FuncSpec::default(),
            image: None,
            desired: Version::Instrumented,
            current: Version::Original,
        }
    }
}

/// Shared core state (interior-mutable: tool callbacks re-enter the API).
pub(crate) struct CoreState {
    hal: Option<Hal>,
    tool_fns: HashMap<String, ToolFn>,
    routines: HashMap<u16, Routines>,
    lifted: HashMap<u32, Rc<Lifted>>,
    funcs: HashMap<u32, FuncState>,
    overhead: OverheadReport,
    save_policy: SavePolicy,
}

impl CoreState {
    fn new() -> CoreState {
        CoreState {
            hal: None,
            tool_fns: HashMap::new(),
            routines: HashMap::new(),
            lifted: HashMap::new(),
            funcs: HashMap::new(),
            overhead: OverheadReport::default(),
            save_policy: SavePolicy::default(),
        }
    }

    /// Code regions outside the image that instrumented control flow may
    /// legitimately reach, for the pre-swap verifier.
    fn external_code(&self, drv: &Driver, info: &cuda::FunctionInfo) -> ExternalCode {
        let mut ext = ExternalCode::default();
        for r in self.routines.values() {
            ext.save_addrs.push(r.save_addr);
            ext.restore_addrs.push(r.restore_addr);
        }
        for t in self.tool_fns.values() {
            ext.tool_addrs.push(t.addr);
        }
        for f in &info.related {
            if let Ok(ri) = drv.function_info(*f) {
                ext.code_regions.push((ri.addr, ri.addr + ri.code_len));
            }
        }
        ext
    }

    fn hal(&mut self, drv: &Driver) -> Hal {
        *self.hal.get_or_insert_with(|| Hal::new(drv.arch()))
    }

    /// Loads the embedded save/restore routines on first use (Tool
    /// Functions Loader, the `libnvbit.a`-embedded part).
    fn ensure_routines(&mut self, drv: &Driver) -> Result<()> {
        if !self.routines.is_empty() {
            return Ok(());
        }
        let hal = self.hal(drv);
        for tier in TIERS {
            let save = hal.assemble_text(&save_text(tier, &hal))?;
            let restore = hal.assemble_text(&restore_text(tier, &hal))?;
            let (save_addr, restore_addr) = drv.with_device(|d| -> gpu::Result<(u64, u64)> {
                let sa = d.alloc(save.len() as u64)?;
                d.write(sa, &save)?;
                let ra = d.alloc(restore.len() as u64)?;
                d.write(ra, &restore)?;
                Ok((sa, ra))
            })?;
            self.routines.insert(
                tier,
                Routines {
                    tier,
                    save_addr,
                    restore_addr,
                    frame_bytes: crate::saverestore::frame_bytes(tier, &hal),
                },
            );
        }
        Ok(())
    }

    /// Lifts (and caches) a function, timing the retrieve/disassemble/
    /// convert components.
    fn lifted(&mut self, drv: &Driver, func: CuFunction) -> Result<Rc<Lifted>> {
        if let Some(l) = self.lifted.get(&func.raw()) {
            common::obs::counter("lift_cache.hit", 1);
            return Ok(l.clone());
        }
        common::obs::counter("lift_cache.miss", 1);
        let _span = common::obs::span("lift");
        let hal = self.hal(drv);
        let info = drv.function_info(func)?;

        let t0 = Instant::now();
        let code = drv.read_code(func)?;
        let t1 = Instant::now();
        let raw = hal.disassemble(&code)?;
        let t2 = Instant::now();
        drop(raw); // the lifter re-decodes; keep component attribution honest
        let lifted = Rc::new(lift(&hal, &info, &code)?);
        let t3 = Instant::now();

        self.overhead.add(&info.name, JitComponent::Retrieve, t1 - t0);
        self.overhead.add(&info.name, JitComponent::Disassemble, t2 - t1);
        self.overhead.add(&info.name, JitComponent::Convert, t3 - t2);
        self.lifted.insert(func.raw(), lifted.clone());
        Ok(lifted)
    }

    /// Regenerates instrumentation for a function whose spec is dirty, then
    /// reconciles the desired/current code version.
    fn apply(&mut self, drv: &Driver, func: CuFunction) -> Result<()> {
        let needs_codegen = self
            .funcs
            .get(&func.raw())
            .map(|f| f.spec.dirty && !f.spec.is_empty())
            .unwrap_or(false);

        if !needs_codegen
            && self.funcs.get(&func.raw()).is_some_and(|f| f.image.is_some() && !f.spec.dirty)
        {
            // An up-to-date instrumented image exists — the code-cache
            // reuse the paper's Figure 5 amortization depends on.
            common::obs::counter("instr_image.reuse", 1);
        }

        if needs_codegen {
            let _span = common::obs::span("instrument");
            common::obs::counter("instr_image.build", 1);
            self.ensure_routines(drv)?;
            let hal = self.hal(drv);
            let info = drv.function_info(func)?;
            let lifted = self.lifted(drv, func)?;
            let original: Vec<sass::Instruction> =
                lifted.instrs.iter().map(|i| i.raw().clone()).collect();
            let code = drv.read_code(func)?;

            let policy = self.save_policy;
            let ext = self.external_code(drv, &info);
            let state = self.funcs.get_mut(&func.raw()).expect("checked above");
            // Free a previous trampoline region before regenerating.
            if let Some(old) = state.image.take() {
                if state.current == Version::Instrumented {
                    drv.with_device(|d| d.write(info.addr, &old.original))?;
                    state.current = Version::Original;
                }
                drv.with_device(|d| d.free(old.tramp_addr)).ok();
            }
            let _codegen_span = common::obs::span("codegen");
            let t0 = Instant::now();
            let cfg_reason = lifted.basic_blocks.as_ref().err().map(|e| e.to_string());
            let liveness = match (&lifted.dataflow, &cfg_reason) {
                (Some(df), _) => LivenessInput::Analysis(df),
                (None, Some(reason)) => LivenessInput::Unavailable(reason),
                (None, None) => LivenessInput::Unavailable("dataflow analysis unavailable"),
            };
            let image = generate(
                &hal,
                &info,
                &original,
                &code,
                &state.spec,
                &self.tool_fns,
                &self.routines,
                &liveness,
                policy,
                |len| drv.with_device(|d| d.alloc(len)).map_err(Into::into),
            )?;
            // Pre-swap verification: a bad image corrupts the application,
            // so refuse to install one that fails the static checks.
            let diags = verify::verify(&hal, info.addr, &image, &ext)?;
            if !diags.is_empty() {
                common::obs::counter("instr_image.verify_reject", 1);
                drv.with_device(|d| d.free(image.tramp_addr)).ok();
                return Err(NvbitError::VerifyFailed(diags));
            }
            drv.with_device(|d| d.write(image.tramp_addr, &image.tramp_code))?;
            let t1 = Instant::now();
            state.spec.dirty = false;
            state.image = Some(image);
            self.overhead.add(&info.name, JitComponent::Codegen, t1 - t0);
        }

        // Reconcile version.
        let Some(state) = self.funcs.get_mut(&func.raw()) else { return Ok(()) };
        let Some(image) = &state.image else { return Ok(()) };
        if state.desired == state.current {
            return Ok(());
        }
        let info = drv.function_info(func)?;
        let _swap_span = common::obs::span("swap");
        let t0 = Instant::now();
        match state.desired {
            Version::Instrumented => {
                drv.with_device(|d| d.write(info.addr, &image.instrumented))?;
                drv.set_local_override(func, image.extra_local)?;
            }
            Version::Original => {
                drv.with_device(|d| d.write(info.addr, &image.original))?;
                drv.set_local_override(func, 0)?;
            }
        }
        state.current = state.desired;
        self.overhead.add(&info.name, JitComponent::Swap, t0.elapsed());
        Ok(())
    }
}

/// The NVBit core: installed as the driver's interposer; dispatches tool
/// callbacks and applies pending instrumentation at callback exits
/// (paper §5.1: "At the exit of the CUDA driver callback ... the Code
/// Generator begins functioning").
pub struct NvbitCore {
    tool: Box<dyn NvbitTool>,
    state: Rc<RefCell<CoreState>>,
}

impl NvbitCore {
    /// Wraps a tool.
    pub fn new(tool: impl NvbitTool + 'static) -> NvbitCore {
        NvbitCore { tool: Box::new(tool), state: Rc::new(RefCell::new(CoreState::new())) }
    }
}

/// Attaches a tool to a driver: the run-time injection step (the analog of
/// `LD_PRELOAD`-ing an NVBit tool `.so` into the application).
pub fn attach_tool(drv: &Driver, tool: impl NvbitTool + 'static) {
    drv.install_interposer(Box::new(NvbitCore::new(tool)));
}

impl Interposer for NvbitCore {
    fn at_init(&mut self, drv: &Driver) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_init(&api);
    }

    fn at_term(&mut self, drv: &Driver) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_term(&api);
    }

    fn at_ctx_init(&mut self, drv: &Driver, ctx: CuContext) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_ctx_init(&api, ctx);
    }

    fn at_ctx_term(&mut self, drv: &Driver, ctx: CuContext) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_ctx_term(&api, ctx);
    }

    fn at_cuda_event(&mut self, drv: &Driver, is_exit: bool, cbid: CbId, params: &CbParams<'_>) {
        let api = NvbitApi { drv, state: &self.state };
        let is_launch_entry = !is_exit && cbid == CbId::LaunchKernel;

        let t0 = Instant::now();
        {
            let _span = common::obs::span("user_code");
            self.tool.at_cuda_event(&api, is_exit, cbid, params);
        }
        let user = t0.elapsed();

        if is_launch_entry {
            if let CbParams::LaunchKernel { func, .. } = params {
                let mut st = self.state.borrow_mut();
                if st.funcs.contains_key(&func.raw()) {
                    if let Ok(info) = drv.function_info(*func) {
                        st.overhead.add(&info.name, JitComponent::UserCode, user);
                    }
                }
                if let Err(e) = st.apply(drv, *func) {
                    // Instrumentation failures must not corrupt the
                    // application; drop the request and keep the original.
                    eprintln!("nvbit: instrumentation of {func} failed: {e}");
                    st.funcs.remove(&func.raw());
                }
            }
        }
    }
}

/// Register-save accounting for one instrumented function, as reported by
/// [`NvbitApi::save_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveStats {
    /// Register slots actually saved across all injections.
    pub saved_slots: u64,
    /// Slots the conservative whole-function tier would have saved.
    pub full_tier_slots: u64,
    /// Largest save tier used by any site.
    pub max_tier: u16,
    /// Number of injection sites.
    pub sites: usize,
    /// Why liveness-driven sizing was not applied, when it was not.
    pub fallback: Option<String>,
}

/// The user-level API handed to tools (paper §4). Obtainable only inside
/// tool callbacks.
pub struct NvbitApi<'a> {
    drv: &'a Driver,
    state: &'a Rc<RefCell<CoreState>>,
}

impl<'a> NvbitApi<'a> {
    /// The underlying driver (for memory management from host callbacks;
    /// calls made here do not re-trigger tool callbacks).
    pub fn driver(&self) -> &Driver {
        self.drv
    }

    /// The hardware abstraction layer of the current device.
    pub fn hal(&self) -> Hal {
        self.state.borrow_mut().hal(self.drv)
    }

    // ----- Tool Functions Loader (paper §5.1) -----------------------------

    /// Compiles and loads the tool's instrumentation device functions
    /// (PTX dialect source). Call once, typically from `at_init`. The
    /// functions become injectable by name — the analog of
    /// `NVBIT_EXPORT_DEV_FUNCTION`.
    ///
    /// # Errors
    ///
    /// Compilation or device-memory failures.
    pub fn load_tool_functions(&self, ptx_src: &str) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let hal = st.hal(self.drv);
        let module = ptx::compile_module(ptx_src, hal.arch())?;
        for f in &module.functions {
            if !f.relocs.is_empty() {
                return Err(NvbitError::BadRequest(format!(
                    "tool function `{}` calls other functions, which is unsupported",
                    f.name
                )));
            }
            // Paper §7: injected functions may not use shared (or constant)
            // memory — the application may be using all of it.
            if f.shared_size > 0 {
                return Err(NvbitError::BadRequest(format!(
                    "tool function `{}` declares shared memory, which instrumentation                      functions may not use (the application owns it)",
                    f.name
                )));
            }
            let addr = self.drv.with_device(|d| -> gpu::Result<u64> {
                let a = d.alloc(f.code.len().max(1) as u64)?;
                d.write(a, &f.code)?;
                Ok(a)
            })?;
            st.tool_fns.insert(
                f.name.clone(),
                ToolFn {
                    addr,
                    reg_count: f.reg_count,
                    stack_size: f.stack_size,
                    uses_reg_api: f.uses_reg_api,
                },
            );
        }
        Ok(())
    }

    /// The loaded tool functions (name → device address).
    pub fn tool_functions(&self) -> Vec<String> {
        let st = self.state.borrow();
        let mut v: Vec<String> = st.tool_fns.keys().cloned().collect();
        v.sort();
        v
    }

    // ----- Inspection API (paper Listing 3/4) ------------------------------

    /// All instructions of a function, in program order (`nvbit_get_instrs`).
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_instrs(&self, func: CuFunction) -> Result<Vec<Instr>> {
        let lifted = self.state.borrow_mut().lifted(self.drv, func)?;
        Ok(lifted.instrs.clone())
    }

    /// Basic blocks as instruction-index ranges, or `None` when indirect
    /// control flow forces the flat view (`nvbit_get_basic_blocks` and the
    /// paper's ICF exception).
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_basic_blocks(&self, func: CuFunction) -> Result<Option<Vec<sass::cfg::BasicBlock>>> {
        let lifted = self.state.borrow_mut().lifted(self.drv, func)?;
        Ok(lifted.basic_blocks.clone().ok())
    }

    /// Why static CFG partitioning failed for the function, if it did —
    /// the structured diagnostic behind a `None` from
    /// [`NvbitApi::get_basic_blocks`].
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_cfg_failure(&self, func: CuFunction) -> Result<Option<sass::CfgFailure>> {
        let lifted = self.state.borrow_mut().lifted(self.drv, func)?;
        Ok(lifted.basic_blocks.as_ref().err().cloned())
    }

    /// General-purpose registers live into instruction `idx` of `func`, in
    /// ascending order, from the static dataflow analysis (paper §5.1's
    /// "registers used by the function" made per-instruction). `None` when
    /// indirect control flow defeats the analysis.
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadInstrIndex`] for an out-of-range index;
    /// driver/decode failures.
    pub fn get_live_regs(&self, func: CuFunction, idx: usize) -> Result<Option<Vec<u8>>> {
        let lifted = self.state.borrow_mut().lifted(self.drv, func)?;
        if idx >= lifted.instrs.len() {
            return Err(NvbitError::BadInstrIndex { index: idx, len: lifted.instrs.len() });
        }
        Ok(lifted.dataflow.as_ref().map(|df| df.live_regs(idx)))
    }

    /// Functions the given function may call (`nvbit_get_related_funcs`).
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn get_related_funcs(&self, func: CuFunction) -> Result<Vec<CuFunction>> {
        Ok(self.drv.function_info(func)?.related)
    }

    /// The function's name (`nvbit_get_func_name`).
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn get_func_name(&self, func: CuFunction) -> Result<String> {
        Ok(self.drv.function_info(func)?.name)
    }

    /// Whether the function comes from a pre-compiled library module.
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn is_library_function(&self, func: CuFunction) -> Result<bool> {
        Ok(self.drv.function_info(func)?.library)
    }

    // ----- Instrumentation API (paper Listing 5) ---------------------------

    /// Injects a call to tool function `fname` before/after instruction
    /// `idx` of `func` (`nvbit_insert_call`). Multiple injections at the
    /// same site run in insertion order.
    ///
    /// # Errors
    ///
    /// Unknown function name or out-of-range index (validated lazily at
    /// code generation; eagerly checked when possible).
    pub fn insert_call(
        &self,
        func: CuFunction,
        idx: usize,
        fname: &str,
        ipoint: IPoint,
    ) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if !st.tool_fns.contains_key(fname) {
            return Err(NvbitError::UnknownToolFunction(fname.to_string()));
        }
        st.funcs.entry(func.raw()).or_default().spec.insert_call(idx, fname, ipoint);
        Ok(())
    }

    /// Appends an argument to the most recent injection at the site
    /// (`nvbit_add_call_arg*`).
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadRequest`] when no call was inserted at the site.
    pub fn add_call_arg(&self, func: CuFunction, idx: usize, arg: Arg) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let state = st.funcs.entry(func.raw()).or_default();
        if state.spec.add_arg(idx, arg) {
            Ok(())
        } else {
            Err(NvbitError::BadRequest(format!(
                "add_call_arg before insert_call at instruction {idx}"
            )))
        }
    }

    /// Convenience: pass the evaluated guard predicate.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_guard_pred(&self, func: CuFunction, idx: usize) -> Result<()> {
        self.add_call_arg(func, idx, Arg::GuardPred)
    }

    /// Convenience: pass a register value.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_reg_val(&self, func: CuFunction, idx: usize, reg: u8) -> Result<()> {
        self.add_call_arg(func, idx, Arg::RegVal(reg))
    }

    /// Convenience: pass a 64-bit register-pair value.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_reg_val64(&self, func: CuFunction, idx: usize, reg: u8) -> Result<()> {
        self.add_call_arg(func, idx, Arg::RegVal64(reg))
    }

    /// Convenience: pass a 32-bit immediate.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_imm32(&self, func: CuFunction, idx: usize, v: i32) -> Result<()> {
        self.add_call_arg(func, idx, Arg::Imm32(v))
    }

    /// Convenience: pass a 64-bit immediate (e.g. a tool counter address).
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_imm64(&self, func: CuFunction, idx: usize, v: u64) -> Result<()> {
        self.add_call_arg(func, idx, Arg::Imm64(v))
    }

    /// Enables predicate filtering on the most recent injection at the
    /// site: lanes whose guard predicate is false skip the injected
    /// function entirely instead of entering it and returning early — the
    /// finer-grained thread selection the paper's §7 sketches as future
    /// work. No-op for unguarded instructions. Warp-level intrinsics inside
    /// the tool function then observe only the guard-true lanes.
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadRequest`] when no call was inserted at the site.
    pub fn set_pred_filter(&self, func: CuFunction, idx: usize) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let state = st.funcs.entry(func.raw()).or_default();
        if state.spec.set_pred_filter(idx) {
            Ok(())
        } else {
            Err(NvbitError::BadRequest(format!(
                "set_pred_filter before insert_call at instruction {idx}"
            )))
        }
    }

    /// Removes the original instruction at the site (`nvbit_remove_orig`) —
    /// the relocated original becomes a `NOP`, enabling instruction
    /// emulation (paper §6.3).
    ///
    /// # Errors
    ///
    /// Range errors surface at code generation.
    pub fn remove_orig(&self, func: CuFunction, idx: usize) -> Result<()> {
        let mut st = self.state.borrow_mut();
        st.funcs.entry(func.raw()).or_default().spec.remove_orig(idx);
        Ok(())
    }

    // ----- Control API (paper Listing 6) -----------------------------------

    /// Selects whether the next launches of `func` run the instrumented or
    /// original version (`nvbit_enable_instrumented`) — the sampling switch
    /// of §6.2. The swap costs one memcpy of the function's code.
    ///
    /// # Errors
    ///
    /// Driver failures during an immediate swap.
    pub fn enable_instrumented(&self, func: CuFunction, enable: bool) -> Result<()> {
        let mut st = self.state.borrow_mut();
        let state = st.funcs.entry(func.raw()).or_default();
        state.desired = if enable { Version::Instrumented } else { Version::Original };
        // Reconcile now if an image already exists (launch entry will also
        // reconcile, so calling this before instrumentation is fine).
        st.apply(self.drv, func)
    }

    /// Discards instrumentation of `func`: restores the original code,
    /// frees the trampolines and clears the spec
    /// (`nvbit_reset_instrumented`).
    ///
    /// # Errors
    ///
    /// Driver failures while restoring.
    pub fn reset_instrumented(&self, func: CuFunction) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if let Some(state) = st.funcs.remove(&func.raw()) {
            if let Some(image) = state.image {
                let info = self.drv.function_info(func)?;
                if state.current == Version::Instrumented {
                    self.drv.with_device(|d| d.write(info.addr, &image.original))?;
                    self.drv.set_local_override(func, 0)?;
                }
                self.drv.with_device(|d| d.free(image.tramp_addr)).ok();
            }
        }
        Ok(())
    }

    /// Selects how injection-site register saves are sized for functions
    /// instrumented from now on: liveness-driven per-site tiers (the
    /// default) or the conservative whole-function tier. Existing
    /// instrumented images are regenerated on their next launch.
    pub fn set_save_policy(&self, policy: SavePolicy) {
        let mut st = self.state.borrow_mut();
        if st.save_policy != policy {
            st.save_policy = policy;
            for f in st.funcs.values_mut() {
                if !f.spec.is_empty() {
                    f.spec.dirty = true;
                }
            }
        }
    }

    /// Statically verifies the instrumented image of `func`, generating it
    /// first if the spec is dirty. Returns the verifier's diagnostics — an
    /// empty vector means the image is safe to swap in. (The core runs the
    /// same checks before every swap; this surfaces them to tools.)
    ///
    /// # Errors
    ///
    /// Driver/codegen failures; a verification *failure* is reported
    /// through the returned diagnostics, not as an error.
    pub fn verify_instrumented(&self, func: CuFunction) -> Result<Vec<Diagnostic>> {
        let mut st = self.state.borrow_mut();
        match st.apply(self.drv, func) {
            Ok(()) => {}
            Err(NvbitError::VerifyFailed(diags)) => return Ok(diags),
            Err(e) => return Err(e),
        }
        let hal = st.hal(self.drv);
        let Some(state) = st.funcs.get(&func.raw()) else { return Ok(Vec::new()) };
        let Some(image) = &state.image else { return Ok(Vec::new()) };
        let info = self.drv.function_info(func)?;
        let ext = st.external_code(self.drv, &info);
        verify::verify(&hal, info.addr, image, &ext)
    }

    /// Register-save accounting for the instrumented image of `func`
    /// (generated first if the spec is dirty): `None` when the function has
    /// no instrumentation.
    ///
    /// # Errors
    ///
    /// Driver/codegen/verification failures during generation.
    pub fn save_stats(&self, func: CuFunction) -> Result<Option<SaveStats>> {
        let mut st = self.state.borrow_mut();
        st.apply(self.drv, func)?;
        Ok(st.funcs.get(&func.raw()).and_then(|f| f.image.as_ref()).map(|img| SaveStats {
            saved_slots: img.saved_slots,
            full_tier_slots: img.full_tier_slots,
            max_tier: img.tier,
            sites: img.sites.len(),
            fallback: img.fallback.clone(),
        }))
    }

    /// True if the function currently has a generated instrumented image.
    pub fn is_instrumented(&self, func: CuFunction) -> bool {
        self.state
            .borrow()
            .funcs
            .get(&func.raw())
            .map(|f| f.image.is_some() || !f.spec.is_empty())
            .unwrap_or(false)
    }

    // ----- Overhead accounting (paper §5.2) ---------------------------------

    /// The accumulated JIT-compilation overhead report.
    pub fn overhead(&self) -> OverheadReport {
        self.state.borrow().overhead.clone()
    }
}

#[cfg(test)]
mod tests {
    // The end-to-end behaviour of the core is exercised by the crate's
    // integration tests (`tests/instrumentation.rs`), which require the full
    // driver + device stack; unit coverage of the pieces lives in the
    // sibling modules.
}
