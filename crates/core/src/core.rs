//! The NVBit core: driver interposition, tool dispatch, state management
//! and the user-level API handed to tools.
//!
//! # Code-cache concurrency contract
//!
//! `CoreState` is shared behind an `Arc` and sharded: per-function state
//! lives in `SHARDS` independent mutex-guarded maps keyed by the raw
//! function handle. Shard locks are held only for short map operations —
//! never across device calls that could re-enter the core, and never two
//! at once — so batch instrumentation can fan lift/codegen/verify work out
//! across `std::thread::scope` workers (the PR-1 scheduler pattern) while
//! the main thread keeps exclusive use of the single-threaded [`Driver`],
//! servicing trampoline allocations over a channel in deterministic input
//! order (a turnstile), which makes parallel builds bit-identical to
//! serial ones.
//!
//! # Versioned images
//!
//! Each function caches *multiple* instrumented images keyed by
//! ([`FuncSpec::content_hash`], [`SavePolicy`]). Flipping
//! `enable_instrumented` or `set_save_policy` between already-built
//! versions is a pure O(memcpy) swap (paper §6.2) — codegen never re-runs
//! for a key it has seen. `cuModuleUnload` evicts every entry of the dying
//! module and frees its trampolines, so a recycled handle can never be
//! served a stale lifted image.

use crate::codegen::{generate, InstrumentedImage, LivenessInput, SavePolicy, ToolFn};
use crate::hal::Hal;
use crate::instr::Instr;
use crate::lift::{lift, Lifted};
use crate::overhead::{JitComponent, OverheadReport};
use crate::plan::{self, PlanOpts, PlanStats};
use crate::saverestore::{restore_text, save_text, Routines, TIERS};
use crate::spec::{Arg, FuncSpec, IPoint};
use crate::verify::{self, Diagnostic, ExternalCode};
use crate::{NvbitError, Result};
use cuda::{CbId, CbParams, CuContext, CuFunction, CuModule, Driver, Interposer};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// A user instrumentation tool — the analog of an NVBit tool shared
/// library. Implement the callbacks you need; defaults are no-ops.
pub trait NvbitTool {
    /// Application start (before any driver call).
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        let _ = api;
    }

    /// Application termination.
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        let _ = api;
    }

    /// A context started.
    fn at_ctx_init(&mut self, api: &NvbitApi<'_>, ctx: CuContext) {
        let _ = (api, ctx);
    }

    /// A context is being destroyed.
    fn at_ctx_term(&mut self, api: &NvbitApi<'_>, ctx: CuContext) {
        let _ = (api, ctx);
    }

    /// Entry/exit of every CUDA driver API call (paper Listing 2).
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    );
}

/// Number of independent function-state shards.
const SHARDS: usize = 16;

/// Whether a function currently runs its original or instrumented version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    Original,
    Instrumented,
}

/// Key of one cached instrumented image: what was asked for (the spec),
/// how saves were sized (the policy) and which plan passes ran (the
/// options). Same key ⇒ bit-identical image.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ImageKey {
    spec_hash: u64,
    policy: SavePolicy,
    opts: PlanOpts,
}

/// Per-function code-cache entry.
struct FuncEntry {
    func: CuFunction,
    lifted: Option<Arc<Lifted>>,
    spec: FuncSpec,
    /// Cached [`FuncSpec::content_hash`]; refreshed when `spec.dirty`.
    spec_hash: Option<u64>,
    /// All generated versions, kept until reset/unload (paper Figure 5:
    /// amortization; §6.2: O(memcpy) sampling switches).
    images: HashMap<ImageKey, InstrumentedImage>,
    /// What the tool asked for (`enable_instrumented`). Defaults to
    /// instrumented once instrumentation exists, like NVBit.
    desired: Version,
    /// The version currently written at the function's code address
    /// (`None` = the original code).
    current: Option<ImageKey>,
}

impl FuncEntry {
    fn new(func: CuFunction) -> FuncEntry {
        FuncEntry {
            func,
            lifted: None,
            spec: FuncSpec::default(),
            spec_hash: None,
            images: HashMap::new(),
            desired: Version::Instrumented,
            current: None,
        }
    }

    /// The image key of the entry's present spec under `policy`/`opts`.
    fn key(&mut self, policy: SavePolicy, opts: PlanOpts) -> ImageKey {
        if self.spec.dirty || self.spec_hash.is_none() {
            self.spec_hash = Some(self.spec.content_hash());
            self.spec.dirty = false;
        }
        ImageKey { spec_hash: self.spec_hash.expect("just refreshed"), policy, opts }
    }
}

/// Everything a worker needs to build one instrumented image, fully owned
/// (workers never touch [`CoreState`] or the [`Driver`]).
struct BuildInput {
    func: CuFunction,
    key: ImageKey,
    info: cuda::FunctionInfo,
    /// Pristine function bytes (never read while an instrumented version
    /// is installed — see the gather phase).
    code: Vec<u8>,
    lifted: Option<Arc<Lifted>>,
    spec: FuncSpec,
    ext: ExternalCode,
}

/// Result of building one image (worker side).
struct BuildOutcome {
    idx: usize,
    /// The lifted view used (newly created when the input carried none).
    lifted: Option<Arc<Lifted>>,
    result: Result<(InstrumentedImage, Vec<Diagnostic>)>,
    timings: Vec<(JitComponent, Duration)>,
}

/// Advances the allocation turnstile past `next` on drop, so a build that
/// errors (or panics) before reaching its allocation never wedges the
/// workers queued behind it.
struct TurnGuard<'a> {
    turn: &'a Mutex<usize>,
    cv: &'a Condvar,
    next: usize,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut g = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        *g = (*g).max(self.next);
        self.cv.notify_all();
    }
}

/// Builds one instrumented image from an owned input: lift (if not cached),
/// codegen, then pre-swap verification. Pure CPU work except `alloc` —
/// safe on worker threads; obs spans land on the calling thread.
fn build_one(
    idx: usize,
    hal: &Hal,
    input: &BuildInput,
    tool_fns: &HashMap<String, ToolFn>,
    routines: &HashMap<u16, Routines>,
    alloc: impl FnMut(u64) -> Result<u64>,
) -> BuildOutcome {
    let _span = common::obs::span("instrument");
    common::obs::counter("instr_image.build", 1);
    let mut timings = Vec::new();
    let mut lifted = input.lifted.clone();
    let result = (|| -> Result<(InstrumentedImage, Vec<Diagnostic>)> {
        let l = match lifted.clone() {
            Some(l) => l,
            None => {
                let _lspan = common::obs::span("lift");
                let t1 = Instant::now();
                let raw = hal.disassemble(&input.code)?;
                let t2 = Instant::now();
                drop(raw); // the lifter re-decodes; keep attribution honest
                let l = Arc::new(lift(hal, &input.info, &input.code)?);
                timings.push((JitComponent::Disassemble, t2 - t1));
                timings.push((JitComponent::Convert, t2.elapsed()));
                lifted = Some(l.clone());
                l
            }
        };
        let original: Vec<sass::Instruction> = l.instrs.iter().map(|i| i.raw().clone()).collect();
        let cfg_reason = l.basic_blocks.as_ref().err().map(|e| e.to_string());
        let liveness = match (&l.dataflow, &cfg_reason) {
            (Some(df), _) => LivenessInput::Analysis(df),
            (None, Some(reason)) => LivenessInput::Unavailable(reason),
            (None, None) => LivenessInput::Unavailable("dataflow analysis unavailable"),
        };
        let t0 = Instant::now();
        // Lower the spec into the plan IR, running the coalescing and
        // inlining passes the image key's options select.
        let plan = {
            let _pspan = common::obs::span("plan");
            // Surface *why* static CFG recovery fell back, per failure
            // variant, and recover a conservative partial partition for
            // the BRX case so block coalescing still applies.
            let partial = match &l.basic_blocks {
                Err(sass::CfgFailure::IndirectBranch { .. }) => {
                    common::obs::counter("plan.cfg_fail.brx", 1);
                    Some(sass::cfg::partial_blocks(&original, hal.arch()))
                }
                Err(sass::CfgFailure::MisalignedTarget { .. }) => {
                    common::obs::counter("plan.cfg_fail.misaligned", 1);
                    None
                }
                Ok(_) => None,
            };
            let analyses = plan::Analyses {
                blocks: l.basic_blocks.as_ref().ok().map(Vec::as_slice),
                partial: partial.as_deref(),
                dom: l.dom.as_ref(),
                dataflow: l.dataflow.as_ref(),
            };
            let plan =
                plan::build(&input.spec, original.len(), analyses, tool_fns, input.key.opts)?;
            common::obs::counter("plan.coalesced_away", plan.stats.coalesced_away);
            common::obs::counter("plan.inlined_calls", plan.stats.inlined_calls);
            common::obs::counter("plan.after_lowered", plan.stats.after_lowered);
            common::obs::counter("plan.region_groups", plan.stats.region_groups);
            common::obs::counter("plan.icf_recovered", plan.stats.icf_recovered);
            common::obs::counter("plan.pressure.accepted", plan.stats.inline_accepted);
            common::obs::counter("plan.pressure.declined", plan.stats.inline_declined);
            common::obs::counter("plan.occ.accepted", plan.stats.occ_accepted);
            common::obs::counter("plan.occ.declined", plan.stats.occ_declined);
            plan
        };
        let image = {
            let _cspan = common::obs::span("codegen");
            generate(
                hal,
                &input.info,
                &original,
                &input.code,
                &plan,
                tool_fns,
                routines,
                &liveness,
                input.key.policy,
                alloc,
            )?
        };
        // Pre-swap verification: a bad image corrupts the application, so
        // the install phase refuses any image with findings.
        let diags = {
            let _vspan = common::obs::span("verify");
            verify::verify(hal, input.info.addr, &image, &input.ext)?
        };
        timings.push((JitComponent::Codegen, t0.elapsed()));
        Ok((image, diags))
    })();
    BuildOutcome { idx, lifted, result, timings }
}

/// Shared core state (see the module docs for the concurrency contract).
pub(crate) struct CoreState {
    hal: Mutex<Option<Hal>>,
    tool_fns: RwLock<HashMap<String, ToolFn>>,
    routines: RwLock<HashMap<u16, Routines>>,
    shards: Vec<Mutex<HashMap<u32, FuncEntry>>>,
    overhead: Mutex<OverheadReport>,
    save_policy: Mutex<SavePolicy>,
    plan_opts: Mutex<PlanOpts>,
    /// Worker threads for batch instrumentation; 0 = one per hardware
    /// thread.
    jit_workers: AtomicUsize,
    /// Block thread count of the most recently intercepted launch
    /// (0 = none yet). Resolves [`sass::occupancy::OccupancyCfg::PER_LAUNCH`]
    /// occupancy configs: the resolved shape is part of the plan-cache
    /// key, so a shape change replans while repeats hit the cache.
    launch_threads: AtomicU32,
}

impl CoreState {
    fn new() -> CoreState {
        let workers =
            std::env::var("NVBIT_JIT_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(0usize);
        CoreState {
            hal: Mutex::new(None),
            tool_fns: RwLock::new(HashMap::new()),
            routines: RwLock::new(HashMap::new()),
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            overhead: Mutex::new(OverheadReport::default()),
            save_policy: Mutex::new(SavePolicy::default()),
            plan_opts: Mutex::new(PlanOpts::default()),
            jit_workers: AtomicUsize::new(workers),
            launch_threads: AtomicU32::new(0),
        }
    }

    /// The current plan options with any per-launch occupancy sentinel
    /// resolved to the last intercepted launch's block shape. Every
    /// path that derives a plan-cache key goes through this, so launch
    /// interception and the inspection APIs (`plan_stats`,
    /// `save_stats`, `verify_instrumented`) agree on which image a
    /// given option set names.
    fn resolved_opts(&self) -> PlanOpts {
        let mut opts = *self.plan_opts.lock().unwrap();
        if let Some(cfg) = opts.occupancy.as_mut() {
            if cfg.per_launch() {
                cfg.block_threads = self.launch_threads.load(Ordering::Relaxed).max(1);
            }
        }
        opts
    }

    fn shard(&self, raw: u32) -> &Mutex<HashMap<u32, FuncEntry>> {
        &self.shards[raw as usize % SHARDS]
    }

    fn hal(&self, drv: &Driver) -> Hal {
        *self.hal.lock().unwrap().get_or_insert_with(|| Hal::new(drv.arch()))
    }

    fn effective_workers(&self, inputs: usize) -> usize {
        let configured = self.jit_workers.load(Ordering::Relaxed);
        let configured = if configured == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            configured
        };
        configured.min(inputs)
    }

    /// Code regions outside the image that instrumented control flow may
    /// legitimately reach, for the pre-swap verifier.
    fn external_code(&self, drv: &Driver, info: &cuda::FunctionInfo) -> ExternalCode {
        let mut ext = ExternalCode::default();
        for r in self.routines.read().unwrap().values() {
            ext.save_addrs.push(r.save_addr);
            ext.restore_addrs.push(r.restore_addr);
        }
        for (name, t) in self.tool_fns.read().unwrap().iter() {
            ext.tool_addrs.push(t.addr);
            if let Some(body) = &t.body {
                ext.tool_bodies.push((name.clone(), body.clone()));
            }
        }
        for f in &info.related {
            if let Ok(ri) = drv.function_info(*f) {
                ext.code_regions.push((ri.addr, ri.addr + ri.code_len));
            }
        }
        ext
    }

    /// Loads the embedded save/restore routines on first use (Tool
    /// Functions Loader, the `libnvbit.a`-embedded part). Built fully
    /// before publication, so a failure leaves the table empty and a
    /// retry starts clean.
    fn ensure_routines(&self, drv: &Driver) -> Result<()> {
        if !self.routines.read().unwrap().is_empty() {
            return Ok(());
        }
        let hal = self.hal(drv);
        let mut built = HashMap::new();
        for tier in TIERS {
            let save = hal.assemble_text(&save_text(tier, &hal))?;
            let restore = hal.assemble_text(&restore_text(tier, &hal))?;
            let (save_addr, restore_addr) = drv.with_device(|d| -> gpu::Result<(u64, u64)> {
                let sa = d.alloc(save.len() as u64)?;
                d.write(sa, &save)?;
                d.label_code(sa, save.len() as u64, &format!("nvbit$save{tier}"));
                let ra = d.alloc(restore.len() as u64)?;
                d.write(ra, &restore)?;
                d.label_code(ra, restore.len() as u64, &format!("nvbit$restore{tier}"));
                Ok((sa, ra))
            })?;
            built.insert(
                tier,
                Routines {
                    tier,
                    save_addr,
                    restore_addr,
                    frame_bytes: crate::saverestore::frame_bytes(tier, &hal),
                },
            );
        }
        *self.routines.write().unwrap() = built;
        Ok(())
    }

    /// Lifts (and caches) a function, timing the retrieve/disassemble/
    /// convert components.
    fn lifted_for(&self, drv: &Driver, func: CuFunction) -> Result<Arc<Lifted>> {
        let raw = func.raw();
        if let Some(l) = self.shard(raw).lock().unwrap().get(&raw).and_then(|e| e.lifted.clone()) {
            common::obs::counter("lift_cache.hit", 1);
            return Ok(l);
        }
        common::obs::counter("lift_cache.miss", 1);
        let _span = common::obs::span("lift");
        let hal = self.hal(drv);
        let info = drv.function_info(func)?;

        let t0 = Instant::now();
        let code = drv.read_code(func)?;
        let t1 = Instant::now();
        let raw_stream = hal.disassemble(&code)?;
        let t2 = Instant::now();
        drop(raw_stream); // the lifter re-decodes; keep attribution honest
        let lifted = Arc::new(lift(&hal, &info, &code)?);
        let t3 = Instant::now();

        {
            let mut o = self.overhead.lock().unwrap();
            o.add(&info.name, JitComponent::Retrieve, t1 - t0);
            o.add(&info.name, JitComponent::Disassemble, t2 - t1);
            o.add(&info.name, JitComponent::Convert, t3 - t2);
        }
        self.shard(raw).lock().unwrap().entry(raw).or_insert_with(|| FuncEntry::new(func)).lifted =
            Some(lifted.clone());
        Ok(lifted)
    }

    /// Functions whose present (spec, policy, opts) key has no cached
    /// image yet.
    fn pending(&self, policy: SavePolicy, opts: PlanOpts) -> Vec<CuFunction> {
        let mut v = Vec::new();
        for shard in &self.shards {
            let mut g = shard.lock().unwrap();
            for e in g.values_mut() {
                if !e.spec.is_empty() {
                    let k = e.key(policy, opts);
                    if !e.images.contains_key(&k) {
                        v.push(e.func);
                    }
                }
            }
        }
        v.sort_by_key(|f| f.raw());
        v
    }

    /// Instruments a batch of functions: gather inputs, build images
    /// (in parallel when configured), install, then reconcile the
    /// desired/current version of every batch member. Returns one result
    /// per distinct function.
    fn apply_batch(&self, drv: &Driver, funcs: &[CuFunction]) -> Vec<(CuFunction, Result<()>)> {
        let policy = *self.save_policy.lock().unwrap();
        let opts = self.resolved_opts();
        let mut seen = std::collections::HashSet::new();
        let funcs: Vec<CuFunction> =
            funcs.iter().copied().filter(|f| seen.insert(f.raw())).collect();
        let mut errors: HashMap<u32, NvbitError> = HashMap::new();

        // Gather: decide per function under a brief shard lock, then
        // assemble fully-owned build inputs on the main thread.
        let mut inputs: Vec<BuildInput> = Vec::new();
        for &func in &funcs {
            let raw = func.raw();
            let (key, lifted, spec, pristine) = {
                let mut shard = self.shard(raw).lock().unwrap();
                let Some(entry) = shard.get_mut(&raw) else { continue };
                if entry.spec.is_empty() {
                    continue;
                }
                let key = entry.key(policy, opts);
                if entry.images.contains_key(&key) {
                    // The code-cache reuse the paper's Figure 5
                    // amortization depends on.
                    common::obs::counter("instr_image.reuse", 1);
                    continue;
                }
                // The code at the function's address may currently be an
                // instrumented version; build new images from the pristine
                // bytes every cached image carries.
                let pristine = entry.images.values().next().map(|img| img.original.clone());
                (key, entry.lifted.clone(), entry.spec.clone(), pristine)
            };
            common::obs::counter(
                if lifted.is_some() { "lift_cache.hit" } else { "lift_cache.miss" },
                1,
            );
            if let Err(e) = self.ensure_routines(drv) {
                errors.insert(raw, e);
                continue;
            }
            let gathered = (|| -> Result<BuildInput> {
                let info = drv.function_info(func)?;
                let code = match pristine {
                    Some(c) => c,
                    None => {
                        let t0 = Instant::now();
                        let code = drv.read_code(func)?;
                        self.overhead.lock().unwrap().add(
                            &info.name,
                            JitComponent::Retrieve,
                            t0.elapsed(),
                        );
                        code
                    }
                };
                let ext = self.external_code(drv, &info);
                Ok(BuildInput { func, key, info, code, lifted, spec, ext })
            })();
            match gathered {
                Ok(i) => inputs.push(i),
                Err(e) => {
                    errors.insert(raw, e);
                }
            }
        }

        // Build + install.
        for out in self.build_all(drv, &inputs) {
            let input = &inputs[out.idx];
            let raw = input.func.raw();
            {
                let mut o = self.overhead.lock().unwrap();
                for (c, d) in &out.timings {
                    o.add(&input.info.name, *c, *d);
                }
            }
            match out.result {
                Err(e) => {
                    errors.insert(raw, e);
                }
                Ok((image, diags)) => {
                    if !diags.is_empty() {
                        common::obs::counter("instr_image.verify_reject", 1);
                        if drv.with_device(|d| d.free(image.tramp_addr)).is_err() {
                            common::obs::counter("tramp.free_fail", 1);
                        }
                        errors.insert(raw, NvbitError::VerifyFailed(diags));
                    } else if let Err(e) = drv.with_device(|d| -> gpu::Result<()> {
                        d.write(image.tramp_addr, &image.tramp_code)?;
                        d.label_code(
                            image.tramp_addr,
                            image.tramp_code.len() as u64,
                            &format!("{}$tramp", input.info.name),
                        );
                        Ok(())
                    }) {
                        errors.insert(raw, e.into());
                    } else {
                        let mut shard = self.shard(raw).lock().unwrap();
                        match shard.get_mut(&raw) {
                            Some(entry) => {
                                if entry.lifted.is_none() {
                                    entry.lifted = out.lifted.clone();
                                }
                                entry.images.insert(input.key, image);
                            }
                            None => {
                                // Entry vanished mid-batch (reset): drop
                                // the orphaned trampoline.
                                drop(shard);
                                if drv.with_device(|d| d.free(image.tramp_addr)).is_err() {
                                    common::obs::counter("tramp.free_fail", 1);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Reconcile every batch member (including pure cache hits).
        funcs
            .into_iter()
            .map(|func| {
                let res = match errors.remove(&func.raw()) {
                    Some(e) => Err(e),
                    None => self.reconcile(drv, func, policy, opts),
                };
                (func, res)
            })
            .collect()
    }

    /// Builds all inputs: inline on the calling thread when one worker
    /// suffices, else fanned out across scoped workers with the
    /// deterministic allocation turnstile.
    fn build_all(&self, drv: &Driver, inputs: &[BuildInput]) -> Vec<BuildOutcome> {
        if inputs.is_empty() {
            return Vec::new();
        }
        let hal = self.hal(drv);
        let tool_fns = self.tool_fns.read().unwrap().clone();
        let routines = self.routines.read().unwrap().clone();
        let workers = self.effective_workers(inputs.len());
        if workers <= 1 {
            return inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    build_one(i, &hal, input, &tool_fns, &routines, |len| {
                        drv.with_device(|d| d.alloc(len)).map_err(Into::into)
                    })
                })
                .collect();
        }

        // Workers do the pure lift/codegen/verify work; the main thread
        // stays on this side of the single-threaded driver, servicing
        // trampoline allocations over a channel. The turnstile forces
        // allocations into ascending input order, so device addresses —
        // and therefore the generated images — are bit-identical to a
        // serial build.
        let next = AtomicUsize::new(0);
        let turn = Mutex::new(0usize);
        let turn_cv = Condvar::new();
        let outcomes = Mutex::new(Vec::with_capacity(inputs.len()));
        let (tx, rx) = mpsc::channel::<(u64, mpsc::Sender<gpu::Result<u64>>)>();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let (next, turn, turn_cv, outcomes) = (&next, &turn, &turn_cv, &outcomes);
                let (hal, tool_fns, routines) = (&hal, &tool_fns, &routines);
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= inputs.len() {
                        break;
                    }
                    let guard = TurnGuard { turn, cv: turn_cv, next: i + 1 };
                    let alloc = |len: u64| -> Result<u64> {
                        let mut g = turn.lock().unwrap();
                        while *g < i {
                            g = turn_cv.wait(g).unwrap();
                        }
                        drop(g);
                        let (rtx, rrx) = mpsc::channel();
                        let res = if tx.send((len, rtx)).is_ok() { rrx.recv().ok() } else { None };
                        let mut g = turn.lock().unwrap();
                        *g = (*g).max(i + 1);
                        turn_cv.notify_all();
                        drop(g);
                        match res {
                            Some(r) => r.map_err(Into::into),
                            None => Err(NvbitError::BadRequest(
                                "trampoline allocation service unavailable".into(),
                            )),
                        }
                    };
                    let out = build_one(i, hal, &inputs[i], tool_fns, routines, alloc);
                    drop(guard);
                    outcomes.lock().unwrap().push(out);
                });
            }
            drop(tx);
            while let Ok((len, reply)) = rx.recv() {
                let _ = reply.send(drv.with_device(|d| d.alloc(len)));
            }
        });
        let mut v = outcomes.into_inner().unwrap();
        v.sort_by_key(|o| o.idx);
        v
    }

    /// Installs the version the tool asked for, when it differs from what
    /// is at the function's code address: one memcpy plus the local-memory
    /// override (paper §6.2).
    fn reconcile(
        &self,
        drv: &Driver,
        func: CuFunction,
        policy: SavePolicy,
        opts: PlanOpts,
    ) -> Result<()> {
        let raw = func.raw();
        let mut shard = self.shard(raw).lock().unwrap();
        let Some(entry) = shard.get_mut(&raw) else { return Ok(()) };
        let target = if entry.desired == Version::Instrumented {
            let k = entry.key(policy, opts);
            entry.images.contains_key(&k).then_some(k)
        } else {
            None
        };
        if entry.current == target {
            return Ok(());
        }
        let info = drv.function_info(func)?;
        let _swap_span = common::obs::span("swap");
        let t0 = Instant::now();
        match target {
            Some(k) => {
                let img = &entry.images[&k];
                drv.with_device(|d| d.write(info.addr, &img.instrumented))?;
                drv.set_local_override(func, img.extra_local)?;
            }
            None => {
                // `current` was Some, so at least that image exists and
                // carries the pristine bytes.
                let img = entry
                    .current
                    .and_then(|c| entry.images.get(&c))
                    .or_else(|| entry.images.values().next());
                if let Some(img) = img {
                    drv.with_device(|d| d.write(info.addr, &img.original))?;
                    drv.set_local_override(func, 0)?;
                }
            }
        }
        entry.current = target;
        drop(shard);
        self.overhead.lock().unwrap().add(&info.name, JitComponent::Swap, t0.elapsed());
        Ok(())
    }

    /// Single-function convenience over [`CoreState::apply_batch`].
    fn apply_one(&self, drv: &Driver, func: CuFunction) -> Result<()> {
        self.apply_batch(drv, &[func]).pop().map(|(_, r)| r).unwrap_or(Ok(()))
    }

    /// Drops a function's entry after an instrumentation failure: restore
    /// the original code if a version was installed, then free every
    /// cached trampoline.
    fn discard_entry(&self, drv: &Driver, func: CuFunction) {
        let raw = func.raw();
        let Some(entry) = self.shard(raw).lock().unwrap().remove(&raw) else { return };
        if entry.current.is_some() {
            if let Ok(info) = drv.function_info(func) {
                let img = entry
                    .current
                    .and_then(|c| entry.images.get(&c))
                    .or_else(|| entry.images.values().next());
                if let Some(img) = img {
                    let _ = drv.with_device(|d| d.write(info.addr, &img.original));
                }
                let _ = drv.set_local_override(func, 0);
            }
        }
        for img in entry.images.values() {
            if drv.with_device(|d| d.free(img.tramp_addr)).is_err() {
                common::obs::counter("tramp.free_fail", 1);
            }
        }
    }

    /// `cuModuleUnload` entry: evicts every cached entry of the dying
    /// module and frees its trampolines. Runs while the module is still
    /// queryable; afterwards the driver recycles the handles, so anything
    /// left here would serve stale code to their next owner.
    fn evict_module(&self, drv: &Driver, module: &CuModule) {
        let Ok(funcs) = drv.module_functions(module) else { return };
        let mut lift_evicted = 0u64;
        let mut image_evicted = 0u64;
        for func in funcs {
            let raw = func.raw();
            let Some(entry) = self.shard(raw).lock().unwrap().remove(&raw) else { continue };
            if entry.lifted.is_some() {
                lift_evicted += 1;
            }
            for img in entry.images.values() {
                image_evicted += 1;
                if drv.with_device(|d| d.free(img.tramp_addr)).is_err() {
                    common::obs::counter("tramp.free_fail", 1);
                }
            }
        }
        if lift_evicted > 0 {
            common::obs::counter("lift_cache.evict", lift_evicted);
        }
        if image_evicted > 0 {
            common::obs::counter("instr_image.evict", image_evicted);
        }
    }

    /// Launch-entry instrumentation: attribute the user callback, then
    /// batch-build every pending function (first launch after a module
    /// load fans out across all of them) and reconcile versions.
    ///
    /// `block_threads` is the intercepted launch's block thread count;
    /// it resolves [`sass::occupancy::OccupancyCfg::PER_LAUNCH`]
    /// occupancy configs to the real shape. The resolved opts feed the
    /// plan-cache key, so a launch at a new shape replans while
    /// repeated shapes hit the cached image — the same shape-keyed
    /// reuse the sampling cache applies.
    fn instrument_for_launch(
        &self,
        drv: &Driver,
        func: CuFunction,
        user: Duration,
        block_threads: u32,
    ) {
        let raw = func.raw();
        let tracked = self
            .shard(raw)
            .lock()
            .unwrap()
            .get(&raw)
            .map(|e| !e.spec.is_empty() || !e.images.is_empty())
            .unwrap_or(false);
        if tracked {
            if let Ok(info) = drv.function_info(func) {
                self.overhead.lock().unwrap().add(&info.name, JitComponent::UserCode, user);
            }
        }
        self.launch_threads.store(block_threads.max(1), Ordering::Relaxed);
        let policy = *self.save_policy.lock().unwrap();
        let raw_opts = *self.plan_opts.lock().unwrap();
        let opts = self.resolved_opts();
        if opts != raw_opts {
            common::obs::counter("plan.occ_launch_shape", 1);
        }
        let mut batch = self.pending(policy, opts);
        if tracked && !batch.iter().any(|f| f.raw() == raw) {
            batch.push(func);
            batch.sort_by_key(|f| f.raw());
        }
        for (f, res) in self.apply_batch(drv, &batch) {
            if let Err(e) = res {
                // Instrumentation failures must not corrupt the
                // application; drop the request and keep the original.
                eprintln!("nvbit: instrumentation of {f} failed: {e}");
                self.discard_entry(drv, f);
            }
        }
    }
}

/// The NVBit core: installed as the driver's interposer; dispatches tool
/// callbacks and applies pending instrumentation at callback exits
/// (paper §5.1: "At the exit of the CUDA driver callback ... the Code
/// Generator begins functioning").
pub struct NvbitCore {
    tool: Box<dyn NvbitTool>,
    state: Arc<CoreState>,
}

impl NvbitCore {
    /// Wraps a tool.
    pub fn new(tool: impl NvbitTool + 'static) -> NvbitCore {
        NvbitCore { tool: Box::new(tool), state: Arc::new(CoreState::new()) }
    }
}

/// Attaches a tool to a driver: the run-time injection step (the analog of
/// `LD_PRELOAD`-ing an NVBit tool `.so` into the application).
pub fn attach_tool(drv: &Driver, tool: impl NvbitTool + 'static) {
    drv.install_interposer(Box::new(NvbitCore::new(tool)));
}

impl Interposer for NvbitCore {
    fn at_init(&mut self, drv: &Driver) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_init(&api);
    }

    fn at_term(&mut self, drv: &Driver) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_term(&api);
    }

    fn at_ctx_init(&mut self, drv: &Driver, ctx: CuContext) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_ctx_init(&api, ctx);
    }

    fn at_ctx_term(&mut self, drv: &Driver, ctx: CuContext) {
        let api = NvbitApi { drv, state: &self.state };
        self.tool.at_ctx_term(&api, ctx);
    }

    fn at_cuda_event(&mut self, drv: &Driver, is_exit: bool, cbid: CbId, params: &CbParams<'_>) {
        let api = NvbitApi { drv, state: &self.state };

        let t0 = Instant::now();
        {
            let _span = common::obs::span("user_code");
            self.tool.at_cuda_event(&api, is_exit, cbid, params);
        }
        let user = t0.elapsed();

        if !is_exit {
            match (cbid, params) {
                (CbId::LaunchKernel, CbParams::LaunchKernel { func, block, .. }) => {
                    let threads = u32::try_from(block.count()).unwrap_or(u32::MAX);
                    self.state.instrument_for_launch(drv, *func, user, threads);
                }
                (CbId::ModuleUnload, CbParams::Module { module, .. }) => {
                    self.state.evict_module(drv, module);
                }
                _ => {}
            }
        }
    }
}

/// Register-save accounting for one instrumented function, as reported by
/// [`NvbitApi::save_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveStats {
    /// Register slots actually saved across all injections.
    pub saved_slots: u64,
    /// Slots the conservative whole-function tier would have saved.
    pub full_tier_slots: u64,
    /// Largest save tier used by any site.
    pub max_tier: u16,
    /// Number of injection sites.
    pub sites: usize,
    /// Why liveness-driven sizing was not applied, when it was not.
    pub fallback: Option<String>,
}

/// The user-level API handed to tools (paper §4). Obtainable only inside
/// tool callbacks.
pub struct NvbitApi<'a> {
    drv: &'a Driver,
    state: &'a Arc<CoreState>,
}

impl<'a> NvbitApi<'a> {
    /// The underlying driver (for memory management from host callbacks;
    /// calls made here do not re-trigger tool callbacks).
    pub fn driver(&self) -> &Driver {
        self.drv
    }

    /// The hardware abstraction layer of the current device.
    pub fn hal(&self) -> Hal {
        self.state.hal(self.drv)
    }

    // ----- Tool Functions Loader (paper §5.1) -----------------------------

    /// Compiles and loads the tool's instrumentation device functions
    /// (PTX dialect source). Call once, typically from `at_init`. The
    /// functions become injectable by name — the analog of
    /// `NVBIT_EXPORT_DEV_FUNCTION`.
    ///
    /// # Errors
    ///
    /// Compilation or device-memory failures.
    pub fn load_tool_functions(&self, ptx_src: &str) -> Result<()> {
        let hal = self.state.hal(self.drv);
        // Dual-ABI load. The *callable* copy — what gets installed on the
        // device and what out-of-line `JCAL`s execute — compiles under the
        // standard ABI, so its epilogue restores every callee-saved
        // register. The same source is compiled again under the *scratch*
        // ABI (no prologue, every register fair game): that body is what
        // the planner classifies, the inline pass splices and the pressure
        // cost model prices, since a splice runs inside a trampoline that
        // already saved the site's registers.
        let module = ptx::compile_module(ptx_src, hal.arch())?;
        let scratch_mod = ptx::compile_module_abi(ptx_src, hal.arch(), ptx::Abi::Scratch).ok();
        for f in &module.functions {
            if !f.relocs.is_empty() {
                return Err(NvbitError::BadRequest(format!(
                    "tool function `{}` calls other functions, which is unsupported",
                    f.name
                )));
            }
            // Paper §7: injected functions may not use shared (or constant)
            // memory — the application may be using all of it.
            if f.shared_size > 0 {
                return Err(NvbitError::BadRequest(format!(
                    "tool function `{}` declares shared memory, which instrumentation                      functions may not use (the application owns it)",
                    f.name
                )));
            }
            let addr = self.drv.with_device(|d| -> gpu::Result<u64> {
                let a = d.alloc(f.code.len().max(1) as u64)?;
                d.write(a, &f.code)?;
                d.label_code(a, f.code.len() as u64, &f.name);
                Ok(a)
            })?;
            // Retain the decoded bodies so the planner can classify leaves
            // (precise clobber ceilings, inline candidates) and the verifier
            // can compare inlined splices against the loaded function.
            let body = hal.disassemble(&f.code)?;
            let scratch =
                scratch_mod.as_ref().and_then(|m| m.functions.iter().find(|s| s.name == f.name));
            let tool_fn = match scratch {
                Some(s) => {
                    let scratch_body = hal.disassemble(&s.code)?;
                    ToolFn::dual_abi(
                        addr,
                        (f.reg_count, f.stack_size, &body),
                        (s.reg_count, s.stack_size, scratch_body),
                        f.uses_reg_api,
                        hal.arch(),
                    )
                }
                // No scratch compile (the function calls others): classify
                // the standard body — such bodies are never spliceable.
                None => ToolFn::with_body(
                    addr,
                    f.reg_count,
                    f.stack_size,
                    f.uses_reg_api,
                    body,
                    hal.arch(),
                ),
            };
            self.state.tool_fns.write().unwrap().insert(f.name.clone(), tool_fn);
        }
        Ok(())
    }

    /// The loaded tool functions (name → device address).
    pub fn tool_functions(&self) -> Vec<String> {
        let mut v: Vec<String> = self.state.tool_fns.read().unwrap().keys().cloned().collect();
        v.sort();
        v
    }

    // ----- Inspection API (paper Listing 3/4) ------------------------------

    /// All instructions of a function, in program order (`nvbit_get_instrs`).
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_instrs(&self, func: CuFunction) -> Result<Vec<Instr>> {
        let lifted = self.state.lifted_for(self.drv, func)?;
        Ok(lifted.instrs.clone())
    }

    /// Basic blocks as instruction-index ranges, or `None` when indirect
    /// control flow forces the flat view (`nvbit_get_basic_blocks` and the
    /// paper's ICF exception).
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_basic_blocks(&self, func: CuFunction) -> Result<Option<Vec<sass::cfg::BasicBlock>>> {
        let lifted = self.state.lifted_for(self.drv, func)?;
        Ok(lifted.basic_blocks.clone().ok())
    }

    /// Why static CFG partitioning failed for the function, if it did —
    /// the structured diagnostic behind a `None` from
    /// [`NvbitApi::get_basic_blocks`].
    ///
    /// # Errors
    ///
    /// Driver/decode failures.
    pub fn get_cfg_failure(&self, func: CuFunction) -> Result<Option<sass::CfgFailure>> {
        let lifted = self.state.lifted_for(self.drv, func)?;
        Ok(lifted.basic_blocks.as_ref().err().cloned())
    }

    /// General-purpose registers live into instruction `idx` of `func`, in
    /// ascending order, from the static dataflow analysis (paper §5.1's
    /// "registers used by the function" made per-instruction). `None` when
    /// indirect control flow defeats the analysis.
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadInstrIndex`] for an out-of-range index;
    /// driver/decode failures.
    pub fn get_live_regs(&self, func: CuFunction, idx: usize) -> Result<Option<Vec<u8>>> {
        let lifted = self.state.lifted_for(self.drv, func)?;
        if idx >= lifted.instrs.len() {
            return Err(NvbitError::BadInstrIndex { index: idx, len: lifted.instrs.len() });
        }
        Ok(lifted.dataflow.as_ref().map(|df| df.live_regs(idx)))
    }

    /// Functions the given function may call (`nvbit_get_related_funcs`).
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn get_related_funcs(&self, func: CuFunction) -> Result<Vec<CuFunction>> {
        Ok(self.drv.function_info(func)?.related)
    }

    /// The function's name (`nvbit_get_func_name`).
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn get_func_name(&self, func: CuFunction) -> Result<String> {
        Ok(self.drv.function_info(func)?.name)
    }

    /// Whether the function comes from a pre-compiled library module.
    ///
    /// # Errors
    ///
    /// Invalid handle.
    pub fn is_library_function(&self, func: CuFunction) -> Result<bool> {
        Ok(self.drv.function_info(func)?.library)
    }

    // ----- Instrumentation API (paper Listing 5) ---------------------------

    /// Injects a call to tool function `fname` before/after instruction
    /// `idx` of `func` (`nvbit_insert_call`). Multiple injections at the
    /// same site run in insertion order.
    ///
    /// # Errors
    ///
    /// Unknown function name or out-of-range index (validated lazily at
    /// code generation; eagerly checked when possible).
    pub fn insert_call(
        &self,
        func: CuFunction,
        idx: usize,
        fname: &str,
        ipoint: IPoint,
    ) -> Result<()> {
        if !self.state.tool_fns.read().unwrap().contains_key(fname) {
            return Err(NvbitError::UnknownToolFunction(fname.to_string()));
        }
        let raw = func.raw();
        self.state
            .shard(raw)
            .lock()
            .unwrap()
            .entry(raw)
            .or_insert_with(|| FuncEntry::new(func))
            .spec
            .insert_call(idx, fname, ipoint);
        Ok(())
    }

    /// Appends an argument to the most recent injection at the site
    /// (`nvbit_add_call_arg*`).
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadRequest`] when no call was inserted at the site.
    pub fn add_call_arg(&self, func: CuFunction, idx: usize, arg: Arg) -> Result<()> {
        let raw = func.raw();
        let mut shard = self.state.shard(raw).lock().unwrap();
        if shard.get_mut(&raw).is_some_and(|entry| entry.spec.add_arg(idx, arg)) {
            Ok(())
        } else {
            Err(NvbitError::BadRequest(format!(
                "add_call_arg before insert_call at instruction {idx}"
            )))
        }
    }

    /// Convenience: pass the evaluated guard predicate.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_guard_pred(&self, func: CuFunction, idx: usize) -> Result<()> {
        self.add_call_arg(func, idx, Arg::GuardPred)
    }

    /// Convenience: pass a register value.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_reg_val(&self, func: CuFunction, idx: usize, reg: u8) -> Result<()> {
        self.add_call_arg(func, idx, Arg::RegVal(reg))
    }

    /// Convenience: pass a 64-bit register-pair value.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_reg_val64(&self, func: CuFunction, idx: usize, reg: u8) -> Result<()> {
        self.add_call_arg(func, idx, Arg::RegVal64(reg))
    }

    /// Convenience: pass a 32-bit immediate.
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_imm32(&self, func: CuFunction, idx: usize, v: i32) -> Result<()> {
        self.add_call_arg(func, idx, Arg::Imm32(v))
    }

    /// Convenience: pass a 64-bit immediate (e.g. a tool counter address).
    ///
    /// # Errors
    ///
    /// See [`NvbitApi::add_call_arg`].
    pub fn add_call_arg_imm64(&self, func: CuFunction, idx: usize, v: u64) -> Result<()> {
        self.add_call_arg(func, idx, Arg::Imm64(v))
    }

    /// Enables predicate filtering on the most recent injection at the
    /// site: lanes whose guard predicate is false skip the injected
    /// function entirely instead of entering it and returning early — the
    /// finer-grained thread selection the paper's §7 sketches as future
    /// work. No-op for unguarded instructions. Warp-level intrinsics inside
    /// the tool function then observe only the guard-true lanes.
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadRequest`] when no call was inserted at the site.
    pub fn set_pred_filter(&self, func: CuFunction, idx: usize) -> Result<()> {
        let raw = func.raw();
        let mut shard = self.state.shard(raw).lock().unwrap();
        if shard.get_mut(&raw).is_some_and(|entry| entry.spec.set_pred_filter(idx)) {
            Ok(())
        } else {
            Err(NvbitError::BadRequest(format!(
                "set_pred_filter before insert_call at instruction {idx}"
            )))
        }
    }

    /// Marks the most recent injection at the site as coalescible: the
    /// planner may merge identical such injections within a basic block
    /// into a single call carrying a multiplicity argument. The injection
    /// enters the *multiplicity protocol* — the tool function receives one
    /// extra trailing `u32` argument (1 when unmerged, N when the call
    /// stands for N sites), whether or not merging actually happens, so
    /// plans built with coalescing on and off stay behaviourally identical.
    /// Only injections whose explicit arguments are all block-invariant
    /// (immediates and constant-bank reads) and that carry no predicate
    /// filter are eligible for merging.
    ///
    /// # Errors
    ///
    /// [`NvbitError::BadRequest`] when no call was inserted at the site.
    pub fn set_coalesce(&self, func: CuFunction, idx: usize) -> Result<()> {
        let raw = func.raw();
        let mut shard = self.state.shard(raw).lock().unwrap();
        if shard.get_mut(&raw).is_some_and(|entry| entry.spec.set_coalesce(idx)) {
            Ok(())
        } else {
            Err(NvbitError::BadRequest(format!(
                "set_coalesce before insert_call at instruction {idx}"
            )))
        }
    }

    /// Removes the original instruction at the site (`nvbit_remove_orig`) —
    /// the relocated original becomes a `NOP`, enabling instruction
    /// emulation (paper §6.3).
    ///
    /// # Errors
    ///
    /// Range errors surface at code generation.
    pub fn remove_orig(&self, func: CuFunction, idx: usize) -> Result<()> {
        let raw = func.raw();
        self.state
            .shard(raw)
            .lock()
            .unwrap()
            .entry(raw)
            .or_insert_with(|| FuncEntry::new(func))
            .spec
            .remove_orig(idx);
        Ok(())
    }

    // ----- Control API (paper Listing 6) -----------------------------------

    /// Selects whether the next launches of `func` run the instrumented or
    /// original version (`nvbit_enable_instrumented`) — the sampling switch
    /// of §6.2. With the version already cached, the swap costs one memcpy
    /// of the function's code. A no-op for functions that were never
    /// instrumented (no spec and no image): no phantom state is created.
    ///
    /// # Errors
    ///
    /// Driver failures during an immediate swap.
    pub fn enable_instrumented(&self, func: CuFunction, enable: bool) -> Result<()> {
        let raw = func.raw();
        {
            let mut shard = self.state.shard(raw).lock().unwrap();
            match shard.get_mut(&raw) {
                Some(entry) if !entry.spec.is_empty() || !entry.images.is_empty() => {
                    entry.desired = if enable { Version::Instrumented } else { Version::Original };
                }
                _ => return Ok(()),
            }
        }
        // Reconcile now (builds the image first if needed, so callees that
        // are never launched still get their code swapped in).
        self.state.apply_one(self.drv, func)
    }

    /// Discards instrumentation of `func`: restores the original code,
    /// clears the local-memory override, frees the trampolines of *every*
    /// cached version and drops the spec (`nvbit_reset_instrumented`).
    ///
    /// Cleanup runs to completion even when a step fails; the first
    /// failure is returned afterwards, and trampoline-free failures are
    /// additionally counted on `tramp.free_fail`.
    ///
    /// # Errors
    ///
    /// The first driver failure encountered while restoring.
    pub fn reset_instrumented(&self, func: CuFunction) -> Result<()> {
        let raw = func.raw();
        let Some(entry) = self.state.shard(raw).lock().unwrap().remove(&raw) else {
            return Ok(());
        };
        let mut first_err: Option<NvbitError> = None;
        if !entry.images.is_empty() {
            if let Ok(info) = self.drv.function_info(func) {
                if let Some(img) = entry.current.and_then(|c| entry.images.get(&c)) {
                    if let Err(e) = self.drv.with_device(|d| d.write(info.addr, &img.original)) {
                        first_err.get_or_insert(e.into());
                    }
                }
                // Always reset the override once any image existed — even
                // when the original version happens to be installed.
                if let Err(e) = self.drv.set_local_override(func, 0) {
                    first_err.get_or_insert(e.into());
                }
            }
        }
        for img in entry.images.values() {
            if let Err(e) = self.drv.with_device(|d| d.free(img.tramp_addr)) {
                common::obs::counter("tramp.free_fail", 1);
                first_err.get_or_insert(e.into());
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Selects how injection-site register saves are sized for subsequent
    /// image builds: liveness-driven per-site tiers (the default) or the
    /// conservative whole-function tier. Images are cached per
    /// (spec, policy) version, so flipping the policy back and forth swaps
    /// between already-built images without re-running code generation.
    pub fn set_save_policy(&self, policy: SavePolicy) {
        *self.state.save_policy.lock().unwrap() = policy;
    }

    /// Selects which plan-level optimization passes subsequent image builds
    /// run (basic-block call coalescing and leaf-tool inlining; both on by
    /// default). Images are cached per (spec, policy, plan options) version,
    /// so flipping options swaps between already-built images without
    /// re-running code generation.
    pub fn set_plan_opts(&self, opts: PlanOpts) {
        *self.state.plan_opts.lock().unwrap() = opts;
    }

    /// The plan-pass options currently in force.
    pub fn plan_opts(&self) -> PlanOpts {
        *self.state.plan_opts.lock().unwrap()
    }

    /// Sets the number of worker threads batch instrumentation may use
    /// (0 = one per available hardware thread, the default; also
    /// configurable with the `NVBIT_JIT_WORKERS` environment variable).
    /// Whatever the count, parallel builds produce images bit-identical
    /// to a serial build.
    pub fn set_jit_workers(&self, workers: usize) {
        self.state.jit_workers.store(workers, Ordering::Relaxed);
    }

    /// Statically verifies the instrumented image of `func`, generating it
    /// first if none is cached for the present (spec, policy). Returns the
    /// verifier's diagnostics — an empty vector means the image is safe to
    /// swap in. (The core runs the same checks before every swap; this
    /// surfaces them to tools.)
    ///
    /// # Errors
    ///
    /// Driver/codegen failures; a verification *failure* is reported
    /// through the returned diagnostics, not as an error.
    pub fn verify_instrumented(&self, func: CuFunction) -> Result<Vec<Diagnostic>> {
        match self.state.apply_one(self.drv, func) {
            Ok(()) => {}
            Err(NvbitError::VerifyFailed(diags)) => return Ok(diags),
            Err(e) => return Err(e),
        }
        let policy = *self.state.save_policy.lock().unwrap();
        let opts = self.state.resolved_opts();
        let raw = func.raw();
        let image = {
            let mut shard = self.state.shard(raw).lock().unwrap();
            let Some(entry) = shard.get_mut(&raw) else { return Ok(Vec::new()) };
            let key = entry.key(policy, opts);
            match entry.images.get(&key) {
                Some(img) => img.clone(),
                None => return Ok(Vec::new()),
            }
        };
        let hal = self.state.hal(self.drv);
        let info = self.drv.function_info(func)?;
        let ext = self.state.external_code(self.drv, &info);
        verify::verify(&hal, info.addr, &image, &ext)
    }

    /// Register-save accounting for the instrumented image of `func`
    /// (generated first if none is cached for the present spec and
    /// policy): `None` when the function has no instrumentation.
    ///
    /// # Errors
    ///
    /// Driver/codegen/verification failures during generation.
    pub fn save_stats(&self, func: CuFunction) -> Result<Option<SaveStats>> {
        self.state.apply_one(self.drv, func)?;
        let policy = *self.state.save_policy.lock().unwrap();
        let opts = self.state.resolved_opts();
        let raw = func.raw();
        let mut shard = self.state.shard(raw).lock().unwrap();
        let Some(entry) = shard.get_mut(&raw) else { return Ok(None) };
        let key = entry.key(policy, opts);
        Ok(entry.images.get(&key).map(|img| SaveStats {
            saved_slots: img.saved_slots,
            full_tier_slots: img.full_tier_slots,
            max_tier: img.tier,
            sites: img.sites.len(),
            fallback: img.fallback.clone(),
        }))
    }

    /// Plan-pass accounting for the instrumented image of `func`
    /// (generated first if none is cached for the present spec, policy and
    /// plan options): how many requested calls the coalescing pass merged
    /// away and how many emitted calls were inlined. `None` when the
    /// function has no instrumentation.
    ///
    /// # Errors
    ///
    /// Driver/codegen/verification failures during generation.
    pub fn plan_stats(&self, func: CuFunction) -> Result<Option<PlanStats>> {
        self.state.apply_one(self.drv, func)?;
        let policy = *self.state.save_policy.lock().unwrap();
        let opts = self.state.resolved_opts();
        let raw = func.raw();
        let mut shard = self.state.shard(raw).lock().unwrap();
        let Some(entry) = shard.get_mut(&raw) else { return Ok(None) };
        let key = entry.key(policy, opts);
        Ok(entry.images.get(&key).map(|img| img.plan))
    }

    /// True if the function currently has a generated instrumented image
    /// or a pending instrumentation request.
    pub fn is_instrumented(&self, func: CuFunction) -> bool {
        let raw = func.raw();
        self.state
            .shard(raw)
            .lock()
            .unwrap()
            .get(&raw)
            .map(|e| !e.images.is_empty() || !e.spec.is_empty())
            .unwrap_or(false)
    }

    // ----- Overhead accounting (paper §5.2) ---------------------------------

    /// The accumulated JIT-compilation overhead report.
    pub fn overhead(&self) -> OverheadReport {
        self.state.overhead.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    // The end-to-end behaviour of the core is exercised by the crate's
    // integration tests (`tests/instrumentation.rs`, `tests/version_cache.rs`,
    // `tests/module_unload.rs`), which require the full driver + device
    // stack; unit coverage of the pieces lives in the sibling modules.
}
