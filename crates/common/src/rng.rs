//! A seeded, dependency-free PRNG: SplitMix64 for state expansion and
//! xoshiro256** for the output stream.
//!
//! Covers the `rand` surface the workspace actually uses: construction from
//! a `u64` seed, uniform integers in a half-open range, booleans, floats in
//! `[0, 1)` and Fisher–Yates shuffling. Streams are deterministic functions
//! of the seed, which is all the workloads and tests require (they never
//! depended on `rand`'s exact stream, only on reproducibility).

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state and as
/// a standalone mixing function.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a deterministic function of
    /// `seed` (SplitMix64-expanded, as the xoshiro authors recommend).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// The next 32 random bits (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() >> 63 != 0
    }

    /// A uniform float in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range<T: UniformInt>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// A uniform index in `0..len` (convenience for slice indexing).
    ///
    /// # Panics
    ///
    /// Panics when `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.gen_range(0..len)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
///
/// Sampling maps 64 random bits onto the span by modulo reduction; the bias
/// is below 2⁻⁴⁰ for every span the workspace uses, which is irrelevant for
/// workload synthesis and randomized testing.
pub trait UniformInt: Copy {
    /// A uniform value in `lo..hi`.
    fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut Rng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_whole_range() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 64-element shuffle leaving order intact is astronomically unlikely"
        );
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1_000 {
            let f = rng.gen_f32();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen_f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
