//! The single definition of a 3-component launch dimension.
//!
//! The `gpu` and `driver` crates re-export this type; the PTX interpreter
//! uses it for grid/block geometry instead of ad-hoc `(u32, u32, u32)`
//! tuples.

/// A 3-component launch dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// x component.
    pub x: u32,
    /// y component.
    pub y: u32,
    /// z component.
    pub z: u32,
}

impl Dim3 {
    /// Builds a dimension from components.
    #[must_use]
    pub fn xyz(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// A 1-D dimension.
    #[must_use]
    pub fn linear(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// Product of the components.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Dim3 {
        Dim3 { x, y, z }
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{},{},{}}}", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim3_helpers() {
        assert_eq!(Dim3::linear(7).count(), 7);
        assert_eq!(Dim3::xyz(2, 3, 4).count(), 24);
        assert_eq!(Dim3::xyz(128, 128, 1).to_string(), "{128,128,1}");
        assert_eq!(Dim3::from((2, 3, 4)), Dim3::xyz(2, 3, 4));
    }
}
