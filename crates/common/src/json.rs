//! A minimal JSON value type with parser and printer.
//!
//! Replaces the `serde` derives the workspace used to declare but never
//! drove through a serializer. Objects preserve insertion order; numbers
//! are `f64` (every quantity the stack serializes — device-spec fields,
//! stat counters — fits 53 bits of mantissa).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub pos: usize,
    /// Explanation.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64` (must be a non-negative integer).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `u32`.
    #[must_use]
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|v| u32::try_from(v).ok())
    }

    /// The value as `&str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte position of the first problem.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Renders the value compactly.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Renders the value with 2-space indentation.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * d));
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Infinity literal; null is the
                    // conventional lossy rendering.
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    item.render(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    pad(out, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, depth + 1);
                    escape_into(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    pad(out, depth);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..=0xdbff).contains(&hi) {
                                // A high surrogate combines with a
                                // following `\uDC00`-`\uDFFF` escape into
                                // one supplementary code point; a lone
                                // surrogate becomes U+FFFD.
                                if self.src[self.pos..].starts_with(b"\\u") {
                                    let save = self.pos;
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..=0xdfff).contains(&lo) {
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                    } else {
                                        self.pos = save;
                                        0xfffd
                                    }
                                } else {
                                    0xfffd
                                }
                            } else {
                                hi
                            };
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c if c < 0x80 => s.push(c as char),
                _ => {
                    // Re-decode the UTF-8 sequence starting one byte back.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.src[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().unwrap();
                    s.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits (the payload of a `\u` escape).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.src.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.src[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("SimTitanV \"fast\"".into())),
            ("sms", Json::Num(80.0)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(-2.5)])),
            ("nested", Json::obj(vec![("x", Json::Num(1.0))])),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "source: {text}");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\\u0041\" : [ 1 , 2.5e2 , \"✓\" ] } ").unwrap();
        let arr = v.get("a\nA").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(250.0));
        assert_eq!(arr[2].as_str(), Some("✓"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1x", "\"unterminated", "{}extra"] {
            assert!(Json::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::Num(42.0).to_compact(), "42");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn surrogate_pairs_combine() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Lone surrogates (high-only, or high followed by a non-surrogate
        // escape) decode as U+FFFD without consuming the next escape.
        assert_eq!(Json::parse("\"\\ud83d\"").unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(Json::parse("\"\\ud83dx\"").unwrap().as_str(), Some("\u{fffd}x"));
        assert_eq!(Json::parse("\"\\ud83d\\u0041\"").unwrap().as_str(), Some("\u{fffd}A"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_compact(), "null");
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse("{\"n\": 3, \"s\": \"x\", \"b\": false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u32(), Some(3));
        assert_eq!(v.get("n").unwrap().as_str(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }
}
