//! The std-only engine layer shared by every crate in the workspace.
//!
//! This crate exists so the whole stack builds with `CARGO_NET_OFFLINE=true`
//! and an empty registry cache: it provides in-tree, dependency-free
//! replacements for the external crates the workspace used to pull in.
//!
//! * [`rng`] — a seeded SplitMix64/xoshiro256** PRNG covering the `rand`
//!   surface the workloads and tests actually use (`seed_from_u64`,
//!   `gen_range`, `shuffle`);
//! * [`prop`] — a shrink-free randomized property-test harness replacing
//!   `proptest` (deterministic per-case seeds, reproducible via
//!   `NVBIT_PROP_SEED`);
//! * [`json`] — a minimal JSON value type with parser and printer, replacing
//!   the `serde` derives (device specs round-trip through it);
//! * [`mod@bench`] — a wall-clock micro-bench harness replacing `criterion` for
//!   the `harness = false` bench binaries;
//! * [`obs`] — the pipeline observability layer: lock-free per-thread event
//!   rings, span guards and named counters with JSON and Chrome-trace
//!   export (off by default; one branch per hook when disabled);
//! * [`channel`] — the streaming GPU→host tool channel: double-buffered
//!   flush, doorbell flip, dedicated receiver thread, `Block`/`DropCount`
//!   backpressure;
//! * [`Dim3`] — the single definition of a 3-component launch dimension,
//!   re-exported by the `gpu` and `driver` crates.

#![warn(missing_docs)]

pub mod bench;
pub mod channel;
pub mod dim3;
pub mod json;
pub mod obs;
pub mod prop;
pub mod rng;

pub use dim3::Dim3;
pub use rng::Rng;
