//! Streaming GPU→host tool channel with double-buffered flush and a
//! parallel host drain (the paper's `mem_trace`/cache-simulator receiver
//! thread, §6.1).
//!
//! The channel carries fixed-size [`Record`]s from device-side injected
//! tool code (the producer half, [`ChannelDev`], driven by the executor's
//! `CHAN` instruction) to a dedicated host receiver `std::thread` (the
//! consumer half, [`ChannelHost`]). Two flush buffers swap roles: the
//! device fills buffer A while the host drains buffer B, and a doorbell
//! flip (Release/Acquire atomics only — no external dependencies) hands a
//! full buffer over. Per producer *stream* (one record tag, e.g. one CTA)
//! the channel is single-producer/single-consumer and order-preserving;
//! mechanically many streams push concurrently.
//!
//! ## Doorbell protocol
//!
//! A global `active` epoch counter selects the filling buffer
//! (`bufs[epoch & 1]`). Each buffer carries one packed word
//! `(seq << 32) | claimed`: a producer may claim a slot only while the
//! buffer's `seq` equals the epoch it loaded, and the claim is a CAS on
//! the packed word, so a claim can never land on a buffer that was
//! re-sequenced (handed back by the host and flipped forward) in between —
//! the classic lost-record race of refill-in-place rings. Slot writes are
//! Relaxed; the following `committed` increment (AcqRel) publishes them,
//! and the producer whose commit fills the buffer marks it `FULL`
//! (Release) and rings the host doorbell. The host drains strictly in
//! epoch order, marks the buffer `DRAINED` *before* invoking the consumer
//! callback (so the device refills one buffer while the host is still
//! processing the other), and a producer that overflows the active buffer
//! races a CAS on `active` to flip; the winner re-sequences the drained
//! buffer.
//!
//! ## Backpressure
//!
//! [`Backpressure::Block`] parks an overflowing producer on the doorbell
//! condvar until a buffer comes back — lossless, used for trace capture.
//! [`Backpressure::DropCount`] returns [`PushOutcome::Dropped`]
//! immediately and counts the drop, preserving the bounded-buffer
//! truncation contract with exact accounting:
//! `delivered() + dropped() == demanded()` holds after every
//! [`ChannelDev::flush`], independent of timing.
//!
//! Observability: `chan.flush`, `chan.doorbell_stall`, `chan.records`,
//! `chan.bytes` and `chan.drop` counters plus a `chan.drain` span land in
//! [`crate::obs`] when enabled.

use crate::obs;
use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Bytes one [`Record`] occupies in a flush buffer (tag + payload).
pub const RECORD_BYTES: u64 = 16;

/// One channel record: a producer stream tag (the executor uses the
/// CTA-linear index) and a payload word (e.g. an effective address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Producer stream identifier; records with equal tags arrive in push
    /// order.
    pub tag: u64,
    /// Payload word.
    pub payload: u64,
}

/// The host-side consumer callback: invoked by the receiver thread once
/// per drained batch.
pub type Consumer = Box<dyn FnMut(&[Record]) + Send>;

/// What an overflowing producer does while both buffers are busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Park until the host hands a buffer back: lossless.
    Block,
    /// Drop the record and count it: the bounded-buffer truncation
    /// contract with exact accounting.
    DropCount,
}

/// Result of one [`ChannelDev::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record reached a flush buffer and will be drained.
    Delivered,
    /// The record was dropped under [`Backpressure::DropCount`].
    Dropped,
}

const FILLING: u64 = 0;
const FULL: u64 = 1;
const DRAINED: u64 = 2;

const CLAIM_MASK: u64 = 0xffff_ffff;

/// `(seq << 32) | claimed` for epoch `e` with zero claims.
fn seq_word(epoch: u64) -> u64 {
    (epoch & CLAIM_MASK) << 32
}

/// One flush buffer.
struct Buffer {
    /// Packed `(seq << 32) | claimed`. Claims CAS this word, so a stale
    /// producer whose buffer was re-sequenced under it simply fails the
    /// CAS and retries against the new epoch.
    packed: AtomicU64,
    /// Records whose slot writes are published. `committed == capacity`
    /// iff every slot holds a record; for a partial flush it is the exact
    /// record count (claims past the capacity never commit).
    committed: AtomicU64,
    /// `FILLING` → `FULL` (last committer) → `DRAINED` (host) → `FILLING`
    /// (flip winner).
    state: AtomicU64,
    /// Two words per record: tag, payload.
    slots: Box<[AtomicU64]>,
}

impl Buffer {
    fn new(cap: usize, seq: u64, state: u64) -> Buffer {
        Buffer {
            packed: AtomicU64::new(seq),
            committed: AtomicU64::new(0),
            state: AtomicU64::new(state),
            slots: (0..cap * 2).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Doorbell state; touched only on the slow paths (buffer handover,
/// blocking producers, flush, shutdown).
#[derive(Default)]
struct Door {
    /// Flush tickets: `flush_asked` is taken by [`ChannelDev::flush`],
    /// `flush_done` is published by the receiver once everything pushed
    /// before the ask has been handed to the consumer.
    flush_asked: u64,
    flush_done: u64,
    shutdown: bool,
}

struct Inner {
    bufs: [Buffer; 2],
    /// Current fill epoch; `bufs[active & 1]` is the filling buffer.
    active: AtomicU64,
    demanded: AtomicU64,
    dropped: AtomicU64,
    delivered: AtomicU64,
    cap: u64,
    policy: Backpressure,
    door: Mutex<Door>,
    /// Host waits here for a full buffer, a flush ask, or shutdown.
    host_cv: Condvar,
    /// Blocking producers and flushers wait here.
    prod_cv: Condvar,
}

impl Inner {
    /// True when `bufs[epoch & 1]` is the `FULL` buffer of exactly
    /// `epoch` (and not a stale or re-sequenced incarnation).
    fn full_at(&self, epoch: u64) -> bool {
        let buf = &self.bufs[(epoch & 1) as usize];
        buf.state.load(Acquire) == FULL && (buf.packed.load(Acquire) >> 32) == (epoch & CLAIM_MASK)
    }
}

/// The producer half: cloneable, `Sync`, usable from any executor worker
/// thread.
#[derive(Clone)]
pub struct ChannelDev {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ChannelDev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelDev")
            .field("capacity", &self.inner.cap)
            .field("policy", &self.inner.policy)
            .finish()
    }
}

impl ChannelDev {
    /// Pushes one record. Blocks or drops on overflow per the channel's
    /// [`Backpressure`] policy.
    pub fn push(&self, tag: u64, payload: u64) -> PushOutcome {
        let x = &*self.inner;
        x.demanded.fetch_add(1, Relaxed);
        loop {
            let epoch = x.active.load(Acquire);
            let buf = &x.bufs[(epoch & 1) as usize];
            let packed = buf.packed.load(Acquire);
            if (packed >> 32) != (epoch & CLAIM_MASK) {
                // A flip winner is mid-publication; its sequencing store
                // lands within a few instructions.
                std::hint::spin_loop();
                continue;
            }
            let claimed = packed & CLAIM_MASK;
            if claimed < x.cap {
                if buf.packed.compare_exchange_weak(packed, packed + 1, AcqRel, Relaxed).is_err() {
                    continue;
                }
                let s = claimed as usize * 2;
                buf.slots[s].store(tag, Relaxed);
                buf.slots[s + 1].store(payload, Relaxed);
                if buf.committed.fetch_add(1, AcqRel) + 1 == x.cap {
                    buf.state.store(FULL, Release);
                    drop(x.door.lock().unwrap());
                    x.host_cv.notify_all();
                }
                return PushOutcome::Delivered;
            }
            // Overflow: every slot of the active buffer is claimed.
            let other = &x.bufs[(epoch.wrapping_add(1) & 1) as usize];
            if other.state.load(Acquire) == DRAINED {
                // Race to flip; the winner re-sequences the drained buffer.
                if x.active.compare_exchange(epoch, epoch + 1, AcqRel, Relaxed).is_ok() {
                    other.committed.store(0, Relaxed);
                    other.state.store(FILLING, Relaxed);
                    other.packed.store(seq_word(epoch + 1), Release);
                }
                continue;
            }
            match x.policy {
                Backpressure::DropCount => {
                    x.dropped.fetch_add(1, Relaxed);
                    obs::counter("chan.drop", 1);
                    return PushOutcome::Dropped;
                }
                Backpressure::Block => {
                    obs::counter("chan.doorbell_stall", 1);
                    let mut door = x.door.lock().unwrap();
                    while other.state.load(Acquire) != DRAINED
                        && x.active.load(Acquire) == epoch
                        && !door.shutdown
                    {
                        door = x.prod_cv.wait(door).unwrap();
                    }
                    if door.shutdown {
                        x.dropped.fetch_add(1, Relaxed);
                        obs::counter("chan.drop", 1);
                        return PushOutcome::Dropped;
                    }
                }
            }
        }
    }

    /// Quiesce barrier: hands every record pushed *before* this call to
    /// the consumer, including a partial flush of the active buffer, and
    /// returns once the consumer has seen them. Callers must guarantee no
    /// concurrent pushes (the device calls this after all CTA workers of a
    /// launch have joined).
    pub fn flush(&self) {
        let x = &*self.inner;
        let ticket = {
            let mut door = x.door.lock().unwrap();
            if door.shutdown {
                return;
            }
            door.flush_asked += 1;
            door.flush_asked
        };
        x.host_cv.notify_all();
        let mut door = x.door.lock().unwrap();
        while door.flush_done < ticket && !door.shutdown {
            door = x.prod_cv.wait(door).unwrap();
        }
    }

    /// Total records producers tried to push.
    pub fn demanded(&self) -> u64 {
        self.inner.demanded.load(Acquire)
    }

    /// Records dropped under [`Backpressure::DropCount`].
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Acquire)
    }

    /// Records handed to the consumer callback.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Acquire)
    }

    /// The per-buffer record capacity.
    pub fn capacity(&self) -> u64 {
        self.inner.cap
    }
}

/// The consumer half: owns the receiver thread. Dropping it flushes,
/// stops the receiver and joins it.
pub struct ChannelHost {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl ChannelHost {
    /// Builds a channel with two `cap_records`-record flush buffers and
    /// spawns the receiver thread, which invokes `consumer` once per
    /// drained batch (in stream order: batches arrive in epoch order, and
    /// records with equal tags in push order).
    pub fn spawn(
        cap_records: usize,
        policy: Backpressure,
        consumer: Consumer,
    ) -> (ChannelHost, ChannelDev) {
        let cap = cap_records.max(1);
        let inner = Arc::new(Inner {
            // Buffer 1 starts as an un-sequenced drained buffer; the first
            // flip (epoch 0 → 1) sequences it.
            bufs: [Buffer::new(cap, seq_word(0), FILLING), Buffer::new(cap, !0, DRAINED)],
            active: AtomicU64::new(0),
            demanded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            cap: cap as u64,
            policy,
            door: Mutex::new(Door::default()),
            host_cv: Condvar::new(),
            prod_cv: Condvar::new(),
        });
        let dev = ChannelDev { inner: inner.clone() };
        let drain_inner = inner.clone();
        let thread = std::thread::Builder::new()
            .name("nvbit-chan-drain".into())
            .spawn(move || drain_loop(&drain_inner, consumer))
            .expect("spawn channel receiver");
        (ChannelHost { inner, thread: Some(thread) }, dev)
    }

    /// A fresh producer handle.
    pub fn dev(&self) -> ChannelDev {
        ChannelDev { inner: self.inner.clone() }
    }

    /// See [`ChannelDev::flush`].
    pub fn flush(&self) {
        self.dev().flush()
    }

    /// Total records producers tried to push.
    pub fn demanded(&self) -> u64 {
        self.inner.demanded.load(Acquire)
    }

    /// Records dropped under [`Backpressure::DropCount`].
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Acquire)
    }

    /// Records handed to the consumer callback.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered.load(Acquire)
    }

    /// Flushes, stops the receiver thread and joins it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        {
            let mut door = self.inner.door.lock().unwrap();
            if door.shutdown {
                return;
            }
            door.shutdown = true;
        }
        self.inner.host_cv.notify_all();
        self.inner.prod_cv.notify_all();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChannelHost {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for ChannelHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelHost")
            .field("capacity", &self.inner.cap)
            .field("policy", &self.inner.policy)
            .finish()
    }
}

/// Drains one buffer's first `n` records into `batch`.
fn copy_out(buf: &Buffer, n: u64, batch: &mut Vec<Record>) {
    batch.clear();
    for i in 0..n as usize {
        batch.push(Record {
            tag: buf.slots[i * 2].load(Relaxed),
            payload: buf.slots[i * 2 + 1].load(Relaxed),
        });
    }
}

/// The receiver thread: drains `FULL` buffers in epoch order, answers
/// flush tickets with a partial drain of the active buffer, and exits on
/// shutdown (after a final drain, so shutdown is itself a flush).
fn drain_loop(x: &Inner, mut consumer: Consumer) {
    let mut next_drain: u64 = 0;
    let mut batch: Vec<Record> = Vec::with_capacity(x.cap as usize);
    loop {
        {
            let mut door = x.door.lock().unwrap();
            while !x.full_at(next_drain) && !door.shutdown && door.flush_asked == door.flush_done {
                door = x.host_cv.wait(door).unwrap();
            }
        }
        // Drain every consecutive full epoch. Marking `DRAINED` before the
        // consumer runs is the double-buffering: producers refill this
        // buffer while the consumer is still chewing on the batch.
        while x.full_at(next_drain) {
            let _span = obs::span("chan.drain");
            let buf = &x.bufs[(next_drain & 1) as usize];
            let n = buf.committed.load(Acquire);
            copy_out(buf, n, &mut batch);
            buf.state.store(DRAINED, Release);
            // Lock-then-notify so a producer that read `FULL` just before
            // our store either sees `DRAINED` on its locked re-check or
            // receives this wakeup.
            drop(x.door.lock().unwrap());
            x.prod_cv.notify_all();
            x.delivered.fetch_add(n, Relaxed);
            obs::counter("chan.flush", 1);
            obs::counter("chan.records", n);
            obs::counter("chan.bytes", n * RECORD_BYTES);
            consumer(&batch);
            next_drain += 1;
        }
        let (flush_pending, shutdown) = {
            let door = x.door.lock().unwrap();
            (door.flush_asked > door.flush_done, door.shutdown)
        };
        if !(flush_pending || shutdown) {
            continue;
        }
        // Flush/shutdown: producers are quiescent, so `committed` is the
        // exact record count of the active buffer. The partial drain keeps
        // the buffer's epoch: the next launch refills it from slot 0.
        let epoch = x.active.load(Acquire);
        if epoch == next_drain {
            let buf = &x.bufs[(epoch & 1) as usize];
            let n = buf.committed.load(Acquire);
            if n > 0 {
                let _span = obs::span("chan.drain");
                copy_out(buf, n, &mut batch);
                buf.committed.store(0, Relaxed);
                buf.packed.store(seq_word(epoch), Release);
                x.delivered.fetch_add(n, Relaxed);
                obs::counter("chan.flush", 1);
                obs::counter("chan.records", n);
                obs::counter("chan.bytes", n * RECORD_BYTES);
                consumer(&batch);
            }
        }
        {
            let mut door = x.door.lock().unwrap();
            door.flush_done = door.flush_asked;
        }
        x.prod_cv.notify_all();
        if shutdown {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn collecting(
        cap: usize,
        policy: Backpressure,
    ) -> (ChannelHost, ChannelDev, Arc<Mutex<Vec<Record>>>) {
        let store = Arc::new(Mutex::new(Vec::new()));
        let sink = store.clone();
        let (host, dev) = ChannelHost::spawn(
            cap,
            policy,
            Box::new(move |batch| sink.lock().unwrap().extend_from_slice(batch)),
        );
        (host, dev, store)
    }

    #[test]
    fn delivers_in_order_through_many_flips() {
        let (host, dev, store) = collecting(4, Backpressure::Block);
        for i in 0..100u64 {
            assert_eq!(dev.push(7, i), PushOutcome::Delivered);
        }
        dev.flush();
        let got = store.lock().unwrap().clone();
        assert_eq!(got.len(), 100);
        for (i, r) in got.iter().enumerate() {
            assert_eq!((r.tag, r.payload), (7, i as u64));
        }
        assert_eq!(host.demanded(), 100);
        assert_eq!(host.delivered(), 100);
        assert_eq!(host.dropped(), 0);
        host.shutdown();
    }

    #[test]
    fn partial_flush_then_refill_keeps_every_record() {
        let (host, dev, store) = collecting(8, Backpressure::Block);
        for i in 0..3u64 {
            dev.push(0, i);
        }
        dev.flush();
        assert_eq!(store.lock().unwrap().len(), 3);
        // The partially flushed buffer refills from slot 0 at the same
        // epoch; nothing is lost or duplicated.
        for i in 3..20u64 {
            dev.push(0, i);
        }
        dev.flush();
        let got = store.lock().unwrap().clone();
        assert_eq!(got.len(), 20);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.payload, i as u64);
        }
        host.shutdown();
    }

    /// A consumer stuck on its first batch freezes the drain, so exactly
    /// `3 * cap` records fit (the drained-then-refilled first buffer, the
    /// second buffer, and the first buffer again after one more flip);
    /// every later push must drop — deterministically, not racily.
    #[test]
    fn dropcount_reports_exact_drops_with_a_stuck_consumer() {
        let cap = 4usize;
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let store = Arc::new(Mutex::new(Vec::new()));
        let sink = store.clone();
        let mut first = true;
        let (host, dev) = ChannelHost::spawn(
            cap,
            Backpressure::DropCount,
            Box::new(move |batch| {
                if first {
                    first = false;
                    gate_rx.lock().unwrap().recv().unwrap();
                }
                sink.lock().unwrap().extend_from_slice(batch);
            }),
        );
        let total = 100u64;
        let mut delivered = 4u64;
        for i in 0..4u64 {
            assert_eq!(dev.push(1, i), PushOutcome::Delivered);
        }
        // Wait until the receiver has handed buffer A back (it bumps
        // `delivered` before entering the stuck consumer), so the fill
        // sequence below is deterministic.
        while dev.delivered() < 4 {
            std::thread::yield_now();
        }
        for i in 4..total {
            if dev.push(1, i) == PushOutcome::Delivered {
                delivered += 1;
            }
        }
        assert_eq!(delivered, 3 * cap as u64, "exactly three buffers' worth fit");
        assert_eq!(dev.dropped(), total - delivered);
        gate_tx.send(()).unwrap();
        dev.flush();
        assert_eq!(dev.delivered() + dev.dropped(), dev.demanded());
        assert_eq!(store.lock().unwrap().len(), delivered as usize);
        host.shutdown();
    }

    #[test]
    fn block_policy_is_lossless_under_a_slow_consumer() {
        let store = Arc::new(Mutex::new(Vec::new()));
        let sink = store.clone();
        let (host, dev) = ChannelHost::spawn(
            2,
            Backpressure::Block,
            Box::new(move |batch| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                sink.lock().unwrap().extend_from_slice(batch);
            }),
        );
        for i in 0..200u64 {
            assert_eq!(dev.push(0, i), PushOutcome::Delivered);
        }
        dev.flush();
        assert_eq!(host.dropped(), 0);
        assert_eq!(host.delivered(), 200);
        let got = store.lock().unwrap().clone();
        assert_eq!(got.iter().map(|r| r.payload).collect::<Vec<_>>(), (0..200).collect::<Vec<_>>());
        host.shutdown();
    }

    #[test]
    fn concurrent_streams_each_keep_push_order() {
        let (host, dev, store) = collecting(8, Backpressure::Block);
        let threads = 4u64;
        let per = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let dev = dev.clone();
                s.spawn(move || {
                    for i in 0..per {
                        assert_eq!(dev.push(t, i), PushOutcome::Delivered);
                    }
                });
            }
        });
        dev.flush();
        let got = store.lock().unwrap().clone();
        assert_eq!(got.len(), (threads * per) as usize);
        for t in 0..threads {
            let stream: Vec<u64> = got.iter().filter(|r| r.tag == t).map(|r| r.payload).collect();
            assert_eq!(stream, (0..per).collect::<Vec<_>>(), "stream {t} out of order");
        }
        assert_eq!(host.delivered(), threads * per);
        host.shutdown();
    }

    #[test]
    fn flush_on_an_empty_channel_returns() {
        let (host, dev, store) = collecting(4, Backpressure::Block);
        dev.flush();
        dev.flush();
        assert!(store.lock().unwrap().is_empty());
        assert_eq!(host.demanded(), 0);
        host.shutdown();
    }

    #[test]
    fn accounting_is_exact_under_contention() {
        let (host, dev, _store) = collecting(8, Backpressure::DropCount);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let dev = dev.clone();
                s.spawn(move || {
                    for i in 0..2000u64 {
                        dev.push(t, i);
                    }
                });
            }
        });
        dev.flush();
        assert_eq!(host.demanded(), 8000);
        assert_eq!(host.delivered() + host.dropped(), host.demanded());
        host.shutdown();
    }
}
