//! Pipeline observability: per-thread event rings, span guards, named
//! counters and a report aggregator with JSON / Chrome-trace export.
//!
//! The instrumentation pipeline (driver interposition → lifting → code
//! generation → execution) is itself instrumented with this module, the
//! same way production DBI frameworks expose their own phase costs
//! (paper §7, Figs. 9–11 measure exactly this decomposition). Three
//! primitives cover the whole surface:
//!
//! * [`span`] — a RAII guard timing one phase (`obs::span("lift")`);
//! * [`counter`] — a named monotonic counter (`obs::counter("decode.hit", n)`);
//! * [`Report::capture`] — drains every thread's ring into per-phase
//!   totals and exports a JSON summary ([`Report::to_json`]) or Chrome
//!   `trace_event` JSON ([`Report::to_chrome_trace`]) loadable in
//!   `chrome://tracing` and Perfetto.
//!
//! # Overhead contract
//!
//! Collection is **off by default**. Every hook first checks one atomic
//! flag ([`enabled`]) and returns immediately when it is clear — the
//! disabled cost is a single relaxed load plus a branch, verified by the
//! `obs_overhead` bench target. When enabled ([`set_enabled`] or the
//! `NVBIT_OBS=1` environment variable), recording an event is four
//! relaxed atomic stores into a fixed-size per-thread ring — no locks,
//! no allocation on the hot path (a thread's first event registers its
//! ring under a mutex, once). Rings hold [`RING_CAPACITY`] events; when
//! a ring wraps, the oldest events are overwritten and counted in
//! [`Report::dropped`].
//!
//! # Event model
//!
//! Events carry a monotonic nanosecond timestamp (from one process-wide
//! origin), an interned name, a kind (span begin/end or counter) and a
//! 64-bit value. Spans are paired per thread during [`Report::capture`];
//! nesting is derived from pairing order, so per-phase totals come in
//! both inclusive ([`Phase::total_ns`]) and exclusive ([`Phase::self_ns`])
//! flavors.
//!
//! ```
//! common::obs::reset();
//! common::obs::set_enabled(true);
//! {
//!     let _outer = common::obs::span("launch");
//!     let _inner = common::obs::span("lift");
//!     common::obs::counter("decode.hit", 3);
//! }
//! let report = common::obs::Report::capture();
//! common::obs::set_enabled(false);
//! assert_eq!(report.phases["launch"].count, 1);
//! assert_eq!(report.counters["decode.hit"].sum, 3);
//! // The trace export is valid JSON.
//! common::json::Json::parse(&report.to_chrome_trace().to_pretty()).unwrap();
//! ```

use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events each per-thread ring can hold before wrapping (oldest events
/// are overwritten; [`Report::dropped`] counts the loss).
pub const RING_CAPACITY: usize = 8192;

// ---------------------------------------------------------------------------
// Global enable flag (the one branch every hook pays).
// ---------------------------------------------------------------------------

/// 0 = unresolved (consult `NVBIT_OBS`), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether event collection is currently on. The first call resolves the
/// `NVBIT_OBS` environment variable (`1`/`true` turn collection on);
/// afterwards this is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("NVBIT_OBS").map(|v| v == "1" || v == "true").unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Turns event collection on or off (overrides `NVBIT_OBS`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Time origin.
// ---------------------------------------------------------------------------

static START: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide observability origin (the first
/// event ever recorded). Monotonic across threads.
#[must_use]
pub fn now_ns() -> u64 {
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Names: interned to u16 ids so ring slots stay plain atomics (no unsafe).
// ---------------------------------------------------------------------------

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

fn intern(name: &'static str) -> u16 {
    let mut names = NAMES.lock().unwrap();
    if let Some(i) = names.iter().position(|n| std::ptr::eq(*n as *const str, name) || *n == name) {
        return i as u16;
    }
    names.push(name);
    (names.len() - 1) as u16
}

fn name_table() -> Vec<&'static str> {
    NAMES.lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// The per-thread ring.
// ---------------------------------------------------------------------------

/// What one ring slot records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    SpanBegin,
    SpanEnd,
    Counter,
}

/// One event slot: a per-slot sequence number (even = stable, odd = mid
/// write; the high bits carry the wrap generation so a reader detects
/// overwritten slots) plus the event payload. All fields are atomics, so
/// a racing reader observes stale or torn *values*, never undefined
/// behaviour — and the sequence check discards torn tuples.
struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    /// `kind << 16 | name_id`.
    meta: AtomicU64,
    value: AtomicU64,
}

/// A single-writer event ring. The owning thread is the only writer;
/// [`Report::capture`] reads concurrently without locking.
struct Ring {
    /// Stable display id (Chrome-trace `tid`).
    tid: u64,
    /// Total events ever pushed (wraps happen modulo capacity).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(tid: u64) -> Ring {
        let slots = (0..RING_CAPACITY)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                ts: AtomicU64::new(0),
                meta: AtomicU64::new(0),
                value: AtomicU64::new(0),
            })
            .collect();
        Ring { tid, head: AtomicU64::new(0), slots }
    }

    /// Pushes one event (owner thread only).
    fn push(&self, ts: u64, kind: Kind, name_id: u16, value: u64) {
        let i = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(i % cap) as usize];
        let generation = i / cap + 1;
        // Mark mid-write (odd), fill, mark stable for this generation.
        slot.seq.store(2 * generation - 1, Ordering::Release);
        slot.ts.store(ts, Ordering::Relaxed);
        slot.meta.store(((kind as u64) << 16) | name_id as u64, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(2 * generation, Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Reads the currently visible window: the last `capacity` events (or
    /// fewer). Returns `(events, dropped)` where `dropped` counts events
    /// lost to wraparound or to a concurrent overwrite.
    fn read(&self) -> (Vec<(u64, Kind, u16, u64)>, u64) {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = h.saturating_sub(cap);
        let mut dropped = start;
        let mut out = Vec::with_capacity((h - start) as usize);
        for i in start..h {
            let slot = &self.slots[(i % cap) as usize];
            let generation = i / cap + 1;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != 2 * generation {
                dropped += 1; // overwritten by a later generation or mid-write
                continue;
            }
            let ts = slot.ts.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != 2 * generation {
                dropped += 1;
                continue;
            }
            let kind = match meta >> 16 {
                0 => Kind::SpanBegin,
                1 => Kind::SpanEnd,
                _ => Kind::Counter,
            };
            out.push((ts, kind, (meta & 0xffff) as u16, value));
        }
        (out, dropped)
    }
}

// ---------------------------------------------------------------------------
// Registry + thread-local state.
// ---------------------------------------------------------------------------

struct Registry {
    rings: Vec<Arc<Ring>>,
    next_tid: u64,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry { rings: Vec::new(), next_tid: 0 });

/// Bumped by [`reset`]; threads re-register their ring when their cached
/// epoch is stale. Read with one relaxed load per event.
static EPOCH: AtomicU64 = AtomicU64::new(0);

struct LocalState {
    ring: Option<Arc<Ring>>,
    epoch: u64,
    /// Per-thread `&'static str` pointer → interned id cache, so the hot
    /// path never takes the global name lock.
    names: Vec<(*const u8, u16)>,
}

thread_local! {
    static LOCAL: RefCell<LocalState> =
        const { RefCell::new(LocalState { ring: None, epoch: 0, names: Vec::new() }) };
}

fn record(kind: Kind, name: &'static str, value: u64) {
    let ts = now_ns();
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let name_id = match local.names.iter().find(|(p, _)| *p == name.as_ptr()) {
            Some((_, id)) => *id,
            None => {
                let id = intern(name);
                local.names.push((name.as_ptr(), id));
                id
            }
        };
        let global_epoch = EPOCH.load(Ordering::Relaxed);
        if local.ring.is_none() || local.epoch != global_epoch {
            // Cold path: first event of this thread, or first after a
            // reset — register a fresh ring under the registry lock.
            let mut reg = REGISTRY.lock().unwrap();
            let ring = Arc::new(Ring::new(reg.next_tid));
            reg.next_tid += 1;
            reg.rings.push(ring.clone());
            local.epoch = global_epoch;
            local.ring = Some(ring);
        }
        local.ring.as_ref().expect("registered above").push(ts, kind, name_id, value);
    });
}

/// Discards all recorded events and forgets dead threads' rings. Call
/// between measured runs; threads that are still recording re-register
/// their rings transparently on their next event.
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap();
    reg.rings.clear();
    EPOCH.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Public recording API.
// ---------------------------------------------------------------------------

/// Times a phase: records a begin event now and an end event when the
/// returned guard drops. A no-op (one branch) while collection is
/// disabled.
#[must_use = "the span ends when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    let active = enabled();
    if active {
        record(Kind::SpanBegin, name, 0);
    }
    SpanGuard { name, active }
}

/// Adds `delta` to the named counter. A no-op (one branch) while
/// collection is disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        record(Kind::Counter, name, delta);
    }
}

/// RAII guard returned by [`span`]; records the end event on drop.
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            record(Kind::SpanEnd, self.name, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

/// Aggregated timing of one phase (all spans with the same name).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phase {
    /// Completed spans.
    pub count: u64,
    /// Inclusive wall time (child spans counted in their parents).
    pub total_ns: u64,
    /// Exclusive wall time (child span time subtracted).
    pub self_ns: u64,
}

/// Aggregated state of one named counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterTotal {
    /// Number of [`counter`] calls.
    pub count: u64,
    /// Sum of the deltas.
    pub sum: u64,
}

/// One completed span occurrence (the raw material of the Chrome trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name.
    pub name: &'static str,
    /// Ring (thread) id the span ran on.
    pub tid: u64,
    /// Start, nanoseconds since the observability origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// One counter occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEvent {
    /// Counter name.
    pub name: &'static str,
    /// Ring (thread) id.
    pub tid: u64,
    /// Timestamp, nanoseconds since the origin.
    pub ts_ns: u64,
    /// Delta recorded.
    pub value: u64,
}

/// A drained snapshot of every thread's ring: per-phase totals, counter
/// sums and the raw span/counter events for trace export.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Aggregated spans keyed by phase name.
    pub phases: BTreeMap<&'static str, Phase>,
    /// Aggregated counters keyed by name.
    pub counters: BTreeMap<&'static str, CounterTotal>,
    /// Every completed span, in per-thread order.
    pub spans: Vec<SpanEvent>,
    /// Every counter event.
    pub counter_events: Vec<CounterEvent>,
    /// Events lost to ring wraparound (or mid-write skips).
    pub dropped: u64,
    /// Span begins without a matching end at capture time.
    pub open_spans: u64,
}

impl Report {
    /// Drains all registered rings into an aggregated report. Does not
    /// stop collection and may run while other threads record (their
    /// in-flight events are picked up by a later capture).
    #[must_use]
    pub fn capture() -> Report {
        let rings: Vec<Arc<Ring>> = REGISTRY.lock().unwrap().rings.clone();
        let names = name_table();
        let mut report = Report::default();
        for ring in rings {
            let (events, dropped) = ring.read();
            report.dropped += dropped;
            // Pair begin/end per thread; the stack also yields child time
            // for exclusive totals.
            let mut stack: Vec<(u16, u64, u64)> = Vec::new(); // (name, start, child_ns)
            for (ts, kind, name_id, value) in events {
                let Some(name) = names.get(name_id as usize).copied() else { continue };
                match kind {
                    Kind::SpanBegin => stack.push((name_id, ts, 0)),
                    Kind::SpanEnd => {
                        // Tolerate lost begins (wraparound): unwind to the
                        // matching name if present, else drop the end.
                        let Some(pos) = stack.iter().rposition(|(n, _, _)| *n == name_id) else {
                            continue;
                        };
                        report.open_spans += (stack.len() - pos - 1) as u64;
                        stack.truncate(pos + 1);
                        let (_, start, child_ns) = stack.pop().expect("found above");
                        let dur = ts.saturating_sub(start);
                        if let Some((_, _, parent_child)) = stack.last_mut() {
                            *parent_child += dur;
                        }
                        let phase = report.phases.entry(name).or_default();
                        phase.count += 1;
                        phase.total_ns += dur;
                        phase.self_ns += dur.saturating_sub(child_ns);
                        report.spans.push(SpanEvent {
                            name,
                            tid: ring.tid,
                            start_ns: start,
                            dur_ns: dur,
                        });
                    }
                    Kind::Counter => {
                        let c = report.counters.entry(name).or_default();
                        c.count += 1;
                        c.sum += value;
                        report.counter_events.push(CounterEvent {
                            name,
                            tid: ring.tid,
                            ts_ns: ts,
                            value,
                        });
                    }
                }
            }
            report.open_spans += stack.len() as u64;
        }
        report
    }

    /// The inclusive total of a phase, in nanoseconds (0 when absent).
    #[must_use]
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases.get(name).map(|p| p.total_ns).unwrap_or(0)
    }

    /// The sum of a counter (0 when absent).
    #[must_use]
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.counters.get(name).map(|c| c.sum).unwrap_or(0)
    }

    /// Renders the per-phase/per-counter summary as a JSON document
    /// (`common::json`), the shape written to `results/BENCH_*.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|(name, p)| {
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("count", Json::Num(p.count as f64)),
                        ("total_ns", Json::Num(p.total_ns as f64)),
                        ("self_ns", Json::Num(p.self_ns as f64)),
                    ]),
                )
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, c)| {
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("count", Json::Num(c.count as f64)),
                        ("sum", Json::Num(c.sum as f64)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("phases", Json::Obj(phases)),
            ("counters", Json::Obj(counters)),
            ("spans", Json::Num(self.spans.len() as f64)),
            ("dropped", Json::Num(self.dropped as f64)),
            ("open_spans", Json::Num(self.open_spans as f64)),
        ])
    }

    /// Renders the raw events in Chrome `trace_event` format: an object
    /// with a `traceEvents` array of `ph:"X"` complete events (spans) and
    /// `ph:"C"` counter samples, timestamps in microseconds — loadable in
    /// `chrome://tracing` and Perfetto.
    #[must_use]
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            events.push(Json::obj(vec![
                ("name", Json::Str(s.name.to_string())),
                ("cat", Json::Str("nvbit".into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::Num(s.start_ns as f64 / 1000.0)),
                ("dur", Json::Num(s.dur_ns as f64 / 1000.0)),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(s.tid as f64)),
            ]));
        }
        for c in &self.counter_events {
            events.push(Json::obj(vec![
                ("name", Json::Str(c.name.to_string())),
                ("ph", Json::Str("C".into())),
                ("ts", Json::Num(c.ts_ns as f64 / 1000.0)),
                ("pid", Json::Num(0.0)),
                ("tid", Json::Num(c.tid as f64)),
                ("args", Json::obj(vec![("value", Json::Num(c.value as f64))])),
            ]));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ns".into())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The obs tests share mutable global state (the enable flag and the
    /// ring registry), so they serialize on one lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = locked();
        reset();
        set_enabled(false);
        {
            let _s = span("launch");
            counter("decode.hit", 10);
        }
        let r = Report::capture();
        assert!(r.phases.is_empty(), "{:?}", r.phases);
        assert!(r.counters.is_empty());
        assert_eq!(r.dropped, 0);
    }

    #[test]
    fn spans_nest_and_split_inclusive_exclusive() {
        let _g = locked();
        reset();
        set_enabled(true);
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let r = Report::capture();
        set_enabled(false);
        let outer = &r.phases["outer"];
        let inner = &r.phases["inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns, "outer includes inner");
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns, "self excludes inner");
        assert_eq!(r.open_spans, 0);
    }

    #[test]
    fn spans_pair_independently_across_threads() {
        let _g = locked();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let _sp = span("worker");
                        counter("work.items", 2);
                    }
                });
            }
        });
        let r = Report::capture();
        set_enabled(false);
        assert_eq!(r.phases["worker"].count, 40);
        assert_eq!(r.counters["work.items"].sum, 80);
        assert_eq!(r.counters["work.items"].count, 40);
        // Four worker rings → four distinct tids among the span events.
        let tids: std::collections::HashSet<u64> = r.spans.iter().map(|s| s.tid).collect();
        assert_eq!(tids.len(), 4);
        assert_eq!(r.open_spans, 0);
    }

    #[test]
    fn ring_wraparound_drops_oldest_and_counts_them() {
        let _g = locked();
        reset();
        set_enabled(true);
        let n = (RING_CAPACITY + 100) as u64;
        for i in 0..n {
            counter("wrap.test", i);
        }
        let r = Report::capture();
        set_enabled(false);
        let c = &r.counters["wrap.test"];
        assert_eq!(c.count, RING_CAPACITY as u64, "ring keeps the newest window");
        assert_eq!(r.dropped, 100);
        // The survivors are the newest events: 100..n sum.
        let expect: u64 = (100..n).sum();
        assert_eq!(c.sum, expect);
    }

    #[test]
    fn reset_discards_events_and_reregisters_live_threads() {
        let _g = locked();
        reset();
        set_enabled(true);
        counter("before.reset", 1);
        reset();
        counter("after.reset", 1);
        let r = Report::capture();
        set_enabled(false);
        assert!(!r.counters.contains_key("before.reset"));
        assert_eq!(r.counters["after.reset"].sum, 1);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_schema() {
        let _g = locked();
        reset();
        set_enabled(true);
        {
            let _s = span("execute");
            counter("decode.miss", 7);
        }
        let r = Report::capture();
        set_enabled(false);
        // Golden schema check: round-trip through the JSON parser and
        // verify the trace_event fields Perfetto requires.
        let text = r.to_chrome_trace().to_pretty();
        let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        let span_ev = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .expect("one complete event");
        assert_eq!(span_ev.get("name").unwrap().as_str(), Some("execute"));
        assert!(span_ev.get("ts").unwrap().as_f64().is_some());
        assert!(span_ev.get("dur").unwrap().as_f64().is_some());
        assert!(span_ev.get("tid").unwrap().as_u64().is_some());
        let ctr_ev = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .expect("one counter event");
        assert_eq!(ctr_ev.get("args").unwrap().get("value").unwrap().as_u64(), Some(7));
        // The JSON summary parses too.
        let summary = Json::parse(&r.to_json().to_pretty()).unwrap();
        assert_eq!(
            summary.get("phases").unwrap().get("execute").unwrap().get("count").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn guard_spanning_a_disable_still_closes() {
        let _g = locked();
        reset();
        set_enabled(true);
        let guard = span("toggled");
        set_enabled(false);
        drop(guard); // end event must still record: the begin did
        let r = Report::capture();
        assert_eq!(r.phases["toggled"].count, 1);
        assert_eq!(r.open_spans, 0);
    }
}
