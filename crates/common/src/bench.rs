//! A wall-clock micro-bench harness for `harness = false` bench binaries.
//!
//! Replaces `criterion` for this workspace: each benchmark is timed for a
//! fixed number of samples after one warm-up run, and [`Group::finish`]
//! prints an aligned table of median/mean/min/max per benchmark. There is
//! no statistical outlier analysis — the bench binaries here compare
//! multiples (2× JIT overhead, 5× save/restore cost), not percent-level
//! regressions, and medians over ten samples resolve that comfortably.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing summary of one benchmark.
#[derive(Debug, Clone)]
pub struct Record {
    /// Benchmark name.
    pub name: String,
    /// Median sample time.
    pub median: Duration,
    /// Mean sample time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    sample_size: u32,
    records: Vec<Record>,
}

impl Group {
    /// Starts a group; results print when [`Group::finish`] runs.
    #[must_use]
    pub fn new(name: &str) -> Group {
        Group { name: name.to_string(), sample_size: 10, records: Vec::new() }
    }

    /// Sets how many timed samples each benchmark takes (default 10).
    pub fn sample_size(&mut self, n: u32) -> &mut Group {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times `body` (one warm-up call, then `sample_size` timed calls) and
    /// records the result under `name`.
    pub fn bench(&mut self, name: &str, mut body: impl FnMut()) -> &mut Group {
        let samples = env_samples().unwrap_or(self.sample_size);
        body(); // warm-up: touch caches, trigger lazy init
        let mut times: Vec<Duration> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                body();
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let total: Duration = times.iter().sum();
        self.records.push(Record {
            name: name.to_string(),
            median: times[times.len() / 2],
            mean: total / samples,
            min: times[0],
            max: times[times.len() - 1],
        });
        self
    }

    /// Prints the result table and returns the records for further
    /// analysis (speedup ratios, overhead factors).
    pub fn finish(&mut self) -> Vec<Record> {
        let name_w = self.records.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
        println!("\n== {} ==", self.name);
        println!(
            "{:name_w$}  {:>12}  {:>12}  {:>12}  {:>12}",
            "name", "median", "mean", "min", "max"
        );
        for r in &self.records {
            println!(
                "{:name_w$}  {:>12}  {:>12}  {:>12}  {:>12}",
                r.name,
                fmt_duration(r.median),
                fmt_duration(r.mean),
                fmt_duration(r.min),
                fmt_duration(r.max),
            );
        }
        std::mem::take(&mut self.records)
    }
}

impl Drop for Group {
    fn drop(&mut self) {
        if !self.records.is_empty() {
            self.finish();
        }
    }
}

/// `NVBIT_BENCH_SAMPLES` overrides every group's sample size (useful for
/// quick smoke runs of the bench binaries in CI).
fn env_samples() -> Option<u32> {
    std::env::var("NVBIT_BENCH_SAMPLES").ok()?.trim().parse().ok().filter(|n| *n > 0)
}

/// Renders a duration with a unit that keeps 3–4 significant digits.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Ratio of two medians, for overhead/speedup reporting.
#[must_use]
pub fn ratio(num: &Record, den: &Record) -> f64 {
    num.median.as_secs_f64() / den.median.as_secs_f64().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_all_samples() {
        let mut g = Group::new("t");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench("counting", || calls += 1);
        let records = g.finish();
        assert_eq!(calls, 4, "one warm-up plus three samples");
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert!(r.min <= r.median && r.median <= r.max);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(250)), "250 ns");
        assert_eq!(fmt_duration(Duration::from_micros(150)), "150.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(42)), "42.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn ratio_compares_medians() {
        let fast = Record {
            name: "fast".into(),
            median: Duration::from_millis(10),
            mean: Duration::from_millis(10),
            min: Duration::from_millis(9),
            max: Duration::from_millis(11),
        };
        let slow =
            Record { name: "slow".into(), median: Duration::from_millis(20), ..fast.clone() };
        let r = ratio(&slow, &fast);
        assert!((r - 2.0).abs() < 1e-9);
    }
}
