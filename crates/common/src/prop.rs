//! A shrink-free randomized property-test harness.
//!
//! Replaces `proptest` for this workspace: a property is a closure over a
//! seeded [`Rng`]; the harness runs it for a number of cases with
//! deterministic per-case seeds derived from the property name, so failures
//! reproduce across machines without a persisted regression file.
//!
//! Environment knobs:
//!
//! * `NVBIT_PROP_CASES=<n>` — override the case count of every property;
//! * `NVBIT_PROP_SEED=<u64>` — run each property once with exactly this
//!   seed (the failure message of a failing case prints the value to use).
//!
//! There is no shrinking: cases are generated small-to-moderate by
//! construction, and the failing seed replays the exact case.

use crate::rng::{splitmix64, Rng};

/// FNV-1a hash of the property name — the per-property seed base.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for `cases` deterministic random cases.
///
/// # Panics
///
/// Re-raises the body's panic after printing the reproducing seed.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut Rng)) {
    if let Some(seed) = env_u64("NVBIT_PROP_SEED") {
        let mut rng = Rng::seed_from_u64(seed);
        body(&mut rng);
        return;
    }
    let cases = env_u64("NVBIT_PROP_CASES").map_or(cases, |n| n as u32);
    let mut base = name_seed(name);
    for case in 0..cases {
        let seed = splitmix64(&mut base);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_u64(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases}; \
                 reproduce with NVBIT_PROP_SEED={seed}"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

fn env_u64(var: &str) -> Option<u64> {
    std::env::var(var).ok()?.trim().parse().ok()
}

/// A `Vec` of `len ∈ lens` elements drawn from `gen`.
pub fn vec_of<T>(
    rng: &mut Rng,
    lens: std::ops::Range<usize>,
    mut gen: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(lens);
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut first: Vec<u64> = Vec::new();
        run_cases("det", 5, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        run_cases("det", 5, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);

        let mut other: Vec<u64> = Vec::new();
        run_cases("other-name", 5, |rng| other.push(rng.next_u64()));
        assert_ne!(first, other, "different properties must see different cases");
    }

    #[test]
    fn failing_case_reports_and_reraises() {
        let result = std::panic::catch_unwind(|| {
            run_cases("always-fails", 3, |_rng| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn vec_of_respects_length_bounds() {
        run_cases("vec-lens", 20, |rng| {
            let v = vec_of(rng, 1..8, |r| r.next_u32());
            assert!((1..8).contains(&v.len()));
        });
    }
}
