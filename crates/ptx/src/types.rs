//! Scalar types of the virtual ISA.

/// A PTX scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtxType {
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 32-bit integer.
    S32,
    /// Untyped 32 bits.
    B32,
    /// 32-bit IEEE float.
    F32,
    /// Unsigned 64-bit integer.
    U64,
    /// Signed 64-bit integer.
    S64,
    /// Untyped 64 bits.
    B64,
    /// 64-bit IEEE float.
    F64,
    /// One-bit predicate.
    Pred,
}

impl PtxType {
    /// Size of a value of this type in bytes (predicates report 0: they live
    /// in predicate registers, not the general-purpose file).
    pub fn bytes(self) -> u32 {
        match self {
            PtxType::Pred => 0,
            PtxType::U32 | PtxType::S32 | PtxType::B32 | PtxType::F32 => 4,
            PtxType::U64 | PtxType::S64 | PtxType::B64 | PtxType::F64 => 8,
        }
    }

    /// True for the 64-bit types (which occupy an aligned register pair).
    pub fn is_wide(self) -> bool {
        self.bytes() == 8
    }

    /// True for the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, PtxType::F32 | PtxType::F64)
    }

    /// True for signed integer types.
    pub fn is_signed_int(self) -> bool {
        matches!(self, PtxType::S32 | PtxType::S64)
    }

    /// The type-suffix spelling (`u32`, `f64`, `pred`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            PtxType::U32 => "u32",
            PtxType::S32 => "s32",
            PtxType::B32 => "b32",
            PtxType::F32 => "f32",
            PtxType::U64 => "u64",
            PtxType::S64 => "s64",
            PtxType::B64 => "b64",
            PtxType::F64 => "f64",
            PtxType::Pred => "pred",
        }
    }

    /// Parses a type-suffix spelling.
    pub fn from_suffix(s: &str) -> Option<PtxType> {
        Some(match s {
            "u32" => PtxType::U32,
            "s32" => PtxType::S32,
            "b32" => PtxType::B32,
            "f32" => PtxType::F32,
            "u64" => PtxType::U64,
            "s64" => PtxType::S64,
            "b64" => PtxType::B64,
            "f64" => PtxType::F64,
            "pred" => PtxType::Pred,
            _ => return None,
        })
    }
}

impl std::fmt::Display for PtxType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_suffixes() {
        assert_eq!(PtxType::U32.bytes(), 4);
        assert_eq!(PtxType::F64.bytes(), 8);
        assert!(PtxType::F64.is_wide());
        assert!(!PtxType::F32.is_wide());
        assert!(PtxType::F32.is_float());
        assert!(PtxType::S32.is_signed_int());
        for t in [
            PtxType::U32,
            PtxType::S32,
            PtxType::B32,
            PtxType::F32,
            PtxType::U64,
            PtxType::S64,
            PtxType::B64,
            PtxType::F64,
            PtxType::Pred,
        ] {
            assert_eq!(PtxType::from_suffix(t.suffix()), Some(t));
        }
        assert_eq!(PtxType::from_suffix("u16"), None);
    }
}
