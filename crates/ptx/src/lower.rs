//! Backend: instruction selection, reconvergence placement and encoding.
//!
//! The pipeline per function:
//!
//! 1. **Return merging** — device functions with early `ret`s are rewritten
//!    to branch to a single return block, so the warp reconverges before the
//!    hardware return-address stack pops.
//! 2. **CFG + dominance analyses** over the PTX body.
//! 3. **Reconvergence planning** — for each potentially-divergent branch, an
//!    `SSY` push site and a shared `SYNC` landing block before the
//!    reconvergence point are planned (forward regions and natural loops).
//!    Branches whose region does not fit a supported shape simply get no
//!    `SSY`: the SIMT-stack runtime discipline stays *correct* without it,
//!    the warp just reconverges later (see `gpu` crate docs).
//! 4. **Register allocation** ([`crate::regalloc`]).
//! 5. **Selection** of SASS per PTX instruction, with immediate legalization
//!    against the narrower `Enc64` fields using the reserved scratch pair
//!    `R2:R3`.
//! 6. **Encoding** via the target family codec, with branch fix-ups and call
//!    relocations.

use crate::ast::*;
use crate::cfg::{ipostdom, FnCfg, Linear};
use crate::regalloc::{self, Allocation, Loc};
use crate::types::PtxType;
use crate::{CompiledFunction, LineInfo, ParamInfo, PtxError, Reloc, Result, PARAM_BASE};
use sass::{
    codec::codec_for, Arch, Guard, Instruction, Mods, Op, Operand, Pred, Reg, SubOp, Width,
};
use std::collections::{HashMap, HashSet};

use sass::op::IType;

/// Computes the stable 22-bit id of a proxy instruction name (paper §6.3's
/// hypothetical instructions). Tools match `PROXY` instructions by comparing
/// their immediate operand with this value.
pub fn proxy_id(name: &str) -> i64 {
    // FNV-1a, folded to 22 bits so it encodes on both families.
    let mut h: u32 = 0x811c9dc5;
    for b in name.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    ((h ^ (h >> 22)) & 0x3f_ffff) as i64
}

/// Compiles one function to encoded SASS plus metadata.
///
/// # Errors
///
/// See [`crate::compile_module`].
pub fn compile_function(f: &Function, arch: Arch) -> Result<CompiledFunction> {
    compile_function_abi(f, arch, crate::Abi::Standard)
}

/// [`compile_function`] under an explicit calling convention.
///
/// # Errors
///
/// See [`crate::compile_module_abi`].
pub fn compile_function_abi(f: &Function, arch: Arch, abi: crate::Abi) -> Result<CompiledFunction> {
    let f = merge_returns(f);
    let lin = Linear::of(&f);
    let cfg = FnCfg::build(&lin);
    let alloc = regalloc::allocate_abi(&f, &lin, &cfg, abi)?;
    let plan = plan_reconvergence(&lin, &cfg);
    let mut e = Emitter::new(&f, arch, &alloc, &lin, &cfg, plan)?;
    e.run()?;
    e.finish()
}

/// Rewrites multiple/early `ret`s into branches to a single return block.
fn merge_returns(f: &Function) -> Function {
    let is_ret = |s: &Statement| matches!(s, Statement::Instr(i) if matches!(i.op, PtxOp::Ret | PtxOp::RetVal{..}));
    let ret_count = f.body.iter().filter(|s| is_ret(s)).count();
    let last_is_ret = f.body.last().map(is_ret).unwrap_or(false);
    if ret_count == 0 || (ret_count == 1 && last_is_ret) {
        return f.clone();
    }
    let merge_label = "$ret_merge".to_string();
    let ret_ty = f.ret.unwrap_or(crate::types::PtxType::B32);
    // Early `ret.val %r` sites stash their value in a hidden register so the
    // single merged return block can materialize it into the ABI register.
    let retval_tmp = "$retval".to_string();
    let mut uses_retval = false;
    let mut body = Vec::with_capacity(f.body.len() + 3);
    for s in &f.body {
        match s {
            Statement::Instr(i) if matches!(i.op, PtxOp::Ret) => {
                body.push(Statement::Instr(PtxInstr {
                    guard: i.guard.clone(),
                    op: PtxOp::Bra { target: merge_label.clone() },
                }));
            }
            Statement::Instr(i) => {
                if let PtxOp::RetVal { src } = &i.op {
                    uses_retval = true;
                    body.push(Statement::Instr(PtxInstr {
                        guard: i.guard.clone(),
                        op: PtxOp::Mov {
                            ty: ret_ty,
                            dst: retval_tmp.clone(),
                            src: Some(Src::Reg(src.clone())),
                            special: None,
                            shared_addr: None,
                        },
                    }));
                    body.push(Statement::Instr(PtxInstr {
                        guard: i.guard.clone(),
                        op: PtxOp::Bra { target: merge_label.clone() },
                    }));
                } else {
                    body.push(s.clone());
                }
            }
            other => body.push(other.clone()),
        }
    }
    body.push(Statement::Label(merge_label));
    if uses_retval {
        body.push(Statement::Instr(PtxInstr::new(PtxOp::RetVal { src: retval_tmp.clone() })));
    } else {
        body.push(Statement::Instr(PtxInstr::new(PtxOp::Ret)));
    }
    let mut out = f.clone();
    if uses_retval {
        out.regs.insert(retval_tmp, ret_ty);
    }
    out.body = body;
    out
}

/// The reconvergence plan for one function.
#[derive(Debug, Default)]
struct ReconvPlan {
    /// Blocks receiving `SSY` pushes before their terminator, with the
    /// reconvergence blocks to push (outermost first).
    ssy_at: HashMap<usize, Vec<usize>>,
    /// Reconvergence blocks that receive a `SYNC` landing pad.
    sync_before: HashSet<usize>,
    /// For each reconvergence block `d`, the set of blocks whose branches to
    /// `d` must be retargeted to the landing pad.
    region_of: HashMap<usize, HashSet<usize>>,
}

fn plan_reconvergence(lin: &Linear<'_>, cfg: &FnCfg) -> ReconvPlan {
    let mut plan = ReconvPlan::default();
    let ipd = ipostdom(cfg);
    let nb = cfg.blocks.len();

    let reach_without = |from: &[usize], avoid: usize| -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut stack: Vec<usize> = from.iter().copied().filter(|&b| b != avoid).collect();
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            for &s in &cfg.blocks[b].succs {
                if s != avoid && !seen.contains(&s) {
                    stack.push(s);
                }
            }
        }
        seen
    };

    let has_ret = |b: usize| {
        (cfg.blocks[b].start..cfg.blocks[b].end)
            .any(|i| matches!(lin.instrs[i].op, PtxOp::Ret | PtxOp::RetVal { .. }))
    };

    // Candidate branches, largest region first so that nested regions are
    // planned after enclosing ones (claim order favours the outer join).
    let mut candidates: Vec<(usize, usize, HashSet<usize>)> = Vec::new();
    #[allow(clippy::needless_range_loop)] // b is a block id, not just an index
    for b in 0..nb {
        let term = cfg.blocks[b].end - 1;
        let i = lin.instrs[term];
        let is_cond_branch = matches!(i.op, PtxOp::Bra { .. }) && i.guard.is_some();
        if !is_cond_branch {
            continue;
        }
        let Some(d) = ipd[b] else { continue };
        let region = reach_without(&cfg.blocks[b].succs, d);
        candidates.push((b, d, region));
    }
    candidates.sort_by_key(|(_, _, r)| std::cmp::Reverse(r.len()));

    'cand: for (b, d, region) in candidates {
        if plan.sync_before.contains(&d) {
            continue; // join already claimed
        }
        // All region exits must go to `d` (or terminate), and no returns.
        for &x in &region {
            if has_ret(x) {
                continue 'cand;
            }
            for &s in &cfg.blocks[x].succs {
                if s != d && !region.contains(&s) {
                    continue 'cand;
                }
            }
        }
        // The block laid out immediately before `d` must not accidentally
        // fall into the landing pad from outside the region.
        if d > 0 {
            let layout_pred = d - 1;
            #[allow(clippy::nonminimal_bool)] // mirrors the prose condition
            let falls_through = {
                let t = cfg.blocks[layout_pred].end - 1;
                !matches!(lin.instrs[t].op, PtxOp::Ret | PtxOp::RetVal { .. } | PtxOp::Exit)
                    && !(matches!(lin.instrs[t].op, PtxOp::Bra { .. })
                        && lin.instrs[t].guard.is_none())
            };
            if falls_through && !region.contains(&layout_pred) && layout_pred != b {
                continue 'cand;
            }
        } else {
            continue 'cand;
        }

        // Determine the SSY site.
        let ssy_block = if !region.contains(&b) {
            b // forward divergence: push right before the branch
        } else {
            // Loop shape: find the unique region-entry block and its unique
            // outside predecessor with an unconditional edge.
            let entries: Vec<usize> = region
                .iter()
                .copied()
                .filter(|&x| cfg.blocks[x].preds.iter().any(|p| !region.contains(p)))
                .collect();
            if entries.len() != 1 {
                continue 'cand;
            }
            let entry = entries[0];
            let outside: Vec<usize> =
                cfg.blocks[entry].preds.iter().copied().filter(|p| !region.contains(p)).collect();
            if outside.len() != 1 {
                continue 'cand;
            }
            let p = outside[0];
            if cfg.blocks[p].succs != vec![entry] {
                continue 'cand;
            }
            p
        };

        plan.ssy_at.entry(ssy_block).or_default().push(d);
        plan.sync_before.insert(d);
        let mut r = region;
        r.insert(b);
        plan.region_of.insert(d, r);
    }
    plan
}

/// A source register or legal immediate after legalization.
#[derive(Debug, Clone, Copy)]
enum SVal {
    R(Reg),
    I(i64),
}

impl SVal {
    fn operand(self) -> Operand {
        match self {
            SVal::R(r) => Operand::Reg(r),
            SVal::I(v) => Operand::Imm(v),
        }
    }
}

/// Immediates up to this magnitude fit every operand slot on both families.
const IMM_SAFE: i64 = 1 << 17;

/// Scratch registers reserved for the lowering (an even pair).
const SCRATCH_LO: Reg = Reg(2);
#[allow(dead_code)]
const SCRATCH_HI: Reg = Reg(3);
/// The NVBit device-API frame pointer.
const NVBIT_FRAME: Reg = Reg(0);
/// First ABI argument register.
const ARG_BASE: u8 = 4;

struct Emitter<'a> {
    f: &'a Function,
    arch: Arch,
    isize: i64,
    alloc: &'a Allocation,
    lin: &'a Linear<'a>,
    cfg: &'a FnCfg,
    plan: ReconvPlan,
    out: Vec<Instruction>,
    /// (out index, block label id) pairs to fix up. Label ids: block id, or
    /// `nb + d` for the SYNC landing pad of block `d`.
    fixups: Vec<(usize, usize)>,
    labels: HashMap<usize, usize>,
    relocs: Vec<Reloc>,
    related: Vec<String>,
    line_table: Vec<LineInfo>,
    params: Vec<ParamInfo>,
    param_offset: HashMap<String, u32>,
    shared_offsets: HashMap<String, u32>,
    shared_size: u32,
    frame_bytes: u32,
    uses_reg_api: bool,
}

impl<'a> Emitter<'a> {
    fn new(
        f: &'a Function,
        arch: Arch,
        alloc: &'a Allocation,
        lin: &'a Linear<'a>,
        cfg: &'a FnCfg,
        plan: ReconvPlan,
    ) -> Result<Emitter<'a>> {
        // Kernel parameter layout.
        let mut params = Vec::new();
        let mut param_offset = HashMap::new();
        if f.kind == FunctionKind::Entry {
            let mut off = 0u32;
            for (name, ty) in &f.params {
                let size = ty.bytes().max(4);
                off = off.div_ceil(size) * size; // align to own size
                params.push(ParamInfo { name: name.clone(), size, offset: off });
                param_offset.insert(name.clone(), off);
                off += size;
            }
        }
        // Shared-memory layout.
        let mut shared_offsets = HashMap::new();
        let mut soff = 0u32;
        for s in &f.shared {
            let a = s.align.max(4);
            soff = soff.div_ceil(a) * a;
            shared_offsets.insert(s.name.clone(), soff);
            soff += s.bytes;
        }
        let frame_bytes = (alloc.used_callee_saved.len() as u32) * 4;
        Ok(Emitter {
            f,
            arch,
            isize: arch.instruction_size() as i64,
            alloc,
            lin,
            cfg,
            plan,
            out: Vec::new(),
            fixups: Vec::new(),
            labels: HashMap::new(),
            relocs: Vec::new(),
            related: Vec::new(),
            line_table: Vec::new(),
            params,
            param_offset,
            shared_offsets,
            shared_size: soff,
            frame_bytes,
            uses_reg_api: false,
        })
    }

    fn sem(&self, reason: String) -> PtxError {
        PtxError::Semantic { function: self.f.name.clone(), reason }
    }

    fn push(&mut self, i: Instruction) {
        self.out.push(i);
    }

    fn gpr_of(&self, name: &str) -> Result<Reg> {
        match self.alloc.map.get(name) {
            Some(Loc::Gpr(r)) | Some(Loc::Pair(r)) => Ok(Reg(*r)),
            Some(Loc::Pred(_)) => Err(self.sem(format!("`{name}` is a predicate, expected GPR"))),
            None => Err(self.sem(format!("`{name}` has no location"))),
        }
    }

    fn pred_of(&self, name: &str) -> Result<Pred> {
        match self.alloc.map.get(name) {
            Some(Loc::Pred(p)) => Ok(Pred(*p)),
            _ => Err(self.sem(format!("`{name}` is not a predicate"))),
        }
    }

    fn guard_of(&self, i: &PtxInstr) -> Result<Guard> {
        match &i.guard {
            None => Ok(Guard::ALWAYS),
            Some(g) => Ok(Guard { pred: self.pred_of(&g.reg)?, negated: g.negated }),
        }
    }

    /// Resolves a `Src` to a register or in-range immediate, materializing
    /// oversized immediates into the scratch register (32-bit ops).
    fn sval32(&mut self, s: &Src, guard: Guard) -> Result<SVal> {
        match s {
            Src::Reg(r) => Ok(SVal::R(self.gpr_of(r)?)),
            Src::Imm(v) if (-IMM_SAFE..IMM_SAFE).contains(v) => Ok(SVal::I(*v)),
            Src::Imm(v) => {
                self.push(
                    Instruction::new(
                        Op::Mov32i,
                        vec![Operand::Reg(SCRATCH_LO), Operand::Imm((*v as i32) as i64)],
                    )
                    .with_guard(guard),
                );
                Ok(SVal::R(SCRATCH_LO))
            }
        }
    }

    /// Resolves a 64-bit `Src` to a register pair or in-range immediate
    /// (wide ops sign-extend immediates).
    fn sval64(&mut self, s: &Src, guard: Guard) -> Result<SVal> {
        match s {
            Src::Reg(r) => Ok(SVal::R(self.gpr_of(r)?)),
            Src::Imm(v) if (-IMM_SAFE..IMM_SAFE).contains(v) => Ok(SVal::I(*v)),
            Src::Imm(v) => {
                self.mov64_imm(SCRATCH_LO, *v, guard);
                Ok(SVal::R(SCRATCH_LO))
            }
        }
    }

    fn mov64_imm(&mut self, lo: Reg, v: i64, guard: Guard) {
        let lo_bits = (v as u32 as i32) as i64;
        let hi_bits = ((v >> 32) as u32 as i32) as i64;
        self.push(
            Instruction::new(Op::Mov32i, vec![Operand::Reg(lo), Operand::Imm(lo_bits)])
                .with_guard(guard),
        );
        self.push(
            Instruction::new(Op::Mov32i, vec![Operand::Reg(Reg(lo.0 + 1)), Operand::Imm(hi_bits)])
                .with_guard(guard),
        );
    }

    /// Forces a `Src` into a register (for all-register forms like `IMAD`).
    fn force_reg32(&mut self, s: &Src, guard: Guard) -> Result<Reg> {
        match s {
            Src::Reg(r) => self.gpr_of(r),
            Src::Imm(v) => {
                self.push(
                    Instruction::new(
                        Op::Mov32i,
                        vec![Operand::Reg(SCRATCH_LO), Operand::Imm((*v as i32) as i64)],
                    )
                    .with_guard(guard),
                );
                Ok(SCRATCH_LO)
            }
        }
    }

    /// Emits everything and resolves fix-ups.
    fn run(&mut self) -> Result<()> {
        self.prologue()?;
        let cfg = self.cfg;
        let nb = cfg.blocks.len();
        for b in 0..nb {
            if self.plan.sync_before.contains(&b) {
                // The SYNC landing pad, labelled nb + b.
                self.labels.insert(nb + b, self.out.len());
                let mods = if self.arch.abi_version() >= 2 {
                    Mods { barrier: 1, ..Mods::default() }
                } else {
                    Mods::default()
                };
                self.push(Instruction::new(Op::Sync, vec![]).with_mods(mods));
            }
            self.labels.insert(b, self.out.len());
            let block = &cfg.blocks[b];
            let term = block.end.saturating_sub(1);
            for idx in block.start..block.end {
                // SSY pushes go immediately before the block's terminator
                // (or at the very end if the block falls through — handled
                // below since the terminator of a fallthrough block is just
                // its last instruction).
                let is_term = idx == term;
                if is_term {
                    if let Some(ds) = self.plan.ssy_at.get(&b).cloned() {
                        let terminator_is_branch = matches!(
                            self.lin.instrs[idx].op,
                            PtxOp::Bra { .. } | PtxOp::Ret | PtxOp::RetVal { .. } | PtxOp::Exit
                        );
                        if terminator_is_branch {
                            for d in &ds {
                                self.emit_ssy(*d);
                            }
                            self.instr(b, idx)?;
                        } else {
                            self.instr(b, idx)?;
                            for d in &ds {
                                self.emit_ssy(*d);
                            }
                        }
                        continue;
                    }
                }
                self.instr(b, idx)?;
            }
        }
        // Resolve branch fix-ups.
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = *self
                .labels
                .get(&label)
                .ok_or_else(|| self.sem(format!("unresolved label id {label}")))?;
            let off = (target as i64 - (at as i64 + 1)) * self.isize;
            self.out[at].set_rel_target(off);
        }
        Ok(())
    }

    fn emit_ssy(&mut self, d: usize) {
        let mods = if self.arch.abi_version() >= 2 {
            Mods { barrier: 1, ..Mods::default() }
        } else {
            Mods::default()
        };
        let at = self.out.len();
        self.push(Instruction::new(Op::Ssy, vec![Operand::Rel(0)]).with_mods(mods));
        // SSY targets the join block itself (after the landing pad).
        self.fixups.push((at, d));
    }

    fn prologue(&mut self) -> Result<()> {
        if self.frame_bytes > 0 {
            self.push(Instruction::new(
                Op::Iadd,
                vec![
                    Operand::Reg(Reg::SP),
                    Operand::Reg(Reg::SP),
                    Operand::Imm(-(self.frame_bytes as i64)),
                ],
            ));
            let saved = self.alloc.used_callee_saved.clone();
            for (slot, &r) in saved.iter().enumerate() {
                self.push(Instruction::new(
                    Op::Stl,
                    vec![
                        Operand::MRef { base: Reg::SP, offset: (slot as i32) * 4 },
                        Operand::Reg(Reg(r)),
                    ],
                ));
            }
        }
        // Device-function arguments: move ABI registers into their allocated
        // homes (the allocator does not pre-colour).
        if self.f.kind == FunctionKind::Device {
            let mut slot = ARG_BASE;
            let mut moves: Vec<(Reg, Reg, bool)> = Vec::new();
            for (name, ty) in &self.f.params {
                let wide = ty.is_wide();
                if wide && !slot.is_multiple_of(2) {
                    slot += 1;
                }
                let dst = self.gpr_of(name)?;
                moves.push((dst, Reg(slot), wide));
                slot += if wide { 2 } else { 1 };
            }
            self.parallel_moves(&moves);
        }
        Ok(())
    }

    /// Emits a set of register moves that may overlap, resolving cycles via
    /// the scratch register.
    fn parallel_moves(&mut self, moves: &[(Reg, Reg, bool)]) {
        // Expand pairs into 32-bit unit moves.
        let mut units: Vec<(u8, u8)> = Vec::new();
        for (dst, src, wide) in moves {
            units.push((dst.0, src.0));
            if *wide {
                units.push((dst.0 + 1, src.0 + 1));
            }
        }
        units.retain(|(d, s)| d != s);
        // Iteratively emit moves whose destination is not a pending source.
        let mut emitted = vec![false; units.len()];
        loop {
            let mut progress = false;
            for i in 0..units.len() {
                if emitted[i] {
                    continue;
                }
                let (d, _) = units[i];
                let blocking =
                    units.iter().enumerate().any(|(j, (_, s2))| !emitted[j] && j != i && *s2 == d);
                if !blocking {
                    let (d, s) = units[i];
                    self.push(Instruction::new(
                        Op::Mov,
                        vec![Operand::Reg(Reg(d)), Operand::Reg(Reg(s))],
                    ));
                    emitted[i] = true;
                    progress = true;
                }
            }
            if emitted.iter().all(|&e| e) {
                break;
            }
            if !progress {
                // A cycle: rotate through scratch.
                let i = emitted.iter().position(|&e| !e).unwrap();
                let (_d, s) = units[i];
                self.push(Instruction::new(
                    Op::Mov,
                    vec![Operand::Reg(SCRATCH_LO), Operand::Reg(Reg(s))],
                ));
                // Redirect every pending read of `d`'s old value... the value
                // we must preserve is `s`'s (now in scratch).
                for (j, (_, s2)) in units.iter_mut().enumerate() {
                    if !emitted[j] && *s2 == s {
                        *s2 = SCRATCH_LO.0;
                    }
                }
            }
        }
    }

    fn epilogue_and_ret(&mut self, guard: Guard) {
        for (slot, &r) in self.alloc.used_callee_saved.clone().iter().enumerate() {
            self.push(
                Instruction::new(
                    Op::Ldl,
                    vec![
                        Operand::Reg(Reg(r)),
                        Operand::MRef { base: Reg::SP, offset: (slot as i32) * 4 },
                    ],
                )
                .with_guard(guard),
            );
        }
        if self.frame_bytes > 0 {
            self.push(
                Instruction::new(
                    Op::Iadd,
                    vec![
                        Operand::Reg(Reg::SP),
                        Operand::Reg(Reg::SP),
                        Operand::Imm(self.frame_bytes as i64),
                    ],
                )
                .with_guard(guard),
            );
        }
        self.push(Instruction::new(Op::Ret, vec![]).with_guard(guard));
    }

    /// Emits one PTX instruction.
    fn instr(&mut self, block: usize, idx: usize) -> Result<()> {
        let lin = self.lin;
        let i = lin.instrs[idx];
        let loc = lin.loc[idx].clone();
        let g = self.guard_of(i)?;
        let start_len = self.out.len();
        self.select(block, i, g)?;
        // Attach line info to the first instruction this PTX op produced.
        if let Some((file, line)) = loc {
            if self.out.len() > start_len {
                self.line_table.push(LineInfo { instr_index: start_len, file, line });
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn select(&mut self, block: usize, i: &PtxInstr, g: Guard) -> Result<()> {
        use PtxOp as P;
        match &i.op {
            P::LdParam { ty, dst, param, offset } => {
                let base = *self
                    .param_offset
                    .get(param)
                    .ok_or_else(|| self.sem(format!("unknown parameter `{param}`")))?;
                let d = self.gpr_of(dst)?;
                let off = (PARAM_BASE + base + offset) as u16;
                let width = if ty.is_wide() { Width::B64 } else { Width::B32 };
                self.push(
                    Instruction::new(
                        Op::Ldc,
                        vec![
                            Operand::Reg(d),
                            Operand::CBank { bank: 0, base: Reg::RZ, offset: off },
                        ],
                    )
                    .with_mods(Mods { width, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Ld { space, ty, dst, addr } => {
                let d = self.gpr_of(dst)?;
                let (op, base, off) = self.mem_operand(*space, addr, g, false)?;
                let width = if ty.is_wide() { Width::B64 } else { Width::B32 };
                self.push(
                    Instruction::new(
                        op,
                        vec![Operand::Reg(d), Operand::MRef { base, offset: off }],
                    )
                    .with_mods(Mods { width, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::St { space, ty, addr, src } => {
                let s = self.gpr_of(src)?;
                let (op, base, off) = self.mem_operand(*space, addr, g, true)?;
                let width = if ty.is_wide() { Width::B64 } else { Width::B32 };
                self.push(
                    Instruction::new(
                        op,
                        vec![Operand::MRef { base, offset: off }, Operand::Reg(s)],
                    )
                    .with_mods(Mods { width, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Mov { ty, dst, src, special, shared_addr } => {
                let d = self.gpr_of(dst)?;
                if let Some(sp) = special {
                    self.push(
                        Instruction::new(
                            Op::S2r,
                            vec![Operand::Reg(d), Operand::SReg(sp.to_sass())],
                        )
                        .with_guard(g),
                    );
                } else if let Some(name) = shared_addr {
                    let off = *self
                        .shared_offsets
                        .get(name)
                        .ok_or_else(|| self.sem(format!("unknown shared variable `{name}`")))?;
                    self.push(
                        Instruction::new(
                            Op::Mov32i,
                            vec![Operand::Reg(d), Operand::Imm(off as i64)],
                        )
                        .with_guard(g),
                    );
                } else {
                    match src.as_ref().unwrap() {
                        Src::Reg(r) => {
                            let s = self.gpr_of(r)?;
                            self.push(
                                Instruction::new(Op::Mov, vec![Operand::Reg(d), Operand::Reg(s)])
                                    .with_guard(g),
                            );
                            if ty.is_wide() {
                                self.push(
                                    Instruction::new(
                                        Op::Mov,
                                        vec![
                                            Operand::Reg(Reg(d.0 + 1)),
                                            Operand::Reg(Reg(s.0 + 1)),
                                        ],
                                    )
                                    .with_guard(g),
                                );
                            }
                        }
                        Src::Imm(v) => {
                            if ty.is_wide() {
                                self.mov64_imm(d, *v, g);
                            } else {
                                self.push(
                                    Instruction::new(
                                        Op::Mov32i,
                                        vec![Operand::Reg(d), Operand::Imm((*v as i32) as i64)],
                                    )
                                    .with_guard(g),
                                );
                            }
                        }
                    }
                }
            }
            P::Bin { kind, ty, dst, a, b } => self.bin(*kind, *ty, dst, a, b, g)?,
            P::Mad { wide, ty, dst, a, b, c } => {
                let d = self.gpr_of(dst)?;
                let ra = self.gpr_of(a)?;
                let rb = self.force_reg32(b, g)?;
                let rc = self.gpr_of(c)?;
                let (op, itype) = match (wide, ty) {
                    (true, _) => (Op::Imad, IType::U64),
                    (false, PtxType::F32) => (Op::Ffma, IType::S32),
                    (false, PtxType::F64) => (Op::Dfma, IType::S32),
                    (false, t) if t.is_float() => (Op::Ffma, IType::S32),
                    (false, PtxType::U32) => (Op::Imad, IType::U32),
                    (false, _) => (Op::Imad, IType::S32),
                };
                self.push(
                    Instruction::new(
                        op,
                        vec![Operand::Reg(d), Operand::Reg(ra), Operand::Reg(rb), Operand::Reg(rc)],
                    )
                    .with_mods(Mods { itype, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Setp { cmp, ty, dst, a, b } => {
                let p = self.pred_of(dst)?;
                let ra = self.gpr_of(a)?;
                let (op, itype) = match ty {
                    PtxType::F32 => (Op::Fsetp, IType::S32),
                    PtxType::F64 => (Op::Dsetp, IType::S32),
                    PtxType::U32 => (Op::Isetp, IType::U32),
                    PtxType::S32 | PtxType::B32 => (Op::Isetp, IType::S32),
                    other => return Err(self.sem(format!("setp unsupported for {other}"))),
                };
                let bv = if op == Op::Dsetp {
                    SVal::R(self.force_reg32(b, g)?)
                } else {
                    self.sval32(b, g)?
                };
                self.push(
                    Instruction::new(op, vec![Operand::pred(p), Operand::Reg(ra), bv.operand()])
                        .with_mods(Mods { cmp: cmp.to_sass(), itype, ..Mods::default() })
                        .with_guard(g),
                );
            }
            P::Selp { ty, dst, a, b, p } => {
                let d = self.gpr_of(dst)?;
                let ra = self.gpr_of(a)?;
                let pp = self.pred_of(p)?;
                if ty.is_wide() {
                    let rb = match b {
                        Src::Reg(r) => self.gpr_of(r)?,
                        Src::Imm(v) => {
                            self.mov64_imm(SCRATCH_LO, *v, g);
                            SCRATCH_LO
                        }
                    };
                    for half in 0..2u8 {
                        self.push(
                            Instruction::new(
                                Op::Sel,
                                vec![
                                    Operand::Reg(Reg(d.0 + half)),
                                    Operand::Reg(Reg(ra.0 + half)),
                                    Operand::Reg(Reg(rb.0 + half)),
                                    Operand::pred(pp),
                                ],
                            )
                            .with_guard(g),
                        );
                    }
                } else {
                    let bv = self.sval32(b, g)?;
                    self.push(
                        Instruction::new(
                            Op::Sel,
                            vec![
                                Operand::Reg(d),
                                Operand::Reg(ra),
                                bv.operand(),
                                Operand::pred(pp),
                            ],
                        )
                        .with_guard(g),
                    );
                }
            }
            P::Cvt { dty, sty, dst, src } => self.cvt(*dty, *sty, dst, src, g)?,
            P::Bra { target } => {
                let tidx = *self
                    .lin
                    .labels
                    .get(target)
                    .ok_or_else(|| self.sem(format!("undefined label `{target}`")))?;
                let tblock = self.cfg.instr_block.get(tidx).copied().unwrap_or(0);
                // Retarget branches into a claimed join to its landing pad.
                let label = if self.plan.sync_before.contains(&tblock)
                    && self.plan.region_of.get(&tblock).is_some_and(|r| r.contains(&block))
                    && self.cfg.blocks[tblock].start == tidx
                {
                    self.cfg.blocks.len() + tblock
                } else {
                    tblock
                };
                let at = self.out.len();
                self.push(Instruction::new(Op::Bra, vec![Operand::Rel(0)]).with_guard(g));
                self.fixups.push((at, label));
            }
            P::Call { ret, func, args } => {
                if !g.is_always() {
                    return Err(
                        self.sem(format!("guarded call to `{func}`: calls must be warp-uniform"))
                    );
                }
                // Marshal arguments.
                let mut slot = ARG_BASE;
                let mut moves: Vec<(Reg, Reg, bool)> = Vec::new();
                for a in args {
                    let ty = *self
                        .f
                        .regs
                        .get(a)
                        .ok_or_else(|| self.sem(format!("undeclared register `{a}`")))?;
                    let wide = ty.is_wide();
                    if wide && !slot.is_multiple_of(2) {
                        slot += 1;
                    }
                    let src = self.gpr_of(a)?;
                    moves.push((Reg(slot), src, wide));
                    slot += if wide { 2 } else { 1 };
                }
                self.parallel_moves(&moves);
                let at = self.out.len();
                self.push(Instruction::new(Op::Jcal, vec![Operand::Abs(0)]));
                self.relocs.push(Reloc { instr_index: at, target: func.clone() });
                if !self.related.contains(func) {
                    self.related.push(func.clone());
                }
                if let Some(r) = ret {
                    let ty = *self
                        .f
                        .regs
                        .get(r)
                        .ok_or_else(|| self.sem(format!("undeclared register `{r}`")))?;
                    let d = self.gpr_of(r)?;
                    self.push(Instruction::new(
                        Op::Mov,
                        vec![Operand::Reg(d), Operand::Reg(Reg(ARG_BASE))],
                    ));
                    if ty.is_wide() {
                        self.push(Instruction::new(
                            Op::Mov,
                            vec![Operand::Reg(Reg(d.0 + 1)), Operand::Reg(Reg(ARG_BASE + 1))],
                        ));
                    }
                }
            }
            P::Ret => {
                if self.f.kind == FunctionKind::Entry {
                    self.push(Instruction::new(Op::Exit, vec![]).with_guard(g));
                } else {
                    if let Some(rr) = &self.f.ret_reg {
                        let src = self.gpr_of(rr)?;
                        let wide = self.f.ret.map(|t| t.is_wide()).unwrap_or(false);
                        if src.0 != ARG_BASE {
                            self.push(
                                Instruction::new(
                                    Op::Mov,
                                    vec![Operand::Reg(Reg(ARG_BASE)), Operand::Reg(src)],
                                )
                                .with_guard(g),
                            );
                            if wide {
                                self.push(
                                    Instruction::new(
                                        Op::Mov,
                                        vec![
                                            Operand::Reg(Reg(ARG_BASE + 1)),
                                            Operand::Reg(Reg(src.0 + 1)),
                                        ],
                                    )
                                    .with_guard(g),
                                );
                            }
                        }
                    }
                    self.epilogue_and_ret(g);
                }
            }
            P::RetVal { src } => {
                let s = self.gpr_of(src)?;
                if s.0 != ARG_BASE {
                    self.push(
                        Instruction::new(
                            Op::Mov,
                            vec![Operand::Reg(Reg(ARG_BASE)), Operand::Reg(s)],
                        )
                        .with_guard(g),
                    );
                }
                if self.f.kind == FunctionKind::Device {
                    self.epilogue_and_ret(g);
                } else {
                    self.push(Instruction::new(Op::Exit, vec![]).with_guard(g));
                }
            }
            P::Exit => self.push(Instruction::new(Op::Exit, vec![]).with_guard(g)),
            P::BarSync => self.push(Instruction::new(Op::Bar, vec![]).with_guard(g)),
            P::Membar => self.push(Instruction::new(Op::Membar, vec![]).with_guard(g)),
            P::Atom { op, ty, dst, addr, src, src2 } => {
                let d = self.gpr_of(dst)?;
                let (base, off) = self.global_addr(addr, g)?;
                let s = self.gpr_of(src)?;
                let s2 = match src2 {
                    Some(r) => self.gpr_of(r)?,
                    None => Reg::RZ,
                };
                let itype = atom_itype(*ty)
                    .ok_or_else(|| self.sem(format!("atomics unsupported for {ty}")))?;
                self.push(
                    Instruction::new(
                        Op::Atom,
                        vec![
                            Operand::Reg(d),
                            Operand::MRef { base, offset: off },
                            Operand::Reg(s),
                            Operand::Reg(s2),
                        ],
                    )
                    .with_mods(Mods { sub: op.to_sass(), itype, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Red { op, ty, addr, src } => {
                let (base, off) = self.global_addr(addr, g)?;
                let s = self.gpr_of(src)?;
                let itype = atom_itype(*ty)
                    .ok_or_else(|| self.sem(format!("reductions unsupported for {ty}")))?;
                self.push(
                    Instruction::new(
                        Op::Red,
                        vec![Operand::MRef { base, offset: off }, Operand::Reg(s)],
                    )
                    .with_mods(Mods { sub: op.to_sass(), itype, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Vote { mode, dst, src, negated } => {
                let d = self.gpr_of(dst)?;
                let p = self.pred_of(src)?;
                let sub = match mode {
                    VoteMode::All => SubOp::All,
                    VoteMode::Any => SubOp::Any,
                    VoteMode::Ballot => SubOp::Ballot,
                };
                self.push(
                    Instruction::new(
                        Op::Vote,
                        vec![Operand::Reg(d), Operand::Pred { pred: p, negated: *negated }],
                    )
                    .with_mods(Mods { sub, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Shfl { mode, dst, a, b } => {
                let d = self.gpr_of(dst)?;
                let ra = self.gpr_of(a)?;
                let bv = self.sval32(b, g)?;
                let sub = match mode {
                    ShflMode::Idx => SubOp::Idx,
                    ShflMode::Up => SubOp::Up,
                    ShflMode::Down => SubOp::Down,
                    ShflMode::Bfly => SubOp::Bfly,
                };
                self.push(
                    Instruction::new(
                        Op::Shfl,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_mods(Mods { sub, ..Mods::default() })
                    .with_guard(g),
                );
            }
            P::Popc { dst, src } => {
                let d = self.gpr_of(dst)?;
                let s = self.gpr_of(src)?;
                self.push(
                    Instruction::new(Op::Popc, vec![Operand::Reg(d), Operand::Reg(s)])
                        .with_guard(g),
                );
            }
            P::Mufu { func, dst, src } => {
                let d = self.gpr_of(dst)?;
                let s = self.gpr_of(src)?;
                self.push(
                    Instruction::new(Op::Mufu, vec![Operand::Reg(d), Operand::Reg(s)])
                        .with_mods(Mods { sub: func.to_sass(), ..Mods::default() })
                        .with_guard(g),
                );
            }
            P::Proxy { dst, src, name } => {
                let d = self.gpr_of(dst)?;
                let s = self.gpr_of(src)?;
                self.push(
                    Instruction::new(
                        Op::Proxy,
                        vec![Operand::Reg(d), Operand::Reg(s), Operand::Imm(proxy_id(name))],
                    )
                    .with_guard(g),
                );
            }
            P::ChanPush { src } => {
                let s = self.gpr_of(src)?;
                self.push(
                    Instruction::new(Op::Chan, vec![Operand::Reg(s)])
                        .with_mods(Mods { width: Width::B64, ..Mods::default() })
                        .with_guard(g),
                );
            }
            P::NvReadReg { dst, idx } => {
                self.uses_reg_api = true;
                let d = self.gpr_of(dst)?;
                match idx {
                    Src::Imm(v) => {
                        self.push(
                            Instruction::new(
                                Op::Ldl,
                                vec![
                                    Operand::Reg(d),
                                    Operand::MRef { base: NVBIT_FRAME, offset: (*v as i32) * 4 },
                                ],
                            )
                            .with_guard(g),
                        );
                    }
                    Src::Reg(r) => {
                        let ri = self.gpr_of(r)?;
                        self.frame_index(ri, g);
                        self.push(
                            Instruction::new(
                                Op::Ldl,
                                vec![
                                    Operand::Reg(d),
                                    Operand::MRef { base: SCRATCH_LO, offset: 0 },
                                ],
                            )
                            .with_guard(g),
                        );
                    }
                }
            }
            P::NvWriteReg { idx, src } => {
                self.uses_reg_api = true;
                let s = self.gpr_of(src)?;
                match idx {
                    Src::Imm(v) => {
                        self.push(
                            Instruction::new(
                                Op::Stl,
                                vec![
                                    Operand::MRef { base: NVBIT_FRAME, offset: (*v as i32) * 4 },
                                    Operand::Reg(s),
                                ],
                            )
                            .with_guard(g),
                        );
                    }
                    Src::Reg(r) => {
                        let ri = self.gpr_of(r)?;
                        self.frame_index(ri, g);
                        self.push(
                            Instruction::new(
                                Op::Stl,
                                vec![
                                    Operand::MRef { base: SCRATCH_LO, offset: 0 },
                                    Operand::Reg(s),
                                ],
                            )
                            .with_guard(g),
                        );
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes `SCRATCH_LO = NVBIT_FRAME + idx * 4` for dynamic device-API
    /// register indices.
    fn frame_index(&mut self, idx: Reg, g: Guard) {
        self.push(
            Instruction::new(
                Op::Shl,
                vec![Operand::Reg(SCRATCH_LO), Operand::Reg(idx), Operand::Imm(2)],
            )
            .with_guard(g),
        );
        self.push(
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(SCRATCH_LO), Operand::Reg(SCRATCH_LO), Operand::Reg(NVBIT_FRAME)],
            )
            .with_guard(g),
        );
    }

    /// Resolves a load/store address: returns the opcode for the space and
    /// the base register + offset of the `MRef`.
    fn mem_operand(
        &mut self,
        space: Space,
        addr: &Address,
        g: Guard,
        store: bool,
    ) -> Result<(Op, Reg, i32)> {
        let op = match (space, store) {
            (Space::Global, false) => Op::Ldg,
            (Space::Global, true) => Op::Stg,
            (Space::Shared, false) => Op::Lds,
            (Space::Shared, true) => Op::Sts,
            (Space::Local, false) => Op::Ldl,
            (Space::Local, true) => Op::Stl,
        };
        match &addr.base {
            AddrBase::Reg(r) => {
                let base = self.gpr_of(r)?;
                Ok((op, base, addr.offset))
            }
            AddrBase::Shared(name) => {
                if space != Space::Shared {
                    return Err(self
                        .sem(format!("shared variable `{name}` addressed with {space:?} access")));
                }
                let off = *self
                    .shared_offsets
                    .get(name)
                    .ok_or_else(|| self.sem(format!("unknown shared variable `{name}`")))?;
                let _ = g;
                Ok((op, Reg::RZ, off as i32 + addr.offset))
            }
        }
    }

    /// Resolves a global address for atomics, folding non-zero offsets into
    /// the scratch pair (the atomic offset field is narrow).
    fn global_addr(&mut self, addr: &Address, g: Guard) -> Result<(Reg, i32)> {
        let AddrBase::Reg(r) = &addr.base else {
            return Err(self.sem("atomics require a register address".into()));
        };
        let base = self.gpr_of(r)?;
        if addr.offset == 0 {
            return Ok((base, 0));
        }
        if (-128..128).contains(&addr.offset) {
            return Ok((base, addr.offset));
        }
        self.push(
            Instruction::new(
                Op::Iadd,
                vec![
                    Operand::Reg(SCRATCH_LO),
                    Operand::Reg(base),
                    Operand::Imm(addr.offset as i64),
                ],
            )
            .with_mods(Mods { itype: IType::U64, ..Mods::default() })
            .with_guard(g),
        );
        Ok((SCRATCH_LO, 0))
    }

    fn bin(
        &mut self,
        kind: BinKind,
        ty: PtxType,
        dst: &str,
        a: &str,
        b: &Src,
        g: Guard,
    ) -> Result<()> {
        let d = self.gpr_of(dst)?;
        let ra = self.gpr_of(a)?;
        let mods = |itype| Mods { itype, ..Mods::default() };
        match (kind, ty) {
            (BinKind::Add, PtxType::F32) => {
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Fadd,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::Add, PtxType::F64) => {
                let rb = self.wide_reg(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Dadd,
                        vec![Operand::Reg(d), Operand::Reg(ra), Operand::Reg(rb)],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::Add, t) if t.is_wide() => {
                let bv = self.sval64(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Iadd,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_mods(mods(IType::U64))
                    .with_guard(g),
                );
            }
            (BinKind::Add, _) => {
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Iadd,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::Sub, PtxType::F32) => match b {
                Src::Imm(v) => {
                    // Negate the float immediate by flipping its sign bit.
                    let neg = ((*v as u32) ^ 0x8000_0000) as i32 as i64;
                    self.push(
                        Instruction::new(
                            Op::Fadd,
                            vec![Operand::Reg(d), Operand::Reg(ra), Operand::Imm(neg)],
                        )
                        .with_guard(g),
                    );
                }
                Src::Reg(r) => {
                    let rb = self.gpr_of(r)?;
                    // d = a - b  via  d = b * (-1.0) + a
                    self.push(
                        Instruction::new(
                            Op::Mov32i,
                            vec![
                                Operand::Reg(SCRATCH_LO),
                                Operand::Imm((-1.0f32).to_bits() as i32 as i64),
                            ],
                        )
                        .with_guard(g),
                    );
                    self.push(
                        Instruction::new(
                            Op::Ffma,
                            vec![
                                Operand::Reg(d),
                                Operand::Reg(rb),
                                Operand::Reg(SCRATCH_LO),
                                Operand::Reg(ra),
                            ],
                        )
                        .with_guard(g),
                    );
                }
            },
            (BinKind::Sub, t) if t.is_wide() && !t.is_float() => {
                let bv = match b {
                    Src::Reg(_) => self.sval64(b, g)?,
                    Src::Imm(v) => SVal::I(-*v), // fold negation
                };
                match bv {
                    SVal::I(v) if (-IMM_SAFE..IMM_SAFE).contains(&v) => {
                        self.push(
                            Instruction::new(
                                Op::Iadd,
                                vec![Operand::Reg(d), Operand::Reg(ra), Operand::Imm(v)],
                            )
                            .with_mods(mods(IType::U64))
                            .with_guard(g),
                        );
                    }
                    SVal::I(v) => {
                        self.mov64_imm(SCRATCH_LO, v, g);
                        self.push(
                            Instruction::new(
                                Op::Iadd,
                                vec![Operand::Reg(d), Operand::Reg(ra), Operand::Reg(SCRATCH_LO)],
                            )
                            .with_mods(mods(IType::U64))
                            .with_guard(g),
                        );
                    }
                    SVal::R(rb) => {
                        self.push(
                            Instruction::new(
                                Op::Isub,
                                vec![Operand::Reg(d), Operand::Reg(ra), Operand::Reg(rb)],
                            )
                            .with_mods(mods(IType::U64))
                            .with_guard(g),
                        );
                    }
                }
            }
            (BinKind::Sub, PtxType::F64) => {
                return Err(self.sem("f64 subtraction: use dfma with a negated operand".into()));
            }
            (BinKind::Sub, _) => {
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Isub,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::MulLo, PtxType::F32) => {
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Fmul,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::MulLo, PtxType::F64) => {
                let rb = self.wide_reg(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Dmul,
                        vec![Operand::Reg(d), Operand::Reg(ra), Operand::Reg(rb)],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::MulLo, t) if t.is_wide() => {
                return Err(self.sem("64-bit integer mul.lo is not supported".into()));
            }
            (BinKind::MulLo, _) => {
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Imul,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_guard(g),
                );
            }
            (BinKind::MulWide, _) => {
                // d64 = a32 * b32 + 0
                let rb = self.force_reg32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Imad,
                        vec![
                            Operand::Reg(d),
                            Operand::Reg(ra),
                            Operand::Reg(rb),
                            Operand::Reg(Reg::RZ),
                        ],
                    )
                    .with_mods(mods(IType::U64))
                    .with_guard(g),
                );
            }
            (BinKind::Min | BinKind::Max, t) => {
                let sub = if kind == BinKind::Min { SubOp::Min } else { SubOp::Max };
                let (op, itype) = match t {
                    PtxType::F32 => (Op::Fmnmx, IType::S32),
                    PtxType::U32 => (Op::Imnmx, IType::U32),
                    PtxType::S32 | PtxType::B32 => (Op::Imnmx, IType::S32),
                    other => return Err(self.sem(format!("min/max unsupported for {other}"))),
                };
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(op, vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()])
                        .with_mods(Mods { sub, itype, ..Mods::default() })
                        .with_guard(g),
                );
            }
            (BinKind::And | BinKind::Or | BinKind::Xor, _) => {
                let sub = match kind {
                    BinKind::And => SubOp::And,
                    BinKind::Or => SubOp::Or,
                    _ => SubOp::Xor,
                };
                let bv = self.sval32(b, g)?;
                self.push(
                    Instruction::new(
                        Op::Lop,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_mods(Mods { sub, ..Mods::default() })
                    .with_guard(g),
                );
            }
            (BinKind::Shl, t) => {
                let bv = self.sval32(b, g)?;
                let itype = if t.is_wide() { IType::U64 } else { IType::S32 };
                self.push(
                    Instruction::new(
                        Op::Shl,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_mods(mods(itype))
                    .with_guard(g),
                );
            }
            (BinKind::Shr, t) => {
                let bv = self.sval32(b, g)?;
                let itype = match t {
                    PtxType::S32 => IType::S32,
                    t if t.is_wide() => IType::U64,
                    _ => IType::U32,
                };
                self.push(
                    Instruction::new(
                        Op::Shr,
                        vec![Operand::Reg(d), Operand::Reg(ra), bv.operand()],
                    )
                    .with_mods(mods(itype))
                    .with_guard(g),
                );
            }
        }
        Ok(())
    }

    /// Resolves a 64-bit source into a register pair (doubles never take
    /// immediates in the machine ISA).
    fn wide_reg(&mut self, b: &Src, g: Guard) -> Result<Reg> {
        match b {
            Src::Reg(r) => self.gpr_of(r),
            Src::Imm(v) => {
                self.mov64_imm(SCRATCH_LO, *v, g);
                Ok(SCRATCH_LO)
            }
        }
    }

    fn cvt(&mut self, dty: PtxType, sty: PtxType, dst: &str, src: &str, g: Guard) -> Result<()> {
        let d = self.gpr_of(dst)?;
        let s = self.gpr_of(src)?;
        let mov = |e: &mut Self, dd: Reg, ss: Reg| {
            e.push(
                Instruction::new(Op::Mov, vec![Operand::Reg(dd), Operand::Reg(ss)]).with_guard(g),
            );
        };
        match (dty, sty) {
            // Widening integer converts.
            (PtxType::U64 | PtxType::B64, PtxType::U32 | PtxType::B32) => {
                mov(self, d, s);
                mov(self, Reg(d.0 + 1), Reg::RZ);
            }
            (PtxType::S64, PtxType::S32) => {
                mov(self, d, s);
                self.push(
                    Instruction::new(
                        Op::Shr,
                        vec![Operand::Reg(Reg(d.0 + 1)), Operand::Reg(s), Operand::Imm(31)],
                    )
                    .with_mods(Mods { itype: IType::S32, ..Mods::default() })
                    .with_guard(g),
                );
            }
            // Narrowing.
            (PtxType::U32 | PtxType::S32 | PtxType::B32, t) if t.is_wide() && !t.is_float() => {
                mov(self, d, s);
            }
            // Int <-> float.
            (PtxType::F32, PtxType::S32) => self.push(
                Instruction::new(Op::I2f, vec![Operand::Reg(d), Operand::Reg(s)])
                    .with_mods(Mods { itype: IType::S32, ..Mods::default() })
                    .with_guard(g),
            ),
            (PtxType::F32, PtxType::U32 | PtxType::B32) => self.push(
                Instruction::new(Op::I2f, vec![Operand::Reg(d), Operand::Reg(s)])
                    .with_mods(Mods { itype: IType::U32, ..Mods::default() })
                    .with_guard(g),
            ),
            (PtxType::S32, PtxType::F32) => self.push(
                Instruction::new(Op::F2i, vec![Operand::Reg(d), Operand::Reg(s)])
                    .with_mods(Mods { itype: IType::S32, ..Mods::default() })
                    .with_guard(g),
            ),
            (PtxType::U32, PtxType::F32) => self.push(
                Instruction::new(Op::F2i, vec![Operand::Reg(d), Operand::Reg(s)])
                    .with_mods(Mods { itype: IType::U32, ..Mods::default() })
                    .with_guard(g),
            ),
            // Float <-> double.
            (PtxType::F64, PtxType::F32) => self.push(
                Instruction::new(Op::F2d, vec![Operand::Reg(d), Operand::Reg(s)]).with_guard(g),
            ),
            (PtxType::F32, PtxType::F64) => self.push(
                Instruction::new(Op::D2f, vec![Operand::Reg(d), Operand::Reg(s)]).with_guard(g),
            ),
            // Int -> double via float (documented precision simplification).
            (PtxType::F64, PtxType::S32 | PtxType::U32) => {
                let itype = if sty == PtxType::S32 { IType::S32 } else { IType::U32 };
                self.push(
                    Instruction::new(Op::I2f, vec![Operand::Reg(SCRATCH_LO), Operand::Reg(s)])
                        .with_mods(Mods { itype, ..Mods::default() })
                        .with_guard(g),
                );
                self.push(
                    Instruction::new(Op::F2d, vec![Operand::Reg(d), Operand::Reg(SCRATCH_LO)])
                        .with_guard(g),
                );
            }
            (PtxType::S32 | PtxType::U32, PtxType::F64) => {
                let itype = if dty == PtxType::S32 { IType::S32 } else { IType::U32 };
                self.push(
                    Instruction::new(Op::D2f, vec![Operand::Reg(SCRATCH_LO), Operand::Reg(s)])
                        .with_guard(g),
                );
                self.push(
                    Instruction::new(Op::F2i, vec![Operand::Reg(d), Operand::Reg(SCRATCH_LO)])
                        .with_mods(Mods { itype, ..Mods::default() })
                        .with_guard(g),
                );
            }
            (a, b) if a == b => mov(self, d, s),
            (a, b) => return Err(self.sem(format!("unsupported conversion {b} -> {a}"))),
        }
        Ok(())
    }

    fn finish(self) -> Result<CompiledFunction> {
        let codec = codec_for(self.arch);
        let code = codec
            .encode_stream(&self.out)
            .map_err(|source| PtxError::Encode { function: self.f.name.clone(), source })?;
        let reg_count = self
            .out
            .iter()
            .filter_map(|i| i.max_reg())
            .max()
            .map(|m| m as u32 + 1)
            .unwrap_or(0)
            .max(4);
        Ok(CompiledFunction {
            name: self.f.name.clone(),
            kind: self.f.kind,
            arch: self.arch,
            code,
            reg_count,
            stack_size: self.frame_bytes,
            shared_size: self.shared_size,
            params: self.params,
            relocs: self.relocs,
            related: self.related,
            line_table: self.line_table,
            uses_reg_api: self.uses_reg_api,
        })
    }
}

fn atom_itype(ty: PtxType) -> Option<IType> {
    match ty {
        PtxType::S32 => Some(IType::S32),
        PtxType::U32 | PtxType::B32 => Some(IType::U32),
        PtxType::F32 => Some(IType::F32),
        PtxType::U64 | PtxType::B64 => Some(IType::U64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str, arch: Arch) -> CompiledFunction {
        let m = parse(src).unwrap();
        compile_function(&m.functions[0], arch).unwrap()
    }

    const GUARDED: &str = r#"
.entry k(.param .u64 buf, .param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<3>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r2, 4;
    add.u64 %rd2, %rd1, %rd2;
    ld.global.u32 %r3, [%rd2];
    add.u32 %r3, %r3, 1;
    st.global.u32 [%rd2], %r3;
DONE:
    exit;
}
"#;

    #[test]
    fn compiles_on_all_architectures() {
        for arch in Arch::ALL {
            let f = compile(GUARDED, arch);
            assert_eq!(f.code.len() % arch.instruction_size(), 0);
            let instrs = f.decode();
            assert!(instrs.iter().any(|i| i.op == Op::Ldg));
            assert!(instrs.iter().any(|i| i.op == Op::Exit));
            assert!(f.reg_count >= 4);
        }
    }

    #[test]
    fn divergent_forward_branch_gets_ssy_and_sync() {
        let f = compile(GUARDED, Arch::Volta);
        let instrs = f.decode();
        let ssy_count = instrs.iter().filter(|i| i.op == Op::Ssy).count();
        let sync_count = instrs.iter().filter(|i| i.op == Op::Sync).count();
        assert_eq!(ssy_count, 1, "{}", sass::asm::disassemble(&instrs));
        assert_eq!(sync_count, 1);
        // SSY must precede the conditional branch.
        let ssy_pos = instrs.iter().position(|i| i.op == Op::Ssy).unwrap();
        let bra_pos = instrs.iter().position(|i| i.op == Op::Bra).unwrap();
        assert!(ssy_pos < bra_pos);
        // The branch targets the SYNC landing pad: its target must be the
        // SYNC instruction.
        let isz = Arch::Volta.instruction_size() as i64;
        let off = instrs[bra_pos].rel_target().unwrap();
        let target = (bra_pos as i64 + 1 + off / isz) as usize;
        assert_eq!(instrs[target].op, Op::Sync);
        // And the SSY targets the instruction after the SYNC.
        let ssy_off = instrs[ssy_pos].rel_target().unwrap();
        let ssy_target = (ssy_pos as i64 + 1 + ssy_off / isz) as usize;
        assert_eq!(ssy_target, target + 1);
    }

    #[test]
    fn loop_gets_preheader_ssy() {
        let src = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<2>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, 0;
TOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, 10;
    @%p1 bra TOP;
    st.global.u32 [%rd1], %r1;
    exit;
}
"#;
        let f = compile(src, Arch::Pascal);
        let instrs = f.decode();
        let ssy_pos = instrs.iter().position(|i| i.op == Op::Ssy).expect("loop gets SSY");
        // The SSY must be before the loop body (before the first IADD of the
        // loop counter), i.e. executed once.
        let backedge =
            instrs.iter().enumerate().rev().find(|(_, i)| i.op == Op::Bra).map(|(p, _)| p).unwrap();
        let isz = Arch::Pascal.instruction_size() as i64;
        let off = instrs[backedge].rel_target().unwrap();
        assert!(off < 0, "backedge branches backwards");
        let loop_head = (backedge as i64 + 1 + off / isz) as usize;
        assert!(ssy_pos < loop_head, "SSY at {ssy_pos} must precede loop head {loop_head}");
        assert_eq!(instrs.iter().filter(|i| i.op == Op::Sync).count(), 1);
    }

    #[test]
    fn device_function_saves_callee_saved_registers() {
        let src = r#"
.func helper()
{
    ret;
}
.entry unused() { exit; }
"#;
        let m = parse(src).unwrap();
        // Compile a function that calls helper with a live value across it.
        let src2 = r#"
.func (.reg .u32 %out) caller(.reg .u32 %x)
{
    .reg .u32 %t<2>;
    add.u32 %t1, %x, 5;
    call helper;
    add.u32 %out, %t1, 1;
    ret;
}
"#;
        let _ = m;
        let m2 = parse(src2).unwrap();
        let f = compile_function(&m2.functions[0], Arch::Maxwell).unwrap();
        assert!(f.stack_size > 0, "frame for callee-saved registers");
        let instrs = f.decode();
        assert!(instrs.iter().any(|i| i.op == Op::Stl));
        assert!(instrs.iter().any(|i| i.op == Op::Ldl));
        assert!(instrs.iter().any(|i| i.op == Op::Jcal));
        assert_eq!(f.relocs.len(), 1);
        assert_eq!(f.relocs[0].target, "helper");
        assert_eq!(f.related, vec!["helper".to_string()]);
    }

    #[test]
    fn early_returns_are_merged() {
        let src = r#"
.func noop(.reg .u32 %x)
{
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %x, 0;
    @%p1 ret;
    ret;
}
"#;
        let m = parse(src).unwrap();
        let f = compile_function(&m.functions[0], Arch::Volta).unwrap();
        let instrs = f.decode();
        // Exactly one RET instruction after merging.
        assert_eq!(instrs.iter().filter(|i| i.op == Op::Ret).count(), 1);
    }

    #[test]
    fn large_immediates_are_legalized_for_enc64() {
        let src = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<3>;
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, 0x12345678;
    add.u32 %r2, %r1, 0x7fffffff;
    st.global.u32 [%rd1], %r2;
    exit;
}
"#;
        // Must encode on the narrow family without FieldRange errors.
        let f = compile(src, Arch::Kepler);
        let instrs = f.decode();
        // The big addend goes through MOV32I + register IADD.
        assert!(instrs.iter().filter(|i| i.op == Op::Mov32i).count() >= 2);
    }

    #[test]
    fn line_tables_follow_loc_directives() {
        let src = r#"
.entry k(.param .u64 buf)
{
    .reg .u64 %rd<2>;
    .reg .u32 %r<2>;
    .loc "kern.cu" 7 ;
    ld.param.u64 %rd1, [buf];
    .loc "kern.cu" 8 ;
    ld.global.u32 %r1, [%rd1];
    st.global.u32 [%rd1], %r1;
    exit;
}
"#;
        let f = compile(src, Arch::Volta);
        assert!(f.line_table.iter().any(|l| l.line == 7));
        assert!(f.line_table.iter().any(|l| l.line == 8));
        assert!(f.line_table.iter().all(|l| l.file == "kern.cu"));
    }

    #[test]
    fn proxy_ids_are_stable_and_fit_the_encoding() {
        let id = proxy_id("WFFT32");
        assert_eq!(id, proxy_id("WFFT32"));
        assert!((0..(1 << 22)).contains(&id));
        assert_ne!(id, proxy_id("WFFT64"));
    }

    #[test]
    fn entry_params_are_laid_out_with_alignment() {
        let src = r#"
.entry k(.param .u32 a, .param .u64 b, .param .u32 c)
{
    exit;
}
"#;
        let f = compile(src, Arch::Volta);
        assert_eq!(f.params[0].offset, 0);
        assert_eq!(f.params[1].offset, 8); // aligned up for the u64
        assert_eq!(f.params[2].offset, 16);
    }
}
