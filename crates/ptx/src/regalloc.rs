//! Liveness analysis and linear-scan register allocation.
//!
//! Virtual registers are assigned one physical location for the whole
//! function (no live-range splitting, no spilling — a function that exceeds
//! the register file reports [`PtxError::OutOfRegisters`], mirroring how
//! `ptxas` would spill where we instead reject).
//!
//! # ABI
//!
//! * `R0` — the NVBit device-API frame pointer inside instrumentation
//!   functions (local-memory address of the caller's register save area);
//!   unused elsewhere.
//! * `R1` — stack pointer into per-thread local memory.
//! * `R2`, `R3` — reserved lowering scratch (an even-aligned pair, so wide
//!   temporaries fit).
//! * `R4`–`R15` — caller-saved; device-function arguments and return value.
//! * `R16`+ — callee-saved; values live across a `call` are placed here and
//!   the function saves/restores what it uses.
//!
//! Under [`Abi::Scratch`] (instrumentation functions, whose caller — the
//! trampoline — has already saved every register the site needs) the
//! callee-saved split disappears: `R16`+ allocates like any other register
//! and no save/restore prologue is emitted.

use crate::ast::{AddrBase, Function, PtxInstr, PtxOp, Src};
use crate::cfg::{FnCfg, Linear};
use crate::types::PtxType;
use crate::{Abi, PtxError, Result};
use std::collections::{BTreeMap, HashMap, HashSet};

/// First caller-saved allocatable register.
pub const FIRST_CALLER: u8 = 4;
/// First callee-saved register.
pub const FIRST_CALLEE: u8 = 16;
/// Highest allocatable register (leaving headroom below `RZ`).
pub const LAST_ALLOC: u8 = 250;

/// Physical location assigned to a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// One general-purpose register.
    Gpr(u8),
    /// An even-aligned register pair (value is the low register).
    Pair(u8),
    /// A predicate register.
    Pred(u8),
}

impl Loc {
    /// The low general-purpose register index, if not a predicate.
    pub fn gpr(&self) -> Option<u8> {
        match self {
            Loc::Gpr(r) | Loc::Pair(r) => Some(*r),
            Loc::Pred(_) => None,
        }
    }
}

/// Result of allocation for one function.
#[derive(Debug)]
pub struct Allocation {
    /// Virtual register → physical location.
    pub map: HashMap<String, Loc>,
    /// Highest general-purpose register index used (allocation only; the
    /// lowering adds its scratch registers on top).
    pub max_gpr: u8,
    /// Callee-saved registers this function writes and must preserve.
    pub used_callee_saved: Vec<u8>,
    /// True if the function contains `call` instructions.
    pub has_calls: bool,
}

/// Uses and defs of one instruction, as virtual register names.
pub fn uses_defs<'a>(i: &'a PtxInstr) -> (Vec<&'a str>, Vec<&'a str>) {
    let mut uses: Vec<&'a str> = Vec::new();
    let mut defs: Vec<&'a str> = Vec::new();
    if let Some(g) = &i.guard {
        uses.push(&g.reg);
    }
    fn use_src<'a>(s: &'a Src, uses: &mut Vec<&'a str>) {
        if let Src::Reg(r) = s {
            uses.push(r.as_str());
        }
    }
    fn use_addr<'a>(a: &'a crate::ast::Address, uses: &mut Vec<&'a str>) {
        if let AddrBase::Reg(r) = &a.base {
            uses.push(r.as_str());
        }
    }
    match &i.op {
        PtxOp::LdParam { dst, .. } => defs.push(dst),
        PtxOp::Ld { dst, addr, .. } => {
            use_addr(addr, &mut uses);
            defs.push(dst);
        }
        PtxOp::St { addr, src, .. } => {
            use_addr(addr, &mut uses);
            uses.push(src);
        }
        PtxOp::Mov { dst, src, .. } => {
            if let Some(s) = src {
                use_src(s, &mut uses);
            }
            defs.push(dst);
        }
        PtxOp::Bin { dst, a, b, .. } => {
            uses.push(a);
            use_src(b, &mut uses);
            defs.push(dst);
        }
        PtxOp::Mad { dst, a, b, c, .. } => {
            uses.push(a);
            use_src(b, &mut uses);
            uses.push(c);
            defs.push(dst);
        }
        PtxOp::Setp { dst, a, b, .. } => {
            uses.push(a);
            use_src(b, &mut uses);
            defs.push(dst);
        }
        PtxOp::Selp { dst, a, b, p, .. } => {
            uses.push(a);
            use_src(b, &mut uses);
            uses.push(p);
            defs.push(dst);
        }
        PtxOp::Cvt { dst, src, .. } => {
            uses.push(src);
            defs.push(dst);
        }
        PtxOp::Bra { .. } | PtxOp::Ret | PtxOp::Exit | PtxOp::BarSync | PtxOp::Membar => {}
        PtxOp::RetVal { src } => uses.push(src),
        PtxOp::Call { ret, args, .. } => {
            for a in args {
                uses.push(a);
            }
            if let Some(r) = ret {
                defs.push(r);
            }
        }
        PtxOp::Atom { dst, addr, src, src2, .. } => {
            use_addr(addr, &mut uses);
            uses.push(src);
            if let Some(s2) = src2 {
                uses.push(s2);
            }
            defs.push(dst);
        }
        PtxOp::Red { addr, src, .. } => {
            use_addr(addr, &mut uses);
            uses.push(src);
        }
        PtxOp::Vote { dst, src, .. } => {
            uses.push(src);
            defs.push(dst);
        }
        PtxOp::Shfl { dst, a, b, .. } => {
            uses.push(a);
            use_src(b, &mut uses);
            defs.push(dst);
        }
        PtxOp::Popc { dst, src } | PtxOp::Mufu { dst, src, .. } => {
            uses.push(src);
            defs.push(dst);
        }
        PtxOp::Proxy { dst, src, .. } => {
            uses.push(src);
            defs.push(dst);
        }
        PtxOp::ChanPush { src } => {
            uses.push(src);
        }
        PtxOp::NvReadReg { dst, idx } => {
            use_src(idx, &mut uses);
            defs.push(dst);
        }
        PtxOp::NvWriteReg { idx, src } => {
            use_src(idx, &mut uses);
            uses.push(src);
        }
    }
    (uses, defs)
}

/// A conservative live interval over instruction indices.
#[derive(Debug, Clone)]
struct Interval {
    name: String,
    ty: PtxType,
    start: usize,
    end: usize,
    crosses_call: bool,
}

/// Runs liveness and linear-scan allocation for a function.
///
/// # Errors
///
/// [`PtxError::Semantic`] for undeclared registers, [`PtxError::OutOfRegisters`]
/// when the register file is exhausted.
pub fn allocate<'a>(f: &'a Function, lin: &Linear<'a>, cfg: &FnCfg) -> Result<Allocation> {
    allocate_abi(f, lin, cfg, Abi::Standard)
}

/// [`allocate`] with an explicit calling convention. Under [`Abi::Scratch`]
/// no register is callee-saved — the whole file is clobber — so the
/// function emits no save/restore prologue; `call`s are rejected because a
/// value live across one has no safe home.
///
/// # Errors
///
/// As [`allocate`], plus [`PtxError::Semantic`] for `call` under
/// [`Abi::Scratch`].
pub fn allocate_abi<'a>(
    f: &'a Function,
    lin: &Linear<'a>,
    cfg: &FnCfg,
    abi: Abi,
) -> Result<Allocation> {
    let sem = |reason: String| PtxError::Semantic { function: f.name.clone(), reason };

    // Verify all referenced registers are declared.
    for i in &lin.instrs {
        let (uses, defs) = uses_defs(i);
        for r in uses.iter().chain(defs.iter()) {
            if !f.regs.contains_key(*r) {
                return Err(sem(format!("undeclared register `{r}`")));
            }
        }
    }

    let _n = lin.instrs.len();
    let nb = cfg.blocks.len();

    // Block-level use/def sets.
    let mut gen: Vec<HashSet<&str>> = vec![HashSet::new(); nb];
    let mut kill: Vec<HashSet<&str>> = vec![HashSet::new(); nb];
    for (bid, b) in cfg.blocks.iter().enumerate() {
        for idx in b.start..b.end {
            let (uses, defs) = uses_defs(lin.instrs[idx]);
            for u in uses {
                if !kill[bid].contains(u) {
                    gen[bid].insert(u);
                }
            }
            for d in defs {
                kill[bid].insert(d);
            }
        }
    }

    // Iterative backward liveness.
    let mut live_in: Vec<HashSet<&str>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<&str>> = vec![HashSet::new(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bid in (0..nb).rev() {
            let mut out: HashSet<&str> = HashSet::new();
            for &s in &cfg.blocks[bid].succs {
                out.extend(live_in[s].iter().copied());
            }
            let mut inp: HashSet<&str> = gen[bid].clone();
            for v in out.iter() {
                if !kill[bid].contains(v) {
                    inp.insert(v);
                }
            }
            if out != live_out[bid] || inp != live_in[bid] {
                live_out[bid] = out;
                live_in[bid] = inp;
                changed = true;
            }
        }
    }

    // Build conservative intervals: a register is live at position p if it is
    // live anywhere in [start, end] covering p.
    let mut ivs: BTreeMap<&'a str, (usize, usize)> = BTreeMap::new();
    fn touch<'a>(name: &'a str, pos: usize, ivs: &mut BTreeMap<&'a str, (usize, usize)>) {
        let e = ivs.entry(name).or_insert((pos, pos));
        e.0 = e.0.min(pos);
        e.1 = e.1.max(pos);
    }
    for (bid, b) in cfg.blocks.iter().enumerate() {
        if b.start == b.end {
            continue;
        }
        for v in live_in[bid].iter() {
            touch(v, b.start, &mut ivs);
        }
        for v in live_out[bid].iter() {
            touch(v, b.end.saturating_sub(1), &mut ivs);
        }
        for idx in b.start..b.end {
            let (uses, defs) = uses_defs(lin.instrs[idx]);
            for u in uses {
                touch(u, idx, &mut ivs);
            }
            for d in defs {
                touch(d, idx, &mut ivs);
            }
        }
    }

    // Call positions, for the caller/callee-saved split.
    let call_positions: Vec<usize> = lin
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i.op, PtxOp::Call { .. }))
        .map(|(idx, _)| idx)
        .collect();
    let has_calls = !call_positions.is_empty();
    if has_calls && abi == Abi::Scratch {
        return Err(sem("`call` is unsupported under the scratch ABI".into()));
    }

    let mut intervals: Vec<Interval> = ivs
        .into_iter()
        .map(|(name, (start, end))| {
            let ty = f.regs[name];
            // Live "across" a call: the interval strictly covers it.
            let crosses_call = call_positions.iter().any(|&c| start < c && c < end);
            Interval { name: name.to_string(), ty, start, end, crosses_call }
        })
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.end));

    // Linear scan with three pools.
    let mut gpr_free = [true; 256];
    for r in 0..FIRST_CALLER {
        gpr_free[r as usize] = false; // reserved scratch + SP
    }
    gpr_free[255] = false; // RZ
    for slot in gpr_free.iter_mut().take(255).skip(LAST_ALLOC as usize + 1) {
        *slot = false;
    }
    let mut pred_free = [true; 7];

    #[derive(Debug)]
    struct Active {
        end: usize,
        loc: Loc,
    }
    let mut active: Vec<Active> = Vec::new();
    let mut map = HashMap::new();
    let mut max_gpr = 0u8;
    let mut used_callee: HashSet<u8> = HashSet::new();

    for iv in &intervals {
        // Expire finished intervals.
        active.retain(|a| {
            if a.end < iv.start {
                match a.loc {
                    Loc::Gpr(r) => gpr_free[r as usize] = true,
                    Loc::Pair(r) => {
                        gpr_free[r as usize] = true;
                        gpr_free[r as usize + 1] = true;
                    }
                    Loc::Pred(p) => pred_free[p as usize] = true,
                }
                false
            } else {
                true
            }
        });

        let loc = match iv.ty {
            PtxType::Pred => {
                let p = (0..7)
                    .find(|&p| pred_free[p])
                    .ok_or(PtxError::OutOfRegisters { function: f.name.clone(), required: 8 })?;
                pred_free[p] = false;
                Loc::Pred(p as u8)
            }
            ty if ty.is_wide() => {
                let r = find_pair(&gpr_free, iv.crosses_call).ok_or_else(|| {
                    PtxError::OutOfRegisters { function: f.name.clone(), required: 256 }
                })?;
                gpr_free[r as usize] = false;
                gpr_free[r as usize + 1] = false;
                Loc::Pair(r)
            }
            _ => {
                let r = find_single(&gpr_free, iv.crosses_call).ok_or_else(|| {
                    PtxError::OutOfRegisters { function: f.name.clone(), required: 256 }
                })?;
                gpr_free[r as usize] = false;
                Loc::Gpr(r)
            }
        };
        if let Some(r) = loc.gpr() {
            let hi = if matches!(loc, Loc::Pair(_)) { r + 1 } else { r };
            max_gpr = max_gpr.max(hi);
            if abi == Abi::Standard {
                for reg in r..=hi {
                    if reg >= FIRST_CALLEE {
                        used_callee.insert(reg);
                    }
                }
            }
        }
        active.push(Active { end: iv.end, loc });
        map.insert(iv.name.clone(), loc);
    }

    let mut used_callee_saved: Vec<u8> = used_callee.into_iter().collect();
    used_callee_saved.sort_unstable();
    Ok(Allocation { map, max_gpr, used_callee_saved, has_calls })
}

fn find_single(free: &[bool; 256], callee_only: bool) -> Option<u8> {
    let start = if callee_only { FIRST_CALLEE } else { FIRST_CALLER };
    (start..=LAST_ALLOC).find(|&r| free[r as usize])
}

fn find_pair(free: &[bool; 256], callee_only: bool) -> Option<u8> {
    let start = if callee_only { FIRST_CALLEE } else { FIRST_CALLER };
    let mut r = start + (start % 2);
    while r < LAST_ALLOC {
        if free[r as usize] && free[r as usize + 1] {
            return Some(r);
        }
        r += 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{FnCfg, Linear};
    use crate::parser::parse;

    fn alloc(src: &str) -> Allocation {
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        allocate(f, &lin, &cfg).unwrap()
    }

    #[test]
    fn distinct_live_values_get_distinct_registers() {
        let a = alloc(
            r#"
.entry k()
{
    .reg .u32 %r<4>;
    mov.u32 %r1, 1;
    mov.u32 %r2, 2;
    add.u32 %r3, %r1, %r2;
    st.global.u32 [%r3], %r3;
    exit;
}
"#,
        );
        // %r3's address use is bogus PTX (32-bit base) but allocation does
        // not care; r1, r2, r3 overlap pairwise.
        let l1 = a.map["%r1"];
        let l2 = a.map["%r2"];
        assert_ne!(l1, l2);
    }

    #[test]
    fn wide_registers_get_even_pairs() {
        let a = alloc(
            r#"
.entry k(.param .u64 p)
{
    .reg .u64 %rd<3>;
    ld.param.u64 %rd1, [p];
    add.u64 %rd2, %rd1, 8;
    st.global.u64 [%rd2], %rd1;
    exit;
}
"#,
        );
        for v in ["%rd1", "%rd2"] {
            match a.map[v] {
                Loc::Pair(r) => assert_eq!(r % 2, 0, "{v} pair not even-aligned"),
                other => panic!("{v} should be a pair, got {other:?}"),
            }
        }
    }

    #[test]
    fn registers_are_reused_after_death() {
        let a = alloc(
            r#"
.entry k()
{
    .reg .u32 %r<10>;
    mov.u32 %r1, 1;
    st.global.u32 [%r1], %r1;
    mov.u32 %r2, 2;
    st.global.u32 [%r2], %r2;
    mov.u32 %r3, 3;
    st.global.u32 [%r3], %r3;
    exit;
}
"#,
        );
        // All three die immediately; they can share one register.
        assert_eq!(a.map["%r1"], a.map["%r2"]);
        assert_eq!(a.map["%r2"], a.map["%r3"]);
    }

    #[test]
    fn values_live_across_calls_use_callee_saved() {
        let a = alloc(
            r#"
.func helper()
{
    ret;
}
.entry k()
{
    .reg .u32 %r<3>;
    mov.u32 %r1, 7;
    call helper;
    st.global.u32 [%r1], %r1;
    exit;
}
"#,
        );
        // Note: alloc() compiles functions[0] = helper; redo for k.
        let _ = a;
        let m = parse(
            r#"
.func helper()
{
    ret;
}
.entry k()
{
    .reg .u32 %r<3>;
    mov.u32 %r1, 7;
    call helper;
    st.global.u32 [%r1], %r1;
    exit;
}
"#,
        )
        .unwrap();
        let f = m.function("k").unwrap();
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        let a = allocate(f, &lin, &cfg).unwrap();
        match a.map["%r1"] {
            Loc::Gpr(r) => assert!(r >= FIRST_CALLEE, "live-across-call got caller-saved R{r}"),
            other => panic!("unexpected loc {other:?}"),
        }
        assert!(a.has_calls);
        assert!(!a.used_callee_saved.is_empty());
    }

    #[test]
    fn loop_carried_values_stay_allocated_through_the_loop() {
        let a = alloc(
            r#"
.entry k()
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, 0;
    mov.u32 %r2, 0;
TOP:
    add.u32 %r2, %r2, %r1;
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, 10;
    @%p1 bra TOP;
    st.global.u32 [%r2], %r2;
    exit;
}
"#,
        );
        // %r1 and %r2 are simultaneously live through the loop.
        assert_ne!(a.map["%r1"], a.map["%r2"]);
    }

    #[test]
    fn undeclared_register_is_a_semantic_error() {
        let m = parse(".entry k()\n{\n    mov.u32 %nope, 1;\n    exit;\n}\n").unwrap();
        let f = &m.functions[0];
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        assert!(matches!(allocate(f, &lin, &cfg), Err(PtxError::Semantic { .. })));
    }

    #[test]
    fn predicates_allocate_from_the_predicate_file() {
        let a = alloc(
            r#"
.entry k()
{
    .reg .u32 %r<2>;
    .reg .pred %p<3>;
    setp.eq.u32 %p1, %r1, 0;
    setp.ne.u32 %p2, %r1, 0;
    vote.ballot.b32 %r1, %p1;
    vote.ballot.b32 %r1, %p2;
    exit;
}
"#,
        );
        let (p1, p2) = (a.map["%p1"], a.map["%p2"]);
        assert!(matches!(p1, Loc::Pred(_)));
        assert!(matches!(p2, Loc::Pred(_)));
        assert_ne!(p1, p2);
    }
}
// (additional tests appended)
#[cfg(test)]
mod pressure_tests {
    use super::*;
    use crate::cfg::{FnCfg, Linear};
    use crate::parser::parse;

    #[test]
    fn exhausting_the_register_file_is_reported() {
        // 130 simultaneously-live 64-bit pairs = 260 slots > the file.
        let mut src = String::from(".entry k(.param .u64 p)\n{\n    .reg .u64 %rd<132>;\n");
        src.push_str("    ld.param.u64 %rd0, [p];\n");
        for i in 1..130 {
            src.push_str(&format!("    add.u64 %rd{i}, %rd0, {i};\n"));
        }
        // Keep them all live by storing each at the end.
        for i in 0..130 {
            src.push_str(&format!("    st.global.u64 [%rd0+{}], %rd{i};\n", 8 * i));
        }
        src.push_str("    exit;\n}\n");
        let m = parse(&src).unwrap();
        let f = &m.functions[0];
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        assert!(matches!(allocate(f, &lin, &cfg), Err(PtxError::OutOfRegisters { .. })));
    }

    #[test]
    fn exhausting_predicates_is_reported() {
        let mut src = String::from(".entry k()\n{\n    .reg .u32 %r<2>;\n    .reg .pred %p<9>;\n");
        for i in 0..8 {
            src.push_str(&format!("    setp.eq.u32 %p{i}, %r1, {i};\n"));
        }
        for i in 0..8 {
            src.push_str(&format!("    @%p{i} st.global.u32 [%r1], %r1;\n"));
        }
        src.push_str("    exit;\n}\n");
        let m = parse(&src).unwrap();
        let f = &m.functions[0];
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        assert!(matches!(allocate(f, &lin, &cfg), Err(PtxError::OutOfRegisters { .. })));
    }
}
