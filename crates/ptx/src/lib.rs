//! A PTX-like virtual ISA and backend compiler for the simulated GPU stack.
//!
//! **Paper mapping:** §4.2 — the JIT path that compiles PTX instrumentation
//! functions to SASS at run time, and the driver's module-load JIT for
//! applications shipping embedded PTX.
//!
//! This crate stands in for NVIDIA's PTX + `ptxas`/driver-JIT pipeline. It
//! provides:
//!
//! * a textual, typed, virtual-register IR closely modelled on PTX
//!   ([`ast`], [`parser`]);
//! * a backend compiler ([`compile_module`]) that performs control-flow
//!   analysis, reconvergence-point (`SSY`/`SYNC`) placement, linear-scan
//!   register allocation and instruction selection down to encoded SASS for
//!   any [`sass::Arch`];
//! * a reference interpreter ([`interp`]) with SIMT semantics, used for
//!   differential testing of the compiler and simulator;
//! * per-function metadata (register counts, stack sizes, call relocations,
//!   source-line tables) that the driver and the NVBit core consume.
//!
//! # Example
//!
//! ```
//! use ptx::compile_module;
//! use sass::Arch;
//!
//! let src = r#"
//! .entry scale_by_two(.param .u64 buf, .param .u32 n)
//! {
//!     .reg .u32 %r<4>;
//!     .reg .u64 %rd<3>;
//!     .reg .pred %p<2>;
//!     ld.param.u64 %rd1, [buf];
//!     ld.param.u32 %r1, [n];
//!     mov.u32 %r2, %tid.x;
//!     setp.ge.u32 %p1, %r2, %r1;
//!     @%p1 bra DONE;
//!     mul.wide.u32 %rd2, %r2, 4;
//!     add.u64 %rd2, %rd1, %rd2;
//!     ld.global.u32 %r3, [%rd2];
//!     add.u32 %r3, %r3, %r3;
//!     st.global.u32 [%rd2], %r3;
//! DONE:
//!     exit;
//! }
//! "#;
//! let module = compile_module(src, Arch::Volta).unwrap();
//! let f = &module.functions[0];
//! assert_eq!(f.name, "scale_by_two");
//! assert!(f.reg_count > 0);
//! assert!(!f.code.is_empty());
//! ```

pub mod ast;
pub mod builder;
pub mod cfg;
pub mod interp;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod regalloc;
pub mod types;

use sass::Arch;

pub use ast::{Function, FunctionKind, Module, PtxInstr, PtxOp, Statement};
pub use types::PtxType;

/// Errors from parsing, verification or compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum PtxError {
    /// Lexical or syntactic error with 1-based line number.
    Parse {
        /// Source line of the failure.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// Semantic error (undeclared register, type mismatch, bad operand).
    Semantic {
        /// Function in which the error occurred, if known.
        function: String,
        /// Explanation.
        reason: String,
    },
    /// The function needs more physical registers than the target provides.
    OutOfRegisters {
        /// Function that failed to allocate.
        function: String,
        /// Number of simultaneously-live 32-bit register slots required.
        required: usize,
    },
    /// Instruction selection produced SASS that the target family cannot
    /// encode (compiler bug: legalization should prevent this).
    Encode {
        /// Function being encoded.
        function: String,
        /// Underlying ISA error.
        source: sass::SassError,
    },
    /// The interpreter trapped (bad memory access, unsupported pattern).
    Interp {
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for PtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PtxError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            PtxError::Semantic { function, reason } => {
                write!(f, "semantic error in `{function}`: {reason}")
            }
            PtxError::OutOfRegisters { function, required } => write!(
                f,
                "function `{function}` requires {required} register slots, exceeding the target"
            ),
            PtxError::Encode { function, source } => {
                write!(f, "encoding failure in `{function}`: {source}")
            }
            PtxError::Interp { reason } => write!(f, "interpreter trap: {reason}"),
        }
    }
}

impl std::error::Error for PtxError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PtxError>;

/// A relocation record: instruction `instr_index` of the function holds an
/// absolute call/jump whose target is the load address of `target`.
///
/// Produced for `call` instructions; the module loader patches the operand
/// once target load addresses are known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Index (not byte offset) of the instruction to patch.
    pub instr_index: usize,
    /// Name of the function whose entry address is the operand value.
    pub target: String,
}

/// Layout of one kernel parameter in constant bank 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamInfo {
    /// Parameter name.
    pub name: String,
    /// Byte size (4 or 8).
    pub size: u32,
    /// Byte offset from the parameter-area base.
    pub offset: u32,
}

/// One entry of the source-correlation table: a SASS instruction index and
/// the source position it descends from (paper: `Instr::getLineInfo`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineInfo {
    /// SASS instruction index within the function body.
    pub instr_index: usize,
    /// Source file name.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
}

/// A function compiled to target SASS, plus the metadata the driver and the
/// instrumentation framework need.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// Whether this is a kernel entry point or a callable device function.
    pub kind: FunctionKind,
    /// Target architecture the code was generated for.
    pub arch: Arch,
    /// Encoded SASS bytes ready to load into device memory.
    pub code: Vec<u8>,
    /// Number of general-purpose registers used (highest index + 1).
    pub reg_count: u32,
    /// Per-thread local-memory stack bytes required.
    pub stack_size: u32,
    /// Static shared-memory bytes required.
    pub shared_size: u32,
    /// Kernel parameter layout (entry functions only).
    pub params: Vec<ParamInfo>,
    /// Call relocations to patch at load time.
    pub relocs: Vec<Reloc>,
    /// Names of functions this function may call (paper:
    /// `nvbit_get_related_funcs`).
    pub related: Vec<String>,
    /// Source correlation table; empty when compiled without `.loc`.
    pub line_table: Vec<LineInfo>,
    /// True when the function uses the `nvbit.readreg`/`nvbit.writereg`
    /// device-API intrinsics. Such functions address arbitrary slots of the
    /// register save area at run time, so the instrumentation code generator
    /// must not shrink the save tier below the instrumented function's full
    /// register demand.
    pub uses_reg_api: bool,
}

impl CompiledFunction {
    /// Decodes the function body back into instructions.
    ///
    /// # Panics
    ///
    /// Panics if `code` is corrupt, which cannot happen for values produced
    /// by [`compile_module`].
    pub fn decode(&self) -> Vec<sass::Instruction> {
        sass::codec::codec_for(self.arch)
            .decode_stream(&self.code)
            .expect("compiled code always decodes")
    }
}

/// A compiled module: the unit the driver loads.
#[derive(Debug, Clone)]
pub struct CompiledModule {
    /// Target architecture.
    pub arch: Arch,
    /// Compiled functions in source order.
    pub functions: Vec<CompiledFunction>,
}

impl CompiledModule {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&CompiledFunction> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Offset of the kernel parameter area within constant bank 0, matching the
/// real CUDA ABI's `c[0x0][0x160]`.
pub const PARAM_BASE: u32 = 0x160;

/// Parses PTX source into an AST module.
///
/// # Errors
///
/// Returns [`PtxError::Parse`] on malformed source.
pub fn parse_module(src: &str) -> Result<Module> {
    parser::parse(src)
}

/// Calling convention a module is compiled under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Abi {
    /// The standard convention: `R4`–`R15` caller-saved, `R16`+
    /// callee-saved (saved/restored by the function's prologue).
    #[default]
    Standard,
    /// The instrumentation convention: every register is scratch. Used for
    /// tool device functions, which are only ever entered from a trampoline
    /// that has already saved the registers the site needs — a callee-save
    /// prologue there would be pure overhead, and the register-pressure
    /// cost model accounts for the clobber width instead. Functions making
    /// `call`s are rejected under this ABI.
    Scratch,
}

/// Parses and compiles PTX source for a target architecture.
///
/// # Errors
///
/// Any of [`PtxError`]'s variants, depending on the failing stage.
pub fn compile_module(src: &str, arch: Arch) -> Result<CompiledModule> {
    compile_module_abi(src, arch, Abi::Standard)
}

/// [`compile_module`] under an explicit calling convention.
///
/// # Errors
///
/// See [`compile_module`]; additionally rejects `call` under
/// [`Abi::Scratch`].
pub fn compile_module_abi(src: &str, arch: Arch, abi: Abi) -> Result<CompiledModule> {
    let module = parser::parse(src)?;
    compile_ast_abi(&module, arch, abi)
}

/// Compiles an already-parsed module.
///
/// # Errors
///
/// See [`compile_module`].
pub fn compile_ast(module: &Module, arch: Arch) -> Result<CompiledModule> {
    compile_ast_abi(module, arch, Abi::Standard)
}

/// [`compile_ast`] under an explicit calling convention.
///
/// # Errors
///
/// See [`compile_module_abi`].
pub fn compile_ast_abi(module: &Module, arch: Arch, abi: Abi) -> Result<CompiledModule> {
    let mut functions = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        functions.push(lower::compile_function_abi(f, arch, abi)?);
    }
    Ok(CompiledModule { arch, functions })
}
