//! Control-flow graph and dominance analyses over PTX function bodies.
//!
//! Used by the backend for reconvergence-point (`SSY`) placement and by the
//! reference interpreter as its idealized reconvergence oracle.

use crate::ast::{Function, PtxInstr, PtxOp, Statement};
use std::collections::HashMap;

/// A function body flattened to instructions, with label and line-info side
/// tables.
#[derive(Debug)]
pub struct Linear<'a> {
    /// Instructions in program order.
    pub instrs: Vec<&'a PtxInstr>,
    /// Per-instruction source location from the nearest preceding `.loc`.
    pub loc: Vec<Option<(String, u32)>>,
    /// Label name → index of the instruction it precedes.
    pub labels: HashMap<String, usize>,
}

impl<'a> Linear<'a> {
    /// Flattens a function body.
    pub fn of(f: &'a Function) -> Linear<'a> {
        let mut instrs = Vec::new();
        let mut loc = Vec::new();
        let mut labels = HashMap::new();
        let mut cur: Option<(String, u32)> = None;
        for s in &f.body {
            match s {
                Statement::Label(l) => {
                    labels.insert(l.clone(), instrs.len());
                }
                Statement::Loc { file, line } => cur = Some((file.clone(), *line)),
                Statement::Instr(i) => {
                    instrs.push(i);
                    loc.push(cur.clone());
                }
            }
        }
        Linear { instrs, loc, labels }
    }
}

/// A basic block over the linearized instruction list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// The control-flow graph of a linearized function.
#[derive(Debug)]
pub struct FnCfg {
    /// Blocks in program order (block 0 is the entry).
    pub blocks: Vec<Block>,
    /// Block id of every instruction.
    pub instr_block: Vec<usize>,
}

impl FnCfg {
    /// Builds the CFG. Labels that never resolve are treated as function
    /// exits (the verifier reports them before code generation).
    pub fn build(lin: &Linear<'_>) -> FnCfg {
        let n = lin.instrs.len();
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        let target_of = |i: &PtxInstr| -> Option<usize> {
            match &i.op {
                PtxOp::Bra { target } => lin.labels.get(target).copied(),
                _ => None,
            }
        };
        let is_term = |i: &PtxInstr| {
            matches!(i.op, PtxOp::Bra { .. } | PtxOp::Ret | PtxOp::RetVal { .. } | PtxOp::Exit)
        };
        for (idx, i) in lin.instrs.iter().enumerate() {
            if let Some(t) = target_of(i) {
                if t < n {
                    leader[t] = true;
                }
            }
            if is_term(i) && idx + 1 < n {
                leader[idx + 1] = true;
            }
        }

        // Materialize the blocks.
        let mut blocks = Vec::new();
        let mut instr_block = vec![0usize; n];
        let mut start = 0usize;
        #[allow(clippy::needless_range_loop)] // index IS the leader position
        for idx in 1..=n {
            if idx == n || leader[idx] {
                let id = blocks.len();
                for slot in instr_block.iter_mut().take(idx).skip(start) {
                    *slot = id;
                }
                blocks.push(Block { start, end: idx, succs: Vec::new(), preds: Vec::new() });
                start = idx;
            }
        }

        // Edges.
        for bid in 0..blocks.len() {
            let last = blocks[bid].end - 1;
            let i = lin.instrs[last];
            let mut succs = Vec::new();
            match &i.op {
                PtxOp::Ret | PtxOp::RetVal { .. } | PtxOp::Exit => {}
                PtxOp::Bra { target } => {
                    if let Some(t) = lin.labels.get(target).copied() {
                        if t < n {
                            succs.push(instr_block[t]);
                        }
                    }
                    if i.guard.is_some() && bid + 1 < blocks.len() {
                        succs.push(bid + 1);
                    }
                }
                _ => {
                    if bid + 1 < blocks.len() {
                        succs.push(bid + 1);
                    }
                }
            }
            succs.dedup();
            for &s in &succs {
                blocks[s].preds.push(bid);
            }
            blocks[bid].succs = succs;
        }

        FnCfg { blocks, instr_block }
    }
}

/// Dominator (or post-dominator) tree over an arbitrary graph, computed with
/// the Cooper–Harvey–Kennedy iterative algorithm.
#[derive(Debug)]
pub struct Dominators {
    /// Immediate dominator of each node (`idom[root] == root`); `usize::MAX`
    /// for unreachable nodes.
    pub idom: Vec<usize>,
}

impl Dominators {
    /// Computes dominators of a graph given its successor function.
    pub fn compute(num: usize, root: usize, succs: impl Fn(usize) -> Vec<usize>) -> Dominators {
        // Reverse postorder from root.
        let mut order = Vec::with_capacity(num);
        let mut state = vec![0u8; num]; // 0 unvisited, 1 on stack, 2 done
        let mut stack = vec![(root, 0usize)];
        state[root] = 1;
        while let Some((node, child)) = stack.pop() {
            let ss = succs(node);
            if child < ss.len() {
                stack.push((node, child + 1));
                let next = ss[child];
                if state[next] == 0 {
                    state[next] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node] = 2;
                order.push(node);
            }
        }
        order.reverse(); // reverse postorder
        let mut rpo_index = vec![usize::MAX; num];
        for (i, &node) in order.iter().enumerate() {
            rpo_index[node] = i;
        }

        // Predecessor lists restricted to reachable nodes.
        let mut preds = vec![Vec::new(); num];
        for &node in &order {
            for s in succs(node) {
                if rpo_index[s] != usize::MAX {
                    preds[s].push(node);
                }
            }
        }

        let mut idom = vec![usize::MAX; num];
        idom[root] = root;
        let intersect = |idom: &[usize], rpo: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while rpo[a] > rpo[b] {
                    a = idom[a];
                }
                while rpo[b] > rpo[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &node in &order {
                if node == root {
                    continue;
                }
                let mut new_idom = usize::MAX;
                for &p in &preds[node] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_index, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[node] != new_idom {
                    idom[node] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut x = b;
        loop {
            if x == a {
                return true;
            }
            if self.idom[x] == usize::MAX || self.idom[x] == x {
                return x == a;
            }
            x = self.idom[x];
        }
    }
}

/// Computes immediate post-dominators of a CFG by running the dominator
/// algorithm on the reversed graph rooted at a virtual exit node.
///
/// Returns, per block, the immediate post-dominator block id, or `None` for
/// blocks post-dominated only by the virtual exit (e.g. blocks ending in
/// `exit` themselves).
pub fn ipostdom(cfg: &FnCfg) -> Vec<Option<usize>> {
    let n = cfg.blocks.len();
    let exit = n; // virtual exit node
    let succs_rev = |node: usize| -> Vec<usize> {
        if node == exit {
            // Virtual exit's "successors" in the reversed graph are the real
            // exit blocks (no successors) — i.e. its predecessors in the
            // forward graph.
            (0..n).filter(|&b| cfg.blocks[b].succs.is_empty()).collect()
        } else {
            cfg.blocks[node].preds.clone()
        }
    };
    let dom = Dominators::compute(n + 1, exit, succs_rev);
    (0..n)
        .map(|b| {
            let id = dom.idom[b];
            if id == usize::MAX || id == exit {
                None
            } else {
                Some(id)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> (usize, Vec<Vec<usize>>, Vec<Option<usize>>) {
        let m = parse(src).unwrap();
        let lin = Linear::of(&m.functions[0]);
        let cfg = FnCfg::build(&lin);
        let succs = cfg.blocks.iter().map(|b| b.succs.clone()).collect();
        let ipd = ipostdom(&cfg);
        (cfg.blocks.len(), succs, ipd)
    }

    const DIAMOND: &str = r#"
.entry k()
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %r1, 0;
    @%p1 bra ELSE;
    add.u32 %r2, %r1, 1;
    bra JOIN;
ELSE:
    add.u32 %r2, %r1, 2;
JOIN:
    mov.u32 %r3, %r2;
    exit;
}
"#;

    #[test]
    fn diamond_blocks_and_ipostdoms() {
        let (n, succs, ipd) = cfg_of(DIAMOND);
        assert_eq!(n, 4);
        assert_eq!(succs[0], vec![2, 1]); // cond branch: target ELSE, fallthrough THEN
        assert_eq!(succs[1], vec![3]); // THEN -> JOIN
        assert_eq!(succs[2], vec![3]); // ELSE -> JOIN
        assert!(succs[3].is_empty());
        assert_eq!(ipd[0], Some(3)); // branch reconverges at JOIN
        assert_eq!(ipd[1], Some(3));
        assert_eq!(ipd[2], Some(3));
        assert_eq!(ipd[3], None); // exits to the virtual exit
    }

    const LOOP: &str = r#"
.entry k()
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, 0;
TOP:
    add.u32 %r1, %r1, 1;
    setp.lt.u32 %p1, %r1, 10;
    @%p1 bra TOP;
    exit;
}
"#;

    #[test]
    fn loop_backedge_forms_a_cycle() {
        let (n, succs, ipd) = cfg_of(LOOP);
        assert_eq!(n, 3);
        assert_eq!(succs[0], vec![1]);
        assert_eq!(succs[1], vec![1, 2]); // backedge + exit
        assert_eq!(ipd[1], Some(2)); // loop body reconverges after the loop
        assert!(succs[2].is_empty());
    }

    #[test]
    fn dominators_on_diamond() {
        let m = parse(DIAMOND).unwrap();
        let lin = Linear::of(&m.functions[0]);
        let cfg = FnCfg::build(&lin);
        let dom = Dominators::compute(cfg.blocks.len(), 0, |b| cfg.blocks[b].succs.clone());
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn instr_block_maps_every_instruction() {
        let m = parse(DIAMOND).unwrap();
        let lin = Linear::of(&m.functions[0]);
        let cfg = FnCfg::build(&lin);
        assert_eq!(cfg.instr_block.len(), lin.instrs.len());
        for (idx, &b) in cfg.instr_block.iter().enumerate() {
            assert!(cfg.blocks[b].start <= idx && idx < cfg.blocks[b].end);
        }
    }

    #[test]
    fn loc_side_table_attaches_to_following_instructions() {
        let src = r#"
.entry k()
{
    .reg .u32 %r<2>;
    .loc "a.cu" 10 ;
    mov.u32 %r1, 1;
    .loc "a.cu" 11 ;
    exit;
}
"#;
        let m = parse(src).unwrap();
        let lin = Linear::of(&m.functions[0]);
        assert_eq!(lin.loc[0], Some(("a.cu".into(), 10)));
        assert_eq!(lin.loc[1], Some(("a.cu".into(), 11)));
    }
}
