//! Recursive-descent parser for the PTX dialect.

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use crate::types::PtxType;
use crate::{PtxError, Result};
use std::collections::BTreeMap;

/// Parses a full module.
///
/// # Errors
///
/// Returns [`PtxError::Parse`] on malformed source.
pub fn parse(src: &str) -> Result<Module> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut module = Module::default();
    while !p.at_end() {
        let w = p.peek_word().unwrap_or_default();
        match w.as_str() {
            ".version" | ".target" | ".address_size" => {
                p.bump();
                p.bump(); // the directive's value
            }
            ".visible" => {
                p.bump();
            }
            ".entry" | ".func" => {
                module.functions.push(p.function()?);
            }
            _ => {
                return Err(p.err(format!("expected a function or directive, found `{w}`")));
            }
        }
    }
    Ok(module)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|t| t.line).unwrap_or(0)
    }

    fn err(&self, reason: String) -> PtxError {
        PtxError::Parse { line: self.line(), reason }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_word(&self) -> Option<String> {
        match self.peek() {
            Some(Tok::Word(w)) => Some(w.clone()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn expect_word(&mut self) -> Result<String> {
        match self.bump() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        match self.bump() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_reg(&mut self) -> Result<String> {
        let w = self.expect_word()?;
        if w.starts_with('%') {
            Ok(w)
        } else {
            Err(self.err(format!("expected register, found `{w}`")))
        }
    }

    fn function(&mut self) -> Result<Function> {
        let kw = self.expect_word()?;
        let kind = match kw.as_str() {
            ".entry" => FunctionKind::Entry,
            ".func" => FunctionKind::Device,
            _ => unreachable!(),
        };

        // Optional return declaration: `(.reg .u32 %out)`.
        let mut ret = None;
        let mut ret_name = None;
        if kind == FunctionKind::Device && self.eat_punct('(') {
            let w = self.expect_word()?;
            if w != ".reg" {
                return Err(self.err(format!("expected `.reg` in return declaration, found `{w}`")));
            }
            let ty = self.type_word()?;
            let name = self.expect_reg()?;
            ret = Some(ty);
            ret_name = Some(name);
            self.expect_punct(')')?;
        }

        let name = self.expect_word()?;
        let mut params = Vec::new();
        if self.eat_punct('(') && !self.eat_punct(')') {
            loop {
                let lead = self.expect_word()?;
                let expected = match kind {
                    FunctionKind::Entry => ".param",
                    FunctionKind::Device => ".reg",
                };
                if lead != expected {
                    return Err(
                        self.err(format!("expected `{expected}` parameter, found `{lead}`"))
                    );
                }
                let ty = self.type_word()?;
                let pname = self.expect_word()?;
                params.push((pname, ty));
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }

        self.expect_punct('{')?;
        let mut regs: BTreeMap<String, PtxType> = BTreeMap::new();
        let mut shared = Vec::new();
        let mut body = Vec::new();

        // Device-function parameters and the return slot are virtual
        // registers seeded into the declaration table.
        if kind == FunctionKind::Device {
            for (pname, ty) in &params {
                regs.insert(pname.clone(), *ty);
            }
            if let (Some(rn), Some(rt)) = (&ret_name, ret) {
                regs.insert(rn.clone(), rt);
            }
        }

        loop {
            if self.eat_punct('}') {
                break;
            }
            let w = match self.peek() {
                Some(Tok::Word(w)) => w.clone(),
                Some(Tok::Punct('@')) => String::from("@"),
                other => return Err(self.err(format!("expected statement, found {other:?}"))),
            };
            match w.as_str() {
                ".reg" => {
                    self.bump();
                    let ty = self.type_word()?;
                    // `.reg .u32 %r<10>;` or `.reg .u32 %x;`
                    let base = self.expect_reg()?;
                    if self.eat_punct('<') {
                        let count = self.int_literal()? as usize;
                        self.expect_punct('>')?;
                        for i in 0..count.max(1) {
                            regs.insert(format!("{base}{i}"), ty);
                        }
                    } else {
                        regs.insert(base, ty);
                    }
                    self.expect_punct(';')?;
                }
                ".shared" => {
                    self.bump();
                    let mut align = 4u32;
                    let mut w2 = self.expect_word()?;
                    if w2 == ".align" {
                        align = self.int_literal()? as u32;
                        w2 = self.expect_word()?;
                    }
                    if w2 != ".b8" {
                        return Err(
                            self.err(format!("shared declarations use `.b8`, found `{w2}`"))
                        );
                    }
                    let sname = self.expect_word()?;
                    self.expect_punct('[')?;
                    let bytes = self.int_literal()? as u32;
                    self.expect_punct(']')?;
                    self.expect_punct(';')?;
                    shared.push(SharedDecl { name: sname, bytes, align });
                }
                ".loc" => {
                    self.bump();
                    let file = match self.bump() {
                        Some(Tok::Str(s)) => s,
                        other => {
                            return Err(self.err(format!("expected file string, found {other:?}")))
                        }
                    };
                    let line = self.int_literal()? as u32;
                    self.eat_punct(';');
                    body.push(Statement::Loc { file, line });
                }
                _ => {
                    // Label (`IDENT:`) or instruction.
                    if w != "@"
                        && !w.starts_with('%')
                        && !w.starts_with('.')
                        && matches!(
                            self.toks.get(self.pos + 1).map(|t| &t.tok),
                            Some(Tok::Punct(':'))
                        )
                    {
                        self.bump();
                        self.bump();
                        body.push(Statement::Label(w));
                        continue;
                    }
                    let instr = self.instruction(&regs)?;
                    body.push(Statement::Instr(instr));
                }
            }
        }

        Ok(Function { name, kind, params, ret, ret_reg: ret_name, regs, shared, body })
    }

    fn type_word(&mut self) -> Result<PtxType> {
        let w = self.expect_word()?;
        let s = w.strip_prefix('.').unwrap_or(&w);
        PtxType::from_suffix(s).ok_or_else(|| self.err(format!("unknown type `{w}`")))
    }

    fn int_literal(&mut self) -> Result<i64> {
        let neg = self.eat_punct('-');
        match self.bump() {
            Some(Tok::Num(n)) => {
                let v = parse_int(&n).ok_or_else(|| self.err(format!("bad integer `{n}`")))?;
                Ok(if neg { -v } else { v })
            }
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    /// Parses a source operand: register or typed immediate.
    fn src(&mut self, ty: PtxType) -> Result<Src> {
        match self.peek() {
            Some(Tok::Word(w)) if w.starts_with('%') => {
                let w = w.clone();
                self.bump();
                Ok(Src::Reg(w))
            }
            _ => {
                let neg = self.eat_punct('-');
                match self.bump() {
                    Some(Tok::Num(n)) => {
                        let bits = parse_typed_literal(&n, neg, ty)
                            .ok_or_else(|| self.err(format!("bad literal `{n}` for {ty}")))?;
                        Ok(Src::Imm(bits))
                    }
                    other => Err(self.err(format!("expected operand, found {other:?}"))),
                }
            }
        }
    }

    fn addr(&mut self) -> Result<Address> {
        self.expect_punct('[')?;
        let w = self.expect_word()?;
        let base = if w.starts_with('%') { AddrBase::Reg(w) } else { AddrBase::Shared(w) };
        let mut offset = 0i32;
        if self.eat_punct('+') {
            offset = self.int_literal()? as i32;
        } else if self.eat_punct('-') {
            offset = -(self.int_literal()? as i32);
        }
        self.expect_punct(']')?;
        Ok(Address { base, offset })
    }

    fn comma(&mut self) -> Result<()> {
        self.expect_punct(',')
    }

    fn semi(&mut self) -> Result<()> {
        self.expect_punct(';')
    }

    fn instruction(&mut self, _regs: &BTreeMap<String, PtxType>) -> Result<PtxInstr> {
        // Guard.
        let guard = if self.eat_punct('@') {
            let negated = self.eat_punct('!');
            let reg = self.expect_reg()?;
            Some(PtxGuard { reg, negated })
        } else {
            None
        };

        let opw = self.expect_word()?;
        let parts: Vec<&str> = opw.split('.').collect();
        let head = parts[0];

        let op = match head {
            "ld" => self.ld(&parts)?,
            "st" => self.st(&parts)?,
            "mov" => self.mov(&parts)?,
            "add" | "sub" | "min" | "max" | "and" | "or" | "xor" | "shl" | "shr" => {
                self.bin(head, &parts)?
            }
            "mul" => self.mul(&parts)?,
            "mad" | "fma" => self.mad(&parts)?,
            "setp" => self.setp(&parts)?,
            "selp" => self.selp(&parts)?,
            "cvt" => self.cvt(&parts)?,
            "bra" => {
                let target = self.expect_word()?;
                PtxOp::Bra { target }
            }
            "call" => self.call()?,
            "ret" => {
                if parts.get(1) == Some(&"val") {
                    let src = self.expect_reg()?;
                    PtxOp::RetVal { src }
                } else {
                    PtxOp::Ret
                }
            }
            "exit" => PtxOp::Exit,
            "bar" => {
                // `bar.sync 0;`
                let _ = self.int_literal();
                PtxOp::BarSync
            }
            "membar" => PtxOp::Membar,
            "atom" => self.atom(&parts)?,
            "red" => self.red(&parts)?,
            "vote" => self.vote(&parts)?,
            "shfl" => self.shfl(&parts)?,
            "popc" => {
                let dst = self.expect_reg()?;
                self.comma()?;
                let src = self.expect_reg()?;
                PtxOp::Popc { dst, src }
            }
            "rcp" | "sqrt" | "rsq" | "sin" | "cos" | "ex2" | "lg2" => {
                let func = match head {
                    "rcp" => MufuFunc::Rcp,
                    "sqrt" => MufuFunc::Sqrt,
                    "rsq" => MufuFunc::Rsq,
                    "sin" => MufuFunc::Sin,
                    "cos" => MufuFunc::Cos,
                    "ex2" => MufuFunc::Ex2,
                    _ => MufuFunc::Lg2,
                };
                let dst = self.expect_reg()?;
                self.comma()?;
                let src = self.expect_reg()?;
                PtxOp::Mufu { func, dst, src }
            }
            "proxy" => {
                let dst = self.expect_reg()?;
                self.comma()?;
                let src = self.expect_reg()?;
                self.comma()?;
                let name = match self.bump() {
                    Some(Tok::Str(s)) => s,
                    other => {
                        return Err(self.err(format!("expected proxy name string, found {other:?}")))
                    }
                };
                PtxOp::Proxy { dst, src, name }
            }
            "chan" => match parts.get(1) {
                Some(&"push") => {
                    let src = self.expect_reg()?;
                    PtxOp::ChanPush { src }
                }
                other => return Err(self.err(format!("unknown chan intrinsic {other:?}"))),
            },
            "nvbit" => match parts.get(1) {
                Some(&"readreg") => {
                    let dst = self.expect_reg()?;
                    self.comma()?;
                    let idx = self.src(PtxType::U32)?;
                    PtxOp::NvReadReg { dst, idx }
                }
                Some(&"writereg") => {
                    let idx = self.src(PtxType::U32)?;
                    self.comma()?;
                    let src = self.expect_reg()?;
                    PtxOp::NvWriteReg { idx, src }
                }
                other => return Err(self.err(format!("unknown nvbit intrinsic {other:?}"))),
            },
            other => return Err(self.err(format!("unknown opcode `{other}`"))),
        };
        self.semi()?;
        Ok(PtxInstr { guard, op })
    }

    fn tail_type(&mut self, parts: &[&str]) -> Result<PtxType> {
        let last = parts.last().copied().unwrap_or_default();
        PtxType::from_suffix(last)
            .ok_or_else(|| self.err(format!("missing type suffix in `{}`", parts.join("."))))
    }

    fn space(&mut self, s: &str) -> Result<Space> {
        match s {
            "global" => Ok(Space::Global),
            "shared" => Ok(Space::Shared),
            "local" => Ok(Space::Local),
            other => Err(self.err(format!("unknown memory space `{other}`"))),
        }
    }

    fn ld(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        if parts.get(1) == Some(&"param") {
            let dst = self.expect_reg()?;
            self.comma()?;
            self.expect_punct('[')?;
            let param = self.expect_word()?;
            let mut offset = 0u32;
            if self.eat_punct('+') {
                offset = self.int_literal()? as u32;
            }
            self.expect_punct(']')?;
            return Ok(PtxOp::LdParam { ty, dst, param, offset });
        }
        let space = self.space(parts.get(1).copied().unwrap_or_default())?;
        let dst = self.expect_reg()?;
        self.comma()?;
        let addr = self.addr()?;
        Ok(PtxOp::Ld { space, ty, dst, addr })
    }

    fn st(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let space = self.space(parts.get(1).copied().unwrap_or_default())?;
        let addr = self.addr()?;
        self.comma()?;
        let src = self.expect_reg()?;
        Ok(PtxOp::St { space, ty, addr, src })
    }

    fn mov(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let dst = self.expect_reg()?;
        self.comma()?;
        // Source: special register, plain register, immediate, or a shared
        // variable name (address-of).
        match self.peek() {
            Some(Tok::Word(w)) if w.starts_with('%') => {
                let w = w.clone();
                if let Some(special) = parse_special(&w) {
                    self.bump();
                    Ok(PtxOp::Mov { ty, dst, src: None, special: Some(special), shared_addr: None })
                } else {
                    self.bump();
                    Ok(PtxOp::Mov {
                        ty,
                        dst,
                        src: Some(Src::Reg(w)),
                        special: None,
                        shared_addr: None,
                    })
                }
            }
            Some(Tok::Word(w)) => {
                let w = w.clone();
                self.bump();
                Ok(PtxOp::Mov { ty, dst, src: None, special: None, shared_addr: Some(w) })
            }
            _ => {
                let src = self.src(ty)?;
                Ok(PtxOp::Mov { ty, dst, src: Some(src), special: None, shared_addr: None })
            }
        }
    }

    fn bin(&mut self, head: &str, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let kind = match head {
            "add" => BinKind::Add,
            "sub" => BinKind::Sub,
            "min" => BinKind::Min,
            "max" => BinKind::Max,
            "and" => BinKind::And,
            "or" => BinKind::Or,
            "xor" => BinKind::Xor,
            "shl" => BinKind::Shl,
            "shr" => BinKind::Shr,
            _ => unreachable!(),
        };
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(ty)?;
        Ok(PtxOp::Bin { kind, ty, dst, a, b })
    }

    fn mul(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let kind = match parts.get(1) {
            Some(&"wide") => BinKind::MulWide,
            _ => BinKind::MulLo, // `.lo` explicit or float `mul.f32`
        };
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(ty)?;
        Ok(PtxOp::Bin { kind, ty, dst, a, b })
    }

    fn mad(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let wide = parts.get(1) == Some(&"wide");
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(ty)?;
        self.comma()?;
        let c = self.expect_reg()?;
        Ok(PtxOp::Mad { wide, ty, dst, a, b, c })
    }

    fn setp(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let cmp = parts
            .get(1)
            .and_then(|s| PCmp::from_suffix(s))
            .ok_or_else(|| self.err("setp requires a comparison suffix".into()))?;
        let ty = self.tail_type(parts)?;
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(ty)?;
        Ok(PtxOp::Setp { cmp, ty, dst, a, b })
    }

    fn selp(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let ty = self.tail_type(parts)?;
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(ty)?;
        self.comma()?;
        let p = self.expect_reg()?;
        Ok(PtxOp::Selp { ty, dst, a, b, p })
    }

    fn cvt(&mut self, parts: &[&str]) -> Result<PtxOp> {
        // `cvt.dty.sty` with an optional rounding part we ignore
        // (`cvt.rn.f32.s32`).
        let tys: Vec<PtxType> = parts[1..].iter().filter_map(|s| PtxType::from_suffix(s)).collect();
        if tys.len() != 2 {
            return Err(
                self.err(format!("cvt requires two type suffixes in `{}`", parts.join(".")))
            );
        }
        let dst = self.expect_reg()?;
        self.comma()?;
        let src = self.expect_reg()?;
        Ok(PtxOp::Cvt { dty: tys[0], sty: tys[1], dst, src })
    }

    fn call(&mut self) -> Result<PtxOp> {
        // `call (%ret), name, (%a, %b);` | `call name, (%a);` | `call name;`
        let mut ret = None;
        if self.eat_punct('(') {
            ret = Some(self.expect_reg()?);
            self.expect_punct(')')?;
            self.comma()?;
        }
        let func = self.expect_word()?;
        let mut args = Vec::new();
        if self.eat_punct(',') {
            self.expect_punct('(')?;
            if !self.eat_punct(')') {
                loop {
                    args.push(self.expect_reg()?);
                    if self.eat_punct(')') {
                        break;
                    }
                    self.expect_punct(',')?;
                }
            }
        }
        Ok(PtxOp::Call { ret, func, args })
    }

    fn atom(&mut self, parts: &[&str]) -> Result<PtxOp> {
        if parts.get(1) != Some(&"global") {
            return Err(self.err("atomics are supported on global memory only".into()));
        }
        let op = parts
            .get(2)
            .and_then(|s| AtomOp::from_suffix(s))
            .ok_or_else(|| self.err("atom requires an operation suffix".into()))?;
        let ty = self.tail_type(parts)?;
        let dst = self.expect_reg()?;
        self.comma()?;
        let addr = self.addr()?;
        self.comma()?;
        let src = self.expect_reg()?;
        let src2 = if self.eat_punct(',') { Some(self.expect_reg()?) } else { None };
        if (op == AtomOp::Cas) != src2.is_some() {
            return Err(self.err("cas takes two value operands; other atomics take one".into()));
        }
        Ok(PtxOp::Atom { op, ty, dst, addr, src, src2 })
    }

    fn red(&mut self, parts: &[&str]) -> Result<PtxOp> {
        if parts.get(1) != Some(&"global") {
            return Err(self.err("reductions are supported on global memory only".into()));
        }
        let op = parts
            .get(2)
            .and_then(|s| AtomOp::from_suffix(s))
            .ok_or_else(|| self.err("red requires an operation suffix".into()))?;
        let ty = self.tail_type(parts)?;
        let addr = self.addr()?;
        self.comma()?;
        let src = self.expect_reg()?;
        Ok(PtxOp::Red { op, ty, addr, src })
    }

    fn vote(&mut self, parts: &[&str]) -> Result<PtxOp> {
        let mode = match parts.get(1) {
            Some(&"all") => VoteMode::All,
            Some(&"any") => VoteMode::Any,
            Some(&"ballot") => VoteMode::Ballot,
            other => return Err(self.err(format!("unknown vote mode {other:?}"))),
        };
        let dst = self.expect_reg()?;
        self.comma()?;
        let negated = self.eat_punct('!');
        let src = self.expect_reg()?;
        Ok(PtxOp::Vote { mode, dst, src, negated })
    }

    fn shfl(&mut self, parts: &[&str]) -> Result<PtxOp> {
        // Accept both `shfl.mode.b32` and `shfl.sync.mode.b32`.
        let mode_str = if parts.get(1) == Some(&"sync") { parts.get(2) } else { parts.get(1) };
        let mode = match mode_str {
            Some(&"idx") => ShflMode::Idx,
            Some(&"up") => ShflMode::Up,
            Some(&"down") => ShflMode::Down,
            Some(&"bfly") => ShflMode::Bfly,
            other => return Err(self.err(format!("unknown shfl mode {other:?}"))),
        };
        let dst = self.expect_reg()?;
        self.comma()?;
        let a = self.expect_reg()?;
        self.comma()?;
        let b = self.src(PtxType::U32)?;
        Ok(PtxOp::Shfl { mode, dst, a, b })
    }
}

fn parse_int(s: &str) -> Option<i64> {
    if let Some(h) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).ok().map(|v| v as i64)
    } else {
        s.parse::<i64>().ok()
    }
}

/// Parses a literal token under a type context, producing the canonical
/// immediate bits (f32 bits are sign-extended from 32; integer u32 values
/// are canonicalized the same way).
fn parse_typed_literal(tok: &str, neg: bool, ty: PtxType) -> Option<i64> {
    // Raw-bits float forms.
    if let Some(h) = tok.strip_prefix("0f").or_else(|| tok.strip_prefix("0F")) {
        if h.len() == 8 {
            let bits = u32::from_str_radix(h, 16).ok()?;
            return Some((bits as i32) as i64);
        }
    }
    if let Some(h) = tok.strip_prefix("0d").or_else(|| tok.strip_prefix("0D")) {
        if h.len() == 16 {
            return Some(u64::from_str_radix(h, 16).ok()? as i64);
        }
    }
    match ty {
        PtxType::F32 => {
            let v: f32 = tok.parse().ok()?;
            let v = if neg { -v } else { v };
            Some((v.to_bits() as i32) as i64)
        }
        PtxType::F64 => {
            let v: f64 = tok.parse().ok()?;
            let v = if neg { -v } else { v };
            Some(v.to_bits() as i64)
        }
        PtxType::U32 | PtxType::S32 | PtxType::B32 => {
            let v = parse_int(tok)?;
            let v = if neg { -v } else { v };
            Some((v as i32) as i64)
        }
        PtxType::U64 | PtxType::S64 | PtxType::B64 => {
            let v = parse_int(tok)?;
            Some(if neg { -v } else { v })
        }
        PtxType::Pred => None,
    }
}

fn parse_special(w: &str) -> Option<PtxSpecial> {
    let comp = |s: &str| -> Option<u8> {
        match s {
            "x" => Some(0),
            "y" => Some(1),
            "z" => Some(2),
            _ => None,
        }
    };
    if let Some(rest) = w.strip_prefix("%tid.") {
        return comp(rest).map(PtxSpecial::Tid);
    }
    if let Some(rest) = w.strip_prefix("%ntid.") {
        return comp(rest).map(PtxSpecial::NTid);
    }
    if let Some(rest) = w.strip_prefix("%ctaid.") {
        return comp(rest).map(PtxSpecial::CtaId);
    }
    if let Some(rest) = w.strip_prefix("%nctaid.") {
        return comp(rest).map(PtxSpecial::NCtaId);
    }
    match w {
        "%laneid" => Some(PtxSpecial::LaneId),
        "%warpid" => Some(PtxSpecial::WarpId),
        "%smid" => Some(PtxSpecial::SmId),
        "%clock" => Some(PtxSpecial::Clock),
        "%activemask" => Some(PtxSpecial::ActiveMask),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VECADD: &str = r#"
.version 6.0
.target sm_70
.visible .entry vecadd(.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;

    ld.param.u64 %rd1, [a];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r5, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r5, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r5, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
    add.f32 %f1, %f1, 0f3F800000;
    st.global.f32 [%rd5], %f1;
DONE:
    exit;
}
"#;

    #[test]
    fn parses_a_full_kernel() {
        let m = parse(VECADD).unwrap();
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "vecadd");
        assert_eq!(f.kind, FunctionKind::Entry);
        assert_eq!(f.params.len(), 4);
        assert_eq!(f.regs.get("%r5"), Some(&PtxType::U32));
        assert_eq!(f.regs.get("%p1"), Some(&PtxType::Pred));
        let labels: Vec<_> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Statement::Label(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["DONE"]);
    }

    #[test]
    fn guards_and_immediates_parse() {
        let m = parse(VECADD).unwrap();
        let f = &m.functions[0];
        let instrs: Vec<_> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Statement::Instr(i) => Some(i),
                _ => None,
            })
            .collect();
        // The guarded branch.
        let bra = instrs.iter().find(|i| matches!(i.op, PtxOp::Bra { .. })).unwrap();
        assert_eq!(bra.guard.as_ref().unwrap().reg, "%p1");
        // The float literal 1.0 parsed as raw bits.
        let addf = instrs
            .iter()
            .find_map(|i| match &i.op {
                PtxOp::Bin { kind: BinKind::Add, ty: PtxType::F32, b: Src::Imm(v), .. } => Some(*v),
                _ => None,
            })
            .unwrap();
        assert_eq!(addf as u32, 1.0f32.to_bits());
    }

    #[test]
    fn device_functions_with_returns_parse() {
        let src = r#"
.func (.reg .u32 %out) square(.reg .u32 %x)
{
    mul.lo.u32 %out, %x, %x;
    ret;
}
"#;
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.kind, FunctionKind::Device);
        assert_eq!(f.ret, Some(PtxType::U32));
        assert_eq!(f.ret_reg.as_deref(), Some("%out"));
        assert_eq!(f.params, vec![("%x".to_string(), PtxType::U32)]);
    }

    #[test]
    fn calls_parse_with_and_without_returns() {
        let src = r#"
.entry k()
{
    .reg .u32 %r<3>;
    call (%r1), square, (%r2);
    call helper, (%r1);
    call barefn;
    exit;
}
"#;
        let m = parse(src).unwrap();
        let calls: Vec<_> = m.functions[0]
            .body
            .iter()
            .filter_map(|s| match s {
                Statement::Instr(PtxInstr { op: PtxOp::Call { ret, func, args }, .. }) => {
                    Some((ret.clone(), func.clone(), args.len()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            calls,
            vec![
                (Some("%r1".into()), "square".into(), 1),
                (None, "helper".into(), 1),
                (None, "barefn".into(), 0),
            ]
        );
    }

    #[test]
    fn shared_decls_and_loc_parse() {
        let src = r#"
.entry k()
{
    .shared .align 8 .b8 tile[1024];
    .reg .u32 %r<3>;
    .loc "kern.cu" 42 ;
    mov.u32 %r1, tile;
    st.shared.u32 [%r1+16], %r2;
    bar.sync 0;
    exit;
}
"#;
        let m = parse(src).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.shared[0].bytes, 1024);
        assert_eq!(f.shared[0].align, 8);
        assert!(f
            .body
            .iter()
            .any(|s| matches!(s, Statement::Loc { file, line: 42 } if file == "kern.cu")));
    }

    #[test]
    fn rejects_unknown_opcode_with_line() {
        let src = ".entry k()\n{\n    frobnicate %r1;\n}\n";
        match parse(src) {
            Err(PtxError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn atomics_and_warp_ops_parse() {
        let src = r#"
.entry k(.param .u64 p)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<2>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [p];
    atom.global.add.u32 %r1, [%rd1], %r2;
    atom.global.cas.u32 %r1, [%rd1+8], %r2, %r3;
    red.global.add.f32 [%rd1+16], %r4;
    vote.ballot.b32 %r5, !%p1;
    shfl.bfly.b32 %r1, %r2, 16;
    popc.b32 %r1, %r5;
    exit;
}
"#;
        let m = parse(src).unwrap();
        assert_eq!(m.functions.len(), 1);
    }
}
