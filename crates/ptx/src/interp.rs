//! Reference interpreter with SIMT semantics.
//!
//! Executes entry kernels directly at the PTX level, using an idealized
//! immediate-post-dominator reconvergence oracle (legitimate here because
//! PTX is never rewritten — unlike the machine code, which NVBit patches and
//! which therefore uses the runtime `SSY`/`SYNC` discipline in the `gpu`
//! crate). The interpreter is the differential-testing oracle for the
//! compiler + simulator pipeline: for any supported program, compiled SASS
//! executed by the simulator must produce byte-identical global memory.

use crate::ast::*;
use crate::cfg::{ipostdom, FnCfg, Linear};
use crate::types::PtxType;
use crate::{PtxError, Result};
pub use common::Dim3;
use std::collections::HashMap;

/// Launch dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchGrid {
    /// Grid dimensions in blocks.
    pub grid: Dim3,
    /// Block dimensions in threads.
    pub block: Dim3,
}

impl LaunchGrid {
    /// A 1-D launch.
    pub fn linear(blocks: u32, threads: u32) -> LaunchGrid {
        LaunchGrid { grid: Dim3::linear(blocks), block: Dim3::linear(threads) }
    }

    /// Total threads per block.
    pub fn block_size(&self) -> u32 {
        self.block.count() as u32
    }

    /// Total blocks.
    pub fn grid_size(&self) -> u32 {
        self.grid.count() as u32
    }
}

/// A kernel parameter value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// 32-bit integer (also used for `f32` bit patterns via [`ParamValue::f32`]).
    U32(u32),
    /// 64-bit integer / pointer into the interpreter's global memory.
    U64(u64),
}

impl ParamValue {
    /// Wraps an `f32` as its bit pattern.
    pub fn f32(v: f32) -> ParamValue {
        ParamValue::U32(v.to_bits())
    }
}

/// Execution statistics of an interpreted launch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterpOutcome {
    /// Thread-level instructions executed (sum over active lanes).
    pub thread_instructions: u64,
    /// Warp-level instructions executed.
    pub warp_instructions: u64,
}

const WARP: usize = 32;

/// Interprets an entry kernel over a full grid.
///
/// `mem` is the flat global memory; `u64` parameters index into it.
///
/// # Errors
///
/// [`PtxError::Interp`] on out-of-bounds accesses, unsupported constructs
/// (`proxy`, device-API intrinsics, guarded calls) or barrier deadlock.
pub fn interpret_entry(
    module: &Module,
    name: &str,
    launch: LaunchGrid,
    params: &[ParamValue],
    mem: &mut [u8],
) -> Result<InterpOutcome> {
    let f = module
        .function(name)
        .ok_or_else(|| PtxError::Interp { reason: format!("no kernel `{name}`") })?;
    if f.kind != FunctionKind::Entry {
        return Err(PtxError::Interp { reason: format!("`{name}` is not an entry kernel") });
    }
    if params.len() != f.params.len() {
        return Err(PtxError::Interp {
            reason: format!(
                "kernel `{name}` takes {} params, got {}",
                f.params.len(),
                params.len()
            ),
        });
    }
    let mut outcome = InterpOutcome::default();
    let mut machine = Machine { module, mem, outcome: &mut outcome };
    for bz in 0..launch.grid.z {
        for by in 0..launch.grid.y {
            for bx in 0..launch.grid.x {
                machine.run_block(f, launch, Dim3::xyz(bx, by, bz), params)?;
            }
        }
    }
    Ok(outcome)
}

/// Per-function interpretation context, reused for device-function calls.
struct Frame<'a> {
    f: &'a Function,
    lin: Linear<'a>,
    cfg: FnCfg,
    /// Per-instruction reconvergence PC (first instruction of the branch
    /// block's immediate post-dominator), if any.
    rpc_of: Vec<Option<usize>>,
    /// Virtual register name → slot index.
    slots: HashMap<&'a str, usize>,
    types: Vec<PtxType>,
}

impl<'a> Frame<'a> {
    fn new(f: &'a Function) -> Frame<'a> {
        let lin = Linear::of(f);
        let cfg = FnCfg::build(&lin);
        let ipd = ipostdom(&cfg);
        let rpc_of = (0..lin.instrs.len())
            .map(|idx| {
                let b = cfg.instr_block[idx];
                ipd[b].map(|d| cfg.blocks[d].start)
            })
            .collect();
        let mut slots = HashMap::new();
        let mut types = Vec::new();
        for (name, ty) in &f.regs {
            slots.insert(name.as_str(), types.len());
            types.push(*ty);
        }
        Frame { f, lin, cfg, rpc_of, slots, types }
    }

    fn slot(&self, name: &str) -> Result<usize> {
        self.slots
            .get(name)
            .copied()
            .ok_or_else(|| PtxError::Interp { reason: format!("undeclared register `{name}`") })
    }
}

/// One SIMT-stack entry.
#[derive(Debug, Clone)]
struct StackEntry {
    pc: usize,
    rpc: Option<usize>,
    mask: u32,
}

/// Warp state within one function activation.
struct WarpState {
    stack: Vec<StackEntry>,
    /// Per-lane register files (slot-indexed raw bits).
    regs: Vec<Vec<u64>>,
    preds: Vec<Vec<bool>>,
    /// Lanes waiting at a `bar.sync`.
    at_barrier: bool,
    done: bool,
}

struct Machine<'m, 'a> {
    module: &'a Module,
    mem: &'m mut [u8],
    outcome: &'m mut InterpOutcome,
}

impl<'m, 'a> Machine<'m, 'a> {
    fn run_block(
        &mut self,
        f: &'a Function,
        launch: LaunchGrid,
        block_id: Dim3,
        params: &[ParamValue],
    ) -> Result<()> {
        let frame = Frame::new(f);
        let bs = launch.block_size() as usize;
        let warps = bs.div_ceil(WARP);
        let shared_size: u32 = f
            .shared
            .iter()
            .map(|s| {
                let a = s.align.max(4);
                // Offsets are assigned in order with alignment, matching
                // the backend's layout.
                s.bytes.div_ceil(a) * a
            })
            .sum();
        let mut shared = vec![0u8; shared_size.max(4) as usize];
        let mut locals: Vec<Vec<u8>> = vec![vec![0u8; 4096]; bs];

        let mut states: Vec<WarpState> = (0..warps)
            .map(|w| {
                let lanes = (bs - w * WARP).min(WARP);
                let mask = if lanes == 32 { u32::MAX } else { (1u32 << lanes) - 1 };
                WarpState {
                    stack: vec![StackEntry { pc: 0, rpc: None, mask }],
                    regs: vec![vec![0u64; frame.types.len()]; WARP],
                    preds: vec![vec![false; frame.types.len()]; WARP],
                    at_barrier: false,
                    done: false,
                }
            })
            .collect();

        // Round-robin warps until the block finishes, releasing barriers
        // when every live warp arrives.
        loop {
            let mut progressed = false;
            #[allow(clippy::needless_range_loop)] // w doubles as the warp id
            for w in 0..warps {
                if states[w].done || states[w].at_barrier {
                    continue;
                }
                progressed = true;
                self.run_warp(
                    &frame,
                    &mut states[w],
                    launch,
                    block_id,
                    w,
                    params,
                    &mut shared,
                    &mut locals,
                )?;
            }
            if states.iter().all(|s| s.done) {
                break;
            }
            if states.iter().all(|s| s.done || s.at_barrier) {
                if states.iter().any(|s| s.at_barrier) {
                    for s in &mut states {
                        s.at_barrier = false;
                    }
                } else {
                    break;
                }
            } else if !progressed {
                return Err(PtxError::Interp { reason: "barrier deadlock".into() });
            }
        }
        Ok(())
    }

    /// Runs one warp until it exits or reaches a barrier.
    #[allow(clippy::too_many_arguments)]
    fn run_warp(
        &mut self,
        frame: &Frame<'a>,
        st: &mut WarpState,
        launch: LaunchGrid,
        block_id: Dim3,
        warp_idx: usize,
        params: &[ParamValue],
        shared: &mut [u8],
        locals: &mut [Vec<u8>],
    ) -> Result<()> {
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            if steps > 100_000_000 {
                return Err(PtxError::Interp { reason: "runaway kernel (100M steps)".into() });
            }
            // Merge at reconvergence points: a path that reaches its rpc is
            // folded into the reconvergence entry deeper in the stack (which
            // waits with `pc == rpc` and accumulates arriving lanes).
            #[allow(clippy::while_let_loop)] // the loop has three exits
            loop {
                let Some(top) = st.stack.last() else { break };
                if top.mask == 0 && st.stack.len() > 1 {
                    st.stack.pop();
                    continue;
                }
                let (pc, rpc, is_path) = (top.pc, top.rpc, st.stack.len());
                if let Some(rpc) = rpc {
                    if pc == rpc && is_path >= 2 {
                        let popped = st.stack.pop().unwrap();
                        if let Some(anc) =
                            st.stack.iter_mut().rev().find(|e| e.pc == popped.rpc.unwrap())
                        {
                            anc.mask |= popped.mask;
                        } else {
                            // No reconvergence ancestor (should not happen):
                            // continue as an independent entry.
                            st.stack.push(StackEntry {
                                pc: popped.pc,
                                rpc: None,
                                mask: popped.mask,
                            });
                            break;
                        }
                        continue;
                    }
                }
                break;
            }
            // A lone empty entry means every lane has exited.
            if st.stack.len() == 1 && st.stack[0].mask == 0 {
                st.stack.pop();
            }
            let Some(top) = st.stack.last().cloned() else {
                st.done = true;
                return Ok(());
            };
            if top.pc >= frame.lin.instrs.len() {
                // Fell off the end: implicit exit.
                st.done = true;
                return Ok(());
            }

            let i = frame.lin.instrs[top.pc];
            let exec_mask = self.eval_guard(frame, st, i, top.mask)?;
            self.outcome.warp_instructions += 1;
            self.outcome.thread_instructions += exec_mask.count_ones() as u64;

            match &i.op {
                PtxOp::Bra { target } => {
                    let t = *frame.lin.labels.get(target).ok_or_else(|| PtxError::Interp {
                        reason: format!("undefined label `{target}`"),
                    })?;
                    let taken = exec_mask;
                    let fall = top.mask & !exec_mask;
                    let tos = st.stack.last_mut().unwrap();
                    if fall == 0 {
                        tos.pc = t;
                    } else if taken == 0 {
                        tos.pc = top.pc + 1;
                    } else {
                        // Divergence: convert top into the reconvergence
                        // entry and push both paths.
                        let rpc = frame.rpc_of[top.pc];
                        match rpc {
                            Some(r) => {
                                tos.pc = r;
                                tos.rpc = top.rpc;
                                // Start with no lanes; paths merge in.
                                tos.mask = 0;
                                st.stack.push(StackEntry { pc: top.pc + 1, rpc, mask: fall });
                                st.stack.push(StackEntry { pc: t, rpc, mask: taken });
                            }
                            None => {
                                // No static reconvergence: paths run to exit
                                // independently.
                                tos.pc = top.pc + 1;
                                tos.mask = fall;
                                st.stack.push(StackEntry { pc: t, rpc: None, mask: taken });
                            }
                        }
                    }
                    continue;
                }
                PtxOp::Exit | PtxOp::Ret | PtxOp::RetVal { .. } => {
                    // In an entry kernel all three terminate the lanes.
                    for e in st.stack.iter_mut() {
                        e.mask &= !exec_mask;
                    }
                    let tos = st.stack.last_mut().unwrap();
                    if tos.mask != 0 {
                        tos.pc += 1; // guarded exit: survivors continue
                    }
                    while matches!(st.stack.last(), Some(e) if e.mask == 0) {
                        st.stack.pop();
                    }
                    if st.stack.is_empty() {
                        st.done = true;
                        return Ok(());
                    }
                    continue;
                }
                PtxOp::BarSync => {
                    st.stack.last_mut().unwrap().pc += 1;
                    st.at_barrier = true;
                    return Ok(());
                }
                _ => {}
            }

            self.exec_straightline(
                frame, st, i, exec_mask, launch, block_id, warp_idx, params, shared, locals,
            )?;
            st.stack.last_mut().unwrap().pc += 1;
        }
    }

    fn eval_guard(
        &self,
        frame: &Frame<'a>,
        st: &WarpState,
        i: &PtxInstr,
        mask: u32,
    ) -> Result<u32> {
        match &i.guard {
            None => Ok(mask),
            Some(g) => {
                let slot = frame.slot(&g.reg)?;
                let mut m = 0u32;
                for lane in 0..WARP {
                    if mask & (1 << lane) != 0 {
                        let v = st.preds[lane][slot];
                        if v != g.negated {
                            m |= 1 << lane;
                        }
                    }
                }
                Ok(m)
            }
        }
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn exec_straightline(
        &mut self,
        frame: &Frame<'a>,
        st: &mut WarpState,
        i: &PtxInstr,
        exec: u32,
        launch: LaunchGrid,
        block_id: Dim3,
        warp_idx: usize,
        params: &[ParamValue],
        shared: &mut [u8],
        locals: &mut [Vec<u8>],
    ) -> Result<()> {
        use PtxOp as P;
        let err = |reason: String| PtxError::Interp { reason };

        // Warp-level operations read all lanes before any lane writes.
        match &i.op {
            P::Vote { mode, dst, src, negated } => {
                let ps = frame.slot(src)?;
                let ds = frame.slot(dst)?;
                let mut ballot = 0u32;
                for lane in 0..WARP {
                    if exec & (1 << lane) != 0 && (st.preds[lane][ps] != *negated) {
                        ballot |= 1 << lane;
                    }
                }
                let value = match mode {
                    VoteMode::Ballot => ballot,
                    VoteMode::All => u32::from(ballot == exec),
                    VoteMode::Any => u32::from(ballot != 0),
                };
                for lane in 0..WARP {
                    if exec & (1 << lane) != 0 {
                        st.regs[lane][ds] = value as u64;
                    }
                }
                return Ok(());
            }
            P::Shfl { mode, dst, a, b } => {
                let asl = frame.slot(a)?;
                let ds = frame.slot(dst)?;
                let snapshot: Vec<u64> = (0..WARP).map(|l| st.regs[l][asl]).collect();
                for lane in 0..WARP {
                    if exec & (1 << lane) == 0 {
                        continue;
                    }
                    let bv = self.read_src32(frame, st, lane, b)? as usize;
                    // CUDA semantics: out-of-range sources keep the lane's
                    // own value (mirrored exactly by the machine executor).
                    let src_lane = match mode {
                        ShflMode::Idx => bv % WARP,
                        ShflMode::Up => {
                            if lane >= bv {
                                lane - bv
                            } else {
                                lane
                            }
                        }
                        ShflMode::Down => {
                            if lane + bv < WARP {
                                lane + bv
                            } else {
                                lane
                            }
                        }
                        ShflMode::Bfly => lane ^ (bv % WARP),
                    };
                    st.regs[lane][ds] = snapshot[src_lane];
                }
                return Ok(());
            }
            P::Call { ret, func, args } => {
                if i.guard.is_some() {
                    return Err(err("guarded calls are unsupported".into()));
                }
                return self.call(
                    frame,
                    st,
                    exec,
                    func,
                    args,
                    ret.as_deref(),
                    launch,
                    block_id,
                    warp_idx,
                    params,
                    shared,
                    locals,
                );
            }
            _ => {}
        }

        for lane in 0..WARP {
            if exec & (1 << lane) == 0 {
                continue;
            }
            self.exec_lane(
                frame, st, i, lane, exec, launch, block_id, warp_idx, params, shared, locals,
            )?;
        }
        Ok(())
    }

    fn read_src32(&self, frame: &Frame<'a>, st: &WarpState, lane: usize, s: &Src) -> Result<u32> {
        match s {
            Src::Reg(r) => Ok(st.regs[lane][frame.slot(r)?] as u32),
            Src::Imm(v) => Ok(*v as u32),
        }
    }

    fn read_src(
        &self,
        frame: &Frame<'a>,
        st: &WarpState,
        lane: usize,
        s: &Src,
        wide: bool,
    ) -> Result<u64> {
        match s {
            Src::Reg(r) => Ok(st.regs[lane][frame.slot(r)?]),
            Src::Imm(v) => {
                if wide {
                    Ok(*v as u64)
                } else {
                    Ok(*v as u32 as u64)
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn exec_lane(
        &mut self,
        frame: &Frame<'a>,
        st: &mut WarpState,
        i: &PtxInstr,
        lane: usize,
        exec: u32,
        launch: LaunchGrid,
        block_id: Dim3,
        warp_idx: usize,
        params: &[ParamValue],
        shared: &mut [u8],
        locals: &mut [Vec<u8>],
    ) -> Result<()> {
        use PtxOp as P;
        let err = |reason: String| PtxError::Interp { reason };
        let tid_flat = warp_idx * WARP + lane;

        match &i.op {
            P::LdParam { ty, dst, param, offset } => {
                let idx = frame
                    .f
                    .params
                    .iter()
                    .position(|(n, _)| n == param)
                    .ok_or_else(|| err(format!("unknown param `{param}`")))?;
                let v = match params[idx] {
                    ParamValue::U32(v) => v as u64,
                    ParamValue::U64(v) => v,
                };
                let v = if *offset == 4 { v >> 32 } else { v };
                let ds = frame.slot(dst)?;
                st.regs[lane][ds] = if ty.is_wide() { v } else { v as u32 as u64 };
            }
            P::Ld { space, ty, dst, addr } => {
                let a = self.resolve_addr(frame, st, lane, addr)?;
                let bytes = ty.bytes() as usize;
                let buf: &[u8] = match space {
                    Space::Global => self.mem,
                    Space::Shared => shared,
                    Space::Local => &locals[tid_flat],
                };
                let end =
                    a.checked_add(bytes as u64).ok_or_else(|| err("address overflow".into()))?;
                if end as usize > buf.len() {
                    return Err(err(format!("{space:?} load out of bounds at 0x{a:x}")));
                }
                let mut v = 0u64;
                for (k, b) in buf[a as usize..end as usize].iter().enumerate() {
                    v |= (*b as u64) << (8 * k);
                }
                st.regs[lane][frame.slot(dst)?] = v;
            }
            P::St { space, ty, addr, src } => {
                let a = self.resolve_addr(frame, st, lane, addr)?;
                let bytes = ty.bytes() as usize;
                let v = st.regs[lane][frame.slot(src)?];
                let buf: &mut [u8] = match space {
                    Space::Global => self.mem,
                    Space::Shared => shared,
                    Space::Local => &mut locals[tid_flat],
                };
                let end =
                    a.checked_add(bytes as u64).ok_or_else(|| err("address overflow".into()))?;
                if end as usize > buf.len() {
                    return Err(err(format!("{space:?} store out of bounds at 0x{a:x}")));
                }
                for k in 0..bytes {
                    buf[a as usize + k] = (v >> (8 * k)) as u8;
                }
            }
            P::Mov { ty, dst, src, special, shared_addr } => {
                let ds = frame.slot(dst)?;
                if let Some(sp) = special {
                    let tid = thread_coords(tid_flat as u32, launch);
                    let v = match sp {
                        PtxSpecial::Tid(0) => tid.x,
                        PtxSpecial::Tid(1) => tid.y,
                        PtxSpecial::Tid(_) => tid.z,
                        PtxSpecial::NTid(0) => launch.block.x,
                        PtxSpecial::NTid(1) => launch.block.y,
                        PtxSpecial::NTid(_) => launch.block.z,
                        PtxSpecial::CtaId(0) => block_id.x,
                        PtxSpecial::CtaId(1) => block_id.y,
                        PtxSpecial::CtaId(_) => block_id.z,
                        PtxSpecial::NCtaId(0) => launch.grid.x,
                        PtxSpecial::NCtaId(1) => launch.grid.y,
                        PtxSpecial::NCtaId(_) => launch.grid.z,
                        PtxSpecial::LaneId => lane as u32,
                        PtxSpecial::WarpId => warp_idx as u32,
                        PtxSpecial::SmId => 0,
                        PtxSpecial::Clock => 0,
                        PtxSpecial::ActiveMask => exec,
                    };
                    st.regs[lane][ds] = v as u64;
                } else if let Some(name) = shared_addr {
                    let off = shared_offset(frame.f, name)
                        .ok_or_else(|| err(format!("unknown shared `{name}`")))?;
                    st.regs[lane][ds] = off as u64;
                } else {
                    let v = self.read_src(frame, st, lane, src.as_ref().unwrap(), ty.is_wide())?;
                    st.regs[lane][ds] = if ty.is_wide() { v } else { v as u32 as u64 };
                }
            }
            P::Bin { kind, ty, dst, a, b } => {
                let av = st.regs[lane][frame.slot(a)?];
                let bv = self.read_src(frame, st, lane, b, ty.is_wide())?;
                let r = eval_bin(*kind, *ty, av, bv).map_err(err)?;
                st.regs[lane][frame.slot(dst)?] = r;
            }
            P::Mad { wide, ty, dst, a, b, c } => {
                let av = st.regs[lane][frame.slot(a)?];
                let bv = self.read_src(frame, st, lane, b, false)?;
                let cv = st.regs[lane][frame.slot(c)?];
                let r = if *wide {
                    (av as u32 as u64).wrapping_mul(bv as u32 as u64).wrapping_add(cv)
                } else {
                    match ty {
                        PtxType::F32 => {
                            let v = f32::from_bits(av as u32)
                                .mul_add(f32::from_bits(bv as u32), f32::from_bits(cv as u32));
                            v.to_bits() as u64
                        }
                        PtxType::F64 => {
                            let v =
                                f64::from_bits(av).mul_add(f64::from_bits(bv), f64::from_bits(cv));
                            v.to_bits()
                        }
                        _ => (av as u32).wrapping_mul(bv as u32).wrapping_add(cv as u32) as u64,
                    }
                };
                st.regs[lane][frame.slot(dst)?] = r;
            }
            P::Setp { cmp, ty, dst, a, b } => {
                let av = st.regs[lane][frame.slot(a)?];
                let bv = self.read_src(frame, st, lane, b, ty.is_wide())?;
                let r = eval_cmp(*cmp, *ty, av, bv).map_err(err)?;
                let ds = frame.slot(dst)?;
                st.preds[lane][ds] = r;
            }
            P::Selp { ty, dst, a, b, p } => {
                let av = st.regs[lane][frame.slot(a)?];
                let bv = self.read_src(frame, st, lane, b, ty.is_wide())?;
                let pv = st.preds[lane][frame.slot(p)?];
                st.regs[lane][frame.slot(dst)?] = if pv { av } else { bv };
            }
            P::Cvt { dty, sty, dst, src } => {
                let sv = st.regs[lane][frame.slot(src)?];
                let r = eval_cvt(*dty, *sty, sv).map_err(err)?;
                st.regs[lane][frame.slot(dst)?] = r;
            }
            P::Atom { op, ty, dst, addr, src, src2 } => {
                let a = self.resolve_addr(frame, st, lane, addr)?;
                let sv = st.regs[lane][frame.slot(src)?];
                let s2v = match src2 {
                    Some(r) => st.regs[lane][frame.slot(r)?],
                    None => 0,
                };
                let old = self.atomic(a, *op, *ty, sv, s2v)?;
                st.regs[lane][frame.slot(dst)?] = old;
            }
            P::Red { op, ty, addr, src } => {
                let a = self.resolve_addr(frame, st, lane, addr)?;
                let sv = st.regs[lane][frame.slot(src)?];
                self.atomic(a, *op, *ty, sv, 0)?;
            }
            P::Popc { dst, src } => {
                let v = st.regs[lane][frame.slot(src)?] as u32;
                st.regs[lane][frame.slot(dst)?] = v.count_ones() as u64;
            }
            P::Mufu { func, dst, src } => {
                let v = f32::from_bits(st.regs[lane][frame.slot(src)?] as u32);
                let r = eval_mufu(*func, v);
                st.regs[lane][frame.slot(dst)?] = r.to_bits() as u64;
            }
            P::Membar => {}
            P::Proxy { name, .. } => {
                return Err(err(format!(
                    "proxy instruction `{name}` has no architectural semantics (instrument it)"
                )));
            }
            P::ChanPush { .. } => {
                return Err(err(
                    "chan.push has no host channel in the PTX interpreter (run on the device)"
                        .into(),
                ));
            }
            P::NvReadReg { .. } | P::NvWriteReg { .. } => {
                return Err(err("device-API intrinsics are only valid in instrumentation".into()));
            }
            // Handled in run_warp / exec_straightline.
            P::Bra { .. }
            | P::Ret
            | P::RetVal { .. }
            | P::Exit
            | P::BarSync
            | P::Call { .. }
            | P::Vote { .. }
            | P::Shfl { .. } => unreachable!("handled at warp level"),
        }
        Ok(())
    }

    /// Performs an atomic read-modify-write on global memory.
    fn atomic(&mut self, addr: u64, op: AtomOp, ty: PtxType, v: u64, v2: u64) -> Result<u64> {
        let bytes = ty.bytes() as usize;
        let end = addr as usize + bytes;
        if end > self.mem.len() {
            return Err(PtxError::Interp { reason: format!("atomic out of bounds at 0x{addr:x}") });
        }
        let mut old = 0u64;
        for k in 0..bytes {
            old |= (self.mem[addr as usize + k] as u64) << (8 * k);
        }
        let new = match (op, ty) {
            (AtomOp::Add, PtxType::F32) => {
                (f32::from_bits(old as u32) + f32::from_bits(v as u32)).to_bits() as u64
            }
            (AtomOp::Add, _) => old.wrapping_add(v),
            (AtomOp::Min, PtxType::S32) => ((old as i32).min(v as i32)) as u32 as u64,
            (AtomOp::Min, _) => old.min(v),
            (AtomOp::Max, PtxType::S32) => ((old as i32).max(v as i32)) as u32 as u64,
            (AtomOp::Max, _) => old.max(v),
            (AtomOp::And, _) => old & v,
            (AtomOp::Or, _) => old | v,
            (AtomOp::Xor, _) => old ^ v,
            (AtomOp::Exch, _) => v,
            (AtomOp::Cas, _) => {
                if old == v {
                    v2
                } else {
                    old
                }
            }
        };
        for k in 0..bytes {
            self.mem[addr as usize + k] = (new >> (8 * k)) as u8;
        }
        Ok(old)
    }

    fn resolve_addr(
        &self,
        frame: &Frame<'a>,
        st: &WarpState,
        lane: usize,
        addr: &Address,
    ) -> Result<u64> {
        let base = match &addr.base {
            AddrBase::Reg(r) => st.regs[lane][frame.slot(r)?],
            AddrBase::Shared(name) => shared_offset(frame.f, name)
                .ok_or_else(|| PtxError::Interp { reason: format!("unknown shared `{name}`") })?
                as u64,
        };
        Ok(base.wrapping_add(addr.offset as i64 as u64))
    }

    /// Calls a device function with warp-uniform control flow.
    #[allow(clippy::too_many_arguments)]
    fn call(
        &mut self,
        caller: &Frame<'a>,
        st: &mut WarpState,
        exec: u32,
        func: &str,
        args: &[String],
        ret: Option<&str>,
        launch: LaunchGrid,
        block_id: Dim3,
        warp_idx: usize,
        params: &[ParamValue],
        shared: &mut [u8],
        locals: &mut [Vec<u8>],
    ) -> Result<()> {
        let callee = self
            .module
            .function(func)
            .ok_or_else(|| PtxError::Interp { reason: format!("no function `{func}`") })?;
        if callee.kind != FunctionKind::Device {
            return Err(PtxError::Interp { reason: format!("`{func}` is not a device function") });
        }
        let cframe = Frame::new(callee);
        let mut cst = WarpState {
            stack: vec![StackEntry { pc: 0, rpc: None, mask: exec }],
            regs: vec![vec![0u64; cframe.types.len()]; WARP],
            preds: vec![vec![false; cframe.types.len()]; WARP],
            at_barrier: false,
            done: false,
        };
        // Marshal arguments by position.
        if args.len() != callee.params.len() {
            return Err(PtxError::Interp {
                reason: format!("`{func}` takes {} args, got {}", callee.params.len(), args.len()),
            });
        }
        for (a, (pname, _)) in args.iter().zip(&callee.params) {
            let src_slot = caller.slot(a)?;
            let dst_slot = cframe.slot(pname)?;
            for lane in 0..WARP {
                cst.regs[lane][dst_slot] = st.regs[lane][src_slot];
            }
        }
        // Run the callee to completion. `Ret` terminates lanes in the callee
        // state; barriers inside device functions are unsupported.
        self.run_warp(&cframe, &mut cst, launch, block_id, warp_idx, params, shared, locals)?;
        if cst.at_barrier {
            return Err(PtxError::Interp {
                reason: format!("bar.sync inside device function `{func}`"),
            });
        }
        // Return value.
        if let Some(r) = ret {
            let rr = callee
                .ret_reg
                .as_ref()
                .ok_or_else(|| PtxError::Interp { reason: format!("`{func}` returns no value") })?;
            let src_slot = cframe.slot(rr)?;
            let dst_slot = caller.slot(r)?;
            for lane in 0..WARP {
                if exec & (1 << lane) != 0 {
                    st.regs[lane][dst_slot] = cst.regs[lane][src_slot];
                }
            }
        }
        let _ = &cframe.cfg; // cfg retained for symmetry with the caller
        Ok(())
    }
}

fn shared_offset(f: &Function, name: &str) -> Option<u32> {
    let mut off = 0u32;
    for s in &f.shared {
        let a = s.align.max(4);
        off = off.div_ceil(a) * a;
        if s.name == name {
            return Some(off);
        }
        off += s.bytes;
    }
    None
}

fn thread_coords(flat: u32, launch: LaunchGrid) -> Dim3 {
    let x = flat % launch.block.x;
    let y = (flat / launch.block.x) % launch.block.y;
    let z = flat / (launch.block.x * launch.block.y);
    Dim3::xyz(x, y, z)
}

/// Shared scalar evaluation for binary operations (also used in tests to
/// cross-check the machine executor).
pub fn eval_bin(kind: BinKind, ty: PtxType, a: u64, b: u64) -> std::result::Result<u64, String> {
    use BinKind as K;
    let f32s = |x: u64| f32::from_bits(x as u32);
    let wide = ty.is_wide();
    let norm = |v: u64| if wide { v } else { v as u32 as u64 };
    Ok(match (kind, ty) {
        (K::Add, PtxType::F32) => (f32s(a) + f32s(b)).to_bits() as u64,
        (K::Add, PtxType::F64) => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        (K::Add, _) => norm(a.wrapping_add(b)),
        (K::Sub, PtxType::F32) => (f32s(a) - f32s(b)).to_bits() as u64,
        (K::Sub, PtxType::F64) => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        (K::Sub, _) => norm(a.wrapping_sub(b)),
        (K::MulLo, PtxType::F32) => (f32s(a) * f32s(b)).to_bits() as u64,
        (K::MulLo, PtxType::F64) => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        (K::MulLo, t) if t.is_wide() => return Err("mul.lo 64-bit unsupported".into()),
        (K::MulLo, _) => (a as u32).wrapping_mul(b as u32) as u64,
        (K::MulWide, _) => (a as u32 as u64).wrapping_mul(b as u32 as u64),
        (K::Min, PtxType::F32) => f32s(a).min(f32s(b)).to_bits() as u64,
        (K::Min, PtxType::S32) => ((a as i32).min(b as i32)) as u32 as u64,
        (K::Min, _) => norm(a.min(b)),
        (K::Max, PtxType::F32) => f32s(a).max(f32s(b)).to_bits() as u64,
        (K::Max, PtxType::S32) => ((a as i32).max(b as i32)) as u32 as u64,
        (K::Max, _) => norm(a.max(b)),
        (K::And, _) => norm(a & b),
        (K::Or, _) => norm(a | b),
        (K::Xor, _) => norm(a ^ b),
        (K::Shl, t) if t.is_wide() => a.wrapping_shl(b as u32 & 63),
        (K::Shl, _) => ((a as u32).wrapping_shl(b as u32 & 31)) as u64,
        (K::Shr, PtxType::S32) => ((a as i32).wrapping_shr(b as u32 & 31)) as u32 as u64,
        (K::Shr, t) if t.is_wide() => a.wrapping_shr(b as u32 & 63),
        (K::Shr, _) => ((a as u32).wrapping_shr(b as u32 & 31)) as u64,
    })
}

/// Shared comparison evaluation.
pub fn eval_cmp(cmp: PCmp, ty: PtxType, a: u64, b: u64) -> std::result::Result<bool, String> {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match ty {
        PtxType::F32 => f32::from_bits(a as u32).partial_cmp(&f32::from_bits(b as u32)),
        PtxType::F64 => f64::from_bits(a).partial_cmp(&f64::from_bits(b)),
        PtxType::S32 => Some((a as i32).cmp(&(b as i32))),
        PtxType::U32 | PtxType::B32 => Some((a as u32).cmp(&(b as u32))),
        PtxType::U64 | PtxType::B64 => Some(a.cmp(&b)),
        PtxType::S64 => Some((a as i64).cmp(&(b as i64))),
        PtxType::Pred => return Err("setp on predicates".into()),
    };
    Ok(match (cmp, ord) {
        (PCmp::Eq, Some(Ordering::Equal)) => true,
        (PCmp::Ne, Some(o)) => o != Ordering::Equal,
        (PCmp::Ne, None) => true, // unordered compares as not-equal
        (PCmp::Lt, Some(Ordering::Less)) => true,
        (PCmp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
        (PCmp::Gt, Some(Ordering::Greater)) => true,
        (PCmp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
        _ => false,
    })
}

/// Shared conversion evaluation.
pub fn eval_cvt(dty: PtxType, sty: PtxType, v: u64) -> std::result::Result<u64, String> {
    Ok(match (dty, sty) {
        (PtxType::U64 | PtxType::B64, PtxType::U32 | PtxType::B32) => v as u32 as u64,
        (PtxType::S64, PtxType::S32) => (v as i32) as i64 as u64,
        (PtxType::U32 | PtxType::S32 | PtxType::B32, s) if s.is_wide() && !s.is_float() => {
            v as u32 as u64
        }
        (PtxType::F32, PtxType::S32) => ((v as i32) as f32).to_bits() as u64,
        (PtxType::F32, PtxType::U32 | PtxType::B32) => ((v as u32) as f32).to_bits() as u64,
        (PtxType::S32, PtxType::F32) => (f32::from_bits(v as u32) as i32) as u32 as u64,
        (PtxType::U32, PtxType::F32) => (f32::from_bits(v as u32) as u32) as u64,
        (PtxType::F64, PtxType::F32) => (f32::from_bits(v as u32) as f64).to_bits(),
        (PtxType::F32, PtxType::F64) => (f64::from_bits(v) as f32).to_bits() as u64,
        // Via-f32 routes, matching the backend's lowering exactly.
        (PtxType::F64, PtxType::S32) => (((v as i32) as f32) as f64).to_bits(),
        (PtxType::F64, PtxType::U32) => (((v as u32) as f32) as f64).to_bits(),
        (PtxType::S32, PtxType::F64) => ((f64::from_bits(v) as f32) as i32) as u32 as u64,
        (PtxType::U32, PtxType::F64) => ((f64::from_bits(v) as f32) as u32) as u64,
        (a, b) if a == b => v,
        (a, b) => return Err(format!("unsupported conversion {b} -> {a}")),
    })
}

/// Shared special-function evaluation (used by both the interpreter and the
/// machine executor so results match bit-for-bit).
pub fn eval_mufu(func: MufuFunc, v: f32) -> f32 {
    match func {
        MufuFunc::Rcp => 1.0 / v,
        MufuFunc::Sqrt => v.sqrt(),
        MufuFunc::Rsq => 1.0 / v.sqrt(),
        MufuFunc::Sin => v.sin(),
        MufuFunc::Cos => v.cos(),
        MufuFunc::Ex2 => v.exp2(),
        MufuFunc::Lg2 => v.log2(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, kernel: &str, launch: LaunchGrid, params: &[ParamValue], mem: &mut [u8]) {
        let m = parse(src).unwrap();
        interpret_entry(&m, kernel, launch, params, mem).unwrap();
    }

    #[test]
    fn vecadd_computes_elementwise_sum() {
        let src = r#"
.entry vecadd(.param .u64 a, .param .u64 b, .param .u64 out, .param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<6>;
    .reg .f32 %f<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [a];
    ld.param.u64 %rd2, [b];
    ld.param.u64 %rd3, [out];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %tid.x;
    mad.lo.u32 %r2, %r2, 32, %r3;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r2, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.f32 %f1, [%rd5];
    add.u64 %rd5, %rd2, %rd4;
    ld.global.f32 %f2, [%rd5];
    add.f32 %f1, %f1, %f2;
    add.u64 %rd5, %rd3, %rd4;
    st.global.f32 [%rd5], %f1;
DONE:
    exit;
}
"#;
        let n = 100u32;
        let mut mem = vec![0u8; 3 * 4 * n as usize];
        for i in 0..n as usize {
            mem[i * 4..i * 4 + 4].copy_from_slice(&(i as f32).to_bits().to_le_bytes());
            let boff = 400 + i * 4;
            mem[boff..boff + 4].copy_from_slice(&(2.0f32 * i as f32).to_bits().to_le_bytes());
        }
        run(
            src,
            "vecadd",
            LaunchGrid::linear(4, 32),
            &[ParamValue::U64(0), ParamValue::U64(400), ParamValue::U64(800), ParamValue::U32(n)],
            &mut mem,
        );
        for i in 0..n as usize {
            let off = 800 + i * 4;
            let bits = u32::from_le_bytes(mem[off..off + 4].try_into().unwrap());
            assert_eq!(f32::from_bits(bits), 3.0 * i as f32, "element {i}");
        }
    }

    #[test]
    fn divergent_threads_reconverge_and_all_store() {
        let src = r#"
.entry k(.param .u64 out)
{
    .reg .u32 %r<5>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    and.b32 %r2, %r1, 1;
    setp.eq.u32 %p1, %r2, 0;
    @%p1 bra EVEN;
    mov.u32 %r3, 100;
    bra JOIN;
EVEN:
    mov.u32 %r3, 200;
JOIN:
    add.u32 %r3, %r3, %r1;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r3;
    exit;
}
"#;
        let mut mem = vec![0u8; 32 * 4];
        run(src, "k", LaunchGrid::linear(1, 32), &[ParamValue::U64(0)], &mut mem);
        for t in 0..32usize {
            let v = u32::from_le_bytes(mem[t * 4..t * 4 + 4].try_into().unwrap());
            let expect = if t % 2 == 0 { 200 + t as u32 } else { 100 + t as u32 };
            assert_eq!(v, expect, "thread {t}");
        }
    }

    #[test]
    fn shared_memory_and_barrier_reverse_within_block() {
        let src = r#"
.entry rev(.param .u64 buf)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<4>;
    .shared .align 4 .b8 tile[128];
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    mov.u32 %r3, tile;
    shl.b32 %r4, %r1, 2;
    add.u32 %r4, %r4, %r3;
    st.shared.u32 [%r4], %r2;
    bar.sync 0;
    mov.u32 %r5, 31;
    sub.u32 %r5, %r5, %r1;
    shl.b32 %r6, %r5, 2;
    add.u32 %r6, %r6, %r3;
    ld.shared.u32 %r7, [%r6];
    st.global.u32 [%rd3], %r7;
    exit;
}
"#;
        let mut mem = vec![0u8; 32 * 4];
        for t in 0..32usize {
            mem[t * 4..t * 4 + 4].copy_from_slice(&(t as u32).to_le_bytes());
        }
        run(src, "rev", LaunchGrid::linear(1, 32), &[ParamValue::U64(0)], &mut mem);
        for t in 0..32usize {
            let v = u32::from_le_bytes(mem[t * 4..t * 4 + 4].try_into().unwrap());
            assert_eq!(v, 31 - t as u32);
        }
    }

    #[test]
    fn atomics_accumulate_across_threads() {
        let src = r#"
.entry count(.param .u64 ctr)
{
    .reg .u32 %r<3>;
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [ctr];
    mov.u32 %r1, 1;
    atom.global.add.u32 %r2, [%rd1], %r1;
    exit;
}
"#;
        let mut mem = vec![0u8; 8];
        run(src, "count", LaunchGrid::linear(4, 64), &[ParamValue::U64(0)], &mut mem);
        let v = u32::from_le_bytes(mem[0..4].try_into().unwrap());
        assert_eq!(v, 256);
    }

    #[test]
    fn warp_shuffle_butterfly_sums() {
        // Warp-wide reduction via shfl.bfly: every lane ends with the sum of
        // all lane ids = 496.
        let src = r#"
.entry wsum(.param .u64 out)
{
    .reg .u32 %r<8>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %laneid;
    mov.u32 %r2, %r1;
    shfl.bfly.b32 %r3, %r2, 16;
    add.u32 %r2, %r2, %r3;
    shfl.bfly.b32 %r3, %r2, 8;
    add.u32 %r2, %r2, %r3;
    shfl.bfly.b32 %r3, %r2, 4;
    add.u32 %r2, %r2, %r3;
    shfl.bfly.b32 %r3, %r2, 2;
    add.u32 %r2, %r2, %r3;
    shfl.bfly.b32 %r3, %r2, 1;
    add.u32 %r2, %r2, %r3;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;
        let mut mem = vec![0u8; 32 * 4];
        run(src, "wsum", LaunchGrid::linear(1, 32), &[ParamValue::U64(0)], &mut mem);
        for t in 0..32usize {
            let v = u32::from_le_bytes(mem[t * 4..t * 4 + 4].try_into().unwrap());
            assert_eq!(v, 496, "lane {t}");
        }
    }

    #[test]
    fn device_function_calls_return_values() {
        let src = r#"
.func (.reg .u32 %out) square(.reg .u32 %x)
{
    mul.lo.u32 %out, %x, %x;
    ret;
}
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    call (%r2), square, (%r1);
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;
        let mut mem = vec![0u8; 32 * 4];
        run(src, "k", LaunchGrid::linear(1, 32), &[ParamValue::U64(0)], &mut mem);
        for t in 0..32u32 {
            let off = t as usize * 4;
            let v = u32::from_le_bytes(mem[off..off + 4].try_into().unwrap());
            assert_eq!(v, t * t);
        }
    }

    #[test]
    fn loops_with_data_dependent_trip_counts() {
        // Each thread sums 1..=tid, divergent trip counts.
        let src = r#"
.entry tri(.param .u64 out)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, 0;
    mov.u32 %r3, 0;
TOP:
    setp.ge.u32 %p1, %r3, %r1;
    @%p1 bra DONE;
    add.u32 %r3, %r3, 1;
    add.u32 %r2, %r2, %r3;
    bra TOP;
DONE:
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;
        let mut mem = vec![0u8; 32 * 4];
        run(src, "tri", LaunchGrid::linear(1, 32), &[ParamValue::U64(0)], &mut mem);
        for t in 0..32u64 {
            let off = t as usize * 4;
            let v = u32::from_le_bytes(mem[off..off + 4].try_into().unwrap());
            assert_eq!(v as u64, t * (t + 1) / 2, "thread {t}");
        }
    }

    #[test]
    fn out_of_bounds_access_traps() {
        let src = r#"
.entry bad(.param .u64 p)
{
    .reg .u32 %r<2>;
    .reg .u64 %rd<2>;
    ld.param.u64 %rd1, [p];
    ld.global.u32 %r1, [%rd1+1000000];
    exit;
}
"#;
        let m = parse(src).unwrap();
        let mut mem = vec![0u8; 64];
        let r =
            interpret_entry(&m, "bad", LaunchGrid::linear(1, 1), &[ParamValue::U64(0)], &mut mem);
        assert!(matches!(r, Err(PtxError::Interp { .. })));
    }
}
