//! Tokenizer for the PTX dialect.

use crate::{PtxError, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A word: identifier, dotted directive/opcode (`.reg`, `ld.global.f32`),
    /// register (`%r1`, `%tid.x`) or label name.
    Word(String),
    /// An integer or floating literal, kept raw for type-directed parsing.
    Num(String),
    /// A double-quoted string (contents only).
    Str(String),
    /// Single punctuation character: `{}()[],;:@!+-<>`.
    Punct(char),
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenizes PTX source. Comments (`//` to end of line and `/* */`) are
/// skipped.
///
/// # Errors
///
/// Returns [`PtxError::Parse`] on unterminated strings/comments or stray
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(PtxError::Parse {
                            line: start,
                            reason: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= n {
                        return Err(PtxError::Parse {
                            line: start,
                            reason: "unterminated string".into(),
                        });
                    }
                    if bytes[i] == '"' {
                        i += 1;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    s.push(bytes[i]);
                    i += 1;
                }
                toks.push(SpannedTok { tok: Tok::Str(s), line: start });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '.' || bytes[i] == 'x')
                {
                    // A trailing '.' followed by non-digit belongs to the next
                    // token stream element, not the number (e.g. `0:`).
                    if bytes[i] == '.' && !(i + 1 < n && bytes[i + 1].is_ascii_hexdigit()) {
                        break;
                    }
                    s.push(bytes[i]);
                    i += 1;
                }
                toks.push(SpannedTok { tok: Tok::Num(s), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '%' || c == '.' || c == '$' => {
                let mut s = String::new();
                while i < n {
                    let d = bytes[i];
                    let cont = d.is_ascii_alphanumeric() || d == '_' || d == '$' || d == '%';
                    // A dot continues the word only when followed by a word
                    // character (so `DONE:` vs `ld.global` both work).
                    let dot = d == '.'
                        && i + 1 < n
                        && (bytes[i + 1].is_ascii_alphanumeric() || bytes[i + 1] == '_');
                    if cont || dot || (s.is_empty() && d == '.') {
                        s.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                toks.push(SpannedTok { tok: Tok::Word(s), line });
            }
            '{' | '}' | '(' | ')' | '[' | ']' | ',' | ';' | ':' | '@' | '!' | '+' | '-' | '<'
            | '>' => {
                toks.push(SpannedTok { tok: Tok::Punct(c), line });
                i += 1;
            }
            other => {
                return Err(PtxError::Parse {
                    line,
                    reason: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn dotted_opcodes_lex_as_one_word() {
        assert_eq!(
            words("ld.global.f32 %f1, [%rd1+4];"),
            vec![
                Tok::Word("ld.global.f32".into()),
                Tok::Word("%f1".into()),
                Tok::Punct(','),
                Tok::Punct('['),
                Tok::Word("%rd1".into()),
                Tok::Punct('+'),
                Tok::Num("4".into()),
                Tok::Punct(']'),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn labels_do_not_swallow_colons() {
        assert_eq!(words("DONE:"), vec![Tok::Word("DONE".into()), Tok::Punct(':')]);
    }

    #[test]
    fn special_registers_keep_component() {
        assert_eq!(words("%tid.x"), vec![Tok::Word("%tid.x".into())]);
    }

    #[test]
    fn numbers_include_hex_and_float_forms() {
        assert_eq!(
            words("0x1f 42 1.5 0f3F800000"),
            vec![
                Tok::Num("0x1f".into()),
                Tok::Num("42".into()),
                Tok::Num("1.5".into()),
                Tok::Num("0f3F800000".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// hi\n/* multi\nline */ exit ;").unwrap();
        assert_eq!(toks[0].tok, Tok::Word("exit".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn errors_on_stray_character() {
        assert!(lex("#").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
