//! Programmatic PTX source builder.
//!
//! Workload generators and the accelerated-library crates synthesize many
//! kernel variants; this builder removes the string-formatting boilerplate
//! while keeping the output ordinary PTX text (so everything still flows
//! through the same parser as hand-written sources).
//!
//! # Example
//!
//! ```
//! use ptx::builder::KernelBuilder;
//!
//! let src = KernelBuilder::entry("scale")
//!     .param_u64("buf")
//!     .param_u32("n")
//!     .regs("u32", "r", 8)
//!     .regs("u64", "rd", 4)
//!     .regs("pred", "p", 2)
//!     .line("ld.param.u64 %rd1, [buf];")
//!     .line("ld.param.u32 %r1, [n];")
//!     .line("mov.u32 %r2, %tid.x;")
//!     .line("setp.ge.u32 %p1, %r2, %r1;")
//!     .line("@%p1 bra DONE;")
//!     .line("mul.wide.u32 %rd2, %r2, 4;")
//!     .line("add.u64 %rd2, %rd1, %rd2;")
//!     .line("ld.global.u32 %r3, [%rd2];")
//!     .line("shl.b32 %r3, %r3, 1;")
//!     .line("st.global.u32 [%rd2], %r3;")
//!     .label("DONE")
//!     .line("exit;")
//!     .build();
//! assert!(ptx::parse_module(&src).is_ok());
//! ```

/// Builds the source text of one function.
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    header: String,
    params: Vec<String>,
    decls: Vec<String>,
    body: Vec<String>,
    is_entry: bool,
}

impl KernelBuilder {
    /// Starts an `.entry` kernel.
    pub fn entry(name: &str) -> KernelBuilder {
        KernelBuilder {
            header: name.to_string(),
            params: Vec::new(),
            decls: Vec::new(),
            body: Vec::new(),
            is_entry: true,
        }
    }

    /// Starts a `.func` device function (parameters become `.reg` params).
    pub fn device(name: &str) -> KernelBuilder {
        KernelBuilder {
            header: name.to_string(),
            params: Vec::new(),
            decls: Vec::new(),
            body: Vec::new(),
            is_entry: false,
        }
    }

    /// Adds a `.u32` kernel parameter.
    pub fn param_u32(mut self, name: &str) -> Self {
        let kw = if self.is_entry { ".param" } else { ".reg" };
        self.params.push(format!("{kw} .u32 {name}"));
        self
    }

    /// Adds a `.u64` kernel parameter (pointers).
    pub fn param_u64(mut self, name: &str) -> Self {
        let kw = if self.is_entry { ".param" } else { ".reg" };
        self.params.push(format!("{kw} .u64 {name}"));
        self
    }

    /// Adds an `.f32` kernel parameter.
    pub fn param_f32(mut self, name: &str) -> Self {
        let kw = if self.is_entry { ".param" } else { ".reg" };
        self.params.push(format!("{kw} .f32 {name}"));
        self
    }

    /// Declares a bank of virtual registers `%{prefix}0..%{prefix}{count}`.
    pub fn regs(mut self, ty: &str, prefix: &str, count: u32) -> Self {
        self.decls.push(format!(".reg .{ty} %{prefix}<{count}>;"));
        self
    }

    /// Declares a shared-memory array.
    pub fn shared(mut self, name: &str, bytes: u32, align: u32) -> Self {
        self.decls.push(format!(".shared .align {align} .b8 {name}[{bytes}];"));
        self
    }

    /// Appends one raw instruction line (must include the trailing `;`).
    pub fn line(mut self, s: &str) -> Self {
        self.body.push(format!("    {s}"));
        self
    }

    /// Appends a formatted instruction line.
    pub fn linef(self, args: std::fmt::Arguments<'_>) -> Self {
        let s = format!("{args}");
        self.line(&s)
    }

    /// Appends a label.
    pub fn label(mut self, name: &str) -> Self {
        self.body.push(format!("{name}:"));
        self
    }

    /// Appends a `.loc` directive for source correlation.
    pub fn loc(mut self, file: &str, line: u32) -> Self {
        self.body.push(format!("    .loc \"{file}\" {line} ;"));
        self
    }

    /// Renders the function source.
    pub fn build(self) -> String {
        let kw = if self.is_entry { ".visible .entry" } else { ".func" };
        let mut out = String::new();
        out.push_str(&format!("{kw} {}({})\n{{\n", self.header, self.params.join(", ")));
        for d in &self.decls {
            out.push_str("    ");
            out.push_str(d);
            out.push('\n');
        }
        for l in &self.body {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

/// Concatenates function sources into a module source.
pub fn module(functions: &[String]) -> String {
    let mut out = String::from(".version 6.0\n");
    for f in functions {
        out.push_str(f);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_source_parses_and_compiles() {
        let src = KernelBuilder::entry("k")
            .param_u64("p")
            .regs("u64", "rd", 3)
            .regs("u32", "r", 3)
            .line("ld.param.u64 %rd1, [p];")
            .line("mov.u32 %r1, %tid.x;")
            .line("mul.wide.u32 %rd2, %r1, 4;")
            .line("add.u64 %rd2, %rd1, %rd2;")
            .line("st.global.u32 [%rd2], %r1;")
            .line("exit;")
            .build();
        let m = crate::parse_module(&module(&[src])).unwrap();
        assert_eq!(m.functions[0].name, "k");
        assert!(crate::compile_ast(&m, sass::Arch::Volta).is_ok());
    }

    #[test]
    fn device_functions_render_reg_params() {
        let src = KernelBuilder::device("helper").param_u32("%x").line("ret;").build();
        assert!(src.contains(".func helper(.reg .u32 %x)"));
        assert!(crate::parse_module(&src).is_ok());
    }

    #[test]
    fn shared_and_labels_render() {
        let src = KernelBuilder::entry("k")
            .shared("tile", 256, 8)
            .regs("u32", "r", 2)
            .label("L0")
            .line("exit;")
            .build();
        assert!(src.contains(".shared .align 8 .b8 tile[256];"));
        assert!(src.contains("L0:"));
    }
}
