//! Abstract syntax tree of the PTX-like dialect.

use crate::types::PtxType;
use std::collections::BTreeMap;

/// Whether a function is a kernel entry point or a callable device function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionKind {
    /// `.entry` — launchable kernel; parameters arrive in constant bank 0.
    Entry,
    /// `.func` — device function; parameters arrive in ABI argument
    /// registers (`R4`...), the optional return value leaves in `R4`(/`R5`).
    Device,
}

/// A parsed module.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions in source order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A statically-sized shared-memory declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedDecl {
    /// Variable name.
    pub name: String,
    /// Size in bytes.
    pub bytes: u32,
    /// Alignment in bytes.
    pub align: u32,
}

/// A parsed function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Entry kernel or device function.
    pub kind: FunctionKind,
    /// Parameters in declaration order.
    pub params: Vec<(String, PtxType)>,
    /// Return type (device functions only).
    pub ret: Option<PtxType>,
    /// Virtual register declared as the return slot (device functions with a
    /// `(.reg .ty %out)` return declaration).
    pub ret_reg: Option<String>,
    /// Declared virtual registers and their types (sorted for determinism).
    pub regs: BTreeMap<String, PtxType>,
    /// Shared-memory declarations.
    pub shared: Vec<SharedDecl>,
    /// Body statements.
    pub body: Vec<Statement>,
}

/// One body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A branch-target label.
    Label(String),
    /// A source-location directive (`.loc "file" line`), attaching to the
    /// following instructions.
    Loc {
        /// Source file name.
        file: String,
        /// 1-based source line.
        line: u32,
    },
    /// An instruction.
    Instr(PtxInstr),
}

/// Guard prefix on an instruction (`@%p` / `@!%p`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtxGuard {
    /// Guarding predicate virtual register.
    pub reg: String,
    /// True for `@!%p`.
    pub negated: bool,
}

/// A register-or-immediate source operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Src {
    /// A virtual register name.
    Reg(String),
    /// An immediate; floating constants are stored as raw bits
    /// (sign-extended from 32 bits for `f32` to match the codec's canonical
    /// immediate form).
    Imm(i64),
}

impl Src {
    /// The register name, if this is a register source.
    pub fn as_reg(&self) -> Option<&str> {
        match self {
            Src::Reg(r) => Some(r),
            Src::Imm(_) => None,
        }
    }
}

/// Base of a memory address operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrBase {
    /// Address held in a virtual register.
    Reg(String),
    /// A shared-memory variable (its static byte offset).
    Shared(String),
}

/// A memory address operand `[base + offset]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Address {
    /// Address base.
    pub base: AddrBase,
    /// Additional signed byte offset.
    pub offset: i32,
}

/// Memory space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device-wide global memory.
    Global,
    /// Per-CTA shared memory.
    Shared,
    /// Per-thread local memory.
    Local,
}

impl Space {
    /// Suffix spelling.
    pub fn suffix(self) -> &'static str {
        match self {
            Space::Global => "global",
            Space::Shared => "shared",
            Space::Local => "local",
        }
    }
}

/// Comparison operator of `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PCmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl PCmp {
    /// Suffix spelling.
    pub fn suffix(self) -> &'static str {
        match self {
            PCmp::Eq => "eq",
            PCmp::Ne => "ne",
            PCmp::Lt => "lt",
            PCmp::Le => "le",
            PCmp::Gt => "gt",
            PCmp::Ge => "ge",
        }
    }

    /// Parses a suffix spelling.
    pub fn from_suffix(s: &str) -> Option<PCmp> {
        Some(match s {
            "eq" => PCmp::Eq,
            "ne" => PCmp::Ne,
            "lt" => PCmp::Lt,
            "le" => PCmp::Le,
            "gt" => PCmp::Gt,
            "ge" => PCmp::Ge,
            _ => return None,
        })
    }

    /// The equivalent machine comparison.
    pub fn to_sass(self) -> sass::CmpOp {
        match self {
            PCmp::Eq => sass::CmpOp::Eq,
            PCmp::Ne => sass::CmpOp::Ne,
            PCmp::Lt => sass::CmpOp::Lt,
            PCmp::Le => sass::CmpOp::Le,
            PCmp::Gt => sass::CmpOp::Gt,
            PCmp::Ge => sass::CmpOp::Ge,
        }
    }
}

/// Atomic operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// Fetch-and-add.
    Add,
    /// Fetch-and-min.
    Min,
    /// Fetch-and-max.
    Max,
    /// Fetch-and-AND.
    And,
    /// Fetch-and-OR.
    Or,
    /// Fetch-and-XOR.
    Xor,
    /// Exchange.
    Exch,
    /// Compare-and-swap.
    Cas,
}

impl AtomOp {
    /// Suffix spelling.
    pub fn suffix(self) -> &'static str {
        match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::And => "and",
            AtomOp::Or => "or",
            AtomOp::Xor => "xor",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
        }
    }

    /// Parses a suffix spelling.
    pub fn from_suffix(s: &str) -> Option<AtomOp> {
        Some(match s {
            "add" => AtomOp::Add,
            "min" => AtomOp::Min,
            "max" => AtomOp::Max,
            "and" => AtomOp::And,
            "or" => AtomOp::Or,
            "xor" => AtomOp::Xor,
            "exch" => AtomOp::Exch,
            "cas" => AtomOp::Cas,
            _ => return None,
        })
    }

    /// The equivalent machine sub-operation.
    pub fn to_sass(self) -> sass::SubOp {
        match self {
            AtomOp::Add => sass::SubOp::Add,
            AtomOp::Min => sass::SubOp::Min,
            AtomOp::Max => sass::SubOp::Max,
            AtomOp::And => sass::SubOp::And,
            AtomOp::Or => sass::SubOp::Or,
            AtomOp::Xor => sass::SubOp::Xor,
            AtomOp::Exch => sass::SubOp::Exch,
            AtomOp::Cas => sass::SubOp::Cas,
        }
    }
}

/// Vote mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoteMode {
    /// True on all active lanes.
    All,
    /// True on any active lane.
    Any,
    /// Ballot bitmask.
    Ballot,
}

/// Shuffle mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShflMode {
    /// Read from an absolute lane index.
    Idx,
    /// Read from `lane - delta`.
    Up,
    /// Read from `lane + delta`.
    Down,
    /// Read from `lane ^ mask`.
    Bfly,
}

/// Special-function unit operation (`rcp.approx.f32` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MufuFunc {
    /// Reciprocal.
    Rcp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsq,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
}

impl MufuFunc {
    /// The equivalent machine sub-operation.
    pub fn to_sass(self) -> sass::SubOp {
        match self {
            MufuFunc::Rcp => sass::SubOp::Rcp,
            MufuFunc::Sqrt => sass::SubOp::Sqrt,
            MufuFunc::Rsq => sass::SubOp::Rsq,
            MufuFunc::Sin => sass::SubOp::Sin,
            MufuFunc::Cos => sass::SubOp::Cos,
            MufuFunc::Ex2 => sass::SubOp::Ex2,
            MufuFunc::Lg2 => sass::SubOp::Lg2,
        }
    }
}

/// Special-register sources accepted by `mov`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PtxSpecial {
    /// `%tid.{x,y,z}`.
    Tid(u8),
    /// `%ntid.{x,y,z}`.
    NTid(u8),
    /// `%ctaid.{x,y,z}`.
    CtaId(u8),
    /// `%nctaid.{x,y,z}`.
    NCtaId(u8),
    /// `%laneid`.
    LaneId,
    /// `%warpid`.
    WarpId,
    /// `%smid`.
    SmId,
    /// `%clock`.
    Clock,
    /// `%activemask` (dialect extension; real PTX uses `activemask.b32`).
    ActiveMask,
}

impl PtxSpecial {
    /// The equivalent machine special register.
    pub fn to_sass(self) -> sass::SpecialReg {
        use sass::SpecialReg as S;
        match self {
            PtxSpecial::Tid(0) => S::TidX,
            PtxSpecial::Tid(1) => S::TidY,
            PtxSpecial::Tid(_) => S::TidZ,
            PtxSpecial::NTid(0) => S::NTidX,
            PtxSpecial::NTid(1) => S::NTidY,
            PtxSpecial::NTid(_) => S::NTidZ,
            PtxSpecial::CtaId(0) => S::CtaIdX,
            PtxSpecial::CtaId(1) => S::CtaIdY,
            PtxSpecial::CtaId(_) => S::CtaIdZ,
            PtxSpecial::NCtaId(0) => S::NCtaIdX,
            PtxSpecial::NCtaId(1) => S::NCtaIdY,
            PtxSpecial::NCtaId(_) => S::NCtaIdZ,
            PtxSpecial::LaneId => S::LaneId,
            PtxSpecial::WarpId => S::WarpId,
            PtxSpecial::SmId => S::SmId,
            PtxSpecial::Clock => S::Clock,
            PtxSpecial::ActiveMask => S::ActiveMask,
        }
    }
}

/// A typed PTX operation with its operands.
#[derive(Debug, Clone, PartialEq)]
pub enum PtxOp {
    /// `ld.param.ty %d, [name+off];`
    LdParam {
        /// Value type.
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// Parameter name.
        param: String,
        /// Byte offset within the parameter.
        offset: u32,
    },
    /// `ld.space.ty %d, [addr];`
    Ld {
        /// Memory space.
        space: Space,
        /// Value type.
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// Address.
        addr: Address,
    },
    /// `st.space.ty [addr], %s;`
    St {
        /// Memory space.
        space: Space,
        /// Value type.
        ty: PtxType,
        /// Address.
        addr: Address,
        /// Source register.
        src: String,
    },
    /// `mov.ty %d, src;` where `src` is a register, immediate, special
    /// register or the address of a shared variable.
    Mov {
        /// Value type.
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// Plain source, if register/immediate.
        src: Option<Src>,
        /// Special-register source, if any.
        special: Option<PtxSpecial>,
        /// Shared-variable address source, if any.
        shared_addr: Option<String>,
    },
    /// Binary arithmetic: `add/sub/mul/min/max/div-free` family.
    Bin {
        /// Which operation.
        kind: BinKind,
        /// Value type.
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// First source.
        a: String,
        /// Second source.
        b: Src,
    },
    /// `mad.lo.ty %d, %a, %b, %c;` or `mad.wide.u32 %d, %a, %b, %c;` or
    /// `fma.rn.fXX %d, %a, %b, %c;`
    Mad {
        /// Widening multiply (u32×u32 + u64 → u64).
        wide: bool,
        /// Value type (of the multiply inputs).
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// Multiplicand.
        a: String,
        /// Multiplier.
        b: Src,
        /// Addend.
        c: String,
    },
    /// `setp.cmp.ty %p, %a, b;`
    Setp {
        /// Comparison operator.
        cmp: PCmp,
        /// Operand type.
        ty: PtxType,
        /// Destination predicate.
        dst: String,
        /// First source.
        a: String,
        /// Second source.
        b: Src,
    },
    /// `selp.ty %d, %a, b, %p;`
    Selp {
        /// Value type.
        ty: PtxType,
        /// Destination register.
        dst: String,
        /// Value when the predicate is true.
        a: String,
        /// Value when the predicate is false.
        b: Src,
        /// Selector predicate.
        p: String,
    },
    /// `cvt.dty.sty %d, %s;`
    Cvt {
        /// Destination type.
        dty: PtxType,
        /// Source type.
        sty: PtxType,
        /// Destination register.
        dst: String,
        /// Source register.
        src: String,
    },
    /// `bra TARGET;` (possibly guarded).
    Bra {
        /// Target label.
        target: String,
    },
    /// `call (%ret), name, (%a, %b, ...);`
    Call {
        /// Destination register for the return value, if any.
        ret: Option<String>,
        /// Callee name.
        func: String,
        /// Argument registers.
        args: Vec<String>,
    },
    /// `ret;`
    Ret,
    /// Return a value: `ret.val %r;` (dialect shorthand for the PTX
    /// `st.param` + `ret` sequence).
    RetVal {
        /// Register holding the return value.
        src: String,
    },
    /// `exit;`
    Exit,
    /// `bar.sync 0;`
    BarSync,
    /// `membar.gl;`
    Membar,
    /// `atom.global.op.ty %d, [addr], %s {, %s2};`
    Atom {
        /// Atomic operation.
        op: AtomOp,
        /// Value type.
        ty: PtxType,
        /// Destination register receiving the prior value.
        dst: String,
        /// Address.
        addr: Address,
        /// Operand value.
        src: String,
        /// Second operand (CAS only).
        src2: Option<String>,
    },
    /// `red.global.op.ty [addr], %s;`
    Red {
        /// Reduction operation.
        op: AtomOp,
        /// Value type.
        ty: PtxType,
        /// Address.
        addr: Address,
        /// Operand value.
        src: String,
    },
    /// `vote.mode.b32 %d, %p;`
    Vote {
        /// Vote mode.
        mode: VoteMode,
        /// Destination register (mask or 0/1).
        dst: String,
        /// Voted predicate.
        src: String,
        /// True when the source predicate is negated (`!%p`).
        negated: bool,
    },
    /// `shfl.mode.b32 %d, %a, b;`
    Shfl {
        /// Shuffle mode.
        mode: ShflMode,
        /// Destination register.
        dst: String,
        /// Value source.
        a: String,
        /// Lane/delta/mask source.
        b: Src,
    },
    /// `popc.b32 %d, %s;`
    Popc {
        /// Destination register.
        dst: String,
        /// Source register.
        src: String,
    },
    /// Special-function ops: `rcp.approx.f32 %d, %s;` etc.
    Mufu {
        /// Which function.
        func: MufuFunc,
        /// Destination register.
        dst: String,
        /// Source register.
        src: String,
    },
    /// `proxy.b32 %d, %s, "NAME";` — emits the hypothetical-instruction
    /// carrier used for ISA-extension studies (paper §6.3).
    Proxy {
        /// Destination register.
        dst: String,
        /// Source register.
        src: String,
        /// Proxy instruction name; hashed into the immediate id field.
        name: String,
    },
    /// `chan.push.u64 %rd;` — pushes the 64-bit source register to the
    /// launch's host-side record channel (paper §6.1's mem_trace/cache-sim
    /// receiver). Lowered to the executor-implemented `CHAN` instruction;
    /// faults when the launch has no channel attached.
    ChanPush {
        /// Payload source register (64-bit).
        src: String,
    },
    /// `nvbit.readreg.b32 %d, idx;` — device-API intrinsic reading saved
    /// register `idx` of the instrumented thread (paper Listing 7).
    NvReadReg {
        /// Destination register.
        dst: String,
        /// Saved-register index.
        idx: Src,
    },
    /// `nvbit.writereg.b32 idx, %s;` — device-API intrinsic overwriting
    /// saved register `idx` (a *permanent* write: the restore routine loads
    /// it back into the register file).
    NvWriteReg {
        /// Saved-register index.
        idx: Src,
        /// Value source register.
        src: String,
    },
}

/// Binary arithmetic kind for [`PtxOp::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (low half for integers).
    MulLo,
    /// Widening multiplication `u32 × u32 → u64`.
    MulWide,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for signed types).
    Shr,
}

/// An instruction: optional guard plus operation.
#[derive(Debug, Clone, PartialEq)]
pub struct PtxInstr {
    /// Optional `@%p` / `@!%p` guard.
    pub guard: Option<PtxGuard>,
    /// The operation.
    pub op: PtxOp,
}

impl PtxInstr {
    /// Builds an unguarded instruction.
    pub fn new(op: PtxOp) -> PtxInstr {
        PtxInstr { guard: None, op }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcmp_roundtrips() {
        for c in [PCmp::Eq, PCmp::Ne, PCmp::Lt, PCmp::Le, PCmp::Gt, PCmp::Ge] {
            assert_eq!(PCmp::from_suffix(c.suffix()), Some(c));
        }
        assert_eq!(PCmp::from_suffix("zz"), None);
    }

    #[test]
    fn atomop_roundtrips() {
        for a in [
            AtomOp::Add,
            AtomOp::Min,
            AtomOp::Max,
            AtomOp::And,
            AtomOp::Or,
            AtomOp::Xor,
            AtomOp::Exch,
            AtomOp::Cas,
        ] {
            assert_eq!(AtomOp::from_suffix(a.suffix()), Some(a));
        }
    }

    #[test]
    fn special_maps_to_machine_registers() {
        assert_eq!(PtxSpecial::Tid(0).to_sass(), sass::SpecialReg::TidX);
        assert_eq!(PtxSpecial::CtaId(2).to_sass(), sass::SpecialReg::CtaIdZ);
        assert_eq!(PtxSpecial::LaneId.to_sass(), sass::SpecialReg::LaneId);
    }
}
