//! Workloads for the NVBit reproduction: a SpecAccel-like benchmark suite,
//! Torch7-style ML inference models over the pre-compiled mini-cuBLAS /
//! mini-cuDNN libraries, and the warp-FFT ISA-extension study.
//!
//! **Paper mapping:** §5–6 — these are the *applications under
//! instrumentation* for every figure of the evaluation:
//!
//! * [`specaccel`] — Figures 5, 7, 8, 9 (JIT overhead, instruction
//!   histograms, sampling slowdown and error);
//! * [`ml`] — Figure 6 and the library-instruction-fraction statistic;
//! * [`fft`] — §6.3's hypothetical `WFFT32` instruction.
//!
//! # Example
//!
//! ```
//! use workloads::specaccel::{benchmark, Size};
//! use cuda::Driver;
//! use gpu::DeviceSpec;
//! use sass::Arch;
//!
//! let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
//! benchmark("ostencil").unwrap().run(&drv, Size::Small).unwrap();
//! assert!(drv.total_stats().warp_instructions > 0);
//! ```

pub mod fft;
pub mod kernels;
pub mod ml;
pub mod specaccel;

pub use ml::{ml_model, ml_models, MlModel};
pub use specaccel::{benchmark, suite, Benchmark, Size};
