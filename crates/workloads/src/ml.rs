//! Torch7-style ML inference workloads (paper §6.1, Figure 6).
//!
//! Five model drivers named after the paper's workloads. Each executes a
//! layer sequence that spends most of its instructions inside the
//! **pre-compiled** mini-cuBLAS/mini-cuDNN libraries (74–96 % in the paper,
//! average 88 %) and the rest in *framework-native* glue kernels shipped
//! with PTX (transposes, gathers, normalizations) — which are deliberately
//! less coalesced, reproducing Figure 6's contrast.

use crate::kernels as k;
use accel::{Cublas, Cudnn};
use common::Rng;
use cuda::{CuFunction, CuModule, Driver, FatBinary, KernelArg};
use gpu::Dim3;

/// One layer of a model.
#[derive(Debug, Clone, Copy)]
enum Layer {
    /// Library conv2d: (in channels, hw, out channels, filter).
    Conv(u32, u32, u32, u32),
    /// Library GEMM: (m, n, k).
    Fc(u32, u32, u32),
    /// Library ReLU over n elements.
    Relu(u32),
    /// Library 2x2 max pool: (channels, hw).
    Pool(u32, u32),
    /// Library batch-norm over n elements.
    Norm(u32),
    /// Library softmax: (rows, cols).
    Softmax(u32, u32),
    /// Framework-native transpose: (h, w).
    NativeTranspose(u32, u32),
    /// Framework-native gather over n elements.
    NativeGather(u32),
    /// Framework-native residual add over n elements.
    NativeAdd(u32),
    /// Framework-native preprocessing/augmentation pipeline: `rounds`
    /// iterations of gather + elementwise add over `n` elements (layout
    /// conversions and data munging that real frameworks run between
    /// library calls).
    NativePipeline(u32, u32),
}

/// An ML inference workload.
pub struct MlModel {
    /// Model name (paper's Torch7 workloads).
    pub name: &'static str,
    layers: Vec<Layer>,
}

/// The five models of Figure 6.
pub fn ml_models() -> Vec<MlModel> {
    use Layer::*;
    vec![
        MlModel {
            name: "AlexNet",
            layers: vec![
                Conv(3, 24, 12, 3),
                Relu(12 * 22 * 22),
                Pool(12, 22),
                Conv(12, 11, 16, 3),
                Relu(16 * 9 * 9),
                NativeTranspose(16, 81),
                Fc(16, 64, 81),
                Relu(16 * 64),
                Fc(16, 32, 64),
                Softmax(16, 32),
                NativePipeline(2, 16384),
            ],
        },
        MlModel {
            name: "ENet",
            // Small convs, lots of native glue: the lowest library fraction.
            layers: vec![
                Conv(3, 16, 6, 3),
                NativeTranspose(6, 14 * 14),
                NativeGather(6 * 14 * 14),
                Relu(6 * 14 * 14),
                NativeAdd(6 * 14 * 14),
                Conv(6, 14, 8, 3),
                NativeTranspose(8, 12 * 12),
                NativeGather(8 * 12 * 12),
                NativeAdd(8 * 12 * 12),
                Norm(8 * 12 * 12),
                Fc(8, 16, 144),
                NativeGather(8 * 16),
                Softmax(8, 16),
                NativePipeline(1, 13312),
            ],
        },
        MlModel {
            name: "GoogLeNet",
            layers: vec![
                Conv(3, 20, 8, 3),
                Pool(8, 18),
                Conv(8, 9, 12, 3),
                NativeGather(12 * 7 * 7),
                Conv(12, 7, 16, 3),
                NativeAdd(16 * 5 * 5),
                Fc(16, 48, 25),
                Relu(16 * 48),
                Fc(16, 24, 48),
                Softmax(16, 24),
                NativePipeline(1, 16384),
            ],
        },
        MlModel {
            name: "ResNet",
            layers: vec![
                Conv(3, 20, 10, 3),
                Norm(10 * 18 * 18),
                Conv(10, 18, 10, 3),
                NativeAdd(10 * 16 * 16),
                Norm(10 * 16 * 16),
                Conv(10, 16, 10, 3),
                NativeAdd(10 * 14 * 14),
                Pool(10, 14),
                Fc(10, 32, 49),
                Softmax(10, 32),
                NativePipeline(2, 16384),
            ],
        },
        MlModel {
            name: "VGG",
            // Conv-heavy: the highest library fraction.
            layers: vec![
                Conv(3, 24, 12, 3),
                Conv(12, 22, 12, 3),
                Pool(12, 20),
                Conv(12, 10, 16, 3),
                Conv(16, 8, 16, 3),
                Fc(16, 96, 36),
                Relu(16 * 96),
                Fc(16, 64, 96),
                Fc(16, 32, 64),
                Softmax(16, 32),
                NativePipeline(1, 16384),
            ],
        },
    ]
}

/// Finds a model by name (case-insensitive).
pub fn ml_model(name: &str) -> Option<MlModel> {
    ml_models().into_iter().find(|m| m.name.eq_ignore_ascii_case(name))
}

/// The framework-native glue kernels (PTX-carrying, non-library).
fn framework_module(drv: &Driver, ctx: &cuda::CuContext) -> cuda::Result<CuModule> {
    let src = format!(
        ".version 6.0\n{}\n{}\n{}",
        k::transpose_naive("fw_transpose"),
        k::gather("fw_gather"),
        k::axpby("fw_add"),
    );
    drv.module_load(ctx, FatBinary::from_ptx("torch_framework", src))
}

impl MlModel {
    /// Runs one inference pass.
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn run(&self, drv: &Driver) -> cuda::Result<()> {
        let ctx = drv.ctx_create()?;
        let blas = Cublas::load(drv, &ctx)?;
        let dnn = Cudnn::load(drv, &ctx)?;
        let fw = framework_module(drv, &ctx)?;
        let transpose: CuFunction = drv.module_get_function(&fw, "fw_transpose")?;
        let gather: CuFunction = drv.module_get_function(&fw, "fw_gather")?;
        let add: CuFunction = drv.module_get_function(&fw, "fw_add")?;

        // One big scratch arena reused by all layers (activations ping-pong
        // between two halves).
        let cap = 1u64 << 18;
        let a = drv.mem_alloc(cap)?;
        let b = drv.mem_alloc(cap)?;
        let weights = drv.mem_alloc(cap)?;
        let wdata: Vec<u8> = (0..cap / 4)
            .flat_map(|i| (((i % 13) as f32 - 6.0) * 0.05).to_bits().to_le_bytes())
            .collect();
        drv.memcpy_htod(weights, &wdata)?;
        let adata: Vec<u8> =
            (0..cap / 4).flat_map(|i| (((i % 29) as f32) * 0.03).to_bits().to_le_bytes()).collect();
        drv.memcpy_htod(a, &adata)?;

        // A shuffled index buffer for the gather layers.
        let mut rng = Rng::seed_from_u64(7);
        let mut idx: Vec<u32> = (0..16384).collect();
        rng.shuffle(&mut idx);
        let idx_bytes: Vec<u8> = idx.iter().flat_map(|v| v.to_le_bytes()).collect();
        let indices = drv.mem_alloc(16384 * 4)?;
        drv.memcpy_htod(indices, &idx_bytes)?;

        let (mut src, mut dst) = (a, b);
        for layer in &self.layers {
            match *layer {
                Layer::Conv(c, hw, kk, r) => {
                    dnn.conv2d(drv, src, weights, dst, c, hw, hw, kk, r)?;
                }
                Layer::Fc(m, n, kdim) => {
                    blas.sgemm_nn(drv, m, n, kdim, 1.0, src, weights, 0.0, dst)?;
                }
                Layer::Relu(n) => {
                    dnn.relu(drv, src, dst, n)?;
                }
                Layer::Pool(c, hw) => {
                    dnn.maxpool2(drv, src, dst, c, hw, hw)?;
                }
                Layer::Norm(n) => {
                    dnn.batchnorm(drv, src, dst, n, 0.98, 0.01)?;
                }
                Layer::Softmax(rows, cols) => {
                    dnn.softmax_rows(drv, src, dst, rows, cols)?;
                }
                Layer::NativeTranspose(h, w) => {
                    drv.launch_kernel(
                        &transpose,
                        Dim3::xyz(w.div_ceil(64), h, 1),
                        Dim3::linear(64.min(w.max(1))),
                        &[
                            KernelArg::Ptr(src),
                            KernelArg::Ptr(dst),
                            KernelArg::U32(h),
                            KernelArg::U32(w),
                        ],
                    )?;
                }
                Layer::NativeGather(n) => {
                    let n = n.min(16384);
                    drv.launch_kernel(
                        &gather,
                        Dim3::linear(n.div_ceil(128).max(1)),
                        Dim3::linear(128.min(n.max(1))),
                        &[
                            KernelArg::Ptr(indices),
                            KernelArg::Ptr(src),
                            KernelArg::Ptr(dst),
                            KernelArg::U32(n),
                        ],
                    )?;
                }
                Layer::NativeAdd(n) => {
                    drv.launch_kernel(
                        &add,
                        Dim3::linear(n.div_ceil(128).max(1)),
                        Dim3::linear(128.min(n.max(1))),
                        &[
                            KernelArg::Ptr(src),
                            KernelArg::Ptr(dst),
                            KernelArg::Ptr(dst),
                            KernelArg::U32(n),
                            KernelArg::F32(1.0),
                            KernelArg::F32(1.0),
                        ],
                    )?;
                }
                Layer::NativePipeline(rounds, n) => {
                    let n = n.min(16384);
                    for _ in 0..rounds {
                        drv.launch_kernel(
                            &gather,
                            Dim3::linear(n.div_ceil(128).max(1)),
                            Dim3::linear(128),
                            &[
                                KernelArg::Ptr(indices),
                                KernelArg::Ptr(src),
                                KernelArg::Ptr(dst),
                                KernelArg::U32(n),
                            ],
                        )?;
                        drv.launch_kernel(
                            &add,
                            Dim3::linear(n.div_ceil(128).max(1)),
                            Dim3::linear(128),
                            &[
                                KernelArg::Ptr(dst),
                                KernelArg::Ptr(src),
                                KernelArg::Ptr(src),
                                KernelArg::U32(n),
                                KernelArg::F32(0.5),
                                KernelArg::F32(0.5),
                            ],
                        )?;
                    }
                    // The pipeline writes back into `src`; skip the swap by
                    // pre-swapping here (net effect: activations stay put).
                    std::mem::swap(&mut src, &mut dst);
                }
            }
            std::mem::swap(&mut src, &mut dst);
        }
        Ok(())
    }
}

impl std::fmt::Debug for MlModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MlModel({}, {} layers)", self.name, self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::DeviceSpec;
    use sass::Arch;

    #[test]
    fn all_models_run() {
        for model in ml_models() {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            model.run(&drv).unwrap_or_else(|e| panic!("{} failed: {e}", model.name));
            assert!(drv.launch_count() >= model.layers.len());
        }
    }

    #[test]
    fn models_spend_most_instructions_in_libraries() {
        // The defining property of Figure 6's workloads: most executed
        // instructions come from pre-compiled library kernels.
        let model = ml_model("vgg").unwrap();
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        model.run(&drv).unwrap();
        let launches = drv.launches();
        let mut lib = 0u64;
        let mut total = 0u64;
        for l in &launches {
            let info = drv.function_info(l.func).unwrap();
            total += l.stats.thread_instructions;
            if info.library {
                lib += l.stats.thread_instructions;
            }
        }
        let frac = lib as f64 / total as f64;
        assert!(frac > 0.70, "VGG library fraction {frac:.2} should be high");
    }

    #[test]
    fn model_lookup_is_case_insensitive() {
        assert!(ml_model("VGG").is_some());
        assert!(ml_model("alexnet").is_some());
        assert!(ml_model("nonesuch").is_none());
        assert_eq!(ml_models().len(), 5);
    }
}
