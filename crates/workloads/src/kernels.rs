//! Shared PTX kernel templates used by the benchmark suite.
//!
//! Each template takes a kernel name so benchmarks can mint *distinct*
//! functions (distinct `CUfunction`s matter for the instrumentation-overhead
//! experiments: the paper's Figure 5 shows JIT overhead growing with the
//! number of unique kernels).

use std::fmt::Write as _;

/// 5-point Jacobi stencil step over the interior of an `h × w` grid:
/// `out[y][x] = 0.25 * (in[y-1][x] + in[y+1][x] + in[y][x-1] + in[y][x+1])`.
///
/// Control flow depends only on the launch geometry — zero sampling error
/// (paper §6.2).
pub fn stencil5(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 pin, .param .u64 pout, .param .u32 ph, .param .u32 pw)
{{
    .reg .u32 %r<10>;
    .reg .u64 %rd<10>;
    .reg .f32 %f<8>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [pin];
    ld.param.u64 %rd2, [pout];
    ld.param.u32 %r1, [ph];
    ld.param.u32 %r2, [pw];
    mov.u32 %r3, %ctaid.x;
    add.u32 %r3, %r3, 1;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mov.u32 %r6, %ctaid.y;
    mad.lo.u32 %r5, %r6, %r4, %r5;
    add.u32 %r5, %r5, 1;
    sub.u32 %r7, %r2, 1;
    setp.ge.u32 %p1, %r5, %r7;
    @%p1 bra DONE;
    sub.u32 %r7, %r1, 1;
    setp.ge.u32 %p1, %r3, %r7;
    @%p1 bra DONE;
    mad.lo.u32 %r8, %r3, %r2, %r5;
    mul.wide.u32 %rd3, %r8, 4;
    add.u64 %rd4, %rd1, %rd3;
    mul.wide.u32 %rd5, %r2, 4;
    sub.u64 %rd6, %rd4, %rd5;
    ld.global.f32 %f1, [%rd6];
    add.u64 %rd6, %rd4, %rd5;
    ld.global.f32 %f2, [%rd6];
    ld.global.f32 %f3, [%rd4+-4];
    ld.global.f32 %f4, [%rd4+4];
    add.f32 %f1, %f1, %f2;
    add.f32 %f1, %f1, %f3;
    add.f32 %f1, %f1, %f4;
    mul.f32 %f1, %f1, 0f3E800000;
    add.u64 %rd7, %rd2, %rd3;
    st.global.f32 [%rd7], %f1;
DONE:
    exit;
}}
"#
    )
}

/// Element-wise polynomial + special-function map: `y[i] = f(x[i], c)` with
/// `iters` fused multiply/trig rounds (compute-heavy; omriq-style).
pub fn trig_map(name: &str, iters: u32) -> String {
    let mut body = String::new();
    for _ in 0..iters {
        body.push_str(
            "    sin.approx.f32 %f3, %f1;\n\
             \x20   cos.approx.f32 %f4, %f1;\n\
             \x20   fma.rn.f32 %f1, %f3, %f4, %f2;\n",
        );
    }
    format!(
        ".entry {name}(.param .u64 px, .param .u64 py, .param .u32 pn, .param .f32 pc)\n{{\n\
         \x20   .reg .u32 %r<6>;\n    .reg .u64 %rd<6>;\n    .reg .pred %p<2>;\n\
         \x20   .reg .f32 %f<6>;\n\
         \x20   ld.param.u64 %rd1, [px];\n\
         \x20   ld.param.u64 %rd2, [py];\n\
         \x20   ld.param.u32 %r1, [pn];\n\
         \x20   ld.param.f32 %f2, [pc];\n\
         \x20   mov.u32 %r2, %ctaid.x;\n\
         \x20   mov.u32 %r3, %ntid.x;\n\
         \x20   mov.u32 %r4, %tid.x;\n\
         \x20   mad.lo.u32 %r2, %r2, %r3, %r4;\n\
         \x20   setp.ge.u32 %p1, %r2, %r1;\n\
         \x20   @%p1 bra DONE;\n\
         \x20   mul.wide.u32 %rd3, %r2, 4;\n\
         \x20   add.u64 %rd4, %rd1, %rd3;\n\
         \x20   ld.global.f32 %f1, [%rd4];\n\
         {body}\
         \x20   add.u64 %rd5, %rd2, %rd3;\n\
         \x20   st.global.f32 [%rd5], %f1;\n\
         DONE:\n    exit;\n}}\n"
    )
}

/// `z[i] = a*x[i] + b*y[i]` (swim/palm-style update).
pub fn axpby(name: &str) -> String {
    format!(
        ".entry {name}(.param .u64 px, .param .u64 py, .param .u64 pz, .param .u32 pn, \
.param .f32 pa, .param .f32 pb)\n{{\n\
         \x20   .reg .u32 %r<6>;\n    .reg .u64 %rd<8>;\n    .reg .pred %p<2>;\n\
         \x20   .reg .f32 %f<6>;\n\
         \x20   ld.param.u64 %rd1, [px];\n\
         \x20   ld.param.u64 %rd2, [py];\n\
         \x20   ld.param.u64 %rd3, [pz];\n\
         \x20   ld.param.u32 %r1, [pn];\n\
         \x20   ld.param.f32 %f1, [pa];\n\
         \x20   ld.param.f32 %f2, [pb];\n\
         \x20   mov.u32 %r2, %ctaid.x;\n\
         \x20   mov.u32 %r3, %ntid.x;\n\
         \x20   mov.u32 %r4, %tid.x;\n\
         \x20   mad.lo.u32 %r2, %r2, %r3, %r4;\n\
         \x20   setp.ge.u32 %p1, %r2, %r1;\n\
         \x20   @%p1 bra DONE;\n\
         \x20   mul.wide.u32 %rd4, %r2, 4;\n\
         \x20   add.u64 %rd5, %rd1, %rd4;\n\
         \x20   ld.global.f32 %f3, [%rd5];\n\
         \x20   add.u64 %rd6, %rd2, %rd4;\n\
         \x20   ld.global.f32 %f4, [%rd6];\n\
         \x20   mul.f32 %f3, %f3, %f1;\n\
         \x20   fma.rn.f32 %f3, %f4, %f2, %f3;\n\
         \x20   add.u64 %rd7, %rd3, %rd4;\n\
         \x20   st.global.f32 [%rd7], %f3;\n\
         DONE:\n    exit;\n}}\n"
    )
}

/// Per-thread LCG random walk + atomic histogram (ep-style, atomics-heavy).
pub fn rng_hist(name: &str, steps: u32) -> String {
    format!(
        ".entry {name}(.param .u64 phist, .param .u32 pseed)\n{{\n\
         \x20   .reg .u32 %r<10>;\n    .reg .u64 %rd<6>;\n    .reg .pred %p<2>;\n\
         \x20   ld.param.u64 %rd1, [phist];\n\
         \x20   ld.param.u32 %r1, [pseed];\n\
         \x20   mov.u32 %r2, %ctaid.x;\n\
         \x20   mov.u32 %r3, %ntid.x;\n\
         \x20   mov.u32 %r4, %tid.x;\n\
         \x20   mad.lo.u32 %r2, %r2, %r3, %r4;\n\
         \x20   add.u32 %r5, %r2, %r1;\n\
         \x20   mov.u32 %r6, 0;\n\
         LOOP:\n\
         \x20   setp.ge.u32 %p1, %r6, {steps};\n\
         \x20   @%p1 bra DONE;\n\
         \x20   mul.lo.u32 %r5, %r5, 1664525;\n\
         \x20   add.u32 %r5, %r5, 1013904223;\n\
         \x20   shr.u32 %r7, %r5, 26;\n\
         \x20   mul.wide.u32 %rd2, %r7, 4;\n\
         \x20   add.u64 %rd3, %rd1, %rd2;\n\
         \x20   mov.u32 %r8, 1;\n\
         \x20   red.global.add.u32 [%rd3], %r8;\n\
         \x20   add.u32 %r6, %r6, 1;\n\
         \x20   bra LOOP;\n\
         DONE:\n    exit;\n}}\n"
    )
}

/// CSR sparse matrix–vector product: one thread per row, looping over the
/// row's nonzeros — **data-dependent trip counts** (cg-style; the paper's
/// source of non-zero sampling error).
pub fn spmv_csr(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 prowptr, .param .u64 pcols, .param .u64 pvals,
              .param .u64 px, .param .u64 py, .param .u32 pnrows)
{{
    .reg .u32 %r<12>;
    .reg .u64 %rd<14>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [prowptr];
    ld.param.u64 %rd2, [pcols];
    ld.param.u64 %rd3, [pvals];
    ld.param.u64 %rd4, [px];
    ld.param.u64 %rd5, [py];
    ld.param.u32 %r1, [pnrows];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r2, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd6, %r2, 4;
    add.u64 %rd7, %rd1, %rd6;
    ld.global.u32 %r5, [%rd7];
    ld.global.u32 %r6, [%rd7+4];
    mov.f32 %f1, 0f00000000;
LOOP:
    setp.ge.u32 %p2, %r5, %r6;
    @%p2 bra STORE;
    mul.wide.u32 %rd8, %r5, 4;
    add.u64 %rd9, %rd2, %rd8;
    ld.global.u32 %r7, [%rd9];
    add.u64 %rd10, %rd3, %rd8;
    ld.global.f32 %f2, [%rd10];
    mul.wide.u32 %rd11, %r7, 4;
    add.u64 %rd12, %rd4, %rd11;
    ld.global.f32 %f3, [%rd12];
    fma.rn.f32 %f1, %f2, %f3, %f1;
    add.u32 %r5, %r5, 1;
    bra LOOP;
STORE:
    add.u64 %rd13, %rd5, %rd6;
    st.global.f32 [%rd13], %f1;
DONE:
    exit;
}}
"#
    )
}

/// Molecular-dynamics-style force kernel: per-particle loop over `nn`
/// neighbours with a **data-dependent cutoff branch** (md-style).
pub fn md_force(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 ppos, .param .u64 pforce, .param .u32 pn, .param .u32 pnn,
              .param .f32 pcut)
{{
    .reg .u32 %r<12>;
    .reg .u64 %rd<12>;
    .reg .f32 %f<12>;
    .reg .pred %p<4>;
    ld.param.u64 %rd1, [ppos];
    ld.param.u64 %rd2, [pforce];
    ld.param.u32 %r1, [pn];
    ld.param.u32 %r2, [pnn];
    ld.param.f32 %f1, [pcut];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r3, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r3, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd3, %r3, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f2, [%rd4];
    mov.f32 %f3, 0f00000000;
    mov.u32 %r6, 0;
LOOP:
    setp.ge.u32 %p2, %r6, %r2;
    @%p2 bra STORE;
    add.u32 %r7, %r3, %r6;
    add.u32 %r7, %r7, 1;
    rem_free:
    // wrap: j = (i + k + 1) mod n  (poor man's modulo via compare)
    setp.lt.u32 %p3, %r7, %r1;
    @%p3 bra NOWRAP;
    sub.u32 %r7, %r7, %r1;
NOWRAP:
    mul.wide.u32 %rd5, %r7, 4;
    add.u64 %rd6, %rd1, %rd5;
    ld.global.f32 %f4, [%rd6];
    sub.f32 %f5, %f2, %f4;
    mul.f32 %f6, %f5, %f5;
    // Data-dependent cutoff: contributes only when r2 < cut.
    setp.ge.f32 %p3, %f6, %f1;
    @%p3 bra SKIP;
    rcp.approx.f32 %f7, %f6;
    fma.rn.f32 %f3, %f7, %f5, %f3;
SKIP:
    add.u32 %r6, %r6, 1;
    bra LOOP;
STORE:
    add.u64 %rd7, %rd2, %rd3;
    st.global.f32 [%rd7], %f3;
DONE:
    exit;
}}
"#
    )
}

/// Lattice-Boltzmann-style streaming step with `dirs` shifted copies.
pub fn lbm_stream(name: &str, dirs: u32) -> String {
    let mut body = String::new();
    for d in 0..dirs {
        let off = (d + 1) * 4;
        let _ = write!(
            body,
            "    ld.global.f32 %f1, [%rd4+{off}];\n\
             \x20   fma.rn.f32 %f2, %f1, 0f3DCCCCCD, %f2;\n"
        );
    }
    format!(
        ".entry {name}(.param .u64 pin, .param .u64 pout, .param .u32 pn)\n{{\n\
         \x20   .reg .u32 %r<6>;\n    .reg .u64 %rd<6>;\n    .reg .pred %p<2>;\n\
         \x20   .reg .f32 %f<6>;\n\
         \x20   ld.param.u64 %rd1, [pin];\n\
         \x20   ld.param.u64 %rd2, [pout];\n\
         \x20   ld.param.u32 %r1, [pn];\n\
         \x20   mov.u32 %r2, %ctaid.x;\n\
         \x20   mov.u32 %r3, %ntid.x;\n\
         \x20   mov.u32 %r4, %tid.x;\n\
         \x20   mad.lo.u32 %r2, %r2, %r3, %r4;\n\
         \x20   setp.ge.u32 %p1, %r2, %r1;\n\
         \x20   @%p1 bra DONE;\n\
         \x20   mul.wide.u32 %rd3, %r2, 4;\n\
         \x20   add.u64 %rd4, %rd1, %rd3;\n\
         \x20   ld.global.f32 %f2, [%rd4];\n\
         {body}\
         \x20   add.u64 %rd5, %rd2, %rd3;\n\
         \x20   st.global.f32 [%rd5], %f2;\n\
         DONE:\n    exit;\n}}\n"
    )
}

/// Block-level sum reduction into a global accumulator (miniGhost-style).
pub fn reduce_sum(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 px, .param .u64 pout, .param .u32 pn)
{{
    .reg .u32 %r<10>;
    .reg .u64 %rd<6>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [px];
    ld.param.u64 %rd2, [pout];
    ld.param.u32 %r1, [pn];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r2, %r2, %r3, %r4;
    mov.f32 %f1, 0f00000000;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra REDUCE;
    mul.wide.u32 %rd3, %r2, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
REDUCE:
    shfl.bfly.b32 %r5, %f1, 16;
    mov.f32 %f2, %r5;
    add.f32 %f1, %f1, %f2;
    shfl.bfly.b32 %r5, %f1, 8;
    mov.f32 %f2, %r5;
    add.f32 %f1, %f1, %f2;
    shfl.bfly.b32 %r5, %f1, 4;
    mov.f32 %f2, %r5;
    add.f32 %f1, %f1, %f2;
    shfl.bfly.b32 %r5, %f1, 2;
    mov.f32 %f2, %r5;
    add.f32 %f1, %f1, %f2;
    shfl.bfly.b32 %r5, %f1, 1;
    mov.f32 %f2, %r5;
    add.f32 %f1, %f1, %f2;
    mov.u32 %r6, %laneid;
    setp.ne.u32 %p2, %r6, 0;
    @%p2 bra DONE;
    red.global.add.f32 [%rd2], %f1;
DONE:
    exit;
}}
"#
    )
}

/// Line-sweep kernel: each thread owns a row and performs a forward
/// recurrence (sp/bt-style).
pub fn line_sweep(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 pdata, .param .u32 ph, .param .u32 pw)
{{
    .reg .u32 %r<10>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<6>;
    .reg .pred %p<3>;
    ld.param.u64 %rd1, [pdata];
    ld.param.u32 %r1, [ph];
    ld.param.u32 %r2, [pw];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r3, %r3, %r4, %r5;
    setp.ge.u32 %p1, %r3, %r1;
    @%p1 bra DONE;
    mul.lo.u32 %r6, %r3, %r2;
    mul.wide.u32 %rd2, %r6, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.f32 %f1, [%rd3];
    mov.u32 %r7, 1;
LOOP:
    setp.ge.u32 %p2, %r7, %r2;
    @%p2 bra DONE;
    mul.wide.u32 %rd4, %r7, 4;
    add.u64 %rd5, %rd3, %rd4;
    ld.global.f32 %f2, [%rd5];
    fma.rn.f32 %f1, %f1, 0f3F000000, %f2;
    st.global.f32 [%rd5], %f1;
    add.u32 %r7, %r7, 1;
    bra LOOP;
DONE:
    exit;
}}
"#
    )
}

/// A short "unique kernel" for the ilbdc-style many-kernels benchmark; the
/// constant folding makes every variant genuinely distinct code.
pub fn short_unique(name: &str, variant: u32) -> String {
    let c1 = 0x3f80_0000u32 + variant * 0x1000; // distinct f32 constants
    let shift = (variant % 5) + 1;
    format!(
        ".entry {name}(.param .u64 px, .param .u32 pn)\n{{\n\
         \x20   .reg .u32 %r<8>;\n    .reg .u64 %rd<5>;\n    .reg .pred %p<2>;\n\
         \x20   .reg .f32 %f<4>;\n\
         \x20   ld.param.u64 %rd1, [px];\n\
         \x20   ld.param.u32 %r1, [pn];\n\
         \x20   mov.u32 %r2, %ctaid.x;\n\
         \x20   mov.u32 %r3, %ntid.x;\n\
         \x20   mov.u32 %r4, %tid.x;\n\
         \x20   mad.lo.u32 %r2, %r2, %r3, %r4;\n\
         \x20   setp.ge.u32 %p1, %r2, %r1;\n\
         \x20   @%p1 bra DONE;\n\
         \x20   shl.b32 %r5, %r2, {shift};\n\
         \x20   xor.b32 %r5, %r5, %r2;\n\
         \x20   mul.wide.u32 %rd2, %r2, 4;\n\
         \x20   add.u64 %rd3, %rd1, %rd2;\n\
         \x20   ld.global.f32 %f1, [%rd3];\n\
         \x20   fma.rn.f32 %f1, %f1, 0f{c1:08X}, %f1;\n\
         \x20   st.global.f32 [%rd3], %f1;\n\
         DONE:\n    exit;\n}}\n"
    )
}

/// Naive matrix transpose with uncoalesced writes — the archetypal
/// "framework-native glue kernel" with poor memory behaviour (used by the
/// ML models to contrast with library kernels, paper Figure 6).
pub fn transpose_naive(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 pin, .param .u64 pout, .param .u32 ph, .param .u32 pw)
{{
    .reg .u32 %r<10>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<3>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [pin];
    ld.param.u64 %rd2, [pout];
    ld.param.u32 %r1, [ph];
    ld.param.u32 %r2, [pw];
    mov.u32 %r3, %ctaid.x;
    mov.u32 %r4, %ntid.x;
    mov.u32 %r5, %tid.x;
    mad.lo.u32 %r3, %r3, %r4, %r5;
    mul.lo.u32 %r6, %r1, %r2;
    setp.ge.u32 %p1, %r3, %r6;
    @%p1 bra DONE;
    // y = i / w, x = i % w  (via multiply-free loop-less shift math is not
    // available; emulate div by repeated subtraction is too slow — use the
    // row-per-block mapping instead: ctaid.y = row)
    mov.u32 %r7, %ctaid.y;
    setp.ge.u32 %p1, %r5, %r2;
    @%p1 bra DONE;
    setp.ge.u32 %p1, %r7, %r1;
    @%p1 bra DONE;
    mad.lo.u32 %r8, %r7, %r2, %r5;
    mul.wide.u32 %rd3, %r8, 4;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.f32 %f1, [%rd4];
    mad.lo.u32 %r9, %r5, %r1, %r7;
    mul.wide.u32 %rd5, %r9, 4;
    add.u64 %rd6, %rd2, %rd5;
    st.global.f32 [%rd6], %f1;
DONE:
    exit;
}}
"#
    )
}

/// Index-gather kernel with data-driven (scattered) reads — another
/// divergent framework-native pattern.
pub fn gather(name: &str) -> String {
    format!(
        r#"
.entry {name}(.param .u64 pidx, .param .u64 pin, .param .u64 pout, .param .u32 pn)
{{
    .reg .u32 %r<8>;
    .reg .u64 %rd<10>;
    .reg .f32 %f<3>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [pidx];
    ld.param.u64 %rd2, [pin];
    ld.param.u64 %rd3, [pout];
    ld.param.u32 %r1, [pn];
    mov.u32 %r2, %ctaid.x;
    mov.u32 %r3, %ntid.x;
    mov.u32 %r4, %tid.x;
    mad.lo.u32 %r2, %r2, %r3, %r4;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd4, %r2, 4;
    add.u64 %rd5, %rd1, %rd4;
    ld.global.u32 %r5, [%rd5];
    mul.wide.u32 %rd6, %r5, 4;
    add.u64 %rd7, %rd2, %rd6;
    ld.global.f32 %f1, [%rd7];
    add.u64 %rd8, %rd3, %rd4;
    st.global.f32 [%rd8], %f1;
DONE:
    exit;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass::Arch;

    #[test]
    fn every_template_compiles_on_every_arch() {
        let sources = vec![
            stencil5("t_stencil"),
            trig_map("t_trig", 4),
            axpby("t_axpby"),
            rng_hist("t_rng", 16),
            spmv_csr("t_spmv"),
            md_force("t_md"),
            lbm_stream("t_lbm", 8),
            reduce_sum("t_reduce"),
            line_sweep("t_sweep"),
            short_unique("t_uniq", 3),
            transpose_naive("t_transpose"),
            gather("t_gather"),
        ];
        let module = sources.join("\n");
        for arch in Arch::ALL {
            ptx::compile_module(&module, arch)
                .unwrap_or_else(|e| panic!("template failed on {arch}: {e}"));
        }
    }

    #[test]
    fn unique_variants_produce_distinct_code() {
        let a = ptx::compile_module(&short_unique("k", 1), Arch::Volta).unwrap();
        let b = ptx::compile_module(&short_unique("k", 2), Arch::Volta).unwrap();
        assert_ne!(a.functions[0].code, b.functions[0].code);
    }
}
