//! A SpecAccel-like benchmark suite (paper §5.2, §6.2).
//!
//! Fifteen synthetic benchmarks named after the SPEC ACCEL programs the
//! paper evaluates, each reproducing the *structural* property that matters
//! for the experiments:
//!
//! * most benchmarks have grid-dim-determined control flow (zero sampling
//!   error, §6.2);
//! * `md` (and the spmv phase of `cg`) have data-dependent control flow —
//!   the source of non-zero sampling error;
//! * `ilbdc` consists of many unique, short, launched-once kernels — the
//!   worst case for JIT-compilation overhead (Figure 5);
//! * `ep` is atomics-heavy, `omriq` special-function-heavy, the rest are
//!   stencil/sweep mixes.

use crate::kernels as k;
use common::Rng;
use cuda::{CuContext, CuFunction, CuModule, Driver, FatBinary, KernelArg};
use gpu::Dim3;

/// Problem-size classes (the paper uses medium for Figure 5 and large for
/// Figures 7–9; tests use small).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Fast enough for debug-mode unit tests.
    Small,
    /// Figure 5 scale.
    Medium,
    /// Figures 7–9 scale.
    Large,
}

impl Size {
    /// (elements, iterations) scale factors.
    fn scale(self) -> (u32, u32) {
        match self {
            Size::Small => (1 << 11, 2),
            Size::Medium => (1 << 14, 12),
            Size::Large => (1 << 15, 30),
        }
    }
}

/// One benchmark of the suite.
pub struct Benchmark {
    /// Benchmark name (SpecAccel-style).
    pub name: &'static str,
    runner: fn(&Ctx<'_>, Size) -> cuda::Result<()>,
}

impl Benchmark {
    /// Runs the benchmark on a driver (creating its own context/modules).
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn run(&self, drv: &Driver, size: Size) -> cuda::Result<()> {
        let ctx = drv.ctx_create()?;
        let c = Ctx { drv, ctx };
        (self.runner)(&c, size)
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Benchmark({})", self.name)
    }
}

/// The full suite, in the paper's reporting order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "ostencil", runner: ostencil },
        Benchmark { name: "olbm", runner: olbm },
        Benchmark { name: "omriq", runner: omriq },
        Benchmark { name: "md", runner: md },
        Benchmark { name: "palm", runner: palm },
        Benchmark { name: "ep", runner: ep },
        Benchmark { name: "clvrleaf", runner: clvrleaf },
        Benchmark { name: "cg", runner: cg },
        Benchmark { name: "seismic", runner: seismic },
        Benchmark { name: "sp", runner: sp },
        Benchmark { name: "csp", runner: csp },
        Benchmark { name: "miniGhost", runner: mini_ghost },
        Benchmark { name: "ilbdc", runner: ilbdc },
        Benchmark { name: "swim", runner: swim },
        Benchmark { name: "bt", runner: bt },
    ]
}

/// Finds a benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name == name)
}

struct Ctx<'a> {
    drv: &'a Driver,
    ctx: CuContext,
}

impl Ctx<'_> {
    fn module(&self, name: &str, sources: &[String]) -> cuda::Result<CuModule> {
        let src = format!(".version 6.0\n{}", sources.join("\n"));
        self.drv.module_load(&self.ctx, FatBinary::from_ptx(name, src))
    }

    fn func(&self, m: &CuModule, name: &str) -> cuda::Result<CuFunction> {
        self.drv.module_get_function(m, name)
    }

    fn alloc_f32(&self, n: u32, f: impl Fn(u32) -> f32) -> cuda::Result<u64> {
        let a = self.drv.mem_alloc(n as u64 * 4)?;
        let bytes: Vec<u8> = (0..n).flat_map(|i| f(i).to_bits().to_le_bytes()).collect();
        self.drv.memcpy_htod(a, &bytes)?;
        Ok(a)
    }

    fn alloc_u32(&self, vals: &[u32]) -> cuda::Result<u64> {
        let a = self.drv.mem_alloc(vals.len() as u64 * 4)?;
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.drv.memcpy_htod(a, &bytes)?;
        Ok(a)
    }

    fn launch1d(&self, f: &CuFunction, n: u32, args: &[KernelArg]) -> cuda::Result<()> {
        self.drv.launch_kernel(f, Dim3::linear(n.div_ceil(128).max(1)), Dim3::linear(128), args)?;
        Ok(())
    }
}

fn ostencil(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let w = 128u32;
    let h = (n / w).max(4);
    let m = c.module("ostencil", &[k::stencil5("stencil_step")])?;
    let f = c.func(&m, "stencil_step")?;
    let a = c.alloc_f32(h * w, |i| (i % 17) as f32)?;
    let b = c.alloc_f32(h * w, |_| 0.0)?;
    for it in 0..iters {
        let (src, dst) = if it % 2 == 0 { (a, b) } else { (b, a) };
        c.drv.launch_kernel(
            &f,
            Dim3::xyz(h - 2, (w - 2).div_ceil(128), 1),
            Dim3::linear(128),
            &[KernelArg::Ptr(src), KernelArg::Ptr(dst), KernelArg::U32(h), KernelArg::U32(w)],
        )?;
    }
    Ok(())
}

fn olbm(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let m = c.module("olbm", &[k::lbm_stream("lbm_stream", 8), k::axpby("lbm_collide")])?;
    let stream = c.func(&m, "lbm_stream")?;
    let collide = c.func(&m, "lbm_collide")?;
    let grid = c.alloc_f32(n + 16, |i| (i % 9) as f32 * 0.1)?;
    let tmp = c.alloc_f32(n + 16, |_| 0.0)?;
    for _ in 0..iters {
        c.launch1d(&stream, n, &[KernelArg::Ptr(grid), KernelArg::Ptr(tmp), KernelArg::U32(n)])?;
        c.launch1d(
            &collide,
            n,
            &[
                KernelArg::Ptr(tmp),
                KernelArg::Ptr(grid),
                KernelArg::Ptr(grid),
                KernelArg::U32(n),
                KernelArg::F32(0.8),
                KernelArg::F32(0.2),
            ],
        )?;
    }
    Ok(())
}

fn omriq(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let m = c.module("omriq", &[k::trig_map("mriq_phi", 6), k::trig_map("mriq_q", 10)])?;
    let phi = c.func(&m, "mriq_phi")?;
    let q = c.func(&m, "mriq_q")?;
    let x = c.alloc_f32(n, |i| i as f32 * 0.001)?;
    let y = c.alloc_f32(n, |_| 0.0)?;
    for _ in 0..iters.div_ceil(3) {
        c.launch1d(
            &phi,
            n,
            &[KernelArg::Ptr(x), KernelArg::Ptr(y), KernelArg::U32(n), KernelArg::F32(0.5)],
        )?;
        c.launch1d(
            &q,
            n,
            &[KernelArg::Ptr(y), KernelArg::Ptr(x), KernelArg::U32(n), KernelArg::F32(0.25)],
        )?;
    }
    Ok(())
}

fn md(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let n = n / 4;
    let m = c.module("md", &[k::md_force("md_force"), k::axpby("md_update")])?;
    let force_k = c.func(&m, "md_force")?;
    let update = c.func(&m, "md_update")?;
    let pos = c.alloc_f32(n, |i| (i as f32 * 0.37).sin())?;
    let force = c.alloc_f32(n, |_| 0.0)?;
    for _ in 0..iters {
        // Data-dependent cutoff branch: counts change as positions drift.
        c.launch1d(
            &force_k,
            n,
            &[
                KernelArg::Ptr(pos),
                KernelArg::Ptr(force),
                KernelArg::U32(n),
                KernelArg::U32(16),
                KernelArg::F32(0.5),
            ],
        )?;
        c.launch1d(
            &update,
            n,
            &[
                KernelArg::Ptr(pos),
                KernelArg::Ptr(force),
                KernelArg::Ptr(pos),
                KernelArg::U32(n),
                KernelArg::F32(1.0),
                KernelArg::F32(0.01),
            ],
        )?;
    }
    Ok(())
}

fn palm(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let m = c.module(
        "palm",
        &[
            k::axpby("palm_advect"),
            k::stencil5("palm_diffuse"),
            k::trig_map("palm_buoyancy", 2),
            k::axpby("palm_pressure"),
            k::reduce_sum("palm_cfl"),
        ],
    )?;
    let advect = c.func(&m, "palm_advect")?;
    let diffuse = c.func(&m, "palm_diffuse")?;
    let buoy = c.func(&m, "palm_buoyancy")?;
    let press = c.func(&m, "palm_pressure")?;
    let cfl = c.func(&m, "palm_cfl")?;
    let w = 64u32;
    let h = (n / w).max(4);
    let u = c.alloc_f32(h * w, |i| (i % 13) as f32 * 0.05)?;
    let v = c.alloc_f32(h * w, |_| 0.1)?;
    let acc = c.alloc_f32(1, |_| 0.0)?;
    for _ in 0..iters.div_ceil(2) {
        c.launch1d(
            &advect,
            h * w,
            &[
                KernelArg::Ptr(u),
                KernelArg::Ptr(v),
                KernelArg::Ptr(v),
                KernelArg::U32(h * w),
                KernelArg::F32(0.9),
                KernelArg::F32(0.1),
            ],
        )?;
        c.drv.launch_kernel(
            &diffuse,
            Dim3::xyz(h - 2, (w - 2).div_ceil(128), 1),
            Dim3::linear(128),
            &[KernelArg::Ptr(v), KernelArg::Ptr(u), KernelArg::U32(h), KernelArg::U32(w)],
        )?;
        c.launch1d(
            &buoy,
            h * w,
            &[KernelArg::Ptr(u), KernelArg::Ptr(v), KernelArg::U32(h * w), KernelArg::F32(0.3)],
        )?;
        c.launch1d(
            &press,
            h * w,
            &[
                KernelArg::Ptr(v),
                KernelArg::Ptr(u),
                KernelArg::Ptr(u),
                KernelArg::U32(h * w),
                KernelArg::F32(0.5),
                KernelArg::F32(0.5),
            ],
        )?;
        c.launch1d(&cfl, h * w, &[KernelArg::Ptr(u), KernelArg::Ptr(acc), KernelArg::U32(h * w)])?;
    }
    Ok(())
}

fn ep(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let steps = 8 + iters;
    let m = c.module("ep", &[k::rng_hist("ep_walk", steps)])?;
    let f = c.func(&m, "ep_walk")?;
    let hist = c.alloc_f32(64, |_| 0.0)?;
    for launch in 0..3 {
        c.launch1d(&f, n, &[KernelArg::Ptr(hist), KernelArg::U32(launch * 7919)])?;
    }
    Ok(())
}

fn clvrleaf(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let srcs: Vec<String> =
        ["ideal_gas", "viscosity", "flux_calc", "advec_cell", "advec_mom", "reset"]
            .iter()
            .enumerate()
            .map(|(i, name)| {
                if i % 2 == 0 {
                    k::axpby(&format!("clvr_{name}"))
                } else {
                    k::lbm_stream(&format!("clvr_{name}"), 4)
                }
            })
            .collect();
    let m = c.module("clvrleaf", &srcs)?;
    let x = c.alloc_f32(n + 8, |i| (i % 23) as f32 * 0.02)?;
    let y = c.alloc_f32(n + 8, |_| 1.0)?;
    for _ in 0..iters.div_ceil(2) {
        for (i, name) in ["ideal_gas", "viscosity", "flux_calc", "advec_cell", "advec_mom", "reset"]
            .iter()
            .enumerate()
        {
            let f = c.func(&m, &format!("clvr_{name}"))?;
            if i % 2 == 0 {
                c.launch1d(
                    &f,
                    n,
                    &[
                        KernelArg::Ptr(x),
                        KernelArg::Ptr(y),
                        KernelArg::Ptr(y),
                        KernelArg::U32(n),
                        KernelArg::F32(0.7),
                        KernelArg::F32(0.3),
                    ],
                )?;
            } else {
                c.launch1d(&f, n, &[KernelArg::Ptr(x), KernelArg::Ptr(y), KernelArg::U32(n)])?;
            }
        }
    }
    Ok(())
}

fn cg(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let rows = n / 8;
    let m =
        c.module("cg", &[k::spmv_csr("cg_spmv"), k::axpby("cg_axpy"), k::reduce_sum("cg_dot")])?;
    let spmv = c.func(&m, "cg_spmv")?;
    let axpy = c.func(&m, "cg_axpy")?;
    let dot = c.func(&m, "cg_dot")?;

    // Random CSR structure: row lengths 1..16 (divergent loops).
    let mut rng = Rng::seed_from_u64(42);
    let mut rowptr = vec![0u32];
    let mut cols = Vec::new();
    for _ in 0..rows {
        let len = rng.gen_range(1..16u32);
        for _ in 0..len {
            cols.push(rng.gen_range(0..rows));
        }
        rowptr.push(cols.len() as u32);
    }
    let nnz = cols.len() as u32;
    let d_rowptr = c.alloc_u32(&rowptr)?;
    let d_cols = c.alloc_u32(&cols)?;
    let d_vals = c.alloc_f32(nnz, |i| 1.0 / (1.0 + i as f32))?;
    let x = c.alloc_f32(rows, |_| 1.0)?;
    let y = c.alloc_f32(rows, |_| 0.0)?;
    let acc = c.alloc_f32(1, |_| 0.0)?;

    for _ in 0..iters {
        c.launch1d(
            &spmv,
            rows,
            &[
                KernelArg::Ptr(d_rowptr),
                KernelArg::Ptr(d_cols),
                KernelArg::Ptr(d_vals),
                KernelArg::Ptr(x),
                KernelArg::Ptr(y),
                KernelArg::U32(rows),
            ],
        )?;
        c.launch1d(&dot, rows, &[KernelArg::Ptr(y), KernelArg::Ptr(acc), KernelArg::U32(rows)])?;
        c.launch1d(
            &axpy,
            rows,
            &[
                KernelArg::Ptr(x),
                KernelArg::Ptr(y),
                KernelArg::Ptr(x),
                KernelArg::U32(rows),
                KernelArg::F32(0.99),
                KernelArg::F32(0.01),
            ],
        )?;
    }
    Ok(())
}

fn seismic(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let w = 128u32;
    let h = (n / w).max(4);
    let m =
        c.module("seismic", &[k::stencil5("seismic_pressure"), k::stencil5("seismic_velocity")])?;
    let p = c.func(&m, "seismic_pressure")?;
    let v = c.func(&m, "seismic_velocity")?;
    let a = c.alloc_f32(h * w, |i| if i == h * w / 2 { 100.0 } else { 0.0 })?;
    let b = c.alloc_f32(h * w, |_| 0.0)?;
    for _ in 0..iters {
        for (f, src, dst) in [(&p, a, b), (&v, b, a)] {
            c.drv.launch_kernel(
                f,
                Dim3::xyz(h - 2, (w - 2).div_ceil(128), 1),
                Dim3::linear(128),
                &[KernelArg::Ptr(src), KernelArg::Ptr(dst), KernelArg::U32(h), KernelArg::U32(w)],
            )?;
        }
    }
    Ok(())
}

fn sweep_bench(c: &Ctx<'_>, size: Size, prefix: &str, sweeps: usize) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let rows = (n / 64).max(8);
    let w = 64u32;
    let names: Vec<String> = (0..sweeps).map(|i| format!("{prefix}_sweep{i}")).collect();
    let srcs: Vec<String> = names.iter().map(|nm| k::line_sweep(nm)).collect();
    let m = c.module(prefix, &srcs)?;
    let data = c.alloc_f32(rows * w, |i| (i % 31) as f32 * 0.01)?;
    for _ in 0..iters.div_ceil(3) {
        for nm in &names {
            let f = c.func(&m, nm)?;
            c.launch1d(&f, rows, &[KernelArg::Ptr(data), KernelArg::U32(rows), KernelArg::U32(w)])?;
        }
    }
    Ok(())
}

fn sp(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    sweep_bench(c, size, "sp", 3)
}

fn csp(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    sweep_bench(c, size, "csp", 4)
}

fn mini_ghost(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let w = 128u32;
    let h = (n / w).max(4);
    let m = c.module("miniGhost", &[k::stencil5("mg_stencil"), k::reduce_sum("mg_checksum")])?;
    let st = c.func(&m, "mg_stencil")?;
    let ck = c.func(&m, "mg_checksum")?;
    let a = c.alloc_f32(h * w, |i| (i % 7) as f32)?;
    let b = c.alloc_f32(h * w, |_| 0.0)?;
    let acc = c.alloc_f32(1, |_| 0.0)?;
    for it in 0..iters {
        let (src, dst) = if it % 2 == 0 { (a, b) } else { (b, a) };
        c.drv.launch_kernel(
            &st,
            Dim3::xyz(h - 2, (w - 2).div_ceil(128), 1),
            Dim3::linear(128),
            &[KernelArg::Ptr(src), KernelArg::Ptr(dst), KernelArg::U32(h), KernelArg::U32(w)],
        )?;
        c.launch1d(&ck, h * w, &[KernelArg::Ptr(dst), KernelArg::Ptr(acc), KernelArg::U32(h * w)])?;
    }
    Ok(())
}

fn ilbdc(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    // Many unique, short, launched-once kernels: the Figure 5 worst case.
    let (n, _) = size.scale();
    let n = n / 4;
    let count = match size {
        Size::Small => 8,
        Size::Medium => 24,
        Size::Large => 32,
    };
    let srcs: Vec<String> =
        (0..count).map(|v| k::short_unique(&format!("ilbdc_k{v}"), v)).collect();
    let m = c.module("ilbdc", &srcs)?;
    let x = c.alloc_f32(n, |i| i as f32 * 0.01)?;
    for v in 0..count {
        let f = c.func(&m, &format!("ilbdc_k{v}"))?;
        c.launch1d(&f, n, &[KernelArg::Ptr(x), KernelArg::U32(n)])?;
    }
    Ok(())
}

fn swim(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let m = c.module(
        "swim",
        &[k::axpby("swim_calc1"), k::axpby("swim_calc2"), k::stencil5("swim_calc3")],
    )?;
    let c1 = c.func(&m, "swim_calc1")?;
    let c2 = c.func(&m, "swim_calc2")?;
    let c3 = c.func(&m, "swim_calc3")?;
    let w = 64u32;
    let h = (n / w).max(4);
    let u = c.alloc_f32(h * w, |i| (i % 11) as f32 * 0.1)?;
    let v = c.alloc_f32(h * w, |_| 0.5)?;
    for _ in 0..iters {
        c.launch1d(
            &c1,
            h * w,
            &[
                KernelArg::Ptr(u),
                KernelArg::Ptr(v),
                KernelArg::Ptr(v),
                KernelArg::U32(h * w),
                KernelArg::F32(0.6),
                KernelArg::F32(0.4),
            ],
        )?;
        c.launch1d(
            &c2,
            h * w,
            &[
                KernelArg::Ptr(v),
                KernelArg::Ptr(u),
                KernelArg::Ptr(u),
                KernelArg::U32(h * w),
                KernelArg::F32(0.3),
                KernelArg::F32(0.7),
            ],
        )?;
        c.drv.launch_kernel(
            &c3,
            Dim3::xyz(h - 2, (w - 2).div_ceil(128), 1),
            Dim3::linear(128),
            &[KernelArg::Ptr(u), KernelArg::Ptr(v), KernelArg::U32(h), KernelArg::U32(w)],
        )?;
    }
    Ok(())
}

fn bt(c: &Ctx<'_>, size: Size) -> cuda::Result<()> {
    let (n, iters) = size.scale();
    let rows = (n / 64).max(8);
    let m = c.module(
        "bt",
        &[
            k::line_sweep("bt_xsolve"),
            k::line_sweep("bt_ysolve"),
            k::line_sweep("bt_zsolve"),
            k::axpby("bt_add"),
        ],
    )?;
    let data = c.alloc_f32(rows * 64, |i| (i % 19) as f32 * 0.02)?;
    let rhs = c.alloc_f32(rows * 64, |_| 1.0)?;
    for _ in 0..iters.div_ceil(2) {
        for nm in ["bt_xsolve", "bt_ysolve", "bt_zsolve"] {
            let f = c.func(&m, nm)?;
            c.launch1d(
                &f,
                rows,
                &[KernelArg::Ptr(data), KernelArg::U32(rows), KernelArg::U32(64)],
            )?;
        }
        let add = c.func(&m, "bt_add")?;
        c.launch1d(
            &add,
            rows * 64,
            &[
                KernelArg::Ptr(data),
                KernelArg::Ptr(rhs),
                KernelArg::Ptr(data),
                KernelArg::U32(rows * 64),
                KernelArg::F32(1.0),
                KernelArg::F32(0.1),
            ],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::DeviceSpec;
    use sass::Arch;

    #[test]
    fn every_benchmark_runs_small() {
        for b in suite() {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            b.run(&drv, Size::Small).unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
            assert!(drv.launch_count() > 0, "{} launched nothing", b.name);
        }
    }

    #[test]
    fn ilbdc_has_many_unique_kernels_launched_once() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        benchmark("ilbdc").unwrap().run(&drv, Size::Small).unwrap();
        let launches = drv.launches();
        let mut names: Vec<&str> = launches.iter().map(|l| l.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), launches.len(), "each kernel launched once");
        assert!(names.len() >= 8);
    }

    #[test]
    fn md_instruction_counts_vary_across_launches() {
        // The data-dependent cutoff branch makes per-launch thread
        // instruction counts differ — the paper's source of sampling error.
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        benchmark("md").unwrap().run(&drv, Size::Small).unwrap();
        let counts: Vec<u64> = drv
            .launches()
            .iter()
            .filter(|l| l.name == "md_force")
            .map(|l| l.stats.thread_instructions)
            .collect();
        assert!(counts.len() >= 2);
        assert!(counts.windows(2).any(|w| w[0] != w[1]), "md_force counts should vary: {counts:?}");
    }

    #[test]
    fn stencil_benchmarks_are_launch_deterministic() {
        // Grid-dim-determined control flow: same kernel, same grid => same
        // warp-level instruction count (zero sampling error).
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        benchmark("ostencil").unwrap().run(&drv, Size::Small).unwrap();
        let counts: Vec<u64> = drv.launches().iter().map(|l| l.stats.warp_instructions).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn benchmark_lookup() {
        assert!(benchmark("cg").is_some());
        assert!(benchmark("nope").is_none());
        assert_eq!(suite().len(), 15);
    }
}
// (additional tests appended)
#[cfg(test)]
mod determinism_tests {
    use super::*;
    use gpu::DeviceSpec;
    use sass::Arch;

    /// The whole stack is deterministic: running any benchmark twice yields
    /// identical cycle counts and instruction totals (a prerequisite for
    /// the sampling-error methodology).
    #[test]
    fn benchmarks_are_deterministic() {
        for name in ["md", "cg", "ep"] {
            let run = || {
                let drv = Driver::new(DeviceSpec::test(Arch::Volta));
                benchmark(name).unwrap().run(&drv, Size::Small).unwrap();
                let s = drv.total_stats();
                (s.cycles, s.thread_instructions, s.warp_instructions)
            };
            assert_eq!(run(), run(), "{name} is nondeterministic");
        }
    }
}
