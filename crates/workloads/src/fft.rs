//! The warp-wide 32-point FFT workload of paper §6.3.
//!
//! A hypothetical `WFFT32` instruction computes one complex 32-point FFT
//! per warp (each lane holds one complex sample packed as two `f32`s in a
//! register pair). The kernel in [`wfft_kernel_ptx`] uses the proxy
//! instruction; executing it natively faults, and the `wfft_emu` tool
//! (in `nvbit-tools`) replaces it with the emulation function.
//!
//! [`soft_fft_kernel_ptx`] is the software implementation using warp
//! shuffles — the same arithmetic sequence as the emulation function (both
//! come from [`fft_stages_body`]), so the two paths produce bit-identical
//! results while executing wildly different instruction counts (the
//! paper's 21 vs 150 instructions per warp).

use std::fmt::Write as _;

/// The proxy-instruction name.
pub const WFFT32: &str = "WFFT32";

/// Emits the shared 5-stage decimation-in-frequency butterfly network plus
/// the final bit-reversal, operating on the complex value in registers
/// `(%fre, %fim)` of each lane. Uses `%fa..%fk` and `%ra..%rd` as scratch
/// (all `.f32`/`.u32` and must be declared by the caller).
pub fn fft_stages_body() -> String {
    let mut s = String::new();
    s.push_str("    mov.u32 %ra, %laneid;\n");
    for m in [16u32, 8, 4, 2, 1] {
        // Partner values.
        let _ = writeln!(s, "    shfl.bfly.b32 %rb, %fre, {m};");
        s.push_str("    mov.f32 %fa, %rb;\n");
        let _ = writeln!(s, "    shfl.bfly.b32 %rb, %fim, {m};");
        s.push_str("    mov.f32 %fb, %rb;\n");
        // Upper-half lanes apply the twiddle to (partner - self); lower
        // half adds. angle = -pi * (lane & (m-1)) / m.
        let _ = writeln!(s, "    and.b32 %rc, %ra, {};", m - 1);
        s.push_str("    cvt.rn.f32.u32 %fc, %rc;\n");
        let inv_m = -std::f32::consts::PI / m as f32;
        let _ = writeln!(s, "    mul.f32 %fc, %fc, 0f{:08X};", inv_m.to_bits());
        s.push_str("    cos.approx.f32 %fd, %fc;\n    sin.approx.f32 %fe, %fc;\n");
        // Sum path: self + partner.
        s.push_str("    add.f32 %ff, %fre, %fa;\n    add.f32 %fg, %fim, %fb;\n");
        // Diff path: (partner - self) * w.
        s.push_str("    sub.f32 %fh, %fa, %fre;\n    sub.f32 %fi, %fb, %fim;\n");
        s.push_str("    mul.f32 %fj, %fh, %fd;\n");
        s.push_str("    mul.f32 %fk, %fi, %fe;\n");
        s.push_str("    sub.f32 %fj, %fj, %fk;\n"); // re' = hr*wr - hi*wi
        s.push_str("    mul.f32 %fk, %fh, %fe;\n");
        s.push_str("    fma.rn.f32 %fk, %fi, %fd, %fk;\n"); // im' = hr*wi + hi*wr
                                                            // Select by butterfly half.
        let _ = writeln!(s, "    and.b32 %rc, %ra, {m};");
        s.push_str("    setp.eq.u32 %pp, %rc, 0;\n");
        s.push_str("    selp.b32 %fre, %ff, %fj, %pp;\n");
        s.push_str("    selp.b32 %fim, %fg, %fk, %pp;\n");
    }
    // Bit-reverse the 5-bit lane index and permute via shfl.idx.
    s.push_str(
        "    mov.u32 %rb, 0;\n\
         \x20   mov.u32 %rc, %ra;\n",
    );
    for _ in 0..5 {
        s.push_str(
            "    shl.b32 %rb, %rb, 1;\n\
             \x20   and.b32 %rd, %rc, 1;\n\
             \x20   or.b32 %rb, %rb, %rd;\n\
             \x20   shr.u32 %rc, %rc, 1;\n",
        );
    }
    s.push_str(
        "    shfl.idx.b32 %rd, %fre, %rb;\n\
         \x20   mov.f32 %fre, %rd;\n\
         \x20   shfl.idx.b32 %rd, %fim, %rb;\n\
         \x20   mov.f32 %fim, %rd;\n",
    );
    s
}

/// Register declarations required by [`fft_stages_body`].
fn fft_decls() -> &'static str {
    "    .reg .u32 %ra;\n    .reg .u32 %rb;\n    .reg .u32 %rc;\n    .reg .u32 %rd;\n\
     \x20   .reg .f32 %fre;\n    .reg .f32 %fim;\n\
     \x20   .reg .f32 %fa;\n    .reg .f32 %fb;\n    .reg .f32 %fc;\n    .reg .f32 %fd;\n\
     \x20   .reg .f32 %fe;\n    .reg .f32 %ff;\n    .reg .f32 %fg;\n    .reg .f32 %fh;\n\
     \x20   .reg .f32 %fi;\n    .reg .f32 %fj;\n    .reg .f32 %fk;\n\
     \x20   .reg .pred %pp;\n"
}

/// The kernel that uses the hypothetical `WFFT32` instruction (paper
/// Listing 10). Each lane loads one packed complex sample, the proxy
/// consumes a register pair and produces a register pair, and the result is
/// stored back.
pub fn wfft_kernel_ptx() -> String {
    format!(
        r#".version 6.0
.entry fft32(.param .u64 pin, .param .u64 pout)
{{
    .reg .u32 %r<6>;
    .reg .u64 %rd<8>;
    ld.param.u64 %rd1, [pin];
    ld.param.u64 %rd2, [pout];
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mov.u32 %r3, %tid.x;
    mad.lo.u32 %r1, %r1, %r2, %r3;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.u64 %rd5, [%rd4];
    proxy.b32 %rd6, %rd5, "{WFFT32}";
    add.u64 %rd7, %rd2, %rd3;
    st.global.u64 [%rd7], %rd6;
    exit;
}}
"#
    )
}

/// The software warp-FFT kernel: identical I/O, the butterfly network
/// executed in ordinary instructions.
pub fn soft_fft_kernel_ptx() -> String {
    format!(
        r#".version 6.0
.entry fft32_soft(.param .u64 pin, .param .u64 pout)
{{
    .reg .u32 %r<6>;
    .reg .u64 %rd<8>;
{decls}
    ld.param.u64 %rd1, [pin];
    ld.param.u64 %rd2, [pout];
    mov.u32 %r1, %ctaid.x;
    mov.u32 %r2, %ntid.x;
    mov.u32 %r3, %tid.x;
    mad.lo.u32 %r1, %r1, %r2, %r3;
    mul.wide.u32 %rd3, %r1, 8;
    add.u64 %rd4, %rd1, %rd3;
    ld.global.u64 %rd5, [%rd4];
    // Unpack (re, im) from the 64-bit value.
    cvt.u32.u64 %rb, %rd5;
    mov.f32 %fre, %rb;
    shr.b64 %rd5, %rd5, 32;
    cvt.u32.u64 %rb, %rd5;
    mov.f32 %fim, %rb;
{body}
    // Repack.
    mov.u32 %rb, %fre;
    cvt.u64.u32 %rd6, %rb;
    mov.u32 %rb, %fim;
    cvt.u64.u32 %rd5, %rb;
    shl.b64 %rd5, %rd5, 32;
    add.u64 %rd6, %rd6, %rd5;
    add.u64 %rd7, %rd2, %rd3;
    st.global.u64 [%rd7], %rd6;
    exit;
}}
"#,
        decls = fft_decls(),
        body = fft_stages_body(),
    )
}

/// The emulation tool device function (paper Listing 9): reads the source
/// register pair of the removed `WFFT32` through the device API, runs the
/// same butterfly network, and writes the destination pair back —
/// *permanently*, via the save-area write-back.
pub fn wfft_emu_function_ptx() -> String {
    format!(
        r#".func wfft32_emu(.reg .u32 %srcidx, .reg .u32 %dstidx)
{{
{decls}
    .reg .u32 %ri<3>;
    nvbit.readreg.b32 %rb, %srcidx;
    mov.f32 %fre, %rb;
    add.u32 %ri1, %srcidx, 1;
    nvbit.readreg.b32 %rb, %ri1;
    mov.f32 %fim, %rb;
{body}
    mov.u32 %rb, %fre;
    nvbit.writereg.b32 %dstidx, %rb;
    add.u32 %ri2, %dstidx, 1;
    mov.u32 %rb, %fim;
    nvbit.writereg.b32 %ri2, %rb;
    ret;
}}
"#,
        decls = fft_decls(),
        body = fft_stages_body(),
    )
}

/// CPU reference: 32-point complex DFT (direct evaluation) used by tests
/// to sanity-check the butterfly network's output shape.
pub fn reference_dft(input: &[(f32, f32); 32]) -> [(f32, f32); 32] {
    let mut out = [(0.0f32, 0.0f32); 32];
    for (k, o) in out.iter_mut().enumerate() {
        let mut re = 0.0f64;
        let mut im = 0.0f64;
        for (n, (xr, xi)) in input.iter().enumerate() {
            let ang = -2.0 * std::f64::consts::PI * (k * n) as f64 / 32.0;
            let (s, c) = ang.sin_cos();
            re += *xr as f64 * c - *xi as f64 * s;
            im += *xr as f64 * s + *xi as f64 * c;
        }
        *o = (re as f32, im as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{Driver, FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use sass::Arch;

    #[test]
    fn kernels_compile_everywhere() {
        for arch in Arch::ALL {
            ptx::compile_module(&wfft_kernel_ptx(), arch).unwrap();
            ptx::compile_module(&soft_fft_kernel_ptx(), arch).unwrap();
            ptx::compile_module(&wfft_emu_function_ptx(), arch).unwrap();
        }
    }

    #[test]
    fn software_fft_matches_reference_dft() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("fft", soft_fft_kernel_ptx())).unwrap();
        let f = drv.module_get_function(&m, "fft32_soft").unwrap();
        let input: [(f32, f32); 32] =
            std::array::from_fn(|i| ((i as f32 * 0.5).sin(), (i as f32 * 0.3).cos()));
        let bytes: Vec<u8> = input
            .iter()
            .flat_map(|(r, i)| {
                let mut v = r.to_bits().to_le_bytes().to_vec();
                v.extend(i.to_bits().to_le_bytes());
                v
            })
            .collect();
        let din = drv.mem_alloc(256).unwrap();
        let dout = drv.mem_alloc(256).unwrap();
        drv.memcpy_htod(din, &bytes).unwrap();
        drv.launch_kernel(
            &f,
            Dim3::linear(1),
            Dim3::linear(32),
            &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
        )
        .unwrap();
        let mut out = vec![0u8; 256];
        drv.memcpy_dtoh(&mut out, dout).unwrap();
        let want = reference_dft(&input);
        for k in 0..32 {
            let re = f32::from_bits(u32::from_le_bytes(out[k * 8..k * 8 + 4].try_into().unwrap()));
            let im =
                f32::from_bits(u32::from_le_bytes(out[k * 8 + 4..k * 8 + 8].try_into().unwrap()));
            let (wr, wi) = want[k];
            assert!(
                (re - wr).abs() < 0.05 && (im - wi).abs() < 0.05,
                "bin {k}: got ({re}, {im}), want ({wr}, {wi})"
            );
        }
    }

    #[test]
    fn proxy_kernel_faults_without_instrumentation() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("fft", wfft_kernel_ptx())).unwrap();
        let f = drv.module_get_function(&m, "fft32").unwrap();
        let din = drv.mem_alloc(256).unwrap();
        let dout = drv.mem_alloc(256).unwrap();
        assert!(drv
            .launch_kernel(
                &f,
                Dim3::linear(1),
                Dim3::linear(32),
                &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
            )
            .is_err());
    }
}
