//! The instruction-count tool (paper Listing 1) and its basic-block
//! optimized variant.

use crate::{read_u64, COUNT_BB_FN, COUNT_FN, COUNT_MULT_FN, COUNT_PMULT_FN, COUNT_WIDE_FN};
use cuda::{CbId, CbParams, Driver};
use nvbit::{IPoint, NvbitApi, NvbitTool, PlanOpts};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;

/// Results handle of [`InstrCount`]/[`BbInstrCount`], filled at `at_term`.
#[derive(Debug, Default)]
pub struct InstrCountResults {
    total: RefCell<u64>,
    /// Thread-level instructions attributed to library modules.
    library: RefCell<u64>,
    per_kernel: RefCell<BTreeMap<String, u64>>,
}

impl InstrCountResults {
    /// Total thread-level instructions executed.
    pub fn total(&self) -> u64 {
        *self.total.borrow()
    }

    /// Thread-level instructions executed inside pre-compiled libraries
    /// (the §6.1 statistic: 74–96 %, average 88 %).
    pub fn library(&self) -> u64 {
        *self.library.borrow()
    }

    /// The library fraction in [0, 1].
    pub fn library_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.library() as f64 / t as f64
        }
    }

    /// Per-kernel totals.
    pub fn per_kernel(&self) -> BTreeMap<String, u64> {
        self.per_kernel.borrow().clone()
    }
}

/// Per-instruction instruction counter (paper Listing 1), with per-kernel
/// and per-module-origin attribution.
pub struct InstrCount {
    results: Rc<InstrCountResults>,
    /// kernel → (counter address, is-library).
    counters: BTreeMap<u32, (u64, bool, String)>,
    seen: HashSet<u32>,
}

impl InstrCount {
    /// Creates the tool and its results handle.
    pub fn new() -> (InstrCount, Rc<InstrCountResults>) {
        let results = Rc::new(InstrCountResults::default());
        (
            InstrCount {
                results: results.clone(),
                counters: BTreeMap::new(),
                seen: HashSet::new(),
            },
            results,
        )
    }

    fn publish(&self, drv: &Driver) {
        let mut total = 0u64;
        let mut library = 0u64;
        let mut per_kernel = BTreeMap::new();
        for (addr, is_lib, name) in self.counters.values() {
            let v = read_u64(drv, *addr);
            total += v;
            if *is_lib {
                library += v;
            }
            *per_kernel.entry(name.clone()).or_insert(0) += v;
        }
        *self.results.total.borrow_mut() = total;
        *self.results.library.borrow_mut() = library;
        *self.results.per_kernel.borrow_mut() = per_kernel;
    }
}

impl NvbitTool for InstrCount {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(COUNT_FN).expect("tool functions compile");
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        if is_exit {
            // Keep results fresh so callers can also read mid-run.
            self.publish(api.driver());
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        let info = api.driver().function_info(*func).expect("launched function exists");
        let ctr = api.driver().with_device(|d| d.alloc(8)).expect("counter alloc");
        self.counters.insert(func.raw(), (ctr, info.library, info.name.clone()));
        // Instrument the kernel and every function it can call.
        let mut targets = vec![*func];
        targets.extend(api.get_related_funcs(*func).unwrap_or_default());
        let mut sites = 0u64;
        for t in targets {
            let n = api.get_instrs(t).map(|v| v.len()).unwrap_or(0);
            for idx in 0..n {
                api.insert_call(t, idx, "nvbit_count_one", IPoint::Before).unwrap();
                api.add_call_arg_guard_pred(t, idx).unwrap();
                api.add_call_arg_imm64(t, idx, ctr).unwrap();
                sites += 1;
            }
            if t != *func {
                api.enable_instrumented(t, true).unwrap();
            }
        }
        common::obs::counter("tool.instr_count.sites", sites);
    }
}

/// Basic-block-granularity instruction counter: one injection per block
/// passing the block length, instead of one per instruction — the paper's
/// suggested optimization. Falls back to per-instruction instrumentation
/// for functions with indirect control flow (the ICF flat-view case).
pub struct BbInstrCount {
    results: Rc<InstrCountResults>,
    counters: BTreeMap<u32, (u64, bool, String)>,
    seen: HashSet<u32>,
}

impl BbInstrCount {
    /// Creates the tool and its results handle.
    pub fn new() -> (BbInstrCount, Rc<InstrCountResults>) {
        let results = Rc::new(InstrCountResults::default());
        (
            BbInstrCount {
                results: results.clone(),
                counters: BTreeMap::new(),
                seen: HashSet::new(),
            },
            results,
        )
    }

    fn publish(&self, drv: &Driver) {
        let mut total = 0u64;
        let mut library = 0u64;
        let mut per_kernel = BTreeMap::new();
        for (addr, is_lib, name) in self.counters.values() {
            let v = read_u64(drv, *addr);
            total += v;
            if *is_lib {
                library += v;
            }
            *per_kernel.entry(name.clone()).or_insert(0) += v;
        }
        *self.results.total.borrow_mut() = total;
        *self.results.library.borrow_mut() = library;
        *self.results.per_kernel.borrow_mut() = per_kernel;
    }
}

impl NvbitTool for BbInstrCount {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(COUNT_FN).expect("tool functions compile");
        api.load_tool_functions(COUNT_BB_FN).expect("tool functions compile");
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if is_exit || cbid != CbId::LaunchKernel || !self.seen.insert(func.raw()) {
            return;
        }
        let info = api.driver().function_info(*func).expect("launched function exists");
        let ctr = api.driver().with_device(|d| d.alloc(8)).expect("counter alloc");
        self.counters.insert(func.raw(), (ctr, info.library, info.name.clone()));

        let mut sites = 0u64;
        match api.get_basic_blocks(*func).expect("inspection") {
            Some(blocks) => {
                // NOTE: counting at block heads counts every block entry.
                // Predicated non-branch instructions inside the block still
                // count as "executed" at warp level (the guard argument
                // reflects the *block head*), so this variant is an
                // approximation — the same trade-off the paper describes.
                for b in blocks {
                    let head = b.range.start;
                    api.insert_call(*func, head, "nvbit_count_block", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(*func, head).unwrap();
                    api.add_call_arg_imm32(*func, head, b.len() as i32).unwrap();
                    api.add_call_arg_imm64(*func, head, ctr).unwrap();
                    sites += 1;
                }
            }
            None => {
                for idx in 0..api.get_instrs(*func).unwrap().len() {
                    api.insert_call(*func, idx, "nvbit_count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(*func, idx).unwrap();
                    api.add_call_arg_imm64(*func, idx, ctr).unwrap();
                    sites += 1;
                }
            }
        }
        common::obs::counter("tool.bb_instr_count.sites", sites);
    }
}

/// Issue-level instruction counter built for the planner's optimization
/// passes: every site injects `nvbit_count_mult` under the multiplicity
/// protocol and opts into coalescing, so with [`PlanOpts::coalesce`] the
/// planner merges each basic block's sites into one call whose multiplicity
/// is the block's site count, and with [`PlanOpts::inline`] the counting
/// body is spliced into the trampoline (no `CALL`/`RET`).
///
/// Unlike [`InstrCount`] there is no guard argument — a predicated-off
/// instruction still counts as issued — because the guard predicate is
/// per-site dynamic state that would defeat merging. Within a basic block
/// the active mask is constant, so the total is *identical* whichever
/// [`PlanOpts`] the plan is built with; the passes only change how many
/// trampoline calls execute to produce it.
pub struct CoalescedInstrCount {
    results: Rc<InstrCountResults>,
    counters: BTreeMap<u32, (u64, bool, String)>,
    seen: HashSet<u32>,
    opts: PlanOpts,
    ipoint: IPoint,
    body: CountBody,
}

/// Which counting body [`CoalescedInstrCount`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CountBody {
    /// `nvbit_count_mult`: issue-level, no guard argument.
    Issued,
    /// `nvbit_count_pmult`: executed-level — the guard predicate gates the
    /// count inside the body's guarded diamond.
    Executed,
    /// `nvbit_count_wide`: executed-level through the register-hungry body
    /// whose write window exercises the pressure cost model.
    ExecutedWide,
}

impl CountBody {
    fn func(self) -> &'static str {
        match self {
            CountBody::Issued => "nvbit_count_mult",
            CountBody::Executed => "nvbit_count_pmult",
            CountBody::ExecutedWide => "nvbit_count_wide",
        }
    }

    fn ptx(self) -> &'static str {
        match self {
            CountBody::Issued => COUNT_MULT_FN,
            CountBody::Executed => COUNT_PMULT_FN,
            CountBody::ExecutedWide => COUNT_WIDE_FN,
        }
    }
}

impl CoalescedInstrCount {
    /// Creates the tool and its results handle. `opts` selects which
    /// planner passes run (set at `at_init`, before any kernel is built).
    pub fn new(opts: PlanOpts) -> (CoalescedInstrCount, Rc<InstrCountResults>) {
        Self::build(opts, IPoint::Before, CountBody::Issued)
    }

    /// Like [`CoalescedInstrCount::new`] but injecting at `IPoint::After`:
    /// the count increments once an instruction has retired rather than
    /// when it issues, so always-guarded block exits (`EXIT`, `RET`) and
    /// lanes dropped by a guarded exit are *not* counted. The totals
    /// therefore differ from the `Before` tool — but they must still be
    /// identical whichever [`PlanOpts`] the plan is built with, which is
    /// what makes this the exercise vehicle for the after-lowering pass.
    pub fn after(opts: PlanOpts) -> (CoalescedInstrCount, Rc<InstrCountResults>) {
        Self::build(opts, IPoint::After, CountBody::Issued)
    }

    /// *Executed*-level counter under the multiplicity protocol: injects
    /// `nvbit_count_pmult`, whose guarded early return skips the count for
    /// lanes where the instrumented instruction's guard predicate is
    /// false. Unguarded sites pass a constant-true predicate and stay
    /// block-invariant (so they coalesce); guarded sites pass the dynamic
    /// guard value and stay per-site. The body is a single guarded
    /// diamond, the shape the planner splices past the straight-leaf
    /// threshold.
    pub fn executed(opts: PlanOpts) -> (CoalescedInstrCount, Rc<InstrCountResults>) {
        Self::build(opts, IPoint::Before, CountBody::Executed)
    }

    /// [`CoalescedInstrCount::executed`] through `nvbit_count_wide`, the
    /// semantically identical but register-hungry counting body: its write
    /// window reaches past the first save tier, so with
    /// [`PlanOpts::pressure`] the cost model declines the splice at sites
    /// where that would raise the save tier.
    pub fn executed_wide(opts: PlanOpts) -> (CoalescedInstrCount, Rc<InstrCountResults>) {
        Self::build(opts, IPoint::Before, CountBody::ExecutedWide)
    }

    fn build(
        opts: PlanOpts,
        ipoint: IPoint,
        body: CountBody,
    ) -> (CoalescedInstrCount, Rc<InstrCountResults>) {
        let results = Rc::new(InstrCountResults::default());
        (
            CoalescedInstrCount {
                results: results.clone(),
                counters: BTreeMap::new(),
                seen: HashSet::new(),
                opts,
                ipoint,
                body,
            },
            results,
        )
    }

    fn publish(&self, drv: &Driver) {
        let mut total = 0u64;
        let mut library = 0u64;
        let mut per_kernel = BTreeMap::new();
        for (addr, is_lib, name) in self.counters.values() {
            let v = read_u64(drv, *addr);
            total += v;
            if *is_lib {
                library += v;
            }
            *per_kernel.entry(name.clone()).or_insert(0) += v;
        }
        *self.results.total.borrow_mut() = total;
        *self.results.library.borrow_mut() = library;
        *self.results.per_kernel.borrow_mut() = per_kernel;
    }
}

impl NvbitTool for CoalescedInstrCount {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.set_plan_opts(self.opts);
        api.load_tool_functions(self.body.ptx()).expect("tool functions compile");
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        if is_exit {
            self.publish(api.driver());
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        let info = api.driver().function_info(*func).expect("launched function exists");
        let ctr = api.driver().with_device(|d| d.alloc(8)).expect("counter alloc");
        self.counters.insert(func.raw(), (ctr, info.library, info.name.clone()));
        let mut targets = vec![*func];
        targets.extend(api.get_related_funcs(*func).unwrap_or_default());
        let mut sites = 0u64;
        for t in targets {
            let instrs = api.get_instrs(t).unwrap_or_default();
            for (idx, instr) in instrs.iter().enumerate() {
                api.insert_call(t, idx, self.body.func(), self.ipoint).unwrap();
                if self.body != CountBody::Issued {
                    // Executed-level bodies take the guard predicate first.
                    // Unguarded sites pass constant 1 and stay
                    // block-invariant (mergeable); guarded sites pass the
                    // dynamic guard and keep multiplicity 1.
                    if instr.has_guard() {
                        api.add_call_arg_guard_pred(t, idx).unwrap();
                    } else {
                        api.add_call_arg_imm32(t, idx, 1).unwrap();
                    }
                }
                api.add_call_arg_imm64(t, idx, ctr).unwrap();
                api.set_coalesce(t, idx).unwrap();
                sites += 1;
            }
            if t != *func {
                api.enable_instrumented(t, true).unwrap();
            }
        }
        common::obs::counter("tool.coalesced_instr_count.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;

    const APP: &str = r#"
.entry k(.param .u64 out, .param .u32 n)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    ld.param.u64 %rd1, [out];
    ld.param.u32 %r1, [n];
    mov.u32 %r2, %tid.x;
    setp.ge.u32 %p1, %r2, %r1;
    @%p1 bra DONE;
    mul.wide.u32 %rd2, %r2, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r2;
DONE:
    exit;
}
"#;

    fn run_app(drv: &Driver) -> u64 {
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let out = drv.mem_alloc(256).unwrap();
        drv.launch_kernel(
            &f,
            Dim3::linear(1),
            Dim3::linear(64),
            &[KernelArg::Ptr(out), KernelArg::U32(40)],
        )
        .unwrap();
        drv.total_stats().thread_instructions
    }

    #[test]
    fn per_instruction_count_matches_native() {
        let native = Driver::new(DeviceSpec::test(Arch::Volta));
        let native_count = run_app(&native);

        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = InstrCount::new();
        attach_tool(&drv, tool);
        run_app(&drv);
        drv.shutdown();
        assert_eq!(results.total(), native_count);
        assert_eq!(results.library(), 0);
        assert_eq!(results.per_kernel().len(), 1);
    }

    #[test]
    fn basic_block_variant_is_cheaper_but_close() {
        let native = Driver::new(DeviceSpec::test(Arch::Volta));
        let native_count = run_app(&native);
        let native_cycles = native.total_stats().cycles;

        let run_with = |bb: bool| -> (u64, u64) {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            let (count, cycles);
            if bb {
                let (tool, results) = BbInstrCount::new();
                attach_tool(&drv, tool);
                run_app(&drv);
                drv.shutdown();
                count = results.total();
                cycles = drv.total_stats().cycles;
            } else {
                let (tool, results) = InstrCount::new();
                attach_tool(&drv, tool);
                run_app(&drv);
                drv.shutdown();
                count = results.total();
                cycles = drv.total_stats().cycles;
            }
            (count, cycles)
        };
        let (per_instr_count, per_instr_cycles) = run_with(false);
        let (bb_count, bb_cycles) = run_with(true);
        assert_eq!(per_instr_count, native_count);
        // The BB variant approximates within the kernel's size (guarded
        // instructions inside blocks are charged by block-entry).
        let diff = bb_count.abs_diff(native_count) as f64 / native_count as f64;
        assert!(diff < 0.35, "bb count {bb_count} vs native {native_count}");
        // And it is substantially cheaper than per-instruction counting
        // while still slower than native.
        assert!(bb_cycles < per_instr_cycles / 2, "{bb_cycles} vs {per_instr_cycles}");
        assert!(bb_cycles > native_cycles);
    }

    #[test]
    fn coalesced_count_is_invariant_under_the_planner_passes() {
        let run_with = |opts: PlanOpts| -> (u64, u64) {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            let (tool, results) = CoalescedInstrCount::new(opts);
            attach_tool(&drv, tool);
            run_app(&drv);
            drv.shutdown();
            (results.total(), drv.total_stats().cycles)
        };
        let (naive, naive_cycles) = run_with(PlanOpts::naive());
        let (merged, merged_cycles) = run_with(PlanOpts { coalesce: true, ..PlanOpts::naive() });
        let (inlined, inlined_cycles) =
            run_with(PlanOpts { coalesce: true, inline: true, ..PlanOpts::naive() });
        // The multiplicity protocol makes the total independent of whether
        // the passes actually ran.
        assert_eq!(naive, merged);
        assert_eq!(naive, inlined);
        // Issue-level counting: 64 threads each issue the whole straight
        // kernel path (predication does not skip issue).
        assert!(naive > 0);
        // Each pass strictly reduces runtime work.
        assert!(merged_cycles < naive_cycles, "{merged_cycles} vs {naive_cycles}");
        assert!(inlined_cycles < merged_cycles, "{inlined_cycles} vs {merged_cycles}");
    }
}
