//! A host-side, trace-driven set-associative cache simulator.
//!
//! The paper notes that "entire cache simulators can be built around these
//! mechanisms" (§6.1): [`crate::MemTrace`] captures the address stream and
//! this module replays it through an LRU cache model.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A 128 KiB, 4-way, 128 B-line L1-style cache.
    pub fn l1() -> CacheConfig {
        CacheConfig { capacity: 128 * 1024, line: 128, ways: 4 }
    }

    /// A 4 MiB, 16-way L2-style cache.
    pub fn l2() -> CacheConfig {
        CacheConfig { capacity: 4 * 1024 * 1024, line: 128, ways: 16 }
    }

    fn sets(&self) -> u64 {
        (self.capacity / self.line / self.ways as u64).max(1)
    }
}

/// Replay results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSimResults {
    /// Accesses replayed.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheSimResults {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// An LRU set-associative cache model.
#[derive(Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    results: CacheSimResults,
}

impl CacheSim {
    /// Creates a cache.
    pub fn new(config: CacheConfig) -> CacheSim {
        CacheSim {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
            results: CacheSimResults::default(),
        }
    }

    /// Replays one access; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line;
        let set = (line % self.config.sets()) as usize;
        let ways = self.config.ways as usize;
        self.results.accesses += 1;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|t| *t == line) {
            entries.remove(pos);
            entries.insert(0, line);
            self.results.hits += 1;
            true
        } else {
            entries.insert(0, line);
            entries.truncate(ways);
            self.results.misses += 1;
            false
        }
    }

    /// Replays a full trace.
    pub fn replay(&mut self, addrs: &[u64]) -> &CacheSimResults {
        for &a in addrs {
            self.access(a);
        }
        &self.results
    }

    /// The accumulated results.
    pub fn results(&self) -> &CacheSimResults {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_accesses_hit() {
        let mut c = CacheSim::new(CacheConfig::l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1040), "same 128B line");
        assert_eq!(c.results().misses, 1);
        assert_eq!(c.results().hits, 2);
    }

    #[test]
    fn conflict_evictions_follow_lru() {
        // 2-way tiny cache: 2 sets of 2 ways with 128B lines.
        let cfg = CacheConfig { capacity: 512, line: 128, ways: 2 };
        let mut c = CacheSim::new(cfg);
        // Three distinct lines mapping to set 0: 0, 2*128, 4*128.
        assert!(!c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0)); // still resident
        assert!(!c.access(512)); // evicts 256 (LRU)
        assert!(c.access(0));
        assert!(!c.access(256));
    }

    #[test]
    fn streaming_pattern_misses_then_sequential_rereads_hit() {
        let mut c = CacheSim::new(CacheConfig::l1());
        let trace: Vec<u64> = (0..1000u64).map(|i| i * 4).collect();
        c.replay(&trace);
        // 1000 word accesses over 128B lines: 32 per line => high hit rate.
        assert!(c.results().hit_rate() > 0.95);
    }

    #[test]
    fn end_to_end_with_mem_trace() {
        use cuda::{Driver, FatBinary, KernelArg};
        use gpu::{DeviceSpec, Dim3};
        use nvbit::attach_tool;
        use sass::Arch;

        const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    ld.global.u32 %r2, [%rd3];
    exit;
}
"#;
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, trace) = crate::MemTrace::new(8192);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let mut cache = CacheSim::new(CacheConfig::l1());
        cache.replay(&trace.addresses());
        // 64 accesses over a single 128B line region: only the very first
        // access misses.
        assert_eq!(cache.results().accesses, 64);
        assert!(cache.results().hit_rate() > 0.95);
    }
}
