//! A host-side, trace-driven set-associative cache simulator.
//!
//! The paper notes that "entire cache simulators can be built around these
//! mechanisms" (§6.1): [`crate::MemTrace`] captures the address stream and
//! this module replays it through an LRU cache model — either offline
//! ([`CacheSim::replay`] over a finished trace) or online
//! ([`ChannelCacheSim`]), where the streaming channel's drain thread
//! feeds each record into the model *while the kernel runs*, so the
//! full trace never has to be materialised.

use common::channel::{Backpressure, ChannelHost};
use cuda::{CbId, CbParams};
use nvbit::{IPoint, NvbitApi, NvbitTool};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// A 128 KiB, 4-way, 128 B-line L1-style cache.
    pub fn l1() -> CacheConfig {
        CacheConfig { capacity: 128 * 1024, line: 128, ways: 4 }
    }

    /// A 4 MiB, 16-way L2-style cache.
    pub fn l2() -> CacheConfig {
        CacheConfig { capacity: 4 * 1024 * 1024, line: 128, ways: 16 }
    }

    fn sets(&self) -> u64 {
        (self.capacity / self.line / self.ways as u64).max(1)
    }
}

/// Replay results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSimResults {
    /// Accesses replayed.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheSimResults {
    /// Hit rate in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// An LRU set-associative cache model.
#[derive(Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    results: CacheSimResults,
}

impl CacheSim {
    /// Creates a cache.
    pub fn new(config: CacheConfig) -> CacheSim {
        CacheSim {
            config,
            sets: vec![Vec::new(); config.sets() as usize],
            results: CacheSimResults::default(),
        }
    }

    /// Replays one access; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line;
        let set = (line % self.config.sets()) as usize;
        let ways = self.config.ways as usize;
        self.results.accesses += 1;
        let entries = &mut self.sets[set];
        if let Some(pos) = entries.iter().position(|t| *t == line) {
            entries.remove(pos);
            entries.insert(0, line);
            self.results.hits += 1;
            true
        } else {
            entries.insert(0, line);
            entries.truncate(ways);
            self.results.misses += 1;
            false
        }
    }

    /// Replays a full trace.
    pub fn replay(&mut self, addrs: &[u64]) -> &CacheSimResults {
        for &a in addrs {
            self.access(a);
        }
        &self.results
    }

    /// The accumulated results.
    pub fn results(&self) -> &CacheSimResults {
        &self.results
    }
}

/// The online cache-simulation tool: instruments every global memory
/// access to `chan.push` its effective address, and accumulates
/// hits/misses in the channel's host drain thread as records arrive —
/// the paper §6.1 receiver pattern. Uses [`Backpressure::Block`] so the
/// simulated counts cover every access.
///
/// Records are simulated in delivery order. With one CTA (one
/// producer) that is program order; with parallel CTAs the interleave
/// between CTAs follows drain timing, mirroring how a real streaming
/// receiver observes concurrent warps.
pub struct ChannelCacheSim {
    buf_records: usize,
    sim: Arc<Mutex<CacheSim>>,
    host: Option<ChannelHost>,
    seen: HashSet<u32>,
}

impl ChannelCacheSim {
    /// Creates the tool with the given cache geometry and channel
    /// flush-buffer capacity. The returned handle exposes the live
    /// model; read final results after `Driver::shutdown`.
    pub fn new(config: CacheConfig, buf_records: usize) -> (ChannelCacheSim, Arc<Mutex<CacheSim>>) {
        let sim = Arc::new(Mutex::new(CacheSim::new(config)));
        (ChannelCacheSim { buf_records, sim: sim.clone(), host: None, seen: HashSet::new() }, sim)
    }
}

impl NvbitTool for ChannelCacheSim {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(crate::mem_trace::TRACE_CHAN_FN).expect("tool functions compile");
        let sim = self.sim.clone();
        let (host, dev) = ChannelHost::spawn(
            self.buf_records,
            Backpressure::Block,
            Box::new(move |batch| {
                let mut sim = sim.lock().unwrap();
                for r in batch {
                    sim.access(r.payload);
                }
            }),
        );
        api.driver().with_device(|d| d.attach_channel(dev));
        self.host = Some(host);
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        api.driver().with_device(|d| d.detach_channel());
        if let Some(host) = self.host.take() {
            host.shutdown();
        }
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel || is_exit {
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        let mut sites = 0u64;
        for instr in api.get_instrs(*func).expect("inspection") {
            if instr.mem_space() != Some(sass::MemSpace::Global) {
                continue;
            }
            let Some((base, offset)) = instr.mref() else { continue };
            api.insert_call(*func, instr.idx, "nvbit_trace_chan", IPoint::Before).unwrap();
            api.add_call_arg_guard_pred(*func, instr.idx).unwrap();
            api.add_call_arg_reg_val64(*func, instr.idx, base.0).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, offset).unwrap();
            sites += 1;
        }
        common::obs::counter("tool.cache_sim.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_accesses_hit() {
        let mut c = CacheSim::new(CacheConfig::l1());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1040), "same 128B line");
        assert_eq!(c.results().misses, 1);
        assert_eq!(c.results().hits, 2);
    }

    #[test]
    fn conflict_evictions_follow_lru() {
        // 2-way tiny cache: 2 sets of 2 ways with 128B lines.
        let cfg = CacheConfig { capacity: 512, line: 128, ways: 2 };
        let mut c = CacheSim::new(cfg);
        // Three distinct lines mapping to set 0: 0, 2*128, 4*128.
        assert!(!c.access(0));
        assert!(!c.access(256));
        assert!(c.access(0)); // still resident
        assert!(!c.access(512)); // evicts 256 (LRU)
        assert!(c.access(0));
        assert!(!c.access(256));
    }

    #[test]
    fn streaming_pattern_misses_then_sequential_rereads_hit() {
        let mut c = CacheSim::new(CacheConfig::l1());
        let trace: Vec<u64> = (0..1000u64).map(|i| i * 4).collect();
        c.replay(&trace);
        // 1000 word accesses over 128B lines: 32 per line => high hit rate.
        assert!(c.results().hit_rate() > 0.95);
    }

    #[test]
    fn end_to_end_with_mem_trace() {
        use cuda::{Driver, FatBinary, KernelArg};
        use gpu::{DeviceSpec, Dim3};
        use nvbit::attach_tool;
        use sass::Arch;

        const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    ld.global.u32 %r2, [%rd3];
    exit;
}
"#;
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, trace) = crate::MemTrace::new(8192);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let mut cache = CacheSim::new(CacheConfig::l1());
        cache.replay(&trace.addresses());
        // 64 accesses over a single 128B line region: only the very first
        // access misses.
        assert_eq!(cache.results().accesses, 64);
        assert!(cache.results().hit_rate() > 0.95);
    }

    /// The online receiver matches the offline replay: one CTA pushes
    /// in program order, so simulating in delivery order gives the
    /// same counts the trace-then-replay path does — without ever
    /// materialising the trace (the 8-record buffer is 8× smaller
    /// than the access stream).
    #[test]
    fn online_channel_sim_matches_offline_replay() {
        use cuda::{Driver, FatBinary, KernelArg};
        use gpu::{DeviceSpec, Dim3};
        use nvbit::attach_tool;
        use sass::Arch;

        const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    ld.global.u32 %r2, [%rd3];
    exit;
}
"#;
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, sim) = ChannelCacheSim::new(CacheConfig::l1(), 8);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let sim = sim.lock().unwrap();
        assert_eq!(sim.results().accesses, 64, "every access simulated online");
        assert!(sim.results().hit_rate() > 0.95);
    }
}
