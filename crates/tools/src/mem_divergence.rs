//! The memory-address-divergence tool (paper Listing 8 / Figure 6).
//!
//! For every warp-level global memory instruction, the injected device
//! function reconstructs each lane's effective address, counts how many
//! active lanes touch the same 128-byte cache line, and adds `1/cnt` to a
//! global unique-lines accumulator while the warp leader bumps the memory-
//! instruction counter. The reported metric is *average unique cache lines
//! requested per warp-level global memory instruction*.
//!
//! `include_libraries = false` reproduces the compiler-based-instrumentation
//! view: pre-compiled library kernels are left uninstrumented, which
//! distorts the result exactly as Figure 6 shows.

use crate::{read_f32, read_u64};
use cuda::{CbId, CbParams, Driver};
use nvbit::{IPoint, NvbitApi, NvbitTool};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// The injected device function. Arguments: guard predicate, 64-bit base
/// register value, immediate offset, counter-block address
/// (`u64 mem_instrs` at +0, `f32 uniq_lines` at +8).
const MDIV_FN: &str = r#"
.func nvbit_mdiv(.reg .u32 %pred, .reg .u64 %base, .reg .u32 %off, .reg .u64 %ctrs)
{
    .reg .u32 %r<16>;
    .reg .u64 %rd<8>;
    .reg .f32 %f<4>;
    .reg .pred %p<4>;
    // A false predicate value means the instrumented instruction is not
    // actually executing (Listing 8, line 9).
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    // Effective address and 128-byte line id.
    cvt.s64.s32 %rd1, %off;
    add.u64 %rd2, %base, %rd1;
    shr.b64 %rd3, %rd2, 7;
    cvt.u32.u64 %r1, %rd3;      // line lo
    shr.b64 %rd4, %rd3, 32;
    cvt.u32.u64 %r2, %rd4;      // line hi
    // Active mask of the warp (Listing 8, line 15).
    vote.ballot.b32 %r3, !%p1;
    // Leader = lowest active lane (increments the instruction counter).
    mov.u32 %r4, 0;
    sub.u32 %r4, %r4, %r3;
    and.b32 %r4, %r4, %r3;      // lowest set bit
    mov.u32 %r5, %laneid;
    mov.u32 %r6, 1;
    shl.b32 %r6, %r6, %r5;      // my bit
    setp.eq.u32 %p2, %r6, %r4;
    mov.u64 %rd5, 1;
    @%p2 atom.global.add.u64 %rd6, [%ctrs], %rd5;
    // Count active lanes sharing my cache line.
    mov.u32 %r7, 0;             // cnt
    mov.u32 %r8, 0;             // l
LOOP:
    setp.ge.u32 %p3, %r8, 32;
    @%p3 bra REDUCE;
    shfl.idx.b32 %r9, %r1, %r8;
    shfl.idx.b32 %r10, %r2, %r8;
    xor.b32 %r9, %r9, %r1;
    xor.b32 %r10, %r10, %r2;
    or.b32 %r9, %r9, %r10;
    setp.eq.u32 %p3, %r9, 0;    // same line?
    shr.u32 %r11, %r3, %r8;
    and.b32 %r11, %r11, 1;      // lane l active?
    selp.b32 %r12, %r11, 0, %p3;
    add.u32 %r7, %r7, %r12;
    add.u32 %r8, %r8, 1;
    bra LOOP;
REDUCE:
    // Each thread contributes 1/cnt (Listing 8, line 29).
    cvt.rn.f32.u32 %f1, %r7;
    rcp.approx.f32 %f2, %f1;
    add.u64 %rd7, %ctrs, 8;
    red.global.add.f32 [%rd7], %f2;
    ret;
}
"#;

/// Results handle of [`MemDivergence`].
#[derive(Debug, Default)]
pub struct MemDivergenceResults {
    mem_instrs: RefCell<u64>,
    uniq_lines: RefCell<f32>,
}

impl MemDivergenceResults {
    /// Warp-level global memory instructions observed.
    pub fn mem_instructions(&self) -> u64 {
        *self.mem_instrs.borrow()
    }

    /// Sum of unique-line contributions.
    pub fn unique_lines(&self) -> f32 {
        *self.uniq_lines.borrow()
    }

    /// Average unique cache lines per warp-level memory instruction — the
    /// Figure 6 metric.
    pub fn average(&self) -> f64 {
        let m = self.mem_instructions();
        if m == 0 {
            0.0
        } else {
            self.unique_lines() as f64 / m as f64
        }
    }
}

/// The divergence tool.
pub struct MemDivergence {
    include_libraries: bool,
    results: Rc<MemDivergenceResults>,
    counters: u64,
    seen: HashSet<u32>,
}

impl MemDivergence {
    /// Creates the tool. With `include_libraries = false` the tool skips
    /// library kernels, emulating a compiler-based approach that cannot see
    /// into pre-compiled binaries.
    pub fn new(include_libraries: bool) -> (MemDivergence, Rc<MemDivergenceResults>) {
        let results = Rc::new(MemDivergenceResults::default());
        (
            MemDivergence {
                include_libraries,
                results: results.clone(),
                counters: 0,
                seen: HashSet::new(),
            },
            results,
        )
    }

    fn publish(&self, drv: &Driver) {
        if self.counters == 0 {
            return;
        }
        *self.results.mem_instrs.borrow_mut() = read_u64(drv, self.counters);
        *self.results.uniq_lines.borrow_mut() = read_f32(drv, self.counters + 8);
    }
}

impl NvbitTool for MemDivergence {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(MDIV_FN).expect("tool functions compile");
        self.counters = api.driver().with_device(|d| d.alloc(16)).expect("counter alloc");
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        if is_exit {
            self.publish(api.driver());
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        // Reproduce a compiler-based tool by refusing to look inside
        // pre-compiled libraries.
        if !self.include_libraries && api.is_library_function(*func).unwrap_or(false) {
            return;
        }
        let mut targets = vec![*func];
        targets.extend(api.get_related_funcs(*func).unwrap_or_default());
        let mut sites = 0u64;
        for t in targets {
            for instr in api.get_instrs(t).expect("inspection") {
                if instr.mem_space() != Some(sass::MemSpace::Global) {
                    continue;
                }
                let Some((base, offset)) = instr.mref() else { continue };
                api.insert_call(t, instr.idx, "nvbit_mdiv", IPoint::Before).unwrap();
                api.add_call_arg_guard_pred(t, instr.idx).unwrap();
                api.add_call_arg_reg_val64(t, instr.idx, base.0).unwrap();
                api.add_call_arg_imm32(t, instr.idx, offset).unwrap();
                api.add_call_arg_imm64(t, instr.idx, self.counters).unwrap();
                sites += 1;
            }
            if t != *func {
                api.enable_instrumented(t, true).unwrap();
            }
        }
        common::obs::counter("tool.mem_divergence.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;

    /// Kernel with perfectly coalesced accesses: 1 line per warp access.
    const COALESCED: &str = r#"
.entry co(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    st.global.u32 [%rd3], %r2;
    exit;
}
"#;

    /// Strided accesses: every lane in its own line (32 lines per access).
    const STRIDED: &str = r#"
.entry str(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 128;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    exit;
}
"#;

    fn measure(src: &str, kernel: &str, bufsize: u64) -> f64 {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemDivergence::new(true);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", src)).unwrap();
        let f = drv.module_get_function(&m, kernel).unwrap();
        let buf = drv.mem_alloc(bufsize).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();
        results.average()
    }

    #[test]
    fn coalesced_accesses_average_one_line() {
        let avg = measure(COALESCED, "co", 4096);
        assert!((avg - 1.0).abs() < 0.05, "coalesced average {avg}");
    }

    #[test]
    fn strided_accesses_average_32_lines() {
        let avg = measure(STRIDED, "str", 32 * 128 + 256);
        assert!((avg - 32.0).abs() < 0.5, "strided average {avg}");
    }

    #[test]
    fn excluding_libraries_changes_the_measurement() {
        use workloads::ml_model;
        let run = |include: bool| {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            let (tool, results) = MemDivergence::new(include);
            attach_tool(&drv, tool);
            ml_model("enet").unwrap().run(&drv).unwrap();
            drv.shutdown();
            (results.average(), results.mem_instructions())
        };
        let (with_libs, n_with) = run(true);
        let (without_libs, n_without) = run(false);
        assert!(n_with > n_without, "library kernels dominate the instruction stream");
        // Excluding the well-coalesced libraries overestimates divergence
        // (Figure 6's key claim).
        assert!(
            without_libs > with_libs,
            "expected exclusion to overestimate: {without_libs} <= {with_libs}"
        );
    }
}
