//! The `WFFT32` instruction-emulation tool (paper §6.3, Listing 9).
//!
//! Finds the hypothetical warp-wide FFT proxy instruction in launched
//! kernels, removes it, and injects a functionally-equivalent device
//! function that reads the source register pair through the device API,
//! computes the 32-point FFT with warp shuffles, and writes the destination
//! register pair back permanently.

use cuda::{CbId, CbParams};
use nvbit::{IPoint, NvbitApi, NvbitTool};
use std::collections::HashSet;

/// The emulation tool.
#[derive(Default)]
pub struct WfftEmu {
    seen: HashSet<u32>,
    replaced: usize,
}

impl WfftEmu {
    /// Creates the tool.
    pub fn new() -> WfftEmu {
        WfftEmu::default()
    }
}

impl NvbitTool for WfftEmu {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(&workloads::fft::wfft_emu_function_ptx())
            .expect("emulation function compiles");
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if is_exit || cbid != CbId::LaunchKernel || !self.seen.insert(func.raw()) {
            return;
        }
        let id = ptx::lower::proxy_id(workloads::fft::WFFT32);
        let mut sites = 0u64;
        for instr in api.get_instrs(*func).expect("inspection") {
            if instr.proxy_id() != Some(id) {
                continue;
            }
            let (dst, src) = instr.proxy_regs().expect("proxy carries registers");
            api.insert_call(*func, instr.idx, "wfft32_emu", IPoint::Before).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, src.0 as i32).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, dst.0 as i32).unwrap();
            api.remove_orig(*func, instr.idx).unwrap();
            self.replaced += 1;
            sites += 1;
        }
        common::obs::counter("tool.wfft_emu.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{Driver, FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;
    use workloads::fft;

    fn pack(input: &[(f32, f32); 32]) -> Vec<u8> {
        input
            .iter()
            .flat_map(|(r, i)| {
                let mut v = r.to_bits().to_le_bytes().to_vec();
                v.extend(i.to_bits().to_le_bytes());
                v
            })
            .collect()
    }

    fn unpack(bytes: &[u8]) -> Vec<(f32, f32)> {
        bytes
            .chunks(8)
            .map(|c| {
                (
                    f32::from_bits(u32::from_le_bytes(c[0..4].try_into().unwrap())),
                    f32::from_bits(u32::from_le_bytes(c[4..8].try_into().unwrap())),
                )
            })
            .collect()
    }

    #[test]
    fn emulated_wfft_matches_the_software_fft_bit_for_bit() {
        let input: [(f32, f32); 32] =
            std::array::from_fn(|i| ((i as f32 * 0.7).cos(), (i as f32 * 0.2).sin()));
        let bytes = pack(&input);

        // Software FFT.
        let soft = {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            let ctx = drv.ctx_create().unwrap();
            let m = drv
                .module_load(&ctx, FatBinary::from_ptx("fft", fft::soft_fft_kernel_ptx()))
                .unwrap();
            let f = drv.module_get_function(&m, "fft32_soft").unwrap();
            let din = drv.mem_alloc(256).unwrap();
            let dout = drv.mem_alloc(256).unwrap();
            drv.memcpy_htod(din, &bytes).unwrap();
            drv.launch_kernel(
                &f,
                Dim3::linear(1),
                Dim3::linear(32),
                &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
            )
            .unwrap();
            let mut out = vec![0u8; 256];
            drv.memcpy_dtoh(&mut out, dout).unwrap();
            out
        };

        // Emulated WFFT32 (proxy instruction + instrumentation).
        let emulated = {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            attach_tool(&drv, WfftEmu::new());
            let ctx = drv.ctx_create().unwrap();
            let m =
                drv.module_load(&ctx, FatBinary::from_ptx("fft", fft::wfft_kernel_ptx())).unwrap();
            let f = drv.module_get_function(&m, "fft32").unwrap();
            let din = drv.mem_alloc(256).unwrap();
            let dout = drv.mem_alloc(256).unwrap();
            drv.memcpy_htod(din, &bytes).unwrap();
            drv.launch_kernel(
                &f,
                Dim3::linear(1),
                Dim3::linear(32),
                &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
            )
            .unwrap();
            let mut out = vec![0u8; 256];
            drv.memcpy_dtoh(&mut out, dout).unwrap();
            out
        };

        assert_eq!(soft, emulated, "emulation must match the software FFT exactly");
        // And both match the reference DFT approximately.
        let got = unpack(&emulated);
        let want = fft::reference_dft(&input);
        for k in 0..32 {
            assert!(
                (got[k].0 - want[k].0).abs() < 0.05 && (got[k].1 - want[k].1).abs() < 0.05,
                "bin {k}: got {:?}, want {:?}",
                got[k],
                want[k]
            );
        }
    }
}
