//! The per-opcode execution histogram tool with grid-dimension sampling
//! (paper §6.2, Figures 7–9).
//!
//! In [`SamplingMode::Full`] every launch runs instrumented and the
//! histogram is exact. In [`SamplingMode::GridDim`] each kernel runs
//! instrumented only **once per unique grid/block dimension**; for the
//! remaining launches the uninstrumented version runs (swapped in with
//! `nvbit_enable_instrumented`) and the counts recorded during the sampled
//! launch of the same key are added as an estimate — exactly the paper's
//! methodology, including its error mode: kernels whose control flow
//! depends on data (not just grid dimensions) make the estimate drift.

use crate::{read_u64, COUNT_FN, COUNT_MULT_FN};
use cuda::{CbId, CbParams, CuFunction, Driver};
use gpu::Dim3;
use nvbit::{IPoint, NvbitApi, NvbitTool, PlanOpts};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// Sampling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingMode {
    /// Instrument every launch (exact, slow — the paper's 36.4× average).
    Full,
    /// Instrument once per unique (kernel, grid, block); extrapolate the
    /// rest (the paper's 2.3× average).
    GridDim,
}

/// Results handle of [`OpcodeHistogram`].
#[derive(Debug, Default)]
pub struct OpcodeHistogramResults {
    hist: RefCell<BTreeMap<String, u64>>,
    instrumented_launches: RefCell<u64>,
    total_launches: RefCell<u64>,
}

impl OpcodeHistogramResults {
    /// The opcode → executed thread-instructions histogram (measured +
    /// extrapolated under sampling).
    pub fn histogram(&self) -> BTreeMap<String, u64> {
        self.hist.borrow().clone()
    }

    /// The top-`n` opcodes by count, descending (Figure 7's Top-5).
    pub fn top(&self, n: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.hist.borrow().iter().map(|(k, c)| (k.clone(), *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Number of launches that ran instrumented.
    pub fn instrumented_launches(&self) -> u64 {
        *self.instrumented_launches.borrow()
    }

    /// Total launches observed.
    pub fn total_launches(&self) -> u64 {
        *self.total_launches.borrow()
    }

    /// Mean relative error of this histogram against an exact baseline,
    /// averaged over opcode categories present in either (Figure 9's
    /// metric).
    pub fn error_vs(&self, exact: &OpcodeHistogramResults) -> f64 {
        let a = self.hist.borrow();
        let b = exact.hist.borrow();
        let keys: HashSet<&String> = a.keys().chain(b.keys()).collect();
        if keys.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for k in &keys {
            let av = *a.get(*k).unwrap_or(&0) as f64;
            let bv = *b.get(*k).unwrap_or(&0) as f64;
            let denom = bv.max(1.0);
            total += (av - bv).abs() / denom;
        }
        total / keys.len() as f64
    }
}

/// Per-kernel instrumentation state.
struct KernelState {
    /// Base address of the per-opcode counter array (128 × u64 slots).
    counters: u64,
    /// Opcode mnemonic per slot that is actually used.
    slot_ops: Vec<(usize, String)>,
    /// Counter snapshot before the current launch.
    snapshot: Vec<u64>,
}

const SLOTS: usize = 128;

/// The histogram tool.
pub struct OpcodeHistogram {
    mode: SamplingMode,
    results: Rc<OpcodeHistogramResults>,
    kernels: HashMap<u32, KernelState>,
    sampled: HashSet<(u32, Dim3, Dim3)>,
    /// Estimated per-launch deltas per (kernel, grid, block) key.
    estimates: HashMap<(u32, Dim3, Dim3), Vec<u64>>,
    /// Extrapolated counts accumulated for uninstrumented launches.
    extrapolated: HashMap<u32, Vec<u64>>,
    /// Whether the in-flight launch is instrumented.
    current_instrumented: bool,
    /// When set, sites inject the multiplicity-protocol counting function
    /// and opt into the planner's coalescing pass (same-opcode sites of a
    /// basic block share their counter-slot address and merge into one
    /// call). The histogram is then *issue-level*: predicated-off
    /// instructions count as executed.
    plan: Option<PlanOpts>,
}

impl OpcodeHistogram {
    /// Creates the tool and its results handle.
    pub fn new(mode: SamplingMode) -> (OpcodeHistogram, Rc<OpcodeHistogramResults>) {
        let results = Rc::new(OpcodeHistogramResults::default());
        (
            OpcodeHistogram {
                mode,
                results: results.clone(),
                kernels: HashMap::new(),
                sampled: HashSet::new(),
                estimates: HashMap::new(),
                extrapolated: HashMap::new(),
                current_instrumented: false,
                plan: None,
            },
            results,
        )
    }

    /// Creates the tool in coalesced (issue-level) mode: injections follow
    /// the multiplicity protocol and the given planner passes run. The
    /// histogram is invariant under `opts` — only the number of executed
    /// trampoline calls changes.
    pub fn coalesced(
        mode: SamplingMode,
        opts: PlanOpts,
    ) -> (OpcodeHistogram, Rc<OpcodeHistogramResults>) {
        let (mut tool, results) = OpcodeHistogram::new(mode);
        tool.plan = Some(opts);
        (tool, results)
    }

    fn read_counters(&self, drv: &Driver, base: u64) -> Vec<u64> {
        (0..SLOTS as u64).map(|i| read_u64(drv, base + i * 8)).collect()
    }

    fn instrument(&mut self, api: &NvbitApi<'_>, func: CuFunction) {
        let counters =
            api.driver().with_device(|d| d.alloc(SLOTS as u64 * 8)).expect("counter alloc");
        let mut slot_ops = Vec::new();
        let mut used = HashSet::new();
        let mut targets = vec![func];
        targets.extend(api.get_related_funcs(func).unwrap_or_default());
        let mut sites = 0u64;
        for t in &targets {
            for instr in api.get_instrs(*t).expect("inspection") {
                let slot = instr.op().index() as usize % SLOTS;
                if used.insert((slot, instr.opcode_base())) {
                    slot_ops.push((slot, instr.op().mnemonic().to_string()));
                }
                if self.plan.is_some() {
                    api.insert_call(*t, instr.idx, "nvbit_count_mult", IPoint::Before).unwrap();
                    api.add_call_arg_imm64(*t, instr.idx, counters + slot as u64 * 8).unwrap();
                    api.set_coalesce(*t, instr.idx).unwrap();
                } else {
                    api.insert_call(*t, instr.idx, "nvbit_count_one", IPoint::Before).unwrap();
                    api.add_call_arg_guard_pred(*t, instr.idx).unwrap();
                    api.add_call_arg_imm64(*t, instr.idx, counters + slot as u64 * 8).unwrap();
                }
                sites += 1;
            }
        }
        common::obs::counter("tool.opcode_hist.sites", sites);
        for t in &targets {
            if *t != func {
                api.enable_instrumented(*t, true).unwrap();
            }
        }
        self.kernels
            .insert(func.raw(), KernelState { counters, slot_ops, snapshot: vec![0; SLOTS] });
    }

    fn publish(&self, drv: &Driver) {
        let mut hist: BTreeMap<String, u64> = BTreeMap::new();
        for state in self.kernels.values() {
            let now = self.read_counters(drv, state.counters);
            for (slot, op) in &state.slot_ops {
                let v = now[*slot];
                if v > 0 {
                    *hist.entry(op.clone()).or_insert(0) += v;
                }
            }
        }
        for (raw, extra) in &self.extrapolated {
            if let Some(state) = self.kernels.get(raw) {
                for (slot, op) in &state.slot_ops {
                    let v = extra[*slot];
                    if v > 0 {
                        *hist.entry(op.clone()).or_insert(0) += v;
                    }
                }
            }
        }
        *self.results.hist.borrow_mut() = hist;
    }
}

/// Convenience accessor on the instruction view used above.
trait OpcodeBase {
    fn opcode_base(&self) -> String;
}

impl OpcodeBase for nvbit::Instr {
    fn opcode_base(&self) -> String {
        self.op().mnemonic().to_string()
    }
}

impl NvbitTool for OpcodeHistogram {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        match self.plan {
            Some(opts) => {
                api.set_plan_opts(opts);
                api.load_tool_functions(COUNT_MULT_FN).expect("tool functions compile");
            }
            None => api.load_tool_functions(COUNT_FN).expect("tool functions compile"),
        }
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, grid, block, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        let key = (func.raw(), *grid, *block);

        if !is_exit {
            if !self.kernels.contains_key(&func.raw()) {
                self.instrument(api, *func);
            }
            let instrument_this = match self.mode {
                SamplingMode::Full => true,
                SamplingMode::GridDim => self.sampled.insert(key),
            };
            self.current_instrumented = instrument_this;
            // Snapshot the counters so the exit handler can compute the
            // launch's delta.
            let state = self.kernels.get_mut(&func.raw()).expect("instrumented above");
            state.snapshot = {
                let base = state.counters;
                (0..SLOTS as u64).map(|i| read_u64(api.driver(), base + i * 8)).collect()
            };
            api.enable_instrumented(*func, instrument_this).unwrap();
            *self.results.total_launches.borrow_mut() += 1;
            if instrument_this {
                *self.results.instrumented_launches.borrow_mut() += 1;
            }
            return;
        }

        // Exit: record the measured delta (instrumented) or extrapolate
        // (uninstrumented).
        let state = self.kernels.get(&func.raw()).expect("instrumented at entry");
        if self.current_instrumented {
            let now = self.read_counters(api.driver(), state.counters);
            let delta: Vec<u64> = now.iter().zip(&state.snapshot).map(|(a, b)| a - b).collect();
            self.estimates.insert(key, delta);
        } else if let Some(delta) = self.estimates.get(&key) {
            let extra = self.extrapolated.entry(func.raw()).or_insert_with(|| vec![0; SLOTS]);
            for (e, d) in extra.iter_mut().zip(delta) {
                *e += *d;
            }
        }
        self.publish(api.driver());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu::DeviceSpec;
    use nvbit::attach_tool;
    use sass::Arch;
    use workloads::specaccel::{benchmark, Size};

    fn run(bench: &str, mode: SamplingMode) -> (Rc<OpcodeHistogramResults>, u64) {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = OpcodeHistogram::new(mode);
        attach_tool(&drv, tool);
        benchmark(bench).unwrap().run(&drv, Size::Small).unwrap();
        drv.shutdown();
        let cycles = drv.total_stats().cycles;
        (results, cycles)
    }

    #[test]
    fn full_histogram_matches_native_per_op_counts() {
        // Native per-op thread counts from the simulator's own statistics.
        let native = Driver::new(DeviceSpec::test(Arch::Volta));
        benchmark("ostencil").unwrap().run(&native, Size::Small).unwrap();
        // The simulator's per_op counts warp-level; recompute thread-level
        // expectation via the tool instead: just check a couple of
        // signature opcodes exist and the totals are plausible.
        let (results, _) = run("ostencil", SamplingMode::Full);
        let hist = results.histogram();
        assert!(hist.contains_key("LDG"), "{hist:?}");
        assert!(hist.contains_key("FADD") || hist.contains_key("FFMA"), "{hist:?}");
        let total: u64 = hist.values().sum();
        assert!(total > 0);
        assert_eq!(results.total_launches(), results.instrumented_launches());
    }

    #[test]
    fn sampling_runs_instrumented_once_per_grid_and_is_faster() {
        let (full, full_cycles) = run("ostencil", SamplingMode::Full);
        let (sampled, sampled_cycles) = run("ostencil", SamplingMode::GridDim);
        // ostencil launches the same kernel with the same grid repeatedly:
        // only the first is instrumented.
        assert_eq!(sampled.instrumented_launches(), 1);
        assert!(sampled.total_launches() > 1);
        // Small size has only two launches, so the saving is bounded; the
        // full effect shows at Figure 8 scale.
        assert!(sampled_cycles < full_cycles * 3 / 4, "{sampled_cycles} vs {full_cycles}");
        // Grid-dim-determined control flow => zero sampling error.
        let err = sampled.error_vs(&full);
        assert!(err < 1e-9, "expected exact extrapolation, error {err}");
        assert_eq!(full.top(5).len().min(5), full.top(5).len());
    }

    #[test]
    fn coalesced_histogram_is_invariant_under_the_planner_passes() {
        let run_with = |opts: PlanOpts| {
            let drv = Driver::new(DeviceSpec::test(Arch::Volta));
            let (tool, results) = OpcodeHistogram::coalesced(SamplingMode::Full, opts);
            attach_tool(&drv, tool);
            benchmark("ostencil").unwrap().run(&drv, Size::Small).unwrap();
            drv.shutdown();
            (results.histogram(), drv.total_stats().cycles)
        };
        let (naive, naive_cycles) = run_with(PlanOpts::naive());
        let (merged, merged_cycles) =
            run_with(PlanOpts { coalesce: true, inline: true, ..PlanOpts::naive() });
        assert!(!naive.is_empty());
        assert_eq!(naive, merged, "multiplicity protocol keeps the histogram exact");
        assert!(merged_cycles < naive_cycles, "{merged_cycles} vs {naive_cycles}");
    }

    #[test]
    fn data_dependent_kernels_show_nonzero_sampling_error() {
        let (full, _) = run("md", SamplingMode::Full);
        let (sampled, _) = run("md", SamplingMode::GridDim);
        let err = sampled.error_vs(&full);
        assert!(err > 0.0, "md has data-dependent control flow; error should be > 0");
        assert!(err < 0.5, "error should stay small, got {err}");
    }
}
