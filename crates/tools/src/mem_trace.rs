//! Global-memory address tracing (the substrate for trace-driven cache
//! simulation, paper §6.1).
//!
//! Two capture modes share the results contract:
//!
//! * **Bounded** ([`MemTrace::new`]) — the original design: every lane
//!   appends to a fixed device buffer via an atomic slot claim; records
//!   past capacity are dropped (demand is still counted). Simple, but
//!   the trace size is capped up front and the readback happens only at
//!   launch exit.
//! * **Channel** ([`MemTrace::channel`]) — lanes push through the
//!   streaming [`common::channel`] to a host drain thread, so the trace
//!   size is unbounded under [`Backpressure::Block`] (lossless) and the
//!   host consumes records *while the kernel runs*. Under
//!   [`Backpressure::DropCount`] the bounded-buffer truncation contract
//!   is preserved with exact drop accounting.

use crate::read_u64;
use common::channel::{Backpressure, ChannelHost, Record};
use cuda::{CbId, CbParams, Driver};
use nvbit::{IPoint, NvbitApi, NvbitTool};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// The bounded trace-append device function: every executing lane
/// appends its effective address to a bounded device buffer
/// (`u64 count` at +0, records at +8).
const TRACE_FN: &str = r#"
.func nvbit_trace(.reg .u32 %pred, .reg .u64 %base, .reg .u32 %off, .reg .u64 %buf,
                  .reg .u32 %cap)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<10>;
    .reg .pred %p<3>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.s64.s32 %rd1, %off;
    add.u64 %rd2, %base, %rd1;
    mov.u64 %rd3, 1;
    atom.global.add.u64 %rd4, [%buf], %rd3;
    // slot >= cap => drop (the count still records demand).
    cvt.u32.u64 %r2, %rd4;
    setp.ge.u32 %p2, %r2, %cap;
    @%p2 ret;
    shl.b64 %rd6, %rd4, 3;
    add.u64 %rd7, %buf, %rd6;
    st.global.u64 [%rd7+8], %rd2;
    ret;
}
"#;

/// The streaming trace-append device function: every executing lane
/// pushes its effective address into the launch's host-side record
/// channel. No buffer pointer or capacity — backpressure lives in the
/// channel, and the host drains concurrently.
pub(crate) const TRACE_CHAN_FN: &str = r#"
.func nvbit_trace_chan(.reg .u32 %pred, .reg .u64 %base, .reg .u32 %off)
{
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.s64.s32 %rd1, %off;
    add.u64 %rd2, %base, %rd1;
    chan.push.u64 %rd2;
    ret;
}
"#;

/// Results handle of [`MemTrace`].
#[derive(Debug, Default)]
pub struct MemTraceResults {
    addresses: RefCell<Vec<u64>>,
    demanded: RefCell<u64>,
    dropped: RefCell<u64>,
}

impl MemTraceResults {
    /// The single source of the exact-fill boundary: of `demanded`
    /// records offered to a `capacity`-record store, how many are
    /// captured. A trace that fills the store *exactly*
    /// (`demanded == capacity`) is complete — truncation begins at the
    /// first record past capacity.
    ///
    /// Both capture modes and [`truncated`](Self::truncated) derive
    /// from this predicate; it is deliberately not hand-rolled at the
    /// call sites.
    pub fn captured(demanded: u64, capacity: u64) -> u64 {
        demanded.min(capacity)
    }

    /// True when every demanded record fits: `captured == demanded`.
    pub fn complete(demanded: u64, capacity: u64) -> bool {
        Self::captured(demanded, capacity) == demanded
    }

    /// The captured addresses. Bounded mode reports them in device
    /// append order; channel mode reassembles the canonical stream
    /// (CTA-linear major, per-CTA push order), which is identical
    /// across scheduler configurations.
    pub fn addresses(&self) -> Vec<u64> {
        self.addresses.borrow().clone()
    }

    /// Total records the kernel tried to append, whether or not they fit.
    ///
    /// `demanded() >= addresses().len()` always holds; the excess (if any)
    /// is [`dropped`](Self::dropped).
    pub fn demanded(&self) -> u64 {
        *self.demanded.borrow()
    }

    /// Records dropped by the capture path. Always
    /// `demanded() - addresses().len()`: bounded mode drops past
    /// capacity, channel mode drops only under
    /// [`Backpressure::DropCount`] with both flush buffers full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.borrow()
    }

    /// True when at least one record was dropped. Defined through the
    /// shared boundary predicate ([`complete`](Self::complete)) with
    /// the captured count standing in for capacity: the stored
    /// addresses are exactly the captured records, so an exactly-full
    /// capture is complete, not truncated.
    pub fn truncated(&self) -> bool {
        !Self::complete(self.demanded(), self.addresses.borrow().len() as u64)
    }
}

/// Capture backend of [`MemTrace`].
enum Mode {
    /// Fixed device buffer, readback at launch exit.
    Bounded { capacity: u32, buf: u64 },
    /// Streaming channel with a host drain thread.
    Channel {
        policy: Backpressure,
        buf_records: usize,
        host: Option<ChannelHost>,
        store: Arc<Mutex<Vec<Record>>>,
    },
}

/// The tracing tool.
pub struct MemTrace {
    mode: Mode,
    results: Rc<MemTraceResults>,
    seen: HashSet<u32>,
}

impl MemTrace {
    /// Creates the tool with a bounded record capacity.
    pub fn new(capacity: u32) -> (MemTrace, Rc<MemTraceResults>) {
        let results = Rc::new(MemTraceResults::default());
        (
            MemTrace {
                mode: Mode::Bounded { capacity, buf: 0 },
                results: results.clone(),
                seen: HashSet::new(),
            },
            results,
        )
    }

    /// Creates the tool in streaming-channel mode with a flush-buffer
    /// capacity of `buf_records` records. `Backpressure::Block` makes
    /// the trace lossless regardless of its size relative to the
    /// buffer; `Backpressure::DropCount` bounds kernel-side stalls and
    /// accounts every drop exactly.
    pub fn channel(policy: Backpressure, buf_records: usize) -> (MemTrace, Rc<MemTraceResults>) {
        let results = Rc::new(MemTraceResults::default());
        (
            MemTrace {
                mode: Mode::Channel {
                    policy,
                    buf_records,
                    host: None,
                    store: Arc::new(Mutex::new(Vec::new())),
                },
                results: results.clone(),
                seen: HashSet::new(),
            },
            results,
        )
    }

    fn publish(&self, drv: &Driver) {
        match &self.mode {
            Mode::Bounded { capacity, buf } => {
                if *buf == 0 {
                    return;
                }
                let demanded = read_u64(drv, *buf);
                let n = MemTraceResults::captured(demanded, *capacity as u64) as usize;
                let mut bytes = vec![0u8; n * 8];
                if n > 0 {
                    drv.memcpy_dtoh(&mut bytes, *buf + 8).expect("trace readback");
                }
                *self.results.addresses.borrow_mut() =
                    bytes.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
                *self.results.demanded.borrow_mut() = demanded;
                *self.results.dropped.borrow_mut() = demanded - n as u64;
            }
            Mode::Channel { host, store, .. } => {
                let Some(host) = host else { return };
                // The kernel-completion flush inside `Device::launch`
                // already pushed every record through the consumer, so
                // the store is complete here. Reassemble the canonical
                // stream: stable sort by CTA tag keeps each CTA's
                // push-ordered subsequence intact, making the result
                // independent of worker interleaving.
                let mut records = store.lock().unwrap().clone();
                records.sort_by_key(|r| r.tag);
                *self.results.addresses.borrow_mut() = records.iter().map(|r| r.payload).collect();
                *self.results.demanded.borrow_mut() = host.demanded();
                *self.results.dropped.borrow_mut() = host.dropped();
            }
        }
    }
}

impl NvbitTool for MemTrace {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        match &mut self.mode {
            Mode::Bounded { capacity, buf } => {
                api.load_tool_functions(TRACE_FN).expect("tool functions compile");
                *buf = api
                    .driver()
                    .with_device(|d| d.alloc(8 + *capacity as u64 * 8))
                    .expect("trace buffer alloc");
            }
            Mode::Channel { policy, buf_records, host, store } => {
                api.load_tool_functions(TRACE_CHAN_FN).expect("tool functions compile");
                let sink = store.clone();
                let (h, dev) = ChannelHost::spawn(
                    *buf_records,
                    *policy,
                    Box::new(move |batch| sink.lock().unwrap().extend_from_slice(batch)),
                );
                api.driver().with_device(|d| d.attach_channel(dev));
                *host = Some(h);
            }
        }
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
        if let Mode::Channel { host, .. } = &mut self.mode {
            api.driver().with_device(|d| d.detach_channel());
            if let Some(host) = host.take() {
                host.shutdown();
            }
        }
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        if is_exit {
            self.publish(api.driver());
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        let (fn_name, bounded) = match &self.mode {
            Mode::Bounded { .. } => ("nvbit_trace", true),
            Mode::Channel { .. } => ("nvbit_trace_chan", false),
        };
        let mut sites = 0u64;
        for instr in api.get_instrs(*func).expect("inspection") {
            if instr.mem_space() != Some(sass::MemSpace::Global) {
                continue;
            }
            let Some((base, offset)) = instr.mref() else { continue };
            api.insert_call(*func, instr.idx, fn_name, IPoint::Before).unwrap();
            api.add_call_arg_guard_pred(*func, instr.idx).unwrap();
            api.add_call_arg_reg_val64(*func, instr.idx, base.0).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, offset).unwrap();
            if bounded {
                let Mode::Bounded { capacity, buf } = &self.mode else { unreachable!() };
                api.add_call_arg_imm64(*func, instr.idx, *buf).unwrap();
                api.add_call_arg_imm32(*func, instr.idx, *capacity as i32).unwrap();
            }
            sites += 1;
        }
        common::obs::counter("tool.mem_trace.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;

    const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    st.global.u32 [%rd3+64], %r2;
    exit;
}
"#;

    #[test]
    fn trace_captures_every_lane_address() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(4096);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let addrs = results.addresses();
        assert_eq!(addrs.len(), 64, "32 loads + 32 stores");
        assert!(!results.truncated());
        assert_eq!(results.dropped(), 0);
        // Loads at buf + 4t, stores at buf + 4t + 64.
        for t in 0..32u64 {
            assert!(addrs.contains(&(buf + 4 * t)), "missing load address of lane {t}");
            assert!(addrs.contains(&(buf + 4 * t + 64)), "missing store address of lane {t}");
        }
    }

    #[test]
    fn overflow_is_reported_as_truncation() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(16);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();
        assert!(results.truncated());
        assert_eq!(results.addresses().len(), 16);
        assert_eq!(results.demanded(), 64);
        assert_eq!(results.dropped(), 48);
    }

    /// Boundary contract: a trace that fills the buffer *exactly* is
    /// complete, not truncated. The app demands exactly 64 records
    /// (32 loads + 32 stores) into a capacity-64 buffer.
    #[test]
    fn exactly_full_buffer_is_complete_not_truncated() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(64);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();
        assert_eq!(results.demanded(), 64, "demand equals capacity exactly");
        assert_eq!(results.addresses().len(), 64, "every record captured");
        assert!(!results.truncated(), "an exactly-full buffer is not truncated");
    }

    /// Channel mode with `Block` is lossless even when the trace
    /// exceeds the flush buffer many times over: a 4-record buffer
    /// carries a 64-record trace with zero drops.
    #[test]
    fn channel_trace_is_lossless_past_the_buffer_size() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::channel(Backpressure::Block, 4);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let addrs = results.addresses();
        assert_eq!(addrs.len(), 64, "32 loads + 32 stores, no capacity cap");
        assert!(!results.truncated());
        assert_eq!(results.dropped(), 0);
        assert_eq!(results.demanded(), 64);
        for t in 0..32u64 {
            assert!(addrs.contains(&(buf + 4 * t)), "missing load address of lane {t}");
            assert!(addrs.contains(&(buf + 4 * t + 64)), "missing store address of lane {t}");
        }
    }

    /// Channel mode under `DropCount` preserves the accounting
    /// contract exactly: whatever gets dropped is counted, and
    /// demanded == captured + dropped always holds.
    #[test]
    fn channel_dropcount_accounting_is_exact() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::channel(Backpressure::DropCount, 8);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        assert_eq!(results.demanded(), 64);
        assert_eq!(
            results.addresses().len() as u64 + results.dropped(),
            results.demanded(),
            "every demanded record is either captured or counted as dropped"
        );
        assert_eq!(results.truncated(), results.dropped() > 0);
    }
}
