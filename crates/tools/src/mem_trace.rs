//! Global-memory address tracing (the substrate for trace-driven cache
//! simulation, paper §6.1).

use crate::read_u64;
use cuda::{CbId, CbParams, Driver};
use nvbit::{IPoint, NvbitApi, NvbitTool};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// The trace-append device function: every executing lane appends its
/// effective address to a bounded device buffer
/// (`u64 count` at +0, records at +8).
const TRACE_FN: &str = r#"
.func nvbit_trace(.reg .u32 %pred, .reg .u64 %base, .reg .u32 %off, .reg .u64 %buf,
                  .reg .u32 %cap)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<10>;
    .reg .pred %p<3>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.s64.s32 %rd1, %off;
    add.u64 %rd2, %base, %rd1;
    mov.u64 %rd3, 1;
    atom.global.add.u64 %rd4, [%buf], %rd3;
    // slot >= cap => drop (the count still records demand).
    cvt.u32.u64 %r2, %rd4;
    setp.ge.u32 %p2, %r2, %cap;
    @%p2 ret;
    shl.b64 %rd6, %rd4, 3;
    add.u64 %rd7, %buf, %rd6;
    st.global.u64 [%rd7+8], %rd2;
    ret;
}
"#;

/// Results handle of [`MemTrace`].
#[derive(Debug, Default)]
pub struct MemTraceResults {
    addresses: RefCell<Vec<u64>>,
    demanded: RefCell<u64>,
}

impl MemTraceResults {
    /// The captured addresses, in execution order (warp-major, lane order).
    pub fn addresses(&self) -> Vec<u64> {
        self.addresses.borrow().clone()
    }

    /// Total records the kernel tried to append, whether or not they fit.
    ///
    /// `demanded() >= addresses().len()` always holds; the excess (if any)
    /// is the number of records dropped by the bounded device buffer.
    pub fn demanded(&self) -> u64 {
        *self.demanded.borrow()
    }

    /// True when at least one record was dropped because the buffer was
    /// full, i.e. `demanded() > addresses().len()`.
    ///
    /// Boundary contract: a trace that fills the buffer *exactly*
    /// (`demanded() == capacity`) is complete, not truncated — every
    /// demanded record was captured. Truncation begins at the first
    /// record past capacity. (The device function compares the 64-bit
    /// slot index against the capacity after narrowing it to `u32`, so
    /// demand counts stay exact up to `u32::MAX` records — far beyond
    /// any buffer this tool can allocate.)
    pub fn truncated(&self) -> bool {
        self.demanded() > self.addresses.borrow().len() as u64
    }
}

/// The tracing tool.
pub struct MemTrace {
    capacity: u32,
    buf: u64,
    results: Rc<MemTraceResults>,
    seen: HashSet<u32>,
}

impl MemTrace {
    /// Creates the tool with a record capacity.
    pub fn new(capacity: u32) -> (MemTrace, Rc<MemTraceResults>) {
        let results = Rc::new(MemTraceResults::default());
        (MemTrace { capacity, buf: 0, results: results.clone(), seen: HashSet::new() }, results)
    }

    fn publish(&self, drv: &Driver) {
        if self.buf == 0 {
            return;
        }
        let demanded = read_u64(drv, self.buf);
        let n = demanded.min(self.capacity as u64) as usize;
        let mut bytes = vec![0u8; n * 8];
        if n > 0 {
            drv.memcpy_dtoh(&mut bytes, self.buf + 8).expect("trace readback");
        }
        *self.results.addresses.borrow_mut() =
            bytes.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        *self.results.demanded.borrow_mut() = demanded;
    }
}

impl NvbitTool for MemTrace {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(TRACE_FN).expect("tool functions compile");
        self.buf = api
            .driver()
            .with_device(|d| d.alloc(8 + self.capacity as u64 * 8))
            .expect("trace buffer alloc");
    }

    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.publish(api.driver());
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if cbid != CbId::LaunchKernel {
            return;
        }
        if is_exit {
            self.publish(api.driver());
            return;
        }
        if !self.seen.insert(func.raw()) {
            return;
        }
        let mut sites = 0u64;
        for instr in api.get_instrs(*func).expect("inspection") {
            if instr.mem_space() != Some(sass::MemSpace::Global) {
                continue;
            }
            let Some((base, offset)) = instr.mref() else { continue };
            api.insert_call(*func, instr.idx, "nvbit_trace", IPoint::Before).unwrap();
            api.add_call_arg_guard_pred(*func, instr.idx).unwrap();
            api.add_call_arg_reg_val64(*func, instr.idx, base.0).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, offset).unwrap();
            api.add_call_arg_imm64(*func, instr.idx, self.buf).unwrap();
            api.add_call_arg_imm32(*func, instr.idx, self.capacity as i32).unwrap();
            sites += 1;
        }
        common::obs::counter("tool.mem_trace.sites", sites);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;

    const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r2, [%rd3];
    st.global.u32 [%rd3+64], %r2;
    exit;
}
"#;

    #[test]
    fn trace_captures_every_lane_address() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(4096);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();

        let addrs = results.addresses();
        assert_eq!(addrs.len(), 64, "32 loads + 32 stores");
        assert!(!results.truncated());
        // Loads at buf + 4t, stores at buf + 4t + 64.
        for t in 0..32u64 {
            assert!(addrs.contains(&(buf + 4 * t)), "missing load address of lane {t}");
            assert!(addrs.contains(&(buf + 4 * t + 64)), "missing store address of lane {t}");
        }
    }

    #[test]
    fn overflow_is_reported_as_truncation() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(16);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();
        assert!(results.truncated());
        assert_eq!(results.addresses().len(), 16);
        assert_eq!(results.demanded(), 64);
    }

    /// Boundary contract: a trace that fills the buffer *exactly* is
    /// complete, not truncated. The app demands exactly 64 records
    /// (32 loads + 32 stores) into a capacity-64 buffer.
    #[test]
    fn exactly_full_buffer_is_complete_not_truncated() {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let (tool, results) = MemTrace::new(64);
        attach_tool(&drv, tool);
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(1024).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        drv.shutdown();
        assert_eq!(results.demanded(), 64, "demand equals capacity exactly");
        assert_eq!(results.addresses().len(), 64, "every record captured");
        assert!(!results.truncated(), "an exactly-full buffer is not truncated");
    }
}
