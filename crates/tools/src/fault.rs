//! Single-bit register fault injection (one of the paper's motivating use
//! cases, citing SASSIFI-style tools).
//!
//! The injector flips one bit of one architectural register of one lane,
//! immediately after a chosen instruction executes — a *permanent* state
//! change via the device-API write-back.

use cuda::{CbId, CbParams};
use nvbit::{IPoint, NvbitApi, NvbitTool};

/// Where and what to corrupt.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Kernel name to target.
    pub kernel: String,
    /// Instruction index after which the flip happens.
    pub instr_idx: usize,
    /// Register to corrupt.
    pub reg: u8,
    /// Bit to flip (0–31).
    pub bit: u8,
    /// Lane whose register is corrupted (0–31).
    pub lane: u8,
}

const FLIP_FN: &str = r#"
.func nvbit_flip(.reg .u32 %regidx, .reg .u32 %mask, .reg .u32 %lane)
{
    .reg .u32 %r<4>;
    .reg .pred %p<2>;
    mov.u32 %r1, %laneid;
    setp.ne.u32 %p1, %r1, %lane;
    @%p1 ret;
    nvbit.readreg.b32 %r2, %regidx;
    xor.b32 %r2, %r2, %mask;
    nvbit.writereg.b32 %regidx, %r2;
    ret;
}
"#;

/// The fault-injection tool.
pub struct FaultInjector {
    spec: FaultSpec,
    injected: bool,
}

impl FaultInjector {
    /// Creates an injector for one fault site.
    pub fn new(spec: FaultSpec) -> FaultInjector {
        FaultInjector { spec, injected: false }
    }
}

impl NvbitTool for FaultInjector {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.load_tool_functions(FLIP_FN).expect("tool functions compile");
    }

    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        let CbParams::LaunchKernel { func, .. } = params else { return };
        if is_exit || cbid != CbId::LaunchKernel || self.injected {
            return;
        }
        let name = api.get_func_name(*func).unwrap_or_default();
        if name != self.spec.kernel {
            return;
        }
        self.injected = true;
        api.insert_call(*func, self.spec.instr_idx, "nvbit_flip", IPoint::After).unwrap();
        api.add_call_arg_imm32(*func, self.spec.instr_idx, self.spec.reg as i32).unwrap();
        api.add_call_arg_imm32(*func, self.spec.instr_idx, 1i32 << self.spec.bit).unwrap();
        api.add_call_arg_imm32(*func, self.spec.instr_idx, self.spec.lane as i32).unwrap();
        common::obs::counter("tool.fault.sites", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuda::{Driver, FatBinary, KernelArg};
    use gpu::{DeviceSpec, Dim3};
    use nvbit::attach_tool;
    use sass::Arch;

    const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<4>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mul.wide.u32 %rd2, %r1, 4;
    add.u64 %rd3, %rd1, %rd2;
    st.global.u32 [%rd3], %r1;
    exit;
}
"#;

    fn run(fault: Option<FaultSpec>) -> Vec<u32> {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        if let Some(spec) = fault {
            attach_tool(&drv, FaultInjector::new(spec));
        }
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        let buf = drv.mem_alloc(128).unwrap();
        drv.launch_kernel(&f, Dim3::linear(1), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
        let mut out = vec![0u8; 128];
        drv.memcpy_dtoh(&mut out, buf).unwrap();
        drv.shutdown();
        out.chunks(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
    }

    #[test]
    fn flipping_a_bit_corrupts_exactly_one_lane() {
        let clean = run(None);
        assert_eq!(clean, (0..32).collect::<Vec<u32>>());

        // Find the register holding %r1 by compiling the app: the MOV from
        // SR_TID writes it; target the instruction after the S2R (index 2
        // in the compiled order). Simpler: corrupt after the mul.wide's
        // source still holds tid. We flip bit 4 of the tid register of
        // lane 3, after the S2R (instruction 2 in compiled code).
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
        let f = drv.module_get_function(&m, "k").unwrap();
        // Locate the S2R instruction and its destination register.
        let code = drv.read_code(f).unwrap();
        let instrs = sass::codec::codec_for(drv.arch()).decode_stream(&code).unwrap();
        let (s2r_idx, s2r) =
            instrs.iter().enumerate().find(|(_, i)| i.op == sass::Op::S2r).expect("app reads tid");
        let dst = match s2r.operands[0] {
            sass::Operand::Reg(r) => r.0,
            _ => unreachable!(),
        };
        drop(drv);

        let faulty = run(Some(FaultSpec {
            kernel: "k".into(),
            instr_idx: s2r_idx,
            reg: dst,
            bit: 4,
            lane: 3,
        }));
        // Lane 3 stored tid ^ 16 = 19, and the store went to buf[19]...
        // no: the address is computed from the corrupted tid too, so lane 3
        // writes value 19 at slot 19, leaving slot 3 untouched (0).
        assert_eq!(faulty[3], 0, "lane 3's original slot is never written");
        assert_eq!(faulty[19], 19, "lane 3 wrote its corrupted tid at the corrupted index");
        for (t, v) in faulty.iter().enumerate() {
            if t != 3 && t != 19 {
                assert_eq!(*v, t as u32, "lane {t} unaffected");
            }
        }
    }
}
