//! NVBit instrumentation tools reproducing the paper's use cases.
//!
//! **Paper mapping:** §6 — the tools the paper builds on the framework,
//! each a thin client of the [`nvbit::NvbitApi`] inspection/injection API.
//!
//! * [`InstrCount`] — the thread-level instruction counter of Listing 1,
//!   plus its basic-block-optimized variant ([`BbInstrCount`]) and the
//!   planner-driven variant ([`CoalescedInstrCount`]) whose sites opt into
//!   basic-block call coalescing and leaf inlining.
//! * [`OpcodeHistogram`] — the per-opcode execution histogram of §6.2, with
//!   optional **grid-dimension sampling** (instrumented once per unique
//!   grid, uninstrumented otherwise, with counts extrapolated).
//! * [`MemDivergence`] — the memory-address-divergence tool of Listing 8
//!   (average unique cache lines per warp-level global memory instruction),
//!   with a switch to exclude pre-compiled libraries (emulating what a
//!   compiler-based instrumenter could see, Figure 6).
//! * [`WfftEmu`] — the `WFFT32` instruction-emulation tool of §6.3.
//! * [`MemTrace`] + [`CacheSim`] — an address-trace tool and a host-side
//!   cache simulator built on it (the paper's "entire cache simulators can
//!   be built around these mechanisms").
//! * [`FaultInjector`] — single-bit register fault injection (§6.3's
//!   prior-art use case).
//!
//! Each tool is attached with [`nvbit::attach_tool`] and exposes its results
//! through a shared handle that remains readable after the run:
//!
//! ```
//! use cuda::Driver;
//! use gpu::DeviceSpec;
//! use nvbit::attach_tool;
//! use nvbit_tools::InstrCount;
//! use sass::Arch;
//! use workloads::specaccel::{benchmark, Size};
//!
//! let drv = Driver::new(DeviceSpec::preset(Arch::Volta));
//! let (tool, results) = InstrCount::new();
//! attach_tool(&drv, tool);
//! benchmark("ostencil").unwrap().run(&drv, Size::Small).unwrap();
//! drv.shutdown();
//! assert!(results.total() > 0);
//! ```

#![warn(missing_docs)]

pub mod cache_sim;
pub mod fault;
pub mod instr_count;
pub mod mem_divergence;
pub mod mem_trace;
pub mod opcode_hist;
pub mod wfft_emu;

pub use cache_sim::{CacheConfig, CacheSim, CacheSimResults, ChannelCacheSim};
pub use fault::{FaultInjector, FaultSpec};
pub use instr_count::{BbInstrCount, CoalescedInstrCount, InstrCount, InstrCountResults};
pub use mem_divergence::{MemDivergence, MemDivergenceResults};
pub use mem_trace::{MemTrace, MemTraceResults};
pub use opcode_hist::{OpcodeHistogram, OpcodeHistogramResults, SamplingMode};
pub use wfft_emu::WfftEmu;

/// Reads a `u64` device counter.
pub(crate) fn read_u64(drv: &cuda::Driver, addr: u64) -> u64 {
    let mut b = [0u8; 8];
    drv.memcpy_dtoh(&mut b, addr).expect("counter readback");
    u64::from_le_bytes(b)
}

/// Reads an `f32` device counter.
pub(crate) fn read_f32(drv: &cuda::Driver, addr: u64) -> f32 {
    let mut b = [0u8; 4];
    drv.memcpy_dtoh(&mut b, addr).expect("counter readback");
    f32::from_bits(u32::from_le_bytes(b))
}

/// The shared `count_one` instrumentation device function (Listing 1's
/// counting body): bumps a `u64` counter once per executing thread.
pub(crate) const COUNT_FN: &str = r#"
.func nvbit_count_one(.reg .u32 %pred, .reg .u64 %ctr)
{
    .reg .u64 %rd<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    mov.u64 %rd1, 1;
    atom.global.add.u64 %rd2, [%ctr], %rd1;
    ret;
}
"#;

/// Basic-block counting function: adds the block's instruction count once
/// per thread entering the block (the optimization the paper sketches after
/// Listing 1).
pub(crate) const COUNT_BB_FN: &str = r#"
.func nvbit_count_block(.reg .u32 %pred, .reg .u32 %len, .reg .u64 %ctr)
{
    .reg .u64 %rd<4>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.u64.u32 %rd1, %len;
    atom.global.add.u64 %rd2, [%ctr], %rd1;
    ret;
}
"#;

/// Multiplicity-protocol counting function: adds `%mult` to a `u64` counter
/// once per thread reaching the call. The trailing `%mult` argument is
/// appended by the planner (1 for an unmerged site, N when the call stands
/// for N coalesced sites of a basic block). There is deliberately no guard
/// argument — the count is *issue-level* — and the body is small, call-free
/// and register-API-free so the inlining pass can splice it into the
/// trampoline.
pub(crate) const COUNT_MULT_FN: &str = r#"
.func nvbit_count_mult(.reg .u64 %ctr, .reg .u32 %mult)
{
    .reg .u64 %rd<3>;
    cvt.u64.u32 %rd1, %mult;
    atom.global.add.u64 %rd2, [%ctr], %rd1;
    ret;
}
"#;

/// Guarded multiplicity-protocol counting function: adds `%mult` only when
/// `%pred` is non-zero — *executed*-level counting under the multiplicity
/// protocol. The guarded early return compiles to the single-diamond shape
/// ([`sass::pressure::BodyShape::Diamond`]) that the body classifier
/// accepts past the straight-leaf threshold, so this body is spliced into
/// the trampoline predicated instead of called.
pub(crate) const COUNT_PMULT_FN: &str = r#"
.func nvbit_count_pmult(.reg .u32 %pred, .reg .u64 %ctr, .reg .u32 %mult)
{
    .reg .u64 %rd<3>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.u64.u32 %rd1, %mult;
    atom.global.add.u64 %rd2, [%ctr], %rd1;
    ret;
}
"#;

/// Register-hungry variant of [`COUNT_PMULT_FN`]: computes the same
/// `+%mult` through a redundant shift/subtract expansion
/// (`64m−32m−16m−8m−4m−2m−m = m`) whose six simultaneously-live
/// temporaries push the compiled body's write ceiling past the first save
/// tier (R20 under the scratch ABI). Semantically identical to
/// `nvbit_count_pmult`; exists to exercise the pressure cost model — at
/// sites where registers in the body's write window are live across the
/// call, splicing this body raises the save tier and the verdict declines.
pub(crate) const COUNT_WIDE_FN: &str = r#"
.func nvbit_count_wide(.reg .u32 %pred, .reg .u64 %ctr, .reg .u32 %mult)
{
    .reg .u64 %rd<10>;
    .reg .pred %p<2>;
    setp.eq.u32 %p1, %pred, 0;
    @%p1 ret;
    cvt.u64.u32 %rd1, %mult;
    shl.b64 %rd2, %rd1, 1;
    shl.b64 %rd3, %rd1, 2;
    shl.b64 %rd4, %rd1, 3;
    shl.b64 %rd5, %rd1, 4;
    shl.b64 %rd6, %rd1, 5;
    shl.b64 %rd7, %rd1, 6;
    sub.u64 %rd8, %rd7, %rd6;
    sub.u64 %rd8, %rd8, %rd5;
    sub.u64 %rd8, %rd8, %rd4;
    sub.u64 %rd8, %rd8, %rd3;
    sub.u64 %rd8, %rd8, %rd2;
    sub.u64 %rd8, %rd8, %rd1;
    atom.global.add.u64 %rd9, [%ctr], %rd8;
    ret;
}
"#;
