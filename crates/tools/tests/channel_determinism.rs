//! Determinism suite for the streaming tool channel (`common::channel`).
//!
//! Under `Backpressure::Block` the channel is lossless, and the
//! canonical record stream — per-CTA subsequences reassembled in
//! CTA-linear order — is bit-identical whether CTAs run on one host
//! thread or race across a worker pool. Under `Backpressure::DropCount`
//! an adversarially tiny flush buffer forces drops, and the accounting
//! stays exact: every demanded record is either delivered or counted.

use common::channel::Backpressure;
use cuda::{Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3, Scheduler};
use nvbit::attach_tool;
use nvbit_tools::MemTrace;
use sass::Arch;

/// A multi-CTA app: each thread loads and stores one word, so a launch
/// of `blocks × 32` threads demands `blocks × 64` trace records with
/// per-CTA payloads that never collide across CTAs.
const APP: &str = r#"
.entry k(.param .u64 buf)
{
    .reg .u32 %r<6>;
    .reg .u64 %rd<4>;
    ld.param.u64 %rd1, [buf];
    mov.u32 %r1, %tid.x;
    mov.u32 %r2, %ctaid.x;
    mul.lo.u32 %r3, %r2, 32;
    add.u32 %r4, %r3, %r1;
    mul.wide.u32 %rd2, %r4, 4;
    add.u64 %rd3, %rd1, %rd2;
    ld.global.u32 %r5, [%rd3];
    st.global.u32 [%rd3], %r5;
    exit;
}
"#;

const BLOCKS: u32 = 8;

/// Runs the app with a channel-mode [`MemTrace`] and returns the
/// reassembled address stream plus (demanded, dropped).
fn run(policy: Backpressure, buf_records: usize, sched: Scheduler) -> (Vec<u64>, u64, u64) {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let (tool, results) = MemTrace::channel(policy, buf_records);
    attach_tool(&drv, tool);
    drv.with_device(|d| d.scheduler = sched);
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("app", APP)).unwrap();
    let f = drv.module_get_function(&m, "k").unwrap();
    let buf = drv.mem_alloc(BLOCKS as u64 * 32 * 4).unwrap();
    drv.launch_kernel(&f, Dim3::linear(BLOCKS), Dim3::linear(32), &[KernelArg::Ptr(buf)]).unwrap();
    drv.shutdown();
    (results.addresses(), results.demanded(), results.dropped())
}

/// `Block` with a buffer 64× smaller than the trace: the canonical
/// stream is bit-identical between the serial scheduler and a racing
/// CTA-parallel pool, and nothing is dropped in either.
#[test]
fn block_streams_are_bit_identical_across_schedulers() {
    let (serial, ser_demand, ser_drops) = run(Backpressure::Block, 8, Scheduler::Serial);
    let (parallel, par_demand, par_drops) =
        run(Backpressure::Block, 8, Scheduler::Parallel { threads: 4 });
    assert_eq!(ser_demand, BLOCKS as u64 * 64);
    assert_eq!(par_demand, ser_demand);
    assert_eq!(ser_drops, 0);
    assert_eq!(par_drops, 0);
    assert_eq!(serial.len(), BLOCKS as usize * 64);
    assert_eq!(serial, parallel, "canonical streams diverge across schedulers");
}

/// Repeated parallel runs are stable too — the reassembly really is
/// timing-independent, not merely lucky.
#[test]
fn parallel_runs_repeat_bit_identically() {
    let (first, ..) = run(Backpressure::Block, 8, Scheduler::Parallel { threads: 4 });
    for _ in 0..4 {
        let (again, ..) = run(Backpressure::Block, 8, Scheduler::Parallel { threads: 4 });
        assert_eq!(first, again);
    }
}

/// `DropCount` under an adversarially tiny 8-record buffer: drops are
/// possible (and with a serial scheduler pushing 512 records through
/// 8-record flips, overwhelmingly likely), and accounting is exact
/// either way: delivered + dropped == demanded, with the truncation
/// flag tracking the drop count.
#[test]
fn dropcount_accounting_is_exact_under_a_tiny_buffer() {
    for sched in [Scheduler::Serial, Scheduler::Parallel { threads: 4 }] {
        let (addrs, demanded, dropped) = run(Backpressure::DropCount, 8, sched);
        assert_eq!(demanded, BLOCKS as u64 * 64, "demand is workload-determined");
        assert_eq!(
            addrs.len() as u64 + dropped,
            demanded,
            "every demanded record is delivered or counted as dropped"
        );
        // Delivered records are still genuine addresses from the app's
        // buffer range (no torn or invented records under pressure).
        for &a in &addrs {
            assert_eq!(a % 4, 0, "address {a:#x} is not word-aligned");
        }
    }
}
