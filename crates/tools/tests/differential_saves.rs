//! Differential testing of liveness-driven save sizing (paper §5.1): for
//! every tool × workload pair, an instrumented run under the default
//! liveness-reduced save policy must produce bit-identical guest memory and
//! identical tool output to a run under the conservative full-tier policy.
//! The only observable difference may be cost (fewer saved register slots).

use cuda::{CbId, CbParams, CuFunction, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, NvbitApi, NvbitTool, SavePolicy, SaveStats};
use nvbit_tools::{
    BbInstrCount, InstrCount, MemDivergence, MemTrace, OpcodeHistogram, SamplingMode, WfftEmu,
};
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{fft, kernels};

/// Wraps a tool so the save policy is fixed before anything is lifted or
/// instrumented.
struct WithPolicy<T> {
    policy: SavePolicy,
    inner: T,
}

impl<T: NvbitTool> NvbitTool for WithPolicy<T> {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.set_save_policy(self.policy);
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_ctx_init(&mut self, api: &NvbitApi<'_>, ctx: cuda::CuContext) {
        self.inner.at_ctx_init(api, ctx);
    }
    fn at_ctx_term(&mut self, api: &NvbitApi<'_>, ctx: cuda::CuContext) {
        self.inner.at_ctx_term(api, ctx);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
    }
}

// ----- Workload applications (each returns its guest output bytes) --------

/// The software warp-FFT pipeline over unit-magnitude input.
fn fft_app(drv: &Driver) -> Vec<u8> {
    const BLOCKS: u32 = 2;
    let bytes = BLOCKS as u64 * 32 * 8;
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("fft", fft::soft_fft_kernel_ptx())).unwrap();
    let f = drv.module_get_function(&m, "fft32_soft").unwrap();
    let din = drv.mem_alloc(bytes).unwrap();
    let dout = drv.mem_alloc(bytes).unwrap();
    let input: Vec<u8> = (0..BLOCKS * 32)
        .flat_map(|_| {
            let mut rec = [0u8; 8];
            rec[..4].copy_from_slice(&1.0f32.to_le_bytes());
            rec
        })
        .collect();
    drv.memcpy_htod(din, &input).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(BLOCKS),
        Dim3::linear(32),
        &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
    )
    .unwrap();
    let mut out = vec![0u8; bytes as usize];
    drv.memcpy_dtoh(&mut out, dout).unwrap();
    out
}

/// A 5-point stencil step (grid-determined control flow).
fn stencil_app(drv: &Driver) -> Vec<u8> {
    let (h, w) = (16u32, 128u32);
    let n = h * w;
    let ctx = drv.ctx_create().unwrap();
    let src = format!(".version 6.0\n{}", kernels::stencil5("step"));
    let m = drv.module_load(&ctx, FatBinary::from_ptx("stencil", src)).unwrap();
    let f = drv.module_get_function(&m, "step").unwrap();
    let a = drv.mem_alloc(n as u64 * 4).unwrap();
    let b = drv.mem_alloc(n as u64 * 4).unwrap();
    let init: Vec<u8> = (0..n).flat_map(|i| ((i % 17) as f32).to_bits().to_le_bytes()).collect();
    drv.memcpy_htod(a, &init).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::xyz(h - 2, 1, 1),
        Dim3::linear(128),
        &[KernelArg::Ptr(a), KernelArg::Ptr(b), KernelArg::U32(h), KernelArg::U32(w)],
    )
    .unwrap();
    let mut out = vec![0u8; n as usize * 4];
    drv.memcpy_dtoh(&mut out, b).unwrap();
    out
}

/// Sparse matrix-vector product with data-dependent loop trip counts
/// (divergent control flow).
fn spmv_app(drv: &Driver) -> Vec<u8> {
    let rows = 64u32;
    let ctx = drv.ctx_create().unwrap();
    let src = format!(".version 6.0\n{}", kernels::spmv_csr("spmv"));
    let m = drv.module_load(&ctx, FatBinary::from_ptx("spmv", src)).unwrap();
    let f = drv.module_get_function(&m, "spmv").unwrap();
    // Deterministic CSR structure: row r has 1 + (r mod 9) entries.
    let mut rowptr = vec![0u32];
    let mut cols = Vec::new();
    for r in 0..rows {
        for j in 0..=(r % 9) {
            cols.push((r * 7 + j * 13) % rows);
        }
        rowptr.push(cols.len() as u32);
    }
    let alloc_u32 = |vals: &[u32]| {
        let a = drv.mem_alloc(vals.len() as u64 * 4).unwrap();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        drv.memcpy_htod(a, &bytes).unwrap();
        a
    };
    let alloc_f32 = |n: u32, f: &dyn Fn(u32) -> f32| {
        let a = drv.mem_alloc(n as u64 * 4).unwrap();
        let bytes: Vec<u8> = (0..n).flat_map(|i| f(i).to_bits().to_le_bytes()).collect();
        drv.memcpy_htod(a, &bytes).unwrap();
        a
    };
    let d_rowptr = alloc_u32(&rowptr);
    let d_cols = alloc_u32(&cols);
    let d_vals = alloc_f32(cols.len() as u32, &|i| 1.0 / (1.0 + i as f32));
    let x = alloc_f32(rows, &|_| 1.0);
    let y = alloc_f32(rows, &|_| 0.0);
    drv.launch_kernel(
        &f,
        Dim3::linear(1),
        Dim3::linear(128),
        &[
            KernelArg::Ptr(d_rowptr),
            KernelArg::Ptr(d_cols),
            KernelArg::Ptr(d_vals),
            KernelArg::Ptr(x),
            KernelArg::Ptr(y),
            KernelArg::U32(rows),
        ],
    )
    .unwrap();
    let mut out = vec![0u8; rows as usize * 4];
    drv.memcpy_dtoh(&mut out, y).unwrap();
    out
}

/// A deterministic guest application: runs kernels and returns the output
/// buffer bytes.
type App = fn(&Driver) -> Vec<u8>;

const APPS: [(&str, App); 3] = [("fft", fft_app), ("stencil", stencil_app), ("spmv", spmv_app)];

/// Runs `app` under `tool` with the given save policy; returns the guest
/// output bytes and a string signature of the tool's own results.
fn run_case(tool: &str, policy: SavePolicy, app: fn(&Driver) -> Vec<u8>) -> (Vec<u8>, String) {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let sig: Box<dyn Fn() -> String> = match tool {
        "instr_count" => {
            let (t, r) = InstrCount::new();
            attach_tool(&drv, WithPolicy { policy, inner: t });
            Box::new(move || r.total().to_string())
        }
        "bb_instr_count" => {
            let (t, r) = BbInstrCount::new();
            attach_tool(&drv, WithPolicy { policy, inner: t });
            Box::new(move || r.total().to_string())
        }
        "opcode_hist" => {
            let (t, r) = OpcodeHistogram::new(SamplingMode::Full);
            attach_tool(&drv, WithPolicy { policy, inner: t });
            Box::new(move || format!("{:?}", r.histogram()))
        }
        "mem_trace" => {
            let (t, r) = MemTrace::new(4096);
            attach_tool(&drv, WithPolicy { policy, inner: t });
            Box::new(move || format!("{} {:?}", r.demanded(), r.addresses()))
        }
        "mem_divergence" => {
            let (t, r) = MemDivergence::new(true);
            attach_tool(&drv, WithPolicy { policy, inner: t });
            Box::new(move || format!("{} {}", r.mem_instructions(), r.unique_lines()))
        }
        other => unreachable!("unknown tool {other}"),
    };
    let mem = app(&drv);
    drv.shutdown();
    (mem, sig())
}

/// The differential itself: liveness vs full-tier must agree bit-for-bit on
/// both the guest output and the tool output, for every workload.
fn differential(tool: &str) {
    for (app_name, app) in APPS {
        let (mem_full, sig_full) = run_case(tool, SavePolicy::FullTier, app);
        let (mem_live, sig_live) = run_case(tool, SavePolicy::Liveness, app);
        assert_eq!(mem_live, mem_full, "guest memory differs: {tool} × {app_name}");
        assert_eq!(sig_live, sig_full, "tool output differs: {tool} × {app_name}");
    }
}

#[test]
fn instr_count_is_policy_invariant() {
    differential("instr_count");
}

#[test]
fn bb_instr_count_is_policy_invariant() {
    differential("bb_instr_count");
}

#[test]
fn opcode_hist_is_policy_invariant() {
    differential("opcode_hist");
}

#[test]
fn mem_trace_is_policy_invariant() {
    differential("mem_trace");
}

#[test]
fn mem_divergence_is_policy_invariant() {
    differential("mem_divergence");
}

#[test]
fn wfft_emulation_is_policy_invariant() {
    // The emulation tool uses the register device API (permanent
    // write-back), which forces the conservative tier at its sites even
    // under the liveness policy — the differential must still hold.
    let run = |policy| -> Vec<u8> {
        let drv = Driver::new(DeviceSpec::test(Arch::Volta));
        attach_tool(&drv, WithPolicy { policy, inner: WfftEmu::new() });
        let ctx = drv.ctx_create().unwrap();
        let m = drv.module_load(&ctx, FatBinary::from_ptx("wfft", fft::wfft_kernel_ptx())).unwrap();
        let f = drv.module_get_function(&m, "fft32").unwrap();
        let bytes = 32 * 8u64;
        let din = drv.mem_alloc(bytes).unwrap();
        let dout = drv.mem_alloc(bytes).unwrap();
        let input: Vec<u8> = (0..32u32)
            .flat_map(|k| {
                let mut rec = [0u8; 8];
                rec[..4].copy_from_slice(&(k as f32 * 0.25).to_le_bytes());
                rec[4..].copy_from_slice(&(1.0f32 - k as f32 * 0.03).to_le_bytes());
                rec
            })
            .collect();
        drv.memcpy_htod(din, &input).unwrap();
        drv.launch_kernel(
            &f,
            Dim3::linear(1),
            Dim3::linear(32),
            &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
        )
        .unwrap();
        let mut out = vec![0u8; bytes as usize];
        drv.memcpy_dtoh(&mut out, dout).unwrap();
        drv.shutdown();
        out
    };
    let full = run(SavePolicy::FullTier);
    let live = run(SavePolicy::Liveness);
    assert_eq!(live, full);
    // The emulated run is meaningful, not all-zero.
    assert!(full.iter().any(|&b| b != 0));
}

/// Captures the codegen's register-save accounting at launch exit.
struct StatsCapture<T> {
    inner: T,
    stats: Rc<RefCell<Option<SaveStats>>>,
}

impl<T: NvbitTool> NvbitTool for StatsCapture<T> {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
        if is_exit && cbid == CbId::LaunchKernel {
            if let CbParams::LaunchKernel { func, .. } = params {
                let func: CuFunction = *func;
                if let Ok(Some(s)) = api.save_stats(func) {
                    *self.stats.borrow_mut() = Some(s);
                }
            }
        }
    }
}

#[test]
fn liveness_reduces_saved_slots_on_the_fft_kernel() {
    let stats = Rc::new(RefCell::new(None));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let (tool, _results) = InstrCount::new();
    attach_tool(&drv, StatsCapture { inner: tool, stats: stats.clone() });
    fft_app(&drv);
    drv.shutdown();
    let s = stats.borrow().clone().expect("fft kernel was instrumented");
    assert!(s.fallback.is_none(), "liveness analysis must apply: {:?}", s.fallback);
    assert!(
        s.saved_slots < s.full_tier_slots,
        "liveness should shrink saves: {} vs {}",
        s.saved_slots,
        s.full_tier_slots
    );
}
