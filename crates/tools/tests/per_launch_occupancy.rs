//! Per-launch occupancy configs (`OccupancyCfg::PER_LAUNCH`): the core
//! derives the block shape of the occupancy gate from each intercepted
//! launch instead of a hard-coded configuration. The resolved shape is
//! part of the plan-cache key, so repeating a shape reuses the cached
//! image and changing it replans — the same shape-keyed behaviour the
//! sampling cache has for save policies.

use cuda::{CbId, CbParams, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, NvbitApi, NvbitTool, PlanOpts, PlanStats, SaveStats};
use nvbit_tools::MemTrace;
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::kernels;

/// Wraps [`MemTrace`] (which instruments every global access) to pin
/// plan options at init and capture plan/save stats at each launch exit.
struct Probe {
    opts: PlanOpts,
    inner: MemTrace,
    stats: Rc<RefCell<Vec<(PlanStats, SaveStats)>>>,
}

impl NvbitTool for Probe {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.set_plan_opts(self.opts);
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
        if is_exit && cbid == CbId::LaunchKernel {
            let CbParams::LaunchKernel { func, .. } = params else { return };
            let plan = api.plan_stats(*func).unwrap().expect("instrumented");
            let save = api.save_stats(*func).unwrap().expect("instrumented");
            self.stats.borrow_mut().push((plan, save));
        }
    }
}

/// Runs the stencil workload under the given opts, launching at the
/// requested block shapes (one launch per entry), and returns the
/// captured per-launch stats.
fn run(opts: PlanOpts, shapes: &[u32]) -> Vec<(PlanStats, SaveStats)> {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let (tool, _results) = MemTrace::new(1 << 16);
    let stats = Rc::new(RefCell::new(Vec::new()));
    attach_tool(&drv, Probe { opts, inner: tool, stats: stats.clone() });
    let (h, w) = (16u32, 128u32);
    let n = h * w;
    let ctx = drv.ctx_create().unwrap();
    let src = format!(".version 6.0\n{}", kernels::stencil5("step"));
    let m = drv.module_load(&ctx, FatBinary::from_ptx("stencil", src)).unwrap();
    let f = drv.module_get_function(&m, "step").unwrap();
    let a = drv.mem_alloc(n as u64 * 4).unwrap();
    let b = drv.mem_alloc(n as u64 * 4).unwrap();
    let init: Vec<u8> = (0..n).flat_map(|i| ((i % 17) as f32).to_bits().to_le_bytes()).collect();
    drv.memcpy_htod(a, &init).unwrap();
    for &bd in shapes {
        drv.launch_kernel(
            &f,
            Dim3::xyz(h - 2, 1, 1),
            Dim3::linear(bd),
            &[KernelArg::Ptr(a), KernelArg::Ptr(b), KernelArg::U32(h), KernelArg::U32(w)],
        )
        .unwrap();
    }
    drv.shutdown();
    Rc::try_unwrap(stats).unwrap().into_inner()
}

/// The obs counters are process-global; serialize the tests so one
/// test's builds never land in the other's captured report.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn per_launch_opts() -> PlanOpts {
    PlanOpts {
        pressure: true,
        occupancy: Some(sass::occupancy::OccupancyCfg::volta_per_launch()),
        ..PlanOpts::default()
    }
}

/// At a fixed launch shape, the per-launch sentinel resolves to exactly
/// the config an explicit shape names: identical plan and save stats.
#[test]
fn per_launch_matches_the_explicit_shape() {
    let _serial = SERIAL.lock().unwrap();
    let explicit = PlanOpts {
        pressure: true,
        occupancy: Some(sass::occupancy::OccupancyCfg::volta(128)),
        ..PlanOpts::default()
    };
    let a = run(explicit, &[128]);
    let b = run(per_launch_opts(), &[128]);
    assert_eq!(a, b, "resolved sentinel must name the same image as the explicit config");
}

/// Repeated shapes hit the image cache; a shape change replans. The
/// build/reuse counters make the cache behaviour observable: three
/// launches at {128, 128, 256} build exactly two images.
#[test]
fn shape_change_replans_and_repeats_reuse() {
    let _serial = SERIAL.lock().unwrap();
    common::obs::reset();
    common::obs::set_enabled(true);
    let stats = run(per_launch_opts(), &[128, 128, 256]);
    let report = common::obs::Report::capture();
    common::obs::set_enabled(false);
    assert_eq!(stats.len(), 3);
    assert_eq!(
        report.counter_sum("plan.occ_launch_shape"),
        3,
        "every intercepted launch resolves the sentinel"
    );
    assert_eq!(report.counter_sum("instr_image.build"), 2, "one image per distinct shape");
    assert!(report.counter_sum("instr_image.reuse") >= 1, "the repeated shape hits the cache");
}
