//! Differential testing of the instrumentation-plan optimization passes:
//! for every tool × workload pair, a run with basic-block call coalescing
//! (and leaf-tool inlining, dominator-region coalescing and after-point
//! lowering) enabled must produce bit-identical guest memory and identical
//! tool output to a run with the naive per-site plan. The only observable
//! difference may be cost (fewer executed trampoline calls). Mirrors
//! `differential_saves.rs`, which proves the same property for the
//! register-save policies.

use cuda::{CbId, CbParams, CuFunction, Driver, FatBinary, KernelArg};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, NvbitApi, NvbitTool, PlanOpts, PlanStats, SaveStats};
use nvbit_tools::{CoalescedInstrCount, MemTrace, OpcodeHistogram, SamplingMode};
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{fft, kernels};

/// Wraps a tool so the plan options are fixed before anything is lifted or
/// instrumented (for tools that do not set them themselves).
struct WithOpts<T> {
    opts: PlanOpts,
    inner: T,
}

impl<T: NvbitTool> NvbitTool for WithOpts<T> {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        api.set_plan_opts(self.opts);
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_ctx_init(&mut self, api: &NvbitApi<'_>, ctx: cuda::CuContext) {
        self.inner.at_ctx_init(api, ctx);
    }
    fn at_ctx_term(&mut self, api: &NvbitApi<'_>, ctx: cuda::CuContext) {
        self.inner.at_ctx_term(api, ctx);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
    }
}

// ----- Workload applications (each returns its guest output bytes) --------

/// The software warp-FFT pipeline over unit-magnitude input.
fn fft_app(drv: &Driver) -> Vec<u8> {
    const BLOCKS: u32 = 2;
    let bytes = BLOCKS as u64 * 32 * 8;
    let ctx = drv.ctx_create().unwrap();
    let m = drv.module_load(&ctx, FatBinary::from_ptx("fft", fft::soft_fft_kernel_ptx())).unwrap();
    let f = drv.module_get_function(&m, "fft32_soft").unwrap();
    let din = drv.mem_alloc(bytes).unwrap();
    let dout = drv.mem_alloc(bytes).unwrap();
    let input: Vec<u8> = (0..BLOCKS * 32)
        .flat_map(|_| {
            let mut rec = [0u8; 8];
            rec[..4].copy_from_slice(&1.0f32.to_le_bytes());
            rec
        })
        .collect();
    drv.memcpy_htod(din, &input).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::linear(BLOCKS),
        Dim3::linear(32),
        &[KernelArg::Ptr(din), KernelArg::Ptr(dout)],
    )
    .unwrap();
    let mut out = vec![0u8; bytes as usize];
    drv.memcpy_dtoh(&mut out, dout).unwrap();
    out
}

/// A 5-point stencil step (grid-determined control flow).
fn stencil_app(drv: &Driver) -> Vec<u8> {
    let (h, w) = (16u32, 128u32);
    let n = h * w;
    let ctx = drv.ctx_create().unwrap();
    let src = format!(".version 6.0\n{}", kernels::stencil5("step"));
    let m = drv.module_load(&ctx, FatBinary::from_ptx("stencil", src)).unwrap();
    let f = drv.module_get_function(&m, "step").unwrap();
    let a = drv.mem_alloc(n as u64 * 4).unwrap();
    let b = drv.mem_alloc(n as u64 * 4).unwrap();
    let init: Vec<u8> = (0..n).flat_map(|i| ((i % 17) as f32).to_bits().to_le_bytes()).collect();
    drv.memcpy_htod(a, &init).unwrap();
    drv.launch_kernel(
        &f,
        Dim3::xyz(h - 2, 1, 1),
        Dim3::linear(128),
        &[KernelArg::Ptr(a), KernelArg::Ptr(b), KernelArg::U32(h), KernelArg::U32(w)],
    )
    .unwrap();
    let mut out = vec![0u8; n as usize * 4];
    drv.memcpy_dtoh(&mut out, b).unwrap();
    out
}

/// Sparse matrix-vector product with data-dependent loop trip counts
/// (divergent control flow).
fn spmv_app(drv: &Driver) -> Vec<u8> {
    let rows = 64u32;
    let ctx = drv.ctx_create().unwrap();
    let src = format!(".version 6.0\n{}", kernels::spmv_csr("spmv"));
    let m = drv.module_load(&ctx, FatBinary::from_ptx("spmv", src)).unwrap();
    let f = drv.module_get_function(&m, "spmv").unwrap();
    // Deterministic CSR structure: row r has 1 + (r mod 9) entries.
    let mut rowptr = vec![0u32];
    let mut cols = Vec::new();
    for r in 0..rows {
        for j in 0..=(r % 9) {
            cols.push((r * 7 + j * 13) % rows);
        }
        rowptr.push(cols.len() as u32);
    }
    let alloc_u32 = |vals: &[u32]| {
        let a = drv.mem_alloc(vals.len() as u64 * 4).unwrap();
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        drv.memcpy_htod(a, &bytes).unwrap();
        a
    };
    let alloc_f32 = |n: u32, f: &dyn Fn(u32) -> f32| {
        let a = drv.mem_alloc(n as u64 * 4).unwrap();
        let bytes: Vec<u8> = (0..n).flat_map(|i| f(i).to_bits().to_le_bytes()).collect();
        drv.memcpy_htod(a, &bytes).unwrap();
        a
    };
    let d_rowptr = alloc_u32(&rowptr);
    let d_cols = alloc_u32(&cols);
    let d_vals = alloc_f32(cols.len() as u32, &|i| 1.0 / (1.0 + i as f32));
    let x = alloc_f32(rows, &|_| 1.0);
    let y = alloc_f32(rows, &|_| 0.0);
    drv.launch_kernel(
        &f,
        Dim3::linear(1),
        Dim3::linear(128),
        &[
            KernelArg::Ptr(d_rowptr),
            KernelArg::Ptr(d_cols),
            KernelArg::Ptr(d_vals),
            KernelArg::Ptr(x),
            KernelArg::Ptr(y),
            KernelArg::U32(rows),
        ],
    )
    .unwrap();
    let mut out = vec![0u8; rows as usize * 4];
    drv.memcpy_dtoh(&mut out, y).unwrap();
    out
}

/// A deterministic guest application: runs kernels and returns the output
/// buffer bytes.
type App = fn(&Driver) -> Vec<u8>;

const APPS: [(&str, App); 3] = [("fft", fft_app), ("stencil", stencil_app), ("spmv", spmv_app)];

/// The six plan configurations under test: naive, block-coalesced,
/// block-coalesced + inlined, everything (adding dominator-region
/// coalescing and after-point lowering), everything with the
/// register-pressure cost model gating each splice, and the cost model
/// pricing tier raises against the Volta occupancy curve instead of
/// declining them outright.
const CONFIGS: [PlanOpts; 6] = [
    PlanOpts {
        coalesce: false,
        inline: false,
        region_coalesce: false,
        after_lower: false,
        pressure: false,
        occupancy: None,
    },
    PlanOpts {
        coalesce: true,
        inline: false,
        region_coalesce: false,
        after_lower: false,
        pressure: false,
        occupancy: None,
    },
    PlanOpts {
        coalesce: true,
        inline: true,
        region_coalesce: false,
        after_lower: false,
        pressure: false,
        occupancy: None,
    },
    PlanOpts {
        coalesce: true,
        inline: true,
        region_coalesce: true,
        after_lower: true,
        pressure: false,
        occupancy: None,
    },
    PlanOpts {
        coalesce: true,
        inline: true,
        region_coalesce: true,
        after_lower: true,
        pressure: true,
        occupancy: None,
    },
    PlanOpts {
        coalesce: true,
        inline: true,
        region_coalesce: true,
        after_lower: true,
        pressure: true,
        occupancy: Some(sass::OccupancyCfg::volta(128)),
    },
];

/// Runs `app` under `tool` with the given plan options; returns the guest
/// output bytes, a string signature of the tool's own results, and the
/// simulated cycle count.
fn run_case(tool: &str, opts: PlanOpts, app: App) -> (Vec<u8>, String, u64) {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let sig: Box<dyn Fn() -> String> = match tool {
        "coalesced_instr_count" => {
            let (t, r) = CoalescedInstrCount::new(opts);
            attach_tool(&drv, t);
            Box::new(move || r.total().to_string())
        }
        "after_instr_count" => {
            let (t, r) = CoalescedInstrCount::after(opts);
            attach_tool(&drv, t);
            Box::new(move || r.total().to_string())
        }
        "executed_instr_count" => {
            let (t, r) = CoalescedInstrCount::executed(opts);
            attach_tool(&drv, t);
            Box::new(move || r.total().to_string())
        }
        "wide_instr_count" => {
            let (t, r) = CoalescedInstrCount::executed_wide(opts);
            attach_tool(&drv, t);
            Box::new(move || r.total().to_string())
        }
        "coalesced_opcode_hist" => {
            let (t, r) = OpcodeHistogram::coalesced(SamplingMode::Full, opts);
            attach_tool(&drv, t);
            Box::new(move || format!("{:?}", r.histogram()))
        }
        "mem_trace" => {
            let (t, r) = MemTrace::new(4096);
            attach_tool(&drv, WithOpts { opts, inner: t });
            Box::new(move || format!("{} {:?}", r.demanded(), r.addresses()))
        }
        other => unreachable!("unknown tool {other}"),
    };
    let mem = app(&drv);
    drv.shutdown();
    (mem, sig(), drv.total_stats().cycles)
}

/// The differential itself: every optimized configuration must agree
/// bit-for-bit with the naive per-site plan on both the guest output and
/// the tool output, for every workload.
fn differential(tool: &str) {
    for (app_name, app) in APPS {
        let (mem_naive, sig_naive, _) = run_case(tool, CONFIGS[0], app);
        for opts in &CONFIGS[1..] {
            let (mem_opt, sig_opt, _) = run_case(tool, *opts, app);
            assert_eq!(mem_opt, mem_naive, "guest memory differs: {tool} × {app_name} × {opts:?}");
            assert_eq!(sig_opt, sig_naive, "tool output differs: {tool} × {app_name} × {opts:?}");
        }
    }
}

#[test]
fn coalesced_instr_count_is_plan_invariant() {
    differential("coalesced_instr_count");
}

#[test]
fn coalesced_opcode_hist_is_plan_invariant() {
    differential("coalesced_opcode_hist");
}

#[test]
fn after_point_instr_count_is_plan_invariant() {
    // Every site injects at `IPoint::After`; the fourth configuration
    // lowers the mid-block ones to fall-through `Before` slots and merges
    // them, which must not change the count by a single event.
    differential("after_instr_count");
}

#[test]
fn executed_instr_count_is_plan_invariant() {
    // Executed-level counting through the guarded-diamond body
    // `nvbit_count_pmult`: guarded sites pass the dynamic guard predicate
    // (so they never merge), unguarded sites pass constant 1 (so they do).
    // The total must not move whichever passes — including diamond
    // splicing — are enabled.
    differential("executed_instr_count");
}

#[test]
fn wide_instr_count_is_plan_invariant() {
    // Same, through the register-hungry `nvbit_count_wide` body. Under the
    // fifth configuration the pressure verdict declines some splices; the
    // declined-splice fallback (an out-of-line call) must be bit-identical
    // to the unconditional-inline run in both guest memory and tool output.
    // The sixth configuration re-accepts the occupancy-flat subset of those
    // declines, which must be equally invisible.
    differential("wide_instr_count");
}

#[test]
fn mem_trace_is_plan_invariant() {
    // MemTrace's sites are not coalesce-marked (their address argument is
    // per-dynamic-instance), so the passes must leave its behaviour — and
    // output — untouched even when globally enabled.
    differential("mem_trace");
}

#[test]
fn optimized_plans_are_cheaper_on_every_workload() {
    for (app_name, app) in APPS {
        let (_, _, naive) = run_case("coalesced_instr_count", CONFIGS[0], app);
        let (_, _, merged) = run_case("coalesced_instr_count", CONFIGS[1], app);
        let (_, _, inlined) = run_case("coalesced_instr_count", CONFIGS[2], app);
        assert!(merged < naive, "{app_name}: coalescing should cut cycles: {merged} vs {naive}");
        assert!(
            inlined <= merged,
            "{app_name}: inlining must not add cycles: {inlined} vs {merged}"
        );
    }
}

/// Captures the planner's and the save policy's accounting at launch exit.
struct StatsCapture<T> {
    inner: T,
    stats: Rc<RefCell<Option<PlanStats>>>,
    saves: Rc<RefCell<Option<SaveStats>>>,
}

impl<T: NvbitTool> NvbitTool for StatsCapture<T> {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
        if is_exit && cbid == CbId::LaunchKernel {
            if let CbParams::LaunchKernel { func, .. } = params {
                let func: CuFunction = *func;
                if let Ok(Some(s)) = api.plan_stats(func) {
                    *self.stats.borrow_mut() = Some(s);
                }
                if let Ok(Some(s)) = api.save_stats(func) {
                    *self.saves.borrow_mut() = Some(s);
                }
            }
        }
    }
}

fn captured_with(mk: impl FnOnce() -> CoalescedInstrCount, app: App) -> (PlanStats, SaveStats) {
    let stats = Rc::new(RefCell::new(None));
    let saves = Rc::new(RefCell::new(None));
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    attach_tool(&drv, StatsCapture { inner: mk(), stats: stats.clone(), saves: saves.clone() });
    app(&drv);
    drv.shutdown();
    let p = stats.borrow_mut().take().expect("the kernel was instrumented");
    let s = saves.borrow_mut().take().expect("the instrumented image exists");
    (p, s)
}

fn captured_stats_with(opts: PlanOpts, after: bool, app: App) -> PlanStats {
    let mk = move || {
        let (tool, _results) =
            if after { CoalescedInstrCount::after(opts) } else { CoalescedInstrCount::new(opts) };
        tool
    };
    captured_with(mk, app).0
}

fn captured_stats(opts: PlanOpts) -> PlanStats {
    captured_stats_with(opts, false, fft_app)
}

#[test]
fn the_passes_actually_fire_on_the_fft_kernel() {
    let naive = captured_stats(CONFIGS[0]);
    assert_eq!(naive.emitted_calls, naive.requested_calls);
    assert_eq!(naive.coalesced_away, 0);
    assert_eq!(naive.inlined_calls, 0);

    let merged = captured_stats(CONFIGS[1]);
    assert!(merged.cfg_available, "the FFT kernel has a static CFG");
    assert!(merged.coalesced_groups > 0, "{merged:?}");
    assert!(merged.coalesced_away > 0, "{merged:?}");
    assert_eq!(merged.emitted_calls, merged.requested_calls - merged.coalesced_away);

    let inlined = captured_stats(CONFIGS[2]);
    assert_eq!(inlined.coalesced_away, merged.coalesced_away);
    assert_eq!(
        inlined.inlined_calls, inlined.emitted_calls,
        "the counting body is an inlinable leaf, so every emitted call inlines"
    );

    // The FFT kernel is one straight-line basic block, so the region pass
    // has nothing left to hoist there; spmv's loops leave control- and
    // cycle-equivalent blocks (setup, post-loop store) that only the
    // region pass can merge.
    let spmv_merged = captured_stats_with(CONFIGS[1], false, spmv_app);
    let spmv_full = captured_stats_with(CONFIGS[3], false, spmv_app);
    assert!(spmv_full.region_groups > 0, "{spmv_full:?}");
    assert!(
        spmv_full.emitted_calls < spmv_merged.emitted_calls,
        "region coalescing must merge beyond per-block groups: {spmv_full:?} vs {spmv_merged:?}"
    );

    let after = captured_stats_with(CONFIGS[3], true, fft_app);
    assert!(after.after_lowered > 0, "{after:?}");
    assert!(after.coalesced_groups > 0, "lowered calls participate in merging: {after:?}");
}

#[test]
fn guarded_diamond_bodies_are_spliced() {
    // `nvbit_count_pmult` is a single guarded diamond — past the straight
    // leaf threshold, but accepted by the body classifier — so every
    // emitted call still inlines, with or without the cost model.
    for opts in [CONFIGS[2], CONFIGS[4]] {
        let (p, _) = captured_with(move || CoalescedInstrCount::executed(opts).0, fft_app);
        assert!(p.emitted_calls > 0, "{p:?}");
        assert_eq!(
            p.inlined_calls, p.emitted_calls,
            "the guarded-diamond body must inline at every site: {p:?}"
        );
    }
}

#[test]
fn pressure_declines_wide_splices_the_old_policy_took() {
    // The register-hungry `nvbit_count_wide` body writes past the first
    // save tier. The unconditional policy (CONFIGS[3]) splices it at every
    // site and the save policy must then charge the whole function's
    // ceiling everywhere; with the cost model on (CONFIGS[4]) the sites
    // whose live set crosses into the body's write window keep the
    // out-of-line call and everything else inlines at its liveness tier.
    // fft is one straight-line block: everything coalesces into a single
    // call whose site sits where the kernel's live set peaks, so the one
    // verdict declines. spmv's loops leave several emitted calls with a
    // mix of verdicts.
    for (app_name, app, expect_accepts) in
        [("fft", fft_app as App, false), ("spmv", spmv_app as App, true)]
    {
        let (unvetted, saves_unvetted) =
            captured_with(move || CoalescedInstrCount::executed_wide(CONFIGS[3]).0, app);
        let (vetted, saves_vetted) =
            captured_with(move || CoalescedInstrCount::executed_wide(CONFIGS[4]).0, app);

        assert_eq!(unvetted.inline_declined, 0, "{app_name}: no verdicts without the cost model");
        assert!(vetted.inline_declined >= 1, "{app_name}: a decline must fire: {vetted:?}");
        if expect_accepts {
            assert!(vetted.inline_accepted >= 1, "{app_name}: some sites inline: {vetted:?}");
        }
        assert_eq!(
            vetted.inline_accepted + vetted.inline_declined,
            vetted.emitted_calls,
            "{app_name}: every emitted call gets a verdict: {vetted:?}"
        );
        assert_eq!(vetted.inlined_calls, vetted.inline_accepted, "{app_name}: {vetted:?}");
        assert!(
            vetted.inlined_calls < unvetted.inlined_calls,
            "{app_name}: the cost model must decline a splice the unconditional policy took"
        );
        assert!(
            saves_vetted.saved_slots < saves_unvetted.saved_slots,
            "{app_name}: declining pressure-raising splices must shrink the save footprint: \
             {saves_vetted:?} vs {saves_unvetted:?}"
        );
    }

    // Stencil's live ranges never reach the wide body's write window, so
    // the verdict accepts everywhere and nothing is left out of line.
    let (p, _) = captured_with(|| CoalescedInstrCount::executed_wide(CONFIGS[4]).0, stencil_app);
    assert_eq!(p.inline_declined, 0, "stencil: no live register crosses a tier: {p:?}");
    assert_eq!(p.inlined_calls, p.emitted_calls, "{p:?}");
}

#[test]
fn the_occupancy_curve_reprices_tier_declines() {
    // Every splice the tier-only gate declines on the fft workload is a
    // 16→32 save-tier raise, and on a Volta SM at 128-thread blocks the
    // 16→32 step is occupancy-flat (16 blocks either way). Pricing against
    // the curve (CONFIGS[5]) must therefore accept what the tier gate
    // (CONFIGS[4]) declined — more inlined calls, fewer declines — while
    // the differential above proves the output cannot tell.
    let (tier_only, _) =
        captured_with(|| CoalescedInstrCount::executed_wide(CONFIGS[4]).0, fft_app);
    let (curved, _) = captured_with(|| CoalescedInstrCount::executed_wide(CONFIGS[5]).0, fft_app);

    assert!(tier_only.inline_declined >= 1, "{tier_only:?}");
    assert_eq!(
        tier_only.occ_accepted + tier_only.occ_declined,
        0,
        "no occupancy verdicts without a model: {tier_only:?}"
    );
    assert!(curved.occ_accepted >= 1, "the curve must re-accept a decline: {curved:?}");
    assert!(curved.inline_declined < tier_only.inline_declined, "{curved:?} vs {tier_only:?}");
    assert!(curved.inlined_calls > tier_only.inlined_calls, "{curved:?} vs {tier_only:?}");
    assert_eq!(
        curved.inline_accepted + curved.inline_declined,
        curved.emitted_calls,
        "every emitted call still gets a verdict: {curved:?}"
    );
}
