//! The `verify_all` CI gate: every bundled tool instruments every workload
//! kernel, and the pre-swap static verifier must accept every generated
//! image with zero diagnostics (paper §5.1 — a bad image corrupts the
//! *application*, so the verifier is the last line of defense against
//! codegen bugs).
//!
//! The full sweep is heavy and runs in release under `ci.sh` (the debug
//! `cargo test` run covers a single-workload slice).

use cuda::{CbId, CbParams, Driver};
use gpu::{DeviceSpec, Dim3};
use nvbit::{attach_tool, NvbitApi, NvbitTool};
use nvbit_tools::{
    BbInstrCount, InstrCount, MemDivergence, MemTrace, OpcodeHistogram, SamplingMode,
};
use sass::Arch;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::specaccel::{self, Size};

/// Wraps a tool and re-verifies every instrumented function (the launched
/// kernel and its related functions) at every launch exit.
struct VerifyEverything<T> {
    inner: T,
    verified: Rc<RefCell<usize>>,
}

impl<T: NvbitTool> NvbitTool for VerifyEverything<T> {
    fn at_init(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_init(api);
    }
    fn at_term(&mut self, api: &NvbitApi<'_>) {
        self.inner.at_term(api);
    }
    fn at_cuda_event(
        &mut self,
        api: &NvbitApi<'_>,
        is_exit: bool,
        cbid: CbId,
        params: &CbParams<'_>,
    ) {
        self.inner.at_cuda_event(api, is_exit, cbid, params);
        if !is_exit || cbid != CbId::LaunchKernel {
            return;
        }
        let CbParams::LaunchKernel { func, .. } = params else { return };
        let mut targets = vec![*func];
        targets.extend(api.get_related_funcs(*func).unwrap_or_default());
        for target in targets {
            if !api.is_instrumented(target) {
                continue;
            }
            let name = api.get_func_name(target).unwrap_or_default();
            let diags = api.verify_instrumented(target).unwrap();
            assert!(diags.is_empty(), "verifier rejected `{name}`: {:?}", diags);
            *self.verified.borrow_mut() += 1;
        }
    }
}

const TOOLS: [&str; 5] =
    ["instr_count", "bb_instr_count", "opcode_hist", "mem_trace", "mem_divergence"];

/// Runs `app` under the named tool with the verifying wrapper; returns how
/// many instrumented images the verifier accepted.
fn run_verified(tool: &str, app: &dyn Fn(&Driver)) -> usize {
    let drv = Driver::new(DeviceSpec::test(Arch::Volta));
    let verified = Rc::new(RefCell::new(0usize));
    match tool {
        "instr_count" => {
            let (t, _r) = InstrCount::new();
            attach_tool(&drv, VerifyEverything { inner: t, verified: verified.clone() });
        }
        "bb_instr_count" => {
            let (t, _r) = BbInstrCount::new();
            attach_tool(&drv, VerifyEverything { inner: t, verified: verified.clone() });
        }
        "opcode_hist" => {
            let (t, _r) = OpcodeHistogram::new(SamplingMode::Full);
            attach_tool(&drv, VerifyEverything { inner: t, verified: verified.clone() });
        }
        "mem_trace" => {
            let (t, _r) = MemTrace::new(1024);
            attach_tool(&drv, VerifyEverything { inner: t, verified: verified.clone() });
        }
        "mem_divergence" => {
            let (t, _r) = MemDivergence::new(true);
            attach_tool(&drv, VerifyEverything { inner: t, verified: verified.clone() });
        }
        other => unreachable!("unknown tool {other}"),
    }
    app(&drv);
    drv.shutdown();
    let n = *verified.borrow();
    n
}

#[test]
fn every_tool_verifies_on_the_fft_pipeline() {
    let app = |drv: &Driver| {
        let ctx = drv.ctx_create().unwrap();
        let src = workloads::fft::soft_fft_kernel_ptx();
        let m = drv.module_load(&ctx, cuda::FatBinary::from_ptx("fft", src)).unwrap();
        let f = drv.module_get_function(&m, "fft32_soft").unwrap();
        let din = drv.mem_alloc(32 * 8).unwrap();
        let dout = drv.mem_alloc(32 * 8).unwrap();
        drv.launch_kernel(
            &f,
            Dim3::linear(1),
            Dim3::linear(32),
            &[cuda::KernelArg::Ptr(din), cuda::KernelArg::Ptr(dout)],
        )
        .unwrap();
    };
    for tool in TOOLS {
        let verified = run_verified(tool, &app);
        assert!(verified > 0, "{tool} instrumented nothing on the fft pipeline");
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; ci.sh runs this in release as the verify_all gate")]
fn every_tool_verifies_on_every_specaccel_benchmark() {
    for tool in TOOLS {
        for bench in specaccel::suite() {
            let verified = run_verified(tool, &|drv: &Driver| {
                bench.run(drv, Size::Small).unwrap();
            });
            assert!(verified > 0, "{tool} instrumented nothing on {}", bench.name);
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; ci.sh runs this in release as the verify_all gate")]
fn every_tool_verifies_on_every_ml_model() {
    for tool in TOOLS {
        for model in workloads::ml_models() {
            let verified = run_verified(tool, &|drv: &Driver| {
                model.run(drv).unwrap();
            });
            assert!(verified > 0, "{tool} instrumented nothing on {}", model.name);
        }
    }
}
