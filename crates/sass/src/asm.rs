//! Textual assembler and disassembler.
//!
//! The text format is exactly what [`Instruction`]'s `Display` prints, plus
//! comments (`//` to end of line), blank lines, and optional labels for
//! PC-relative operands:
//!
//! ```text
//! // saves two registers to the local stack
//! top:
//!     STL [R1+0x0], R4 ;
//!     STL [R1+0x4], R5 ;
//!     ISETP.NE.S32 P0, R4, RZ ;
//! @P0 BRA top ;
//!     RET ;
//! ```
//!
//! Labels resolve to **byte** offsets and therefore depend on the target
//! architecture's instruction size; use [`assemble_arch`] for labelled text.
//! Label-free text (including raw `.+0x10` relative operands) assembles with
//! [`assemble`] on any architecture.

use crate::arch::Arch;
use crate::inst::{Guard, Instruction, Mods, Operand, Width};
use crate::op::{CmpOp, IType, Op, SubOp};
use crate::reg::{Pred, Reg, SpecialReg};
use crate::{Result, SassError};
use std::collections::HashMap;

/// Assembles label-free text into instructions.
///
/// # Errors
///
/// Returns [`SassError::Parse`] on malformed text, including any use of
/// labels (which require [`assemble_arch`]).
pub fn assemble(text: &str) -> Result<Vec<Instruction>> {
    let (instrs, labels, refs) = parse(text)?;
    if let Some((name, line)) = labels.iter().map(|(n, l)| (n.clone(), l.line)).next() {
        return Err(SassError::Parse {
            line,
            reason: format!(
                "label `{name}` requires assemble_arch (byte offsets depend on the architecture)"
            ),
        });
    }
    if let Some(r) = refs.first() {
        return Err(SassError::Parse {
            line: r.line,
            reason: format!("label reference `{}` requires assemble_arch", r.name),
        });
    }
    Ok(instrs)
}

/// Assembles text (possibly with labels) for a specific architecture,
/// resolving labels to byte offsets using that architecture's instruction
/// size.
///
/// # Errors
///
/// Returns [`SassError::Parse`] on malformed text or unresolved labels.
pub fn assemble_arch(text: &str, arch: Arch) -> Result<Vec<Instruction>> {
    let (mut instrs, labels, refs) = parse(text)?;
    let isize = arch.instruction_size() as i64;
    for r in refs {
        let def = labels.get(&r.name).ok_or_else(|| SassError::Parse {
            line: r.line,
            reason: format!("undefined label `{}`", r.name),
        })?;
        let offset = (def.index as i64 - (r.index as i64 + 1)) * isize;
        instrs[r.index].set_rel_target(offset);
    }
    Ok(instrs)
}

/// Disassembles instructions into assembly text, one per line.
pub fn disassemble(instrs: &[Instruction]) -> String {
    let mut out = String::new();
    for i in instrs {
        out.push_str(&i.to_string());
        out.push('\n');
    }
    out
}

/// Disassembles instructions as an addressed listing starting at `base`,
/// annotating resolved PC-relative targets.
pub fn disassemble_listing(instrs: &[Instruction], base: u64, arch: Arch) -> String {
    let isize = arch.instruction_size() as u64;
    let mut out = String::new();
    for (idx, i) in instrs.iter().enumerate() {
        let pc = base + idx as u64 * isize;
        out.push_str(&format!("/*{pc:06x}*/  {i}"));
        if let Some(off) = i.rel_target() {
            let target = (pc + isize).wrapping_add(off as u64);
            out.push_str(&format!("   // -> 0x{target:x}"));
        }
        out.push('\n');
    }
    out
}

#[derive(Debug, Clone)]
struct LabelDef {
    index: usize,
    line: usize,
}

#[derive(Debug, Clone)]
struct LabelRef {
    name: String,
    /// Instruction index whose relative operand the label resolves.
    index: usize,
    line: usize,
}

type Parsed = (Vec<Instruction>, HashMap<String, LabelDef>, Vec<LabelRef>);

fn parse(text: &str) -> Result<Parsed> {
    let mut instrs = Vec::new();
    let mut labels: HashMap<String, LabelDef> = HashMap::new();
    let mut refs = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut src = raw;
        if let Some(pos) = src.find("//") {
            src = &src[..pos];
        }
        let mut src = src.trim();
        if src.is_empty() {
            continue;
        }

        // Leading labels (possibly several on one line).
        while let Some(colon) = find_label_colon(src) {
            let name = src[..colon].trim();
            if !is_ident(name) {
                return Err(SassError::Parse {
                    line,
                    reason: format!("invalid label name `{name}`"),
                });
            }
            if labels.insert(name.to_string(), LabelDef { index: instrs.len(), line }).is_some() {
                return Err(SassError::Parse { line, reason: format!("duplicate label `{name}`") });
            }
            src = src[colon + 1..].trim();
        }
        if src.is_empty() {
            continue;
        }

        let (instr, label_ref) = parse_instruction(src, line)?;
        if let Some(name) = label_ref {
            refs.push(LabelRef { name, index: instrs.len(), line });
        }
        instrs.push(instr);
    }
    Ok((instrs, labels, refs))
}

/// Finds the colon of a leading `label:` if present (not inside operands —
/// a label must precede the mnemonic, so the colon must come before any
/// space-separated token that is not an identifier).
fn find_label_colon(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if is_ident(head.trim()) && !head.trim().is_empty() {
        Some(colon)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$')
}

/// Parses one instruction statement; returns the instruction and, if its
/// relative operand was a label name, that name (the operand is left 0).
fn parse_instruction(src: &str, line: usize) -> Result<(Instruction, Option<String>)> {
    let perr = |reason: String| SassError::Parse { line, reason };

    let src = src.trim();
    let body = src.strip_suffix(';').ok_or_else(|| perr("missing terminating `;`".into()))?.trim();

    // Guard.
    let (guard, rest) = if let Some(stripped) = body.strip_prefix('@') {
        let (g, r) = stripped
            .split_once(char::is_whitespace)
            .ok_or_else(|| perr("guard must be followed by a mnemonic".into()))?;
        let (negated, pname) =
            if let Some(p) = g.strip_prefix('!') { (true, p) } else { (false, g) };
        let pred = parse_pred_name(pname).ok_or_else(|| perr(format!("bad guard `{g}`")))?;
        (Guard { pred, negated }, r.trim())
    } else {
        (Guard::ALWAYS, body)
    };

    // Mnemonic and modifier suffixes.
    let (mn_full, opnds_str) = match rest.split_once(char::is_whitespace) {
        Some((m, o)) => (m, o.trim()),
        None => (rest, ""),
    };
    let mut parts = mn_full.split('.');
    let base = parts.next().unwrap_or_default();
    let op = Op::from_mnemonic(base).ok_or_else(|| perr(format!("unknown mnemonic `{base}`")))?;
    let mut mods = Mods::default();
    for suf in parts {
        if let Some(s) = SubOp::from_suffix(suf) {
            mods.sub = s;
        } else if let Some(c) = CmpOp::from_suffix(suf) {
            mods.cmp = c;
        } else if let Some(t) = IType::from_suffix(suf) {
            mods.itype = t;
        } else if suf == "64" {
            mods.width = Width::B64;
        } else if suf == "128" {
            mods.width = Width::B128;
        } else {
            return Err(perr(format!("unknown modifier `.{suf}` on `{base}`")));
        }
    }

    // Operands.
    let mut operands = Vec::new();
    let mut label_ref = None;
    if !opnds_str.is_empty() {
        for tok in split_operands(opnds_str) {
            let tok = tok.trim();
            if tok.is_empty() {
                return Err(perr("empty operand".into()));
            }
            match parse_operand(tok) {
                Some(o) => operands.push(o),
                None if is_ident(tok) => {
                    // A bare identifier is a label reference for a Rel slot.
                    if label_ref.is_some() {
                        return Err(perr("multiple label operands".into()));
                    }
                    label_ref = Some(tok.to_string());
                    operands.push(Operand::Rel(0));
                }
                None => return Err(perr(format!("cannot parse operand `{tok}`"))),
            }
        }
    }

    let instr = Instruction { guard, op, mods, operands };
    instr.validate().map_err(|e| perr(e.to_string()))?;
    Ok((instr, label_ref))
}

/// Splits an operand list on commas that are not inside brackets.
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

fn parse_pred_name(s: &str) -> Option<Pred> {
    if s == "PT" {
        return Some(Pred::PT);
    }
    let n: u8 = s.strip_prefix('P')?.parse().ok()?;
    (n < 7).then_some(Pred(n))
}

fn parse_reg_name(s: &str) -> Option<Reg> {
    if s == "RZ" {
        return Some(Reg::RZ);
    }
    let n: u8 = s.strip_prefix('R')?.parse().ok()?;
    (n < 255).then_some(Reg(n))
}

fn parse_int(s: &str) -> Option<i64> {
    let (neg, t) = if let Some(t) = s.strip_prefix('-') { (true, t) } else { (false, s) };
    let v = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_operand(tok: &str) -> Option<Operand> {
    // Memory reference `[Rb]`, `[Rb+0x..]`, `[Rb-0x..]`.
    if let Some(inner) = tok.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let (base_s, off) = if let Some(p) = inner.find('+') {
            (&inner[..p], parse_int(&inner[p + 1..])?)
        } else if let Some(p) = inner[1..].find('-') {
            (&inner[..p + 1], -parse_int(&inner[p + 2..])?)
        } else {
            (inner, 0)
        };
        let base = parse_reg_name(base_s.trim())?;
        return Some(Operand::MRef { base, offset: i32::try_from(off).ok()? });
    }
    // Constant bank `c[0x0][0x160]` / `c[0x0][R4+0x160]`.
    if let Some(rest) = tok.strip_prefix("c[") {
        let close = rest.find(']')?;
        let bank = parse_int(&rest[..close])? as u8;
        let idx = rest[close + 1..].strip_prefix('[')?.strip_suffix(']')?;
        let (base, offset) = if let Some(p) = idx.find('+') {
            (parse_reg_name(&idx[..p])?, parse_int(&idx[p + 1..])?)
        } else if idx.starts_with('R') {
            (parse_reg_name(idx)?, 0)
        } else {
            (Reg::RZ, parse_int(idx)?)
        };
        return Some(Operand::CBank { bank, base, offset: u16::try_from(offset).ok()? });
    }
    // Relative `.+0x10` / `.-0x10`.
    if let Some(r) = tok.strip_prefix('.') {
        if let Some(v) = r.strip_prefix('+').and_then(parse_int) {
            return Some(Operand::Rel(v));
        }
        if let Some(v) = r.strip_prefix('-').and_then(parse_int) {
            return Some(Operand::Rel(-v));
        }
        return None;
    }
    // Absolute address `` `0x1000 ``.
    if let Some(a) = tok.strip_prefix('`') {
        return Some(Operand::Abs(parse_int(a)? as u64));
    }
    // Special register.
    if tok.starts_with("SR_") {
        return SpecialReg::from_mnemonic(tok).map(Operand::SReg);
    }
    // Negated predicate source.
    if let Some(p) = tok.strip_prefix('!') {
        return parse_pred_name(p).map(|pred| Operand::Pred { pred, negated: true });
    }
    if tok == "PT" || (tok.starts_with('P') && tok[1..].chars().all(|c| c.is_ascii_digit())) {
        return parse_pred_name(tok).map(Operand::pred);
    }
    if tok == "RZ" || (tok.starts_with('R') && tok[1..].chars().all(|c| c.is_ascii_digit())) {
        return parse_reg_name(tok).map(Operand::Reg);
    }
    parse_int(tok).map(Operand::Imm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::codec_for;

    #[test]
    fn assemble_disassemble_roundtrip() {
        let text = "\
MOV32I R0, 0x2a ;
@!P1 IADD R4, R5, -0x10 ;
LDG.64 R2, [R6+0x100] ;
ISETP.LT.S32 P1, R3, R4 ;
ATOM.ADD.F32 R0, [R2+0x40], R4, RZ ;
LDC R4, c[0x0][0x160] ;
S2R R0, SR_TID.X ;
BRA .+0x10 ;
JMP `0x4000 ;
SEL R1, R2, 0x7, !P0 ;
EXIT ;
";
        let prog = assemble(text).unwrap();
        assert_eq!(prog.len(), 11);
        let round = assemble(&disassemble(&prog)).unwrap();
        assert_eq!(prog, round);
    }

    #[test]
    fn labels_resolve_per_architecture() {
        let text = "\
start:
    ISETP.NE.S32 P0, R4, RZ ;
@P0 BRA start ;
    BRA done ;
    NOP ;
done:
    RET ;
";
        let k = assemble_arch(text, Arch::Kepler).unwrap();
        let v = assemble_arch(text, Arch::Volta).unwrap();
        // Backward branch to `start`: two instructions back from the BRA's
        // successor, scaled by instruction size.
        assert_eq!(k[1].rel_target(), Some(-16));
        assert_eq!(v[1].rel_target(), Some(-32));
        // Forward branch to `done`: skips one instruction.
        assert_eq!(k[2].rel_target(), Some(8));
        assert_eq!(v[2].rel_target(), Some(16));
    }

    #[test]
    fn labels_rejected_without_arch() {
        let text = "x:\n BRA x ;\n";
        assert!(matches!(assemble(text), Err(SassError::Parse { .. })));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "NOP ;\nFROB R1 ;\n";
        match assemble(text) {
            Err(SassError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "// header\n\n  NOP ; // trailing\n";
        assert_eq!(assemble(text).unwrap().len(), 1);
    }

    #[test]
    fn assembled_text_encodes_on_both_families() {
        let text = "\
MOV R0, R1 ;
IADD R2, R3, 0xff ;
STG [R4+0x8], R2 ;
RET ;
";
        let prog = assemble(text).unwrap();
        for arch in Arch::ALL {
            let codec = codec_for(arch);
            let bytes = codec.encode_stream(&prog).unwrap();
            assert_eq!(codec.decode_stream(&bytes).unwrap(), prog);
        }
    }

    #[test]
    fn listing_annotates_targets() {
        let prog = assemble("BRA .+0x8 ;\nNOP ;\nEXIT ;").unwrap();
        let listing = disassemble_listing(&prog, 0x1000, Arch::Kepler);
        assert!(listing.contains("/*001000*/"), "{listing}");
        assert!(listing.contains("-> 0x1010"), "{listing}");
    }
}
