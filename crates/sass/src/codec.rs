//! Binary instruction encoders/decoders for the two encoding families.
//!
//! Both families lay an instruction out as, from the least significant bit:
//!
//! ```text
//! | opcode | guard (4) | mods (12 or 16) | payload |
//! ```
//!
//! The payload is a sequential bit-stream of the operand fields in format
//! order. Register fields are 8 bits, predicate fields 4 bits (register +
//! negate). Immediate fields are **dynamically sized**: an immediate receives
//! every payload bit not claimed by the other fields of the format, capped at
//! 32 bits. This means the same opcode can carry a wider immediate on
//! `Enc128` than on `Enc64` — exactly the kind of per-family difference
//! NVBit's HAL exists to hide. Encoding a value that does not fit the
//! family's field yields [`SassError::FieldRange`]; code generators must
//! legalize (e.g. `MOV32I` + register operand).

use crate::arch::{Arch, EncodingFamily};
use crate::inst::{Guard, Instruction, Mods, Operand, Width};
use crate::op::{CmpOp, IType, OKind, Op, SubOp};
use crate::reg::{Pred, Reg, SpecialReg};
use crate::{Result, SassError};

/// Field-width parameters distinguishing the two encoding families.
#[derive(Debug, Clone, Copy)]
struct Params {
    #[allow(dead_code)]
    family: EncodingFamily,
    /// Total instruction size in bytes.
    size: usize,
    /// Bits of the opcode field.
    op_bits: u32,
    /// Bits of the modifier field (includes the barrier slot on `Enc128`).
    mods_bits: u32,
    /// Bits available to the operand payload.
    payload_bits: u32,
    /// Bits of a PC-relative target field (signed).
    rel_bits: u32,
    /// Bits of an absolute address field (unsigned).
    abs_bits: u32,
    /// Bits of a load/store base offset field (signed).
    mref_off_bits: u32,
    /// Bits of an atomic base offset field (signed).
    atom_off_bits: u32,
}

const ENC64: Params = Params {
    family: EncodingFamily::Enc64,
    size: 8,
    op_bits: 8,
    mods_bits: 12,
    payload_bits: 40,
    rel_bits: 32,
    abs_bits: 40,
    mref_off_bits: 20,
    atom_off_bits: 8,
};

const ENC128: Params = Params {
    family: EncodingFamily::Enc128,
    size: 16,
    op_bits: 12,
    mods_bits: 16,
    payload_bits: 96,
    rel_bits: 48,
    abs_bits: 48,
    mref_off_bits: 32,
    atom_off_bits: 16,
};

/// A binary encoder/decoder for one encoding family.
///
/// Implementations are zero-sized; obtain one with [`codec_for`].
pub trait Codec: Send + Sync {
    /// The family this codec implements.
    fn family(&self) -> EncodingFamily;

    /// Size in bytes of every encoded instruction.
    fn instruction_size(&self) -> usize;

    /// Encodes one instruction into exactly [`Codec::instruction_size`] bytes.
    ///
    /// # Errors
    ///
    /// [`SassError::BadOperands`] if the operand list violates the opcode's
    /// format, [`SassError::FieldRange`] if a field value does not fit.
    fn encode(&self, instr: &Instruction) -> Result<Vec<u8>>;

    /// Decodes one instruction from exactly [`Codec::instruction_size`] bytes.
    ///
    /// # Errors
    ///
    /// [`SassError::BadEncoding`] on invalid field values or wrong length.
    fn decode(&self, bytes: &[u8]) -> Result<Instruction>;

    /// Encodes a sequence of instructions into a contiguous stream.
    ///
    /// # Errors
    ///
    /// Propagates the first per-instruction failure.
    fn encode_stream(&self, instrs: &[Instruction]) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(instrs.len() * self.instruction_size());
        for i in instrs {
            out.extend_from_slice(&self.encode(i)?);
        }
        Ok(out)
    }

    /// Decodes a contiguous stream of instructions.
    ///
    /// # Errors
    ///
    /// [`SassError::TruncatedStream`] if the length is not a multiple of the
    /// instruction size; otherwise the first per-instruction failure.
    fn decode_stream(&self, bytes: &[u8]) -> Result<Vec<Instruction>> {
        let sz = self.instruction_size();
        if !bytes.len().is_multiple_of(sz) {
            return Err(SassError::TruncatedStream { len: bytes.len(), instr_size: sz });
        }
        bytes.chunks_exact(sz).map(|c| self.decode(c)).collect()
    }
}

/// The 64-bit (8-byte) encoding used by Kepler/Maxwell/Pascal-class devices.
#[derive(Debug, Clone, Copy, Default)]
pub struct Enc64;

/// The 128-bit (16-byte) encoding used by Volta-class devices.
#[derive(Debug, Clone, Copy, Default)]
pub struct Enc128;

impl Codec for Enc64 {
    fn family(&self) -> EncodingFamily {
        EncodingFamily::Enc64
    }
    fn instruction_size(&self) -> usize {
        ENC64.size
    }
    fn encode(&self, instr: &Instruction) -> Result<Vec<u8>> {
        let word = encode_with(&ENC64, instr)?;
        Ok((word as u64).to_le_bytes().to_vec())
    }
    fn decode(&self, bytes: &[u8]) -> Result<Instruction> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| SassError::BadEncoding {
            offset: 0,
            reason: format!("expected 8 bytes, got {}", bytes.len()),
        })?;
        decode_with(&ENC64, u64::from_le_bytes(arr) as u128)
    }
}

impl Codec for Enc128 {
    fn family(&self) -> EncodingFamily {
        EncodingFamily::Enc128
    }
    fn instruction_size(&self) -> usize {
        ENC128.size
    }
    fn encode(&self, instr: &Instruction) -> Result<Vec<u8>> {
        let word = encode_with(&ENC128, instr)?;
        Ok(word.to_le_bytes().to_vec())
    }
    fn decode(&self, bytes: &[u8]) -> Result<Instruction> {
        let arr: [u8; 16] = bytes.try_into().map_err(|_| SassError::BadEncoding {
            offset: 0,
            reason: format!("expected 16 bytes, got {}", bytes.len()),
        })?;
        decode_with(&ENC128, u128::from_le_bytes(arr))
    }
}

static ENC64_CODEC: Enc64 = Enc64;
static ENC128_CODEC: Enc128 = Enc128;

/// Returns the codec for an architecture's encoding family.
pub fn codec_for(arch: Arch) -> &'static dyn Codec {
    match arch.family() {
        EncodingFamily::Enc64 => &ENC64_CODEC,
        EncodingFamily::Enc128 => &ENC128_CODEC,
    }
}

/// Sequential bit writer over a `u128` word.
struct BitWriter {
    word: u128,
    pos: u32,
}

impl BitWriter {
    fn new() -> BitWriter {
        BitWriter { word: 0, pos: 0 }
    }

    fn put(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 64);
        debug_assert!(bits == 64 || value < (1u64 << bits));
        self.word |= (value as u128) << self.pos;
        self.pos += bits;
    }

    /// Writes a signed value in `bits` two's-complement bits.
    fn put_signed(&mut self, value: i64, bits: u32) {
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        self.put((value as u64) & mask, bits);
    }
}

/// Sequential bit reader over a `u128` word.
struct BitReader {
    word: u128,
    pos: u32,
}

impl BitReader {
    fn new(word: u128) -> BitReader {
        BitReader { word, pos: 0 }
    }

    fn get(&mut self, bits: u32) -> u64 {
        let mask = if bits >= 64 { u64::MAX as u128 } else { (1u128 << bits) - 1 };
        let v = ((self.word >> self.pos) & mask) as u64;
        self.pos += bits;
        v
    }

    /// Reads a signed two's-complement value of `bits` bits.
    fn get_signed(&mut self, bits: u32) -> i64 {
        let raw = self.get(bits);
        let shift = 64 - bits;
        ((raw << shift) as i64) >> shift
    }
}

fn signed_fits(v: i64, bits: u32) -> bool {
    if bits >= 64 {
        return true;
    }
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn unsigned_fits(v: u64, bits: u32) -> bool {
    bits >= 64 || v < (1u64 << bits)
}

/// Static payload bits of one operand slot (immediates return `None`: they
/// are sized dynamically from the remaining budget).
fn static_bits(p: &Params, kind: OKind) -> Option<u32> {
    match kind {
        OKind::RegW | OKind::RegR | OKind::SReg => Some(8),
        OKind::PredW | OKind::PredR => Some(4),
        OKind::MRef => Some(8 + p.mref_off_bits),
        OKind::MRefAtom => Some(8 + p.atom_off_bits),
        OKind::CBankRef => Some(2 + 8 + 16),
        OKind::Rel => Some(p.rel_bits),
        OKind::Abs => Some(p.abs_bits),
        OKind::RegRI | OKind::Imm32 => None,
    }
}

/// Width of the immediate field at `idx` in the format: all the payload bits
/// not consumed by other fields (plus the 1-bit kind flag for `RegRI`),
/// capped at 32.
fn imm_bits(p: &Params, fmt: &[OKind], idx: usize) -> u32 {
    let mut used = 0u32;
    for (i, k) in fmt.iter().enumerate() {
        if i == idx {
            if *k == OKind::RegRI {
                used += 1; // kind flag
            }
            continue;
        }
        // A format never contains two dynamically-sized operands.
        used += static_bits(p, *k).expect("only one immediate per format");
    }
    (p.payload_bits - used).min(32)
}

fn encode_with(p: &Params, instr: &Instruction) -> Result<u128> {
    instr.validate()?;
    let range = |field: &'static str| SassError::FieldRange { instr: instr.to_string(), field };

    let mut w = BitWriter::new();
    w.put(instr.op.index() as u64, p.op_bits);
    w.put(instr.guard.pred.0 as u64, 3);
    w.put(instr.guard.negated as u64, 1);

    // Modifier field.
    w.put(instr.mods.width as u64, 2);
    w.put(instr.mods.itype as u64, 2);
    w.put(instr.mods.cmp as u64, 3);
    w.put(instr.mods.sub as u64, 5);
    if p.mods_bits > 12 {
        if instr.mods.barrier >= 16 {
            return Err(range("barrier"));
        }
        w.put(instr.mods.barrier as u64, p.mods_bits - 12);
    } else if instr.mods.barrier != 0 {
        return Err(range("barrier (not encodable on Enc64)"));
    }

    let fmt = instr.op.format();
    for (i, (kind, opnd)) in fmt.iter().zip(&instr.operands).enumerate() {
        match (kind, opnd) {
            (OKind::RegW | OKind::RegR, Operand::Reg(r)) => w.put(r.0 as u64, 8),
            (OKind::SReg, Operand::SReg(sr)) => w.put(*sr as u64, 8),
            (OKind::PredW | OKind::PredR, Operand::Pred { pred, negated }) => {
                w.put(pred.0 as u64, 3);
                w.put(*negated as u64, 1);
            }
            (OKind::RegRI, Operand::Reg(r)) => {
                w.put(0, 1);
                w.put(r.0 as u64, 8);
                // Pad so the slot occupies a fixed width for this format.
                let pad = imm_bits(p, fmt, i).saturating_sub(8);
                w.put(0, pad);
            }
            (OKind::RegRI, Operand::Imm(v)) => {
                let bits = imm_bits(p, fmt, i);
                if !signed_fits(*v, bits) {
                    return Err(range("immediate"));
                }
                w.put(1, 1);
                w.put_signed(*v, bits);
            }
            (OKind::Imm32, Operand::Imm(v)) => {
                let bits = imm_bits(p, fmt, i);
                // Values are canonically sign-extended from the field width;
                // callers moving unsigned 32-bit patterns must canonicalize
                // (`(c as i32) as i64`) so that decode(encode(i)) == i.
                if !signed_fits(*v, bits) {
                    return Err(range("imm32"));
                }
                w.put_signed(*v, bits);
            }
            (OKind::MRef, Operand::MRef { base, offset }) => {
                if !signed_fits(*offset as i64, p.mref_off_bits) {
                    return Err(range("mref offset"));
                }
                w.put(base.0 as u64, 8);
                w.put_signed(*offset as i64, p.mref_off_bits);
            }
            (OKind::MRefAtom, Operand::MRef { base, offset }) => {
                if !signed_fits(*offset as i64, p.atom_off_bits) {
                    return Err(range("atomic mref offset"));
                }
                w.put(base.0 as u64, 8);
                w.put_signed(*offset as i64, p.atom_off_bits);
            }
            (OKind::CBankRef, Operand::CBank { bank, base, offset }) => {
                if *bank >= 4 {
                    return Err(range("constant bank"));
                }
                w.put(*bank as u64, 2);
                w.put(base.0 as u64, 8);
                w.put(*offset as u64, 16);
            }
            (OKind::Rel, Operand::Rel(off)) => {
                if !signed_fits(*off, p.rel_bits) {
                    return Err(range("relative target"));
                }
                w.put_signed(*off, p.rel_bits);
            }
            (OKind::Abs, Operand::Abs(addr)) => {
                if !unsigned_fits(*addr, p.abs_bits) {
                    return Err(range("absolute target"));
                }
                w.put(*addr, p.abs_bits.min(64));
            }
            _ => unreachable!("validate() guarantees operand kinds"),
        }
    }
    debug_assert!(w.pos <= p.op_bits + 4 + p.mods_bits + p.payload_bits);
    Ok(w.word)
}

fn decode_with(p: &Params, word: u128) -> Result<Instruction> {
    let bad = |reason: String| SassError::BadEncoding { offset: 0, reason };

    let mut r = BitReader::new(word);
    let op_idx = r.get(p.op_bits) as u16;
    let op = Op::from_index(op_idx).ok_or_else(|| bad(format!("unknown opcode {op_idx}")))?;

    let guard = Guard { pred: Pred(r.get(3) as u8), negated: r.get(1) != 0 };

    let width =
        Width::from_index(r.get(2) as u8).ok_or_else(|| bad("invalid width modifier".into()))?;
    let itype =
        IType::from_index(r.get(2) as u8).ok_or_else(|| bad("invalid type modifier".into()))?;
    let cmp = CmpOp::from_index(r.get(3) as u8)
        .ok_or_else(|| bad("invalid comparison modifier".into()))?;
    let sub = SubOp::from_index(r.get(5) as u8)
        .ok_or_else(|| bad("invalid sub-operation modifier".into()))?;
    let barrier = if p.mods_bits > 12 { r.get(p.mods_bits - 12) as u8 } else { 0 };
    let mods = Mods { width, itype, cmp, sub, barrier };

    let fmt = op.format();
    let mut operands = Vec::with_capacity(fmt.len());
    for (i, kind) in fmt.iter().enumerate() {
        let opnd = match kind {
            OKind::RegW | OKind::RegR => Operand::Reg(Reg(r.get(8) as u8)),
            OKind::SReg => {
                let idx = r.get(8) as u8;
                Operand::SReg(
                    SpecialReg::from_index(idx)
                        .ok_or_else(|| bad(format!("unknown special register {idx}")))?,
                )
            }
            OKind::PredW | OKind::PredR => {
                Operand::Pred { pred: Pred(r.get(3) as u8), negated: r.get(1) != 0 }
            }
            OKind::RegRI => {
                let bits = imm_bits(p, fmt, i);
                if r.get(1) != 0 {
                    Operand::Imm(r.get_signed(bits))
                } else {
                    let reg = Reg(r.get(8) as u8);
                    r.get(bits.saturating_sub(8)); // skip padding
                    Operand::Reg(reg)
                }
            }
            OKind::Imm32 => {
                let bits = imm_bits(p, fmt, i);
                Operand::Imm(r.get_signed(bits))
            }
            OKind::MRef => {
                let base = Reg(r.get(8) as u8);
                Operand::MRef { base, offset: r.get_signed(p.mref_off_bits) as i32 }
            }
            OKind::MRefAtom => {
                let base = Reg(r.get(8) as u8);
                Operand::MRef { base, offset: r.get_signed(p.atom_off_bits) as i32 }
            }
            OKind::CBankRef => {
                let bank = r.get(2) as u8;
                let base = Reg(r.get(8) as u8);
                Operand::CBank { bank, base, offset: r.get(16) as u16 }
            }
            OKind::Rel => Operand::Rel(r.get_signed(p.rel_bits)),
            OKind::Abs => Operand::Abs(r.get(p.abs_bits.min(64))),
        };
        operands.push(opnd);
    }

    Ok(Instruction { guard, op, mods, operands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Mods;

    fn codecs() -> Vec<&'static dyn Codec> {
        vec![&ENC64_CODEC, &ENC128_CODEC]
    }

    fn roundtrip(c: &dyn Codec, i: &Instruction) {
        let bytes = c.encode(i).unwrap_or_else(|e| panic!("encode failed for `{i}`: {e}"));
        assert_eq!(bytes.len(), c.instruction_size());
        let back = c.decode(&bytes).unwrap();
        assert_eq!(&back, i, "roundtrip mismatch for `{i}`");
    }

    #[test]
    fn simple_instructions_roundtrip_on_both_families() {
        let samples = vec![
            Instruction::nop(),
            Instruction::new(Op::Mov, vec![Operand::Reg(Reg(3)), Operand::Imm(-77)]),
            Instruction::new(Op::Mov32i, vec![Operand::Reg(Reg(0)), Operand::Imm(0x7fff_ffff)]),
            Instruction::new(
                Op::Iadd,
                vec![Operand::Reg(Reg(10)), Operand::Reg(Reg(11)), Operand::Imm(4095)],
            ),
            Instruction::new(
                Op::Ffma,
                vec![
                    Operand::Reg(Reg(4)),
                    Operand::Reg(Reg(5)),
                    Operand::Reg(Reg(6)),
                    Operand::Reg(Reg(7)),
                ],
            ),
            Instruction::new(
                Op::Ldg,
                vec![Operand::Reg(Reg(2)), Operand::MRef { base: Reg(8), offset: -256 }],
            )
            .with_mods(Mods { width: Width::B128, ..Mods::default() }),
            Instruction::new(
                Op::Ldc,
                vec![
                    Operand::Reg(Reg(4)),
                    Operand::CBank { bank: 0, base: Reg::RZ, offset: 0x160 },
                ],
            ),
            Instruction::new(Op::Bra, vec![Operand::Rel(-0x1000)])
                .with_guard(Guard { pred: Pred(3), negated: true }),
            Instruction::new(Op::Jmp, vec![Operand::Abs(0xdead_beef)]),
            Instruction::new(
                Op::S2r,
                vec![Operand::Reg(Reg(0)), Operand::SReg(SpecialReg::LaneId)],
            ),
            Instruction::new(
                Op::Atom,
                vec![
                    Operand::Reg(Reg(0)),
                    Operand::MRef { base: Reg(2), offset: 64 },
                    Operand::Reg(Reg(4)),
                    Operand::Reg(Reg::RZ),
                ],
            )
            .with_mods(Mods { sub: SubOp::Add, itype: IType::F32, ..Mods::default() }),
            Instruction::new(
                Op::Sel,
                vec![
                    Operand::Reg(Reg(1)),
                    Operand::Reg(Reg(2)),
                    Operand::Imm(-100),
                    Operand::Pred { pred: Pred(1), negated: true },
                ],
            ),
            Instruction::new(Op::Exit, vec![]),
        ];
        for c in codecs() {
            for i in &samples {
                roundtrip(c, i);
            }
        }
    }

    #[test]
    fn enc64_rejects_oversized_fields_that_enc128_accepts() {
        // A 30-bit immediate fits the Enc128 three-source form (32 bits) but
        // not the Enc64 one (23 bits).
        let i = Instruction::new(
            Op::Iadd,
            vec![Operand::Reg(Reg(0)), Operand::Reg(Reg(1)), Operand::Imm(1 << 29)],
        );
        assert!(matches!(ENC64_CODEC.encode(&i), Err(SassError::FieldRange { .. })));
        roundtrip(&ENC128_CODEC, &i);

        // Large memory offsets only fit the wide encoding.
        let far = Instruction::new(
            Op::Ldg,
            vec![Operand::Reg(Reg(0)), Operand::MRef { base: Reg(2), offset: 1 << 21 }],
        );
        assert!(ENC64_CODEC.encode(&far).is_err());
        roundtrip(&ENC128_CODEC, &far);
    }

    #[test]
    fn barrier_slot_is_volta_only() {
        let ssy = Instruction::new(Op::Ssy, vec![Operand::Rel(64)])
            .with_mods(Mods { barrier: 3, ..Mods::default() });
        assert!(ENC64_CODEC.encode(&ssy).is_err());
        roundtrip(&ENC128_CODEC, &ssy);
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        // Opcode field value 200 is unassigned.
        let word = 200u64;
        let bytes = word.to_le_bytes();
        assert!(matches!(ENC64_CODEC.decode(&bytes), Err(SassError::BadEncoding { .. })));
    }

    #[test]
    fn decode_stream_checks_length() {
        let c: &dyn Codec = &ENC64_CODEC;
        assert!(matches!(c.decode_stream(&[0u8; 12]), Err(SassError::TruncatedStream { .. })));
    }

    #[test]
    fn codec_for_matches_family() {
        assert_eq!(codec_for(Arch::Kepler).instruction_size(), 8);
        assert_eq!(codec_for(Arch::Pascal).instruction_size(), 8);
        assert_eq!(codec_for(Arch::Volta).instruction_size(), 16);
    }

    #[test]
    fn stream_roundtrip() {
        let prog = vec![
            Instruction::new(Op::Mov32i, vec![Operand::Reg(Reg(0)), Operand::Imm(42)]),
            Instruction::new(Op::Bra, vec![Operand::Rel(8)]),
            Instruction::new(Op::Exit, vec![]),
        ];
        for c in codecs() {
            let bytes = c.encode_stream(&prog).unwrap();
            assert_eq!(bytes.len(), prog.len() * c.instruction_size());
            assert_eq!(c.decode_stream(&bytes).unwrap(), prog);
        }
    }
}
