//! Parameterized SM occupancy model: registers per thread → blocks per SM.
//!
//! **Paper mapping:** §7 / Figure 9 — the overhead of inlined instrumentation
//! is dominated not by the instructions it adds but by the registers it
//! forces the kernel to keep resident. On real hardware the register file of
//! a streaming multiprocessor is carved into per-warp allocations rounded up
//! to an allocation granularity, so the launchable blocks/SM as a function of
//! registers/thread is a *step* curve: raising the register demand inside a
//! flat step is free, while crossing a step boundary evicts whole blocks.
//!
//! [`SmModel`] captures the four parameters that define the curve (register
//! file size, allocation granularity, max resident warps and blocks) with
//! presets for the Volta, Turing and Ampere SM generations.
//! [`SmModel::occupancy`] prices one `(regs_per_thread, block_dim)` point and
//! [`SmModel::curve`] enumerates the whole curve. [`OccupancyCfg`] bundles a
//! model with the launch's block shape; [`crate::pressure::splice_verdict`]
//! consumes it to accept save-tier growth that stays on the same occupancy
//! step and decline only growth that would drop resident blocks.

use crate::arch::Arch;

/// Threads per warp. Register allocation is per warp: a block's register
/// footprint is `warps_per_block × round_up(regs_per_thread × WARP_SIZE,
/// alloc_gran)`.
pub const WARP_SIZE: u32 = 32;

/// The register-file parameters of one streaming multiprocessor.
///
/// All fields are in hardware units: `reg_file` counts 32-bit registers,
/// `alloc_gran` is the per-warp allocation rounding (also in registers),
/// `max_warps`/`max_blocks` are the scheduler's residency ceilings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SmModel {
    /// Total 32-bit registers in the SM register file.
    pub reg_file: u32,
    /// Per-warp register allocation granularity (registers).
    pub alloc_gran: u32,
    /// Maximum warps resident on the SM.
    pub max_warps: u32,
    /// Maximum thread blocks resident on the SM.
    pub max_blocks: u32,
}

/// The resource that capped [`OccupancyPoint::blocks_per_sm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limiter {
    /// Register-file capacity bounded residency (or made the launch
    /// unlaunchable at this block shape).
    Registers,
    /// The max-warps ceiling bounded residency (or the block alone exceeds
    /// it, making the launch unlaunchable).
    Warps,
    /// The max-blocks ceiling bounded residency.
    Blocks,
}

/// One point on the occupancy curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OccupancyPoint {
    /// Resident thread blocks per SM; `0` means the launch cannot fit at
    /// this register demand and block shape at all.
    pub blocks_per_sm: u32,
    /// Resident warps per SM (`blocks_per_sm × warps_per_block`).
    pub warps_per_sm: u32,
    /// Which resource capped `blocks_per_sm`.
    pub limiter: Limiter,
}

impl SmModel {
    /// Volta-class SM (GV100): 64K registers, 256-register granularity,
    /// 64 warps / 32 blocks resident.
    pub const fn volta() -> SmModel {
        SmModel { reg_file: 65536, alloc_gran: 256, max_warps: 64, max_blocks: 32 }
    }

    /// Turing-class SM (TU10x): same register file, half the warp and block
    /// residency of Volta.
    pub const fn turing() -> SmModel {
        SmModel { reg_file: 65536, alloc_gran: 256, max_warps: 32, max_blocks: 16 }
    }

    /// Ampere-class SM (GA10x): 48 resident warps, 16 blocks.
    pub const fn ampere() -> SmModel {
        SmModel { reg_file: 65536, alloc_gran: 256, max_warps: 48, max_blocks: 16 }
    }

    /// The preset for one of the simulated [`Arch`] generations. The
    /// pre-Volta architectures share the Volta register file but cap
    /// residency at 16 blocks (the Kepler scheduler limit).
    pub const fn for_arch(arch: Arch) -> SmModel {
        match arch {
            Arch::Kepler => {
                SmModel { reg_file: 65536, alloc_gran: 256, max_warps: 64, max_blocks: 16 }
            }
            Arch::Maxwell | Arch::Pascal | Arch::Volta => SmModel::volta(),
        }
    }

    /// Prices one point: how many blocks of `block_threads` threads, each
    /// thread holding `regs_per_thread` registers, fit on this SM.
    ///
    /// Degenerate inputs are clamped up: a zero register demand allocates
    /// like one register (the granularity floor applies anyway) and a zero
    /// block dimension is priced as a single thread.
    pub fn occupancy(&self, regs_per_thread: u16, block_threads: u32) -> OccupancyPoint {
        let warps_per_block = block_threads.max(1).div_ceil(WARP_SIZE);
        let regs_per_warp = (u32::from(regs_per_thread).max(1) * WARP_SIZE)
            .div_ceil(self.alloc_gran)
            * self.alloc_gran;
        let warps_by_regs = self.reg_file / regs_per_warp;
        let by_regs = warps_by_regs / warps_per_block;
        let by_warps = self.max_warps / warps_per_block;
        let blocks = by_regs.min(by_warps).min(self.max_blocks);
        let limiter = if blocks == 0 {
            // Unlaunchable: name the resource the single block overflows.
            if by_warps == 0 {
                Limiter::Warps
            } else {
                Limiter::Registers
            }
        } else if self.max_blocks < by_regs.min(by_warps) {
            Limiter::Blocks
        } else if by_warps <= by_regs {
            Limiter::Warps
        } else {
            Limiter::Registers
        };
        OccupancyPoint { blocks_per_sm: blocks, warps_per_sm: blocks * warps_per_block, limiter }
    }

    /// The full occupancy curve at one block shape: the point for every
    /// register demand the ISA can express (1..=255 registers/thread).
    pub fn curve(&self, block_threads: u32) -> Vec<(u16, OccupancyPoint)> {
        (1..=255u16).map(|r| (r, self.occupancy(r, block_threads))).collect()
    }
}

/// An occupancy model bound to a launch's block shape — the unit the
/// splice-pricing verdict (and the plan cache key above it) carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OccupancyCfg {
    /// The SM being priced against.
    pub model: SmModel,
    /// Threads per block of the launch being instrumented.
    pub block_threads: u32,
}

impl OccupancyCfg {
    /// Sentinel block shape: "derive from the intercepted launch".
    ///
    /// A config carrying this value prices against whatever block
    /// dimensions the application actually launches with — the core
    /// substitutes the real thread count at launch interception, and
    /// because the substituted config is part of the plan-cache key, a
    /// shape change on a later launch replans automatically. Zero is
    /// never a valid block shape ([`SmModel::occupancy`] clamps to 1),
    /// so the sentinel cannot collide with an explicit configuration.
    pub const PER_LAUNCH: u32 = 0;

    /// Shorthand for the Volta preset at a given block shape.
    pub const fn volta(block_threads: u32) -> OccupancyCfg {
        OccupancyCfg { model: SmModel::volta(), block_threads }
    }

    /// The Volta preset deferring the block shape to each intercepted
    /// launch (see [`OccupancyCfg::PER_LAUNCH`]).
    pub const fn volta_per_launch() -> OccupancyCfg {
        OccupancyCfg { model: SmModel::volta(), block_threads: Self::PER_LAUNCH }
    }

    /// True when the block shape is the defer-to-launch sentinel.
    pub const fn per_launch(&self) -> bool {
        self.block_threads == Self::PER_LAUNCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volta_golden_points_match_the_published_calculator() {
        // Blocks/SM from the CUDA occupancy calculator for a GV100 SM
        // (65536 registers, 256-register granularity, 64 warps, 32 blocks)
        // at block dims 128 / 256 / 512.
        let m = SmModel::volta();
        let golden: [(u16, [u32; 3]); 6] = [
            (32, [16, 8, 4]),
            (40, [12, 6, 3]),
            (64, [8, 4, 2]),
            (96, [5, 2, 1]),
            (128, [4, 2, 1]),
            (255, [2, 1, 0]),
        ];
        for (regs, blocks) in golden {
            for (i, &bd) in [128u32, 256, 512].iter().enumerate() {
                let p = m.occupancy(regs, bd);
                assert_eq!(p.blocks_per_sm, blocks[i], "regs {regs} at block dim {bd}");
                assert_eq!(
                    p.warps_per_sm,
                    blocks[i] * bd.div_ceil(WARP_SIZE),
                    "warps inconsistent at regs {regs} block dim {bd}"
                );
            }
        }
    }

    #[test]
    fn volta_limiters_name_the_binding_resource() {
        let m = SmModel::volta();
        // 32 regs at bd 128: regs and warps both allow 16 → tie reports
        // Warps (the scheduler ceiling, not the register file).
        assert_eq!(m.occupancy(32, 128).limiter, Limiter::Warps);
        // 40+ regs at bd 128: the register file binds first.
        for regs in [40u16, 64, 96, 128, 255] {
            assert_eq!(m.occupancy(regs, 128).limiter, Limiter::Registers, "regs {regs}");
        }
        // Tiny blocks with tiny register demand hit the block-count ceiling.
        assert_eq!(m.occupancy(16, 32).limiter, Limiter::Blocks);
        // 255 regs at bd 512 is unlaunchable: 8 warps fit by registers but
        // the block needs 16.
        let p = m.occupancy(255, 512);
        assert_eq!((p.blocks_per_sm, p.limiter), (0, Limiter::Registers));
        // A block wider than the warp ceiling is unlaunchable by warps.
        let p = m.occupancy(16, 64 * WARP_SIZE + 1);
        assert_eq!((p.blocks_per_sm, p.limiter), (0, Limiter::Warps));
    }

    #[test]
    fn the_curve_is_a_non_increasing_step_function() {
        for bd in [128u32, 256, 512] {
            let curve = SmModel::volta().curve(bd);
            assert_eq!(curve.len(), 255);
            assert_eq!(curve[0].0, 1);
            for w in curve.windows(2) {
                assert!(
                    w[1].1.blocks_per_sm <= w[0].1.blocks_per_sm,
                    "occupancy rose from {} to {} regs at bd {bd}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    #[test]
    fn the_16_to_32_register_step_is_flat_on_volta() {
        // The save-tier ladder's first raise (16 → 32) never costs blocks
        // on Volta at the swept block shapes — the fact the occupancy gate
        // in `pressure::splice_verdict` exploits.
        let m = SmModel::volta();
        for bd in [128u32, 256, 512] {
            assert_eq!(
                m.occupancy(16, bd).blocks_per_sm,
                m.occupancy(32, bd).blocks_per_sm,
                "16→32 not flat at bd {bd}"
            );
            // ... while 32 → 64 halves residency.
            assert!(
                m.occupancy(64, bd).blocks_per_sm < m.occupancy(32, bd).blocks_per_sm,
                "32→64 unexpectedly flat at bd {bd}"
            );
        }
    }

    #[test]
    fn presets_differ_where_the_hardware_does() {
        assert_ne!(SmModel::volta(), SmModel::turing());
        assert_ne!(SmModel::volta(), SmModel::ampere());
        assert_ne!(SmModel::turing(), SmModel::ampere());
        // Turing halves Volta's warp residency: 32 regs × bd 128 fits 16
        // blocks on Volta but only 8 on Turing.
        assert_eq!(SmModel::turing().occupancy(32, 128).blocks_per_sm, 8);
        assert_eq!(SmModel::ampere().occupancy(32, 128).blocks_per_sm, 12);
        for arch in Arch::ALL {
            let m = SmModel::for_arch(arch);
            assert!(m.occupancy(16, 128).blocks_per_sm > 0, "{arch} preset unlaunchable");
        }
        assert_eq!(SmModel::for_arch(Arch::Kepler).max_blocks, 16);
        assert_eq!(SmModel::for_arch(Arch::Volta), SmModel::volta());
    }

    #[test]
    fn degenerate_inputs_are_clamped_not_divided_by_zero() {
        let m = SmModel::volta();
        assert_eq!(m.occupancy(0, 0), m.occupancy(1, 1));
        // One thread still allocates a full warp at the granularity floor.
        let p = m.occupancy(1, 1);
        assert_eq!(p.blocks_per_sm, m.max_blocks);
        assert_eq!(p.warps_per_sm, m.max_blocks);
    }
}
